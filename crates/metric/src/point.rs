//! Points in a multi-dimensional space.
//!
//! Two representations exist:
//!
//! * [`Point`] — an *owned* fixed-dimension vector of `f64` coordinates,
//!   used to construct datasets and as free-standing query centres;
//! * [`PointView`] — a *borrowed* view into a [`Dataset`]'s flat
//!   coordinate buffer (`crate::dataset`). All stored points live
//!   contiguously in that buffer; a view is just a slice, so the query
//!   hot path never chases a per-point heap allocation.
//!
//! Numeric datasets (Uniform, Clustered, Cities) store real coordinates
//! in `[0, 1]`; categorical datasets (Cameras) store small integer
//! *codes* per attribute and are compared with the Hamming metric, which
//! only tests coordinate equality, so the shared representation loses
//! nothing.
//!
//! [`Dataset`]: crate::dataset::Dataset

use std::fmt;

/// A point in `d`-dimensional space (owned).
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty or contains a non-finite value: the
    /// M-tree and the DisC heuristics rely on distances being finite.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "a point needs at least one dimension");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        Self { coords }
    }

    /// Creates a 2-dimensional point.
    pub fn new2(x: f64, y: f64) -> Self {
        Self::new(vec![x, y])
    }

    /// Creates a point whose coordinates are categorical codes.
    pub fn categorical(codes: &[u32]) -> Self {
        Self::new(codes.iter().map(|&c| f64::from(c)).collect())
    }

    /// Dimensionality of the point.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate slice.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Coordinate in dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// A borrowed view of this point (same shape a dataset-stored point
    /// presents).
    pub fn view(&self) -> PointView<'_> {
        PointView {
            coords: &self.coords,
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_coords(&self.coords, f)
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Self::new(coords)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Self::new2(x, y)
    }
}

/// A borrowed point: a view into a dataset's flat coordinate buffer.
///
/// Cheap to copy (one slice), hashable by identity of its coordinates,
/// and comparable against owned [`Point`]s in both directions.
#[derive(Clone, Copy)]
pub struct PointView<'a> {
    coords: &'a [f64],
}

impl<'a> PointView<'a> {
    /// Wraps a raw coordinate slice.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `coords` is empty (points have at
    /// least one dimension).
    pub fn new(coords: &'a [f64]) -> Self {
        debug_assert!(!coords.is_empty(), "a point needs at least one dimension");
        Self { coords }
    }

    /// Dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate slice (borrows the dataset's buffer).
    #[inline]
    pub fn coords(&self) -> &'a [f64] {
        self.coords
    }

    /// Coordinate in dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// Copies the view into an owned [`Point`].
    pub fn to_point(&self) -> Point {
        Point::new(self.coords.to_vec())
    }
}

impl PartialEq for PointView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.coords == other.coords
    }
}

impl PartialEq<Point> for PointView<'_> {
    fn eq(&self, other: &Point) -> bool {
        self.coords == other.coords()
    }
}

impl PartialEq<PointView<'_>> for Point {
    fn eq(&self, other: &PointView<'_>) -> bool {
        self.coords() == other.coords
    }
}

impl fmt::Debug for PointView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_coords(self.coords, f)
    }
}

/// Shared `Point(…)` rendering for owned points and views.
fn fmt_coords(coords: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "Point(")?;
    for (i, c) in coords.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{c:.4}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_reads_coordinates() {
        let p = Point::new(vec![0.25, 0.5, 0.75]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coord(0), 0.25);
        assert_eq!(p.coords(), &[0.25, 0.5, 0.75]);
    }

    #[test]
    fn two_dimensional_constructor() {
        let p = Point::new2(0.1, 0.9);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.coord(1), 0.9);
    }

    #[test]
    fn categorical_codes_round_trip() {
        let p = Point::categorical(&[3, 0, 7]);
        assert_eq!(p.coords(), &[3.0, 0.0, 7.0]);
    }

    #[test]
    fn conversion_from_tuple_and_vec() {
        let a: Point = (0.5, 0.5).into();
        let b: Point = vec![0.5, 0.5].into();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn rejects_empty_point() {
        let _ = Point::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_coordinates() {
        let _ = Point::new(vec![0.0, f64::NAN]);
    }

    #[test]
    fn debug_format_is_compact() {
        let p = Point::new2(0.12345, 1.0);
        assert_eq!(format!("{p:?}"), "Point(0.1235, 1.0000)");
        assert_eq!(format!("{:?}", p.view()), "Point(0.1235, 1.0000)");
    }

    #[test]
    fn views_compare_against_points_both_ways() {
        let p = Point::new2(0.5, 0.25);
        let buf = [0.5, 0.25];
        let v = PointView::new(&buf);
        assert_eq!(v, p);
        assert_eq!(p, v);
        assert_eq!(v, v);
        let other = Point::new2(0.5, 0.26);
        assert!(v != other);
    }

    #[test]
    fn view_round_trips_to_owned_point() {
        let buf = [1.0, 2.0, 3.0];
        let v = PointView::new(&buf);
        assert_eq!(v.to_point().coords(), &buf);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.coord(2), 3.0);
    }
}
