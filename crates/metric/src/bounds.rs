//! Analytical bounds from the paper (Lemmas 2–4 and the d=3 remark).
//!
//! * `B` — the maximum number of *independent* neighbours any object can
//!   have, which drives the Theorem 1 approximation factor
//!   (`|S| ≤ B · |S*|`): 5 for Euclidean d=2, 7 for Manhattan d=2, 24 for
//!   Euclidean d=3.
//! * `NI_{r1,r2}(p)` — how many objects can lie within distance `r2` of `p`
//!   while being pairwise more than `r1` apart (Lemma 4). This bounds the
//!   growth of zoom-in solutions (Lemma 5(ii)) and the shrinkage of zoom-out
//!   solutions (Lemma 6(i)).

use crate::distance::Metric;

/// Maximum number of pairwise-independent neighbours `B` of any object,
/// for the metric/dimension combinations the paper proves bounds for.
///
/// Returns `None` when the paper gives no bound (the quantity is still
/// finite for doubling spaces, but no constant is stated).
pub fn max_independent_neighbors(metric: Metric, dim: usize) -> Option<u32> {
    match (metric, dim) {
        (Metric::Euclidean, 2) => Some(5),  // Lemma 2
        (Metric::Manhattan, 2) => Some(7),  // Lemma 3
        (Metric::Euclidean, 3) => Some(24), // packing remark after Lemma 3
        _ => None,
    }
}

/// Lemma 4 bound on `|NI_{r1,r2}(p)|` for 2-dimensional data: the number of
/// objects at distance ≤ `r2` from `p` that are pairwise more than `r1`
/// apart.
///
/// Returns `None` for metrics/dimensions without a stated bound, and for
/// degenerate radii (`r1 <= 0` or `r2 < r1`).
pub fn ni_bound(metric: Metric, dim: usize, r1: f64, r2: f64) -> Option<u64> {
    if r1 <= 0.0 || r2 < r1 || dim != 2 {
        return None;
    }
    match metric {
        Metric::Euclidean => {
            // 9 * ceil(log_beta(r2 / r1)), beta = golden ratio.
            let beta = (1.0 + 5.0f64.sqrt()) / 2.0;
            let ratio = r2 / r1;
            let log = ratio.ln() / beta.ln();
            Some(9 * (log.ceil().max(1.0) as u64))
        }
        Metric::Manhattan => {
            // 4 * sum_{i=1..gamma} (2i + 1), gamma = ceil((r2 - r1) / r1).
            let gamma = ((r2 - r1) / r1).ceil().max(1.0) as u64;
            Some((1..=gamma).map(|i| 4 * (2 * i + 1)).sum())
        }
        _ => None,
    }
}

/// Theorem 1: any DisC diverse subset is at most `B` times larger than a
/// minimum one. Given a heuristic solution size and an optimal size, checks
/// whether the pair respects the bound (used by property tests against the
/// exact solver).
pub fn respects_theorem1(metric: Metric, dim: usize, heuristic: usize, optimal: usize) -> bool {
    match max_independent_neighbors(metric, dim) {
        Some(b) => heuristic <= (b as usize) * optimal.max(1),
        // No stated bound: vacuously true.
        None => true,
    }
}

/// Theorem 2: the size of a Greedy-C solution is at most `ln Δ` times the
/// minimum DisC diverse subset, where `Δ` is the maximum neighbourhood size.
/// Returns the multiplicative bound (`H(Δ+1)`, the harmonic number the proof
/// actually derives, which is tighter than `ln Δ` for small `Δ`).
pub fn theorem2_factor(max_degree: usize) -> f64 {
    harmonic(max_degree + 1)
}

/// The `n`-th harmonic number `H(n) = 1 + 1/2 + ... + 1/n`.
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dataset::Dataset, point::Point};
    use proptest::prelude::*;

    #[test]
    fn paper_b_values() {
        assert_eq!(max_independent_neighbors(Metric::Euclidean, 2), Some(5));
        assert_eq!(max_independent_neighbors(Metric::Manhattan, 2), Some(7));
        assert_eq!(max_independent_neighbors(Metric::Euclidean, 3), Some(24));
        assert_eq!(max_independent_neighbors(Metric::Hamming, 7), None);
        assert_eq!(max_independent_neighbors(Metric::Euclidean, 4), None);
    }

    #[test]
    fn ni_bound_euclidean_matches_formula() {
        // r2/r1 = 4 => ceil(log_phi 4) = ceil(2.88) = 3 => 27.
        assert_eq!(ni_bound(Metric::Euclidean, 2, 0.25, 1.0), Some(27));
        // Equal radii: at least one annulus is charged.
        assert_eq!(ni_bound(Metric::Euclidean, 2, 1.0, 1.0), Some(9));
    }

    #[test]
    fn ni_bound_manhattan_matches_formula() {
        // gamma = ceil((1.0 - 0.25) / 0.25) = 3 => 4*(3 + 5 + 7) = 60.
        assert_eq!(ni_bound(Metric::Manhattan, 2, 0.25, 1.0), Some(60));
        // gamma = 1 => 4*3 = 12.
        assert_eq!(ni_bound(Metric::Manhattan, 2, 0.5, 1.0), Some(12));
    }

    #[test]
    fn ni_bound_rejects_degenerate_inputs() {
        assert_eq!(ni_bound(Metric::Euclidean, 2, 0.0, 1.0), None);
        assert_eq!(ni_bound(Metric::Euclidean, 2, 2.0, 1.0), None);
        assert_eq!(ni_bound(Metric::Euclidean, 3, 0.5, 1.0), None);
        assert_eq!(ni_bound(Metric::Chebyshev, 2, 0.5, 1.0), None);
    }

    #[test]
    fn theorem1_check() {
        assert!(respects_theorem1(Metric::Euclidean, 2, 5, 1));
        assert!(!respects_theorem1(Metric::Euclidean, 2, 6, 1));
        // Unknown B: vacuous.
        assert!(respects_theorem1(Metric::Hamming, 7, 1000, 1));
    }

    #[test]
    fn harmonic_numbers() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H(n) ~ ln n + gamma.
        let h = harmonic(10_000);
        assert!((h - (10_000f64).ln() - 0.5772).abs() < 1e-3);
    }

    #[test]
    fn theorem2_factor_close_to_ln_delta() {
        let f = theorem2_factor(1000);
        assert!(f > (1000f64).ln());
        assert!(f < (1000f64).ln() + 1.0);
    }

    /// Empirical falsification test of Lemma 2: try to pack more than 5
    /// pairwise-independent neighbours around a centre in Euclidean 2-D.
    /// Every randomly generated candidate packing must obey the bound.
    #[test]
    fn lemma2_cannot_be_beaten_by_greedy_packing() {
        use rand::{rngs::StdRng, RngExt as _, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let r = 0.3;
        for _ in 0..50 {
            let centre = Point::new2(0.5, 0.5);
            // Sample many points in the closed r-ball around the centre and
            // greedily keep pairwise-independent ones.
            let mut kept: Vec<Point> = Vec::new();
            for _ in 0..4000 {
                let angle = rng.random_range(0.0..std::f64::consts::TAU);
                let rad = rng.random_range(0.0..=r);
                let cand = Point::new2(0.5 + rad * angle.cos(), 0.5 + rad * angle.sin());
                if Metric::Euclidean.dist(&centre, &cand) <= r
                    && kept.iter().all(|k| Metric::Euclidean.dist(k, &cand) > r)
                {
                    kept.push(cand);
                }
            }
            assert!(
                kept.len() <= 5,
                "packed {} independent neighbours, Lemma 2 says ≤ 5",
                kept.len()
            );
        }
    }

    proptest! {
        /// NI bound is monotone in r2 (a larger annulus can only fit more
        /// independent objects).
        #[test]
        fn ni_bound_monotone_in_r2(r1 in 0.01..0.5f64, extra in 0.0..2.0f64, more in 0.0..2.0f64) {
            let r2 = r1 + extra;
            let r3 = r2 + more;
            for m in [Metric::Euclidean, Metric::Manhattan] {
                let a = ni_bound(m, 2, r1, r2).unwrap();
                let b = ni_bound(m, 2, r1, r3).unwrap();
                prop_assert!(b >= a);
            }
        }

        /// Random point sets in the r2-ball, thinned to be r1-independent,
        /// never exceed the Lemma 4 bound.
        #[test]
        fn lemma4_holds_empirically(seed in 0u64..500) {
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let (r1, r2) = (0.2f64, 0.55f64);
            for metric in [Metric::Euclidean, Metric::Manhattan] {
                let centre = Point::new2(0.0, 0.0);
                let mut kept: Vec<Point> = Vec::new();
                for _ in 0..600 {
                    let cand = Point::new2(
                        rng.random_range(-r2..r2),
                        rng.random_range(-r2..r2),
                    );
                    if metric.dist(&centre, &cand) <= r2
                        && kept.iter().all(|k| metric.dist(k, &cand) > r1)
                    {
                        kept.push(cand);
                    }
                }
                let bound = ni_bound(metric, 2, r1, r2).unwrap();
                prop_assert!(
                    (kept.len() as u64) <= bound,
                    "{} objects exceed NI bound {} for {:?}",
                    kept.len(), bound, metric
                );
            }
        }
    }

    // Silence the unused import when proptest shuffles features.
    #[allow(dead_code)]
    fn _touch(_: &Dataset) {}
}
