//! Brute-force neighbourhood utilities.
//!
//! These are the ground-truth counterparts of the M-tree range queries:
//! `N_r(p)` (paper Section 2.1) computed by linear scan. Tests use them to
//! validate the index; the graph substrate uses them to materialise the
//! unit-disk graph `G_{P,r}`.

// Object ids double as array indices and query arguments here, so
// indexed loops are the clearer idiom.
#![allow(clippy::needless_range_loop)]

use crate::{dataset::Dataset, ObjId};

/// `N_r(p)`: ids of all objects within distance `r` of `center`, excluding
/// `center` itself (the paper's open neighbourhood).
pub fn neighbors(data: &Dataset, center: ObjId, r: f64) -> Vec<ObjId> {
    data.ids()
        .filter(|&j| j != center && data.dist(center, j) <= r)
        .collect()
}

/// `N_r^+(p)`: the closed neighbourhood, i.e. `N_r(p) ∪ {p}`, in id order.
pub fn closed_neighbors(data: &Dataset, center: ObjId, r: f64) -> Vec<ObjId> {
    data.ids()
        .filter(|&j| j == center || data.dist(center, j) <= r)
        .collect()
}

/// Neighbourhood sizes `|N_r(p)|` for every object, by linear scan over all
/// pairs (O(n²); intended for tests and small workloads).
pub fn neighborhood_sizes(data: &Dataset, r: f64) -> Vec<usize> {
    let n = data.len();
    let mut sizes = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if data.dist(i, j) <= r {
                sizes[i] += 1;
                sizes[j] += 1;
            }
        }
    }
    sizes
}

/// Maximum neighbourhood size `Δ` (the paper's Theorem 2 parameter).
pub fn max_degree(data: &Dataset, r: f64) -> usize {
    neighborhood_sizes(data, r).into_iter().max().unwrap_or(0)
}

/// Distance from each object to its nearest object in `subset`
/// (`dist(p, c(p))` in the k-medoids objective of Section 4). Objects in
/// `subset` report 0.
pub fn dist_to_nearest(data: &Dataset, subset: &[ObjId]) -> Vec<f64> {
    assert!(!subset.is_empty(), "subset must be non-empty");
    data.ids()
        .map(|i| {
            subset
                .iter()
                .map(|&s| data.dist(i, s))
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distance::Metric, point::Point};

    /// Five collinear points spaced 0.1 apart.
    fn line() -> Dataset {
        Dataset::new(
            "line",
            Metric::Euclidean,
            (0..5).map(|i| Point::new2(0.1 * i as f64, 0.0)).collect(),
        )
    }

    #[test]
    fn open_neighborhood_excludes_center() {
        let d = line();
        let n = neighbors(&d, 2, 0.1 + 1e-9);
        assert_eq!(n, vec![1, 3]);
    }

    #[test]
    fn closed_neighborhood_includes_center() {
        let d = line();
        let n = closed_neighbors(&d, 2, 0.1 + 1e-9);
        assert_eq!(n, vec![1, 2, 3]);
    }

    #[test]
    fn radius_zero_isolates_points() {
        let d = line();
        assert!(neighbors(&d, 0, 0.0).is_empty());
        assert_eq!(closed_neighbors(&d, 0, 0.0), vec![0]);
    }

    #[test]
    fn neighborhood_sizes_match_pointwise_queries() {
        let d = line();
        let sizes = neighborhood_sizes(&d, 0.15);
        for i in 0..d.len() {
            assert_eq!(sizes[i], neighbors(&d, i, 0.15).len(), "object {i}");
        }
    }

    #[test]
    fn max_degree_on_the_line() {
        let d = line();
        // Middle point sees both sides at r=0.25 (two on each side).
        assert_eq!(max_degree(&d, 0.25), 4);
        assert_eq!(max_degree(&d, 0.05), 0);
    }

    #[test]
    fn dist_to_nearest_is_zero_on_subset() {
        let d = line();
        let dists = dist_to_nearest(&d, &[0, 4]);
        assert_eq!(dists[0], 0.0);
        assert_eq!(dists[4], 0.0);
        assert!((dists[2] - 0.2).abs() < 1e-12);
    }
}
