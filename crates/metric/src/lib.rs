//! Metric-space substrate for the DisC diversity reproduction.
//!
//! This crate provides the foundation every other crate builds on:
//!
//! * [`Point`] — a point in a (possibly categorical) multi-dimensional space,
//! * [`Metric`] — the distance functions used by the paper (Euclidean,
//!   Manhattan, Chebyshev and Hamming),
//! * [`Dataset`] — an immutable collection of points paired with a metric,
//! * [`bounds`] — the analytical bounds of Lemmas 2–4 of the paper
//!   (maximum number of independent neighbours `B`, and the `NI_{r1,r2}`
//!   annulus bounds used by the zooming analysis),
//! * [`neighbors`] — brute-force neighbourhood utilities used as ground truth
//!   by tests and by the graph substrate.
//!
//! Objects are addressed by their index (`ObjId`) inside a [`Dataset`]; all
//! higher layers (M-tree, DisC heuristics, baselines) share this convention.

pub mod bounds;
pub mod cancel;
pub mod dataset;
pub mod distance;
pub mod ids;
pub mod neighbors;
pub mod point;

pub use cancel::{CancelToken, Cancelled};
pub use dataset::{Dataset, DatasetError};
pub use distance::Metric;
pub use ids::{IdPermutation, PermutationError};
pub use point::{Point, PointView};

/// Identifier of an object inside a [`Dataset`]: its position in the
/// underlying point vector.
pub type ObjId = usize;
