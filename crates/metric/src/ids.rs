//! Internal-vs-external object numbering.
//!
//! ## The id contract
//!
//! Locality-aware renumbering (objects relabeled by M-tree leaf order so
//! CSR fills and adjacency scans touch near-contiguous rows) splits the
//! id space in two:
//!
//! * **internal ids** — positions in a (possibly renumbered) [`Dataset`]'s
//!   coordinate buffer. Everything that indexes arrays uses these: the
//!   M-tree, the self-join's edges, the CSR graphs, the runners' color /
//!   count / heap state.
//! * **external ids** — the numbering the caller handed the original
//!   dataset in. Everything that crosses the API boundary uses these:
//!   runner solution vectors, snapshot contents, serve-wire hashes.
//!
//! An [`IdPermutation`] is the bijection between the two. A dataset (and
//! the graphs derived from it) optionally carries one; `None` means the
//! two numberings coincide. Layers translate exactly once, at the
//! boundary — runners *emit* external ids and *internalize* external
//! inputs on entry, so no intermediate layer ever mixes the spaces.
//!
//! [`Dataset`]: crate::Dataset

use std::fmt;

use crate::ObjId;

/// The ways a claimed permutation vector can fail to be one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PermutationError {
    /// The vector was empty.
    Empty,
    /// `value` at `index` is outside `0..len`.
    OutOfRange {
        /// Position of the offending entry.
        index: usize,
        /// The offending value.
        value: ObjId,
        /// Length of the vector (the exclusive value bound).
        len: usize,
    },
    /// `value` appears more than once (second occurrence at `index`).
    Duplicate {
        /// Position of the second occurrence.
        index: usize,
        /// The repeated value.
        value: ObjId,
    },
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => f.write_str("permutation must map at least one id"),
            Self::OutOfRange { index, value, len } => {
                write!(f, "permutation entry {index} is {value}, outside 0..{len}")
            }
            Self::Duplicate { index, value } => {
                write!(f, "permutation repeats id {value} (at entry {index})")
            }
        }
    }
}

impl std::error::Error for PermutationError {}

/// A bijection between internal ids (dataset/graph array positions) and
/// external ids (the caller's original numbering). See the
/// [module docs](self) for who uses which side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdPermutation {
    /// `to_external[internal] == external`.
    to_external: Vec<ObjId>,
    /// `to_internal[external] == internal` — the inverse, precomputed so
    /// both directions are O(1).
    to_internal: Vec<ObjId>,
}

impl IdPermutation {
    /// Builds the bijection from its internal-to-external side,
    /// validating that the vector is a permutation of `0..len`.
    pub fn try_new(to_external: Vec<ObjId>) -> Result<Self, PermutationError> {
        let n = to_external.len();
        if n == 0 {
            return Err(PermutationError::Empty);
        }
        if let Some((index, &value)) = to_external.iter().enumerate().find(|(_, &v)| v >= n) {
            return Err(PermutationError::OutOfRange {
                index,
                value,
                len: n,
            });
        }
        Self::try_new_sparse(to_external)
    }

    /// Builds a *sparse* bijection: internal ids are still `0..len`, but
    /// the external side may be any set of distinct ids — the streaming
    /// id space, where deletions tombstone external ids (leaving holes)
    /// and insertions append fresh ids at and beyond the original `n`.
    /// Only duplicates are rejected; [`IdPermutation::is_dense`] reports
    /// whether the result happens to be a permutation of `0..len` (the
    /// only shape snapshot format v2 can persist).
    pub fn try_new_sparse(to_external: Vec<ObjId>) -> Result<Self, PermutationError> {
        let n = to_external.len();
        if n == 0 {
            return Err(PermutationError::Empty);
        }
        let max = to_external.iter().copied().max().unwrap_or(0);
        let mut to_internal = vec![usize::MAX; max + 1];
        for (index, &value) in to_external.iter().enumerate() {
            if to_internal[value] != usize::MAX {
                return Err(PermutationError::Duplicate { index, value });
            }
            to_internal[value] = index;
        }
        Ok(Self {
            to_external,
            to_internal,
        })
    }

    /// Whether the external side is exactly a permutation of `0..len`
    /// (no holes, no appended ids). Dense permutations are what
    /// [`IdPermutation::try_new`] accepts and what snapshot format v2
    /// persists; a streaming catalog that has deleted or appended
    /// objects goes sparse and needs format v3.
    pub fn is_dense(&self) -> bool {
        self.to_internal.len() == self.to_external.len()
    }

    /// The largest external id mapped.
    pub fn max_external(&self) -> ObjId {
        self.to_internal.len() - 1
    }

    /// Whether `external` is mapped by this bijection.
    pub fn contains_external(&self, external: ObjId) -> bool {
        external < self.to_internal.len() && self.to_internal[external] != usize::MAX
    }

    /// A copy with `external` appended as the external id of the next
    /// internal id (`len()`). Rejects an already-mapped external id as
    /// [`PermutationError::Duplicate`].
    pub fn appended(&self, external: ObjId) -> Result<Self, PermutationError> {
        if self.contains_external(external) {
            return Err(PermutationError::Duplicate {
                index: self.to_internal[external],
                value: external,
            });
        }
        let mut ext = self.to_external.clone();
        ext.push(external);
        Self::try_new_sparse(ext)
    }

    /// A copy with internal id `internal` removed: later internal ids
    /// shift down by one (matching a compacting delete in the dataset
    /// and graph), the removed external id becomes unmapped. Returns
    /// `None` when removing the last entry (an empty bijection is not
    /// representable) or when `internal` is out of range.
    pub fn removed(&self, internal: ObjId) -> Option<Self> {
        if internal >= self.len() || self.len() == 1 {
            return None;
        }
        let mut ext = self.to_external.clone();
        ext.remove(internal);
        match Self::try_new_sparse(ext) {
            Ok(p) => Some(p),
            // Removing an entry cannot introduce a duplicate.
            Err(_) => unreachable!("removal preserves distinctness"),
        }
    }

    /// Number of ids mapped.
    pub fn len(&self) -> usize {
        self.to_external.len()
    }

    /// Whether the permutation maps no ids (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.to_external.is_empty()
    }

    /// Whether the permutation is the identity (callers normalize this
    /// case to "no permutation").
    pub fn is_identity(&self) -> bool {
        self.to_external.iter().enumerate().all(|(i, &e)| i == e)
    }

    /// External id of `internal`.
    #[inline]
    pub fn external(&self, internal: ObjId) -> ObjId {
        self.to_external[internal]
    }

    /// Internal id of `external`. For sparse bijections prefer
    /// [`IdPermutation::internal_checked`]: an unmapped external id
    /// panics here (out of range) or returns an unusable sentinel (a
    /// tombstoned hole).
    #[inline]
    pub fn internal(&self, external: ObjId) -> ObjId {
        self.to_internal[external]
    }

    /// Internal id of `external`, or `None` when the external id is not
    /// mapped (tombstoned or never assigned).
    #[inline]
    pub fn internal_checked(&self, external: ObjId) -> Option<ObjId> {
        let v = *self.to_internal.get(external)?;
        (v != usize::MAX).then_some(v)
    }

    /// The full internal-to-external side (index = internal id).
    pub fn to_external(&self) -> &[ObjId] {
        &self.to_external
    }

    /// The full external-to-internal side (index = external id).
    pub fn to_internal(&self) -> &[ObjId] {
        &self.to_internal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_directions_invert_each_other() {
        let p = IdPermutation::try_new(vec![2, 0, 3, 1]).expect("valid permutation");
        assert_eq!(p.len(), 4);
        assert!(!p.is_identity());
        for internal in 0..4 {
            assert_eq!(p.internal(p.external(internal)), internal);
        }
        assert_eq!(p.to_external(), &[2, 0, 3, 1]);
        assert_eq!(p.to_internal(), &[1, 3, 0, 2]);
    }

    #[test]
    fn identity_is_detected() {
        let p = IdPermutation::try_new(vec![0, 1, 2]).expect("valid permutation");
        assert!(p.is_identity());
        let q = IdPermutation::try_new(vec![0, 2, 1]).expect("valid permutation");
        assert!(!q.is_identity());
    }

    #[test]
    fn sparse_bijections_allow_holes_and_appended_ids() {
        // Externals {7, 0, 3}: a hole-y streaming id space.
        let p = IdPermutation::try_new_sparse(vec![7, 0, 3]).expect("distinct externals");
        assert!(!p.is_dense());
        assert_eq!(p.max_external(), 7);
        assert_eq!(p.external(0), 7);
        assert_eq!(p.internal_checked(7), Some(0));
        assert_eq!(p.internal_checked(3), Some(2));
        assert_eq!(p.internal_checked(1), None, "tombstoned hole");
        assert_eq!(p.internal_checked(99), None, "beyond the mapped range");
        assert!(p.contains_external(0) && !p.contains_external(2));
        // Dense inputs stay dense through the sparse constructor.
        let d = IdPermutation::try_new_sparse(vec![2, 0, 1]).expect("dense");
        assert!(d.is_dense());
        assert_eq!(
            IdPermutation::try_new_sparse(vec![5, 5]).unwrap_err(),
            PermutationError::Duplicate { index: 1, value: 5 }
        );
    }

    #[test]
    fn append_and_remove_maintain_the_bijection() {
        let p = IdPermutation::try_new(vec![1, 0, 2]).expect("valid");
        let q = p.appended(9).expect("fresh external id");
        assert_eq!(q.len(), 4);
        assert_eq!(q.external(3), 9);
        assert_eq!(q.internal_checked(9), Some(3));
        assert!(!q.is_dense());
        assert!(matches!(
            q.appended(9),
            Err(PermutationError::Duplicate { value: 9, .. })
        ));
        // Removing internal 0 (external 1) shifts later internals down.
        let r = q.removed(0).expect("mid removal");
        assert_eq!(r.to_external(), &[0, 2, 9]);
        assert_eq!(r.internal_checked(1), None, "external 1 tombstoned");
        assert_eq!(r.internal_checked(9), Some(2));
        assert!(q.removed(17).is_none(), "out of range");
        let last = IdPermutation::try_new(vec![0]).expect("singleton");
        assert!(last.removed(0).is_none(), "cannot empty the bijection");
    }

    #[test]
    fn invalid_vectors_are_rejected_with_typed_errors() {
        assert_eq!(
            IdPermutation::try_new(vec![]).unwrap_err(),
            PermutationError::Empty
        );
        assert_eq!(
            IdPermutation::try_new(vec![0, 3]).unwrap_err(),
            PermutationError::OutOfRange {
                index: 1,
                value: 3,
                len: 2
            }
        );
        assert_eq!(
            IdPermutation::try_new(vec![1, 1, 0]).unwrap_err(),
            PermutationError::Duplicate { index: 1, value: 1 }
        );
    }
}
