//! Internal-vs-external object numbering.
//!
//! ## The id contract
//!
//! Locality-aware renumbering (objects relabeled by M-tree leaf order so
//! CSR fills and adjacency scans touch near-contiguous rows) splits the
//! id space in two:
//!
//! * **internal ids** — positions in a (possibly renumbered) [`Dataset`]'s
//!   coordinate buffer. Everything that indexes arrays uses these: the
//!   M-tree, the self-join's edges, the CSR graphs, the runners' color /
//!   count / heap state.
//! * **external ids** — the numbering the caller handed the original
//!   dataset in. Everything that crosses the API boundary uses these:
//!   runner solution vectors, snapshot contents, serve-wire hashes.
//!
//! An [`IdPermutation`] is the bijection between the two. A dataset (and
//! the graphs derived from it) optionally carries one; `None` means the
//! two numberings coincide. Layers translate exactly once, at the
//! boundary — runners *emit* external ids and *internalize* external
//! inputs on entry, so no intermediate layer ever mixes the spaces.
//!
//! [`Dataset`]: crate::Dataset

use std::fmt;

use crate::ObjId;

/// The ways a claimed permutation vector can fail to be one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PermutationError {
    /// The vector was empty.
    Empty,
    /// `value` at `index` is outside `0..len`.
    OutOfRange {
        /// Position of the offending entry.
        index: usize,
        /// The offending value.
        value: ObjId,
        /// Length of the vector (the exclusive value bound).
        len: usize,
    },
    /// `value` appears more than once (second occurrence at `index`).
    Duplicate {
        /// Position of the second occurrence.
        index: usize,
        /// The repeated value.
        value: ObjId,
    },
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => f.write_str("permutation must map at least one id"),
            Self::OutOfRange { index, value, len } => {
                write!(f, "permutation entry {index} is {value}, outside 0..{len}")
            }
            Self::Duplicate { index, value } => {
                write!(f, "permutation repeats id {value} (at entry {index})")
            }
        }
    }
}

impl std::error::Error for PermutationError {}

/// A bijection between internal ids (dataset/graph array positions) and
/// external ids (the caller's original numbering). See the
/// [module docs](self) for who uses which side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdPermutation {
    /// `to_external[internal] == external`.
    to_external: Vec<ObjId>,
    /// `to_internal[external] == internal` — the inverse, precomputed so
    /// both directions are O(1).
    to_internal: Vec<ObjId>,
}

impl IdPermutation {
    /// Builds the bijection from its internal-to-external side,
    /// validating that the vector is a permutation of `0..len`.
    pub fn try_new(to_external: Vec<ObjId>) -> Result<Self, PermutationError> {
        let n = to_external.len();
        if n == 0 {
            return Err(PermutationError::Empty);
        }
        let mut to_internal = vec![usize::MAX; n];
        for (index, &value) in to_external.iter().enumerate() {
            if value >= n {
                return Err(PermutationError::OutOfRange {
                    index,
                    value,
                    len: n,
                });
            }
            if to_internal[value] != usize::MAX {
                return Err(PermutationError::Duplicate { index, value });
            }
            to_internal[value] = index;
        }
        Ok(Self {
            to_external,
            to_internal,
        })
    }

    /// Number of ids mapped.
    pub fn len(&self) -> usize {
        self.to_external.len()
    }

    /// Whether the permutation maps no ids (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.to_external.is_empty()
    }

    /// Whether the permutation is the identity (callers normalize this
    /// case to "no permutation").
    pub fn is_identity(&self) -> bool {
        self.to_external.iter().enumerate().all(|(i, &e)| i == e)
    }

    /// External id of `internal`.
    #[inline]
    pub fn external(&self, internal: ObjId) -> ObjId {
        self.to_external[internal]
    }

    /// Internal id of `external`.
    #[inline]
    pub fn internal(&self, external: ObjId) -> ObjId {
        self.to_internal[external]
    }

    /// The full internal-to-external side (index = internal id).
    pub fn to_external(&self) -> &[ObjId] {
        &self.to_external
    }

    /// The full external-to-internal side (index = external id).
    pub fn to_internal(&self) -> &[ObjId] {
        &self.to_internal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_directions_invert_each_other() {
        let p = IdPermutation::try_new(vec![2, 0, 3, 1]).expect("valid permutation");
        assert_eq!(p.len(), 4);
        assert!(!p.is_identity());
        for internal in 0..4 {
            assert_eq!(p.internal(p.external(internal)), internal);
        }
        assert_eq!(p.to_external(), &[2, 0, 3, 1]);
        assert_eq!(p.to_internal(), &[1, 3, 0, 2]);
    }

    #[test]
    fn identity_is_detected() {
        let p = IdPermutation::try_new(vec![0, 1, 2]).expect("valid permutation");
        assert!(p.is_identity());
        let q = IdPermutation::try_new(vec![0, 2, 1]).expect("valid permutation");
        assert!(!q.is_identity());
    }

    #[test]
    fn invalid_vectors_are_rejected_with_typed_errors() {
        assert_eq!(
            IdPermutation::try_new(vec![]).unwrap_err(),
            PermutationError::Empty
        );
        assert_eq!(
            IdPermutation::try_new(vec![0, 3]).unwrap_err(),
            PermutationError::OutOfRange {
                index: 1,
                value: 3,
                len: 2
            }
        );
        assert_eq!(
            IdPermutation::try_new(vec![1, 1, 0]).unwrap_err(),
            PermutationError::Duplicate { index: 1, value: 1 }
        );
    }
}
