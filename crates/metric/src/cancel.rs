//! Cooperative cancellation for long-running builds and selections.
//!
//! Building the neighbourhood graph of a large workload (the dual-tree
//! range self-join plus sharded CSR assembly) can take hundreds of
//! milliseconds to minutes, and a greedy selection sweep over a dense
//! graph is not instant either; a serving process must be able to
//! abandon either cleanly — on shutdown, on a request deadline, on
//! operator interrupt — without poisoning shared state. [`CancelToken`]
//! is the cooperative primitive the work loops poll: the graph builders
//! (`from_mtree_checked`) and every `*_checked` selection runner in
//! `disc-core` take one, which is how the `disc serve` worker pool
//! enforces per-request deadlines.
//!
//! * cancellation is **explicit** ([`CancelToken::cancel`]) or
//!   **deadline-driven** ([`CancelToken::with_deadline`]);
//! * the deterministic [`CancelToken::with_check_budget`] constructor
//!   trips after a fixed number of checkpoints — the fault-injection
//!   hook tests use to cancel mid-build reproducibly;
//! * a checkpoint is one relaxed atomic load (plus a clock read only
//!   when a deadline is armed), cheap enough to poll per work item;
//! * cancelled work returns [`Cancelled`] as a typed error. Counters
//!   stay exact — callers charge the work actually performed before
//!   surfacing the error — and no partially built output escapes.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed error returned by cancellable operations that were abandoned at
/// a checkpoint before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("operation cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Wall-clock deadline; checked lazily at checkpoints.
    deadline: Option<Instant>,
    /// Remaining checkpoint budget; `u64::MAX` means unlimited. Each
    /// [`CancelToken::checkpoint`] call consumes one unit, so a token
    /// built with `with_check_budget(k)` trips at the `k`-th checkpoint
    /// deterministically regardless of wall-clock speed.
    budget: Option<AtomicU64>,
}

/// A cloneable, thread-safe cancellation handle.
///
/// Clones share state: cancelling any clone cancels them all. Work loops
/// call [`CancelToken::checkpoint`] at item granularity and propagate the
/// resulting [`Cancelled`] error outward.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A token that cancels once `timeout` has elapsed (checked lazily at
    /// checkpoints; work never runs longer than one work item past the
    /// deadline).
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::build(Instant::now().checked_add(timeout), None)
    }

    /// A token that cancels at the `checks`-th [`CancelToken::checkpoint`]
    /// call. Deterministic — the test hook for cancelling mid-build at a
    /// reproducible point independent of machine speed.
    pub fn with_check_budget(checks: u64) -> Self {
        Self::build(None, Some(checks))
    }

    fn build(deadline: Option<Instant>, budget: Option<u64>) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                budget: budget.map(AtomicU64::new),
            }),
        }
    }

    /// Requests cancellation; every clone observes it at its next
    /// checkpoint.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    /// Does not consume check budget.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Polls the token from inside a work loop: consumes one unit of
    /// check budget and returns `Err(Cancelled)` if the token is
    /// cancelled, past its deadline, or out of budget.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        if let Some(budget) = &self.inner.budget {
            // Saturating decrement: stay at zero once exhausted.
            let prev = budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .unwrap_or(0);
            if prev <= 1 {
                self.inner.cancelled.store(true, Ordering::Relaxed);
            }
        }
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.checkpoint(), Ok(()));
    }

    #[test]
    fn explicit_cancel_is_seen_by_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn zero_deadline_cancels_immediately() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn long_deadline_stays_live() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(t.checkpoint(), Ok(()));
    }

    #[test]
    fn check_budget_trips_at_exact_count() {
        let t = CancelToken::with_check_budget(3);
        assert_eq!(t.checkpoint(), Ok(()));
        assert_eq!(t.checkpoint(), Ok(()));
        assert_eq!(t.checkpoint(), Err(Cancelled));
        // Stays cancelled; no underflow.
        assert_eq!(t.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn zero_budget_trips_on_first_check() {
        let t = CancelToken::with_check_budget(0);
        assert_eq!(t.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn cancelled_error_displays() {
        let msg = Cancelled.to_string();
        assert!(msg.contains("cancelled"));
    }
}
