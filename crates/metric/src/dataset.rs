//! Datasets: an immutable point collection plus the metric it is compared
//! under.
//!
//! The DisC heuristics, the M-tree and the baselines all take a `&Dataset`
//! and address objects by [`ObjId`]. Keeping the metric inside the dataset
//! mirrors the paper's setup, where the metric is a property of the workload
//! (Euclidean for spatial data, Hamming for the camera catalogue).
//!
//! ## Storage layout
//!
//! Coordinates live in one flat, contiguous `Vec<f64>` in row-major
//! order (`coords[id * dim .. (id + 1) * dim]` is object `id`). Every
//! distance computation on the query hot path reads two slices of this
//! buffer directly — no per-point heap allocation, no pointer chase —
//! and derived datasets ([`Dataset::restrict`], [`Dataset::normalized`])
//! are single-allocation copies of the relevant rows.

use std::fmt;
use std::sync::Arc;

use crate::{
    distance::Metric,
    ids::IdPermutation,
    point::{Point, PointView},
    ObjId,
};

/// Typed construction error for [`Dataset`]: the ways an input point
/// collection can be rejected. Construction is fail-closed — a dataset
/// that exists is guaranteed non-empty, rectangular and entirely finite,
/// so downstream distance computations can never observe NaN/±inf
/// garbage.
#[derive(Clone, Debug, PartialEq)]
pub enum DatasetError {
    /// The point collection (or flat buffer) was empty.
    Empty,
    /// `dim` was zero.
    ZeroDim,
    /// Points disagree on dimensionality: object `id` has `found`
    /// dimensions where the first point had `expected`.
    MixedDim {
        /// Offending object id.
        id: ObjId,
        /// Dimensionality of object 0.
        expected: usize,
        /// Dimensionality of the offending object.
        found: usize,
    },
    /// The flat buffer's length is not a multiple of `dim`.
    RaggedBuffer {
        /// Buffer length supplied.
        len: usize,
        /// Row width expected.
        dim: usize,
    },
    /// A coordinate is NaN or ±inf.
    NonFinite {
        /// Object holding the offending coordinate.
        id: ObjId,
        /// Dimension index of the offending coordinate.
        dim: usize,
        /// The offending value.
        value: f64,
    },
    /// A streaming insert reused an external id that is already mapped
    /// (live, not tombstoned).
    ExternalIdTaken {
        /// The colliding external id.
        external: ObjId,
    },
    /// A streaming delete addressed an internal id outside `0..len`.
    OutOfRange {
        /// The offending internal id.
        id: ObjId,
        /// Number of objects currently held.
        len: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => f.write_str("dataset must contain at least one point"),
            Self::ZeroDim => f.write_str("a point needs at least one dimension"),
            Self::MixedDim {
                id,
                expected,
                found,
            } => write!(
                f,
                "all points must share dimensionality: point {id} has {found} dims, expected {expected}"
            ),
            Self::RaggedBuffer { len, dim } => write!(
                f,
                "coordinate buffer must hold whole {dim}-wide rows, got {len} values"
            ),
            Self::NonFinite { id, dim, value } => write!(
                f,
                "point coordinates must be finite: point {id} dim {dim} is {value}"
            ),
            Self::ExternalIdTaken { external } => {
                write!(f, "external id {external} is already mapped to a live point")
            }
            Self::OutOfRange { id, len } => {
                write!(f, "internal id {id} is outside 0..{len}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A named collection of points under a fixed metric.
///
/// ## Id numbering
///
/// Object `id` is a position in the coordinate buffer — an *internal*
/// id. A dataset renumbered for locality ([`Dataset::renumbered`])
/// additionally carries the [`IdPermutation`] back to the caller's
/// original (*external*) numbering; `permutation() == None` means the
/// two coincide. See [`crate::ids`] for the full contract.
#[derive(Clone, Debug)]
pub struct Dataset {
    name: String,
    metric: Metric,
    dim: usize,
    /// Row-major coordinate buffer, `len() * dim` values.
    coords: Vec<f64>,
    /// Internal↔external id bijection; `None` = identity.
    perm: Option<Arc<IdPermutation>>,
}

/// Rejects NaN/±inf anywhere in a row-major buffer, reporting the
/// offending object and dimension.
fn check_finite(coords: &[f64], dim: usize) -> Result<(), DatasetError> {
    if let Some((i, &value)) = coords.iter().enumerate().find(|(_, c)| !c.is_finite()) {
        return Err(DatasetError::NonFinite {
            id: i / dim,
            dim: i % dim,
            value,
        });
    }
    Ok(())
}

impl Dataset {
    /// Creates a dataset from owned points (flattening them into the
    /// contiguous buffer).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, if the points disagree on
    /// dimensionality, or if any coordinate is non-finite. Use
    /// [`Dataset::try_new`] to reject bad input with a typed error
    /// instead.
    pub fn new(name: impl Into<String>, metric: Metric, points: Vec<Point>) -> Self {
        match Self::try_new(name, metric, points) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`Dataset::new`]: rejects empty
    /// collections, mixed dimensionality and non-finite coordinates with
    /// a typed [`DatasetError`].
    pub fn try_new(
        name: impl Into<String>,
        metric: Metric,
        points: Vec<Point>,
    ) -> Result<Self, DatasetError> {
        let Some(first) = points.first() else {
            return Err(DatasetError::Empty);
        };
        let dim = first.dim();
        if dim == 0 {
            return Err(DatasetError::ZeroDim);
        }
        for (id, p) in points.iter().enumerate() {
            if p.dim() != dim {
                return Err(DatasetError::MixedDim {
                    id,
                    expected: dim,
                    found: p.dim(),
                });
            }
        }
        let mut coords = Vec::with_capacity(points.len() * dim);
        for p in &points {
            coords.extend_from_slice(p.coords());
        }
        check_finite(&coords, dim)?;
        Ok(Self {
            name: name.into(),
            metric,
            dim,
            coords,
            perm: None,
        })
    }

    /// Creates a dataset directly from a flat row-major coordinate
    /// buffer of `dim`-wide rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero, `coords` is empty, `coords.len()` is not
    /// a multiple of `dim`, or any coordinate is non-finite. Use
    /// [`Dataset::try_from_flat`] to reject bad input with a typed error
    /// instead.
    pub fn from_flat(
        name: impl Into<String>,
        metric: Metric,
        dim: usize,
        coords: Vec<f64>,
    ) -> Self {
        match Self::try_from_flat(name, metric, dim, coords) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`Dataset::from_flat`]: rejects zero
    /// `dim`, empty or ragged buffers, and non-finite coordinates with a
    /// typed [`DatasetError`].
    pub fn try_from_flat(
        name: impl Into<String>,
        metric: Metric,
        dim: usize,
        coords: Vec<f64>,
    ) -> Result<Self, DatasetError> {
        if dim == 0 {
            return Err(DatasetError::ZeroDim);
        }
        if coords.is_empty() {
            return Err(DatasetError::Empty);
        }
        if !coords.len().is_multiple_of(dim) {
            return Err(DatasetError::RaggedBuffer {
                len: coords.len(),
                dim,
            });
        }
        check_finite(&coords, dim)?;
        Ok(Self {
            name: name.into(),
            metric,
            dim,
            coords,
            perm: None,
        })
    }

    /// Dataset name (used in experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metric objects are compared under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the dataset is empty (never true by construction; present for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality of the space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinate row of object `id` — the raw hot-path accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn row(&self, id: ObjId) -> &[f64] {
        &self.coords[id * self.dim..(id + 1) * self.dim]
    }

    /// The point with identifier `id`, as a borrowed view into the flat
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn point(&self, id: ObjId) -> PointView<'_> {
        PointView::new(self.row(id))
    }

    /// The whole flat row-major coordinate buffer.
    pub fn flat_coords(&self) -> &[f64] {
        &self.coords
    }

    /// Iterator over all points as views (replacement for the old
    /// `&[Point]` accessor; materialise with `.map(|v| v.to_point())` if
    /// owned points are needed).
    pub fn iter_points(&self) -> impl Iterator<Item = PointView<'_>> + '_ {
        (0..self.len()).map(move |id| self.point(id))
    }

    /// Distance between objects `a` and `b`.
    #[inline]
    pub fn dist(&self, a: ObjId, b: ObjId) -> f64 {
        self.metric.dist_coords(self.row(a), self.row(b))
    }

    /// Distance between object `a` and an arbitrary point.
    #[inline]
    pub fn dist_to(&self, a: ObjId, p: &Point) -> f64 {
        self.metric.dist_coords(self.row(a), p.coords())
    }

    /// Distance between object `a` and a raw coordinate slice (hot-path
    /// variant of [`Dataset::dist_to`]).
    #[inline]
    pub fn dist_to_coords(&self, a: ObjId, q: &[f64]) -> f64 {
        self.metric.dist_coords(self.row(a), q)
    }

    /// Iterator over all object ids.
    pub fn ids(&self) -> impl Iterator<Item = ObjId> + '_ {
        0..self.len()
    }

    /// Rescales every coordinate into `[0, 1]` per dimension (min-max
    /// normalisation), as the paper does for the Cities dataset. Dimensions
    /// with zero spread map to 0.
    pub fn normalized(&self) -> Self {
        let dim = self.dim;
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for row in self.coords.chunks_exact(dim) {
            for (d, &c) in row.iter().enumerate() {
                lo[d] = lo[d].min(c);
                hi[d] = hi[d].max(c);
            }
        }
        let span: Vec<f64> = lo.iter().zip(&hi).map(|(&l, &h)| h - l).collect();
        // One pass over the flat buffer, one output allocation.
        let coords = self
            .coords
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = i % dim;
                if span[d] > 0.0 {
                    (c - lo[d]) / span[d]
                } else {
                    0.0
                }
            })
            .collect();
        Self {
            name: self.name.clone(),
            metric: self.metric,
            dim,
            coords,
            // Rescaling keeps the numbering, so the bijection survives.
            perm: self.perm.clone(),
        }
    }

    /// A sub-dataset containing exactly the given objects, preserving
    /// their order: new id `i` is old id `ids[i]`, so the argument slice
    /// *is* the new-to-old mapping (earlier revisions returned a clone of
    /// it alongside).
    ///
    /// Local zooming (Section 3 of the paper) operates on the neighbourhood
    /// `N_r(p_i)` of a single object; this is the primitive it uses. The
    /// rows are copied into one fresh contiguous buffer in a single
    /// allocation.
    pub fn restrict(&self, ids: &[ObjId]) -> Self {
        assert!(!ids.is_empty(), "restriction must keep at least one object");
        let mut coords = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            coords.extend_from_slice(self.row(id));
        }
        Self {
            name: format!("{}[{} objects]", self.name, ids.len()),
            metric: self.metric,
            dim: self.dim,
            coords,
            // The restriction defines a fresh id space; the caller keeps
            // the `ids` slice as its own new-to-old mapping.
            perm: None,
        }
    }

    // ------------------------------------------------------------------
    // Internal/external id numbering (see `crate::ids`)
    // ------------------------------------------------------------------

    /// The bijection from this dataset's (internal) ids back to the
    /// caller's original (external) numbering; `None` when they
    /// coincide.
    pub fn permutation(&self) -> Option<&Arc<IdPermutation>> {
        self.perm.as_ref()
    }

    /// External id of internal object `id` (identity without a
    /// permutation).
    #[inline]
    pub fn external_id(&self, id: ObjId) -> ObjId {
        match &self.perm {
            Some(p) => p.external(id),
            None => id,
        }
    }

    /// Internal id of `external` (identity without a permutation).
    #[inline]
    pub fn internal_id(&self, external: ObjId) -> ObjId {
        match &self.perm {
            Some(p) => p.internal(external),
            None => external,
        }
    }

    /// A dataset holding the same points relabeled for locality: new id
    /// `i` is this dataset's id `order[i]`. The returned dataset's
    /// permutation composes with any permutation already present, so
    /// external ids always refer to the numbering of the *original*
    /// (never-renumbered) dataset; an identity composition normalizes to
    /// `None`.
    ///
    /// # Panics
    ///
    /// Panics when `order` is not a permutation of `0..len()`.
    pub fn renumbered(&self, order: &[ObjId]) -> Self {
        assert_eq!(
            order.len(),
            self.len(),
            "renumbering order must cover every object"
        );
        let mut coords = Vec::with_capacity(self.coords.len());
        let to_external: Vec<ObjId> = order
            .iter()
            .map(|&old| {
                coords.extend_from_slice(self.row(old));
                self.external_id(old)
            })
            .collect();
        let perm = match IdPermutation::try_new(to_external) {
            Ok(p) => (!p.is_identity()).then(|| Arc::new(p)),
            Err(e) => panic!("renumbering order is not a permutation: {e}"),
        };
        Self {
            name: self.name.clone(),
            metric: self.metric,
            dim: self.dim,
            coords,
            perm,
        }
    }

    // ------------------------------------------------------------------
    // Streaming mutation (insert/delete with external-id tracking)
    // ------------------------------------------------------------------

    /// Appends one point with a caller-assigned external id, returning
    /// its internal id (`len() - 1` after the push). The permutation
    /// stays normalized: appending external id `len()` to an identity
    /// numbering keeps `permutation() == None`, anything else
    /// materializes the (possibly sparse) bijection.
    ///
    /// Rejects wrong-width rows, non-finite coordinates, and an
    /// external id that is already mapped (reported as [`DatasetError`]
    /// so streaming callers keep one error family per layer).
    pub fn push_point_external(
        &mut self,
        point: &[f64],
        external: ObjId,
    ) -> Result<ObjId, DatasetError> {
        if point.len() != self.dim {
            return Err(DatasetError::MixedDim {
                id: self.len(),
                expected: self.dim,
                found: point.len(),
            });
        }
        if let Some((d, &value)) = point.iter().enumerate().find(|(_, c)| !c.is_finite()) {
            return Err(DatasetError::NonFinite {
                id: self.len(),
                dim: d,
                value,
            });
        }
        let n = self.len();
        let taken = match &self.perm {
            Some(p) => p.contains_external(external),
            None => external < n,
        };
        if taken {
            return Err(DatasetError::ExternalIdTaken { external });
        }
        let next = match (&self.perm, external == n) {
            (None, true) => None,
            (None, false) => {
                let mut ext: Vec<ObjId> = (0..n).collect();
                ext.push(external);
                match IdPermutation::try_new_sparse(ext) {
                    Ok(p) => Some(Arc::new(p)),
                    Err(_) => unreachable!("identity + fresh external id has no duplicates"),
                }
            }
            (Some(p), _) => match p.appended(external) {
                Ok(p) => Some(Arc::new(p)),
                Err(_) => unreachable!("collision was checked above"),
            },
        };
        self.coords.extend_from_slice(point);
        self.perm = next;
        Ok(n)
    }

    /// Removes the point at internal id `internal`, compacting the
    /// buffer: internal ids above it shift down by one, matching
    /// `StratifiedDiskGraph::remove_object`'s renumbering. The removed
    /// external id becomes unmapped (a tombstone in the streaming id
    /// space). Returns the removed external id.
    ///
    /// Rejects an out-of-range id and the removal of the last remaining
    /// point (a dataset is never empty).
    pub fn remove_point(&mut self, internal: ObjId) -> Result<ObjId, DatasetError> {
        if internal >= self.len() {
            return Err(DatasetError::OutOfRange {
                id: internal,
                len: self.len(),
            });
        }
        if self.len() == 1 {
            return Err(DatasetError::Empty);
        }
        let external = self.external_id(internal);
        let next = match &self.perm {
            Some(p) => match p.removed(internal) {
                Some(q) => (!q.is_identity()).then(|| Arc::new(q)),
                None => unreachable!("length and range were checked above"),
            },
            // Identity numbering: removing the last internal id keeps
            // the identity; removing any other leaves a hole.
            None if internal == self.len() - 1 => None,
            None => {
                let ext: Vec<ObjId> = (0..self.len()).filter(|&i| i != internal).collect();
                match IdPermutation::try_new_sparse(ext) {
                    Ok(p) => Some(Arc::new(p)),
                    Err(_) => unreachable!("identity minus one entry has no duplicates"),
                }
            }
        };
        self.coords
            .drain(internal * self.dim..(internal + 1) * self.dim);
        self.perm = next;
        Ok(external)
    }

    /// Replaces the id permutation wholesale — the snapshot-load seam,
    /// where the bijection comes from disk rather than from
    /// [`Dataset::renumbered`]. An identity permutation normalizes to
    /// `None`.
    ///
    /// # Panics
    ///
    /// Panics when the permutation's length disagrees with the dataset's.
    pub fn with_permutation(mut self, perm: Option<Arc<IdPermutation>>) -> Self {
        if let Some(p) = &perm {
            assert_eq!(p.len(), self.len(), "permutation must cover every object");
        }
        self.perm = perm.filter(|p| !p.is_identity());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Dataset {
        Dataset::new(
            "square",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),
                Point::new2(1.0, 0.0),
                Point::new2(0.0, 1.0),
                Point::new2(1.0, 1.0),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let d = unit_square();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.name(), "square");
        assert_eq!(d.metric(), Metric::Euclidean);
        assert!(!d.is_empty());
        assert_eq!(d.ids().count(), 4);
    }

    #[test]
    fn storage_is_flat_and_row_major() {
        let d = unit_square();
        assert_eq!(d.flat_coords(), &[0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(d.row(2), &[0.0, 1.0]);
        assert_eq!(d.iter_points().count(), 4);
    }

    #[test]
    fn from_flat_matches_point_construction() {
        let a = unit_square();
        let b = Dataset::from_flat(
            "square",
            Metric::Euclidean,
            2,
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
        );
        for id in a.ids() {
            assert_eq!(a.point(id), b.point(id));
        }
    }

    #[test]
    #[should_panic(expected = "whole")]
    fn from_flat_rejects_ragged_buffers() {
        let _ = Dataset::from_flat("bad", Metric::Euclidean, 2, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn pairwise_distance() {
        let d = unit_square();
        assert!((d.dist(0, 3) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(d.dist(1, 1), 0.0);
    }

    #[test]
    fn dist_to_free_point() {
        let d = unit_square();
        let q = Point::new2(0.0, 0.5);
        assert!((d.dist_to(0, &q) - 0.5).abs() < 1e-12);
        assert!((d.dist_to_coords(0, q.coords()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_maps_to_unit_range() {
        let d = Dataset::new(
            "raw",
            Metric::Euclidean,
            vec![
                Point::new2(10.0, -5.0),
                Point::new2(20.0, 5.0),
                Point::new2(15.0, 0.0),
            ],
        )
        .normalized();
        assert_eq!(d.point(0).coords(), &[0.0, 0.0]);
        assert_eq!(d.point(1).coords(), &[1.0, 1.0]);
        assert_eq!(d.point(2).coords(), &[0.5, 0.5]);
    }

    #[test]
    fn normalization_handles_constant_dimension() {
        let d = Dataset::new(
            "flat",
            Metric::Euclidean,
            vec![Point::new2(3.0, 1.0), Point::new2(3.0, 2.0)],
        )
        .normalized();
        assert_eq!(d.point(0).coord(0), 0.0);
        assert_eq!(d.point(1).coord(0), 0.0);
    }

    #[test]
    fn restriction_preserves_points_in_argument_order() {
        let d = unit_square();
        let sub = d.restrict(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), d.point(3));
        assert_eq!(sub.point(1), d.point(1));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty_dataset() {
        let _ = Dataset::new("empty", Metric::Euclidean, vec![]);
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn rejects_mixed_dimensions() {
        let _ = Dataset::new(
            "mixed",
            Metric::Euclidean,
            vec![Point::new2(0.0, 0.0), Point::new(vec![1.0, 2.0, 3.0])],
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_rejects_non_finite_coordinates() {
        let _ = Dataset::new(
            "nan",
            Metric::Euclidean,
            vec![Point::new2(0.0, 0.0), Point::new2(f64::NAN, 1.0)],
        );
    }

    #[test]
    fn try_from_flat_reports_the_offending_coordinate() {
        // (`Point::new` already panics on non-finite input, so the
        // point-based constructor can only hit this via the flat path.)
        let err = Dataset::try_from_flat(
            "inf",
            Metric::Euclidean,
            2,
            vec![0.0, 0.0, 1.0, f64::INFINITY],
        )
        .unwrap_err();
        assert_eq!(
            err,
            DatasetError::NonFinite {
                id: 1,
                dim: 1,
                value: f64::INFINITY
            }
        );
    }

    #[test]
    fn try_from_flat_rejects_nan_neg_inf_and_ragged() {
        let nan = Dataset::try_from_flat("x", Metric::Euclidean, 2, vec![0.0, f64::NAN]);
        assert!(matches!(
            nan.unwrap_err(),
            DatasetError::NonFinite { id: 0, dim: 1, .. }
        ));
        let ninf = Dataset::try_from_flat("x", Metric::Euclidean, 1, vec![f64::NEG_INFINITY, 2.0]);
        assert!(matches!(
            ninf.unwrap_err(),
            DatasetError::NonFinite { id: 0, dim: 0, .. }
        ));
        let ragged = Dataset::try_from_flat("x", Metric::Euclidean, 2, vec![0.0, 1.0, 2.0]);
        assert_eq!(
            ragged.unwrap_err(),
            DatasetError::RaggedBuffer { len: 3, dim: 2 }
        );
        assert_eq!(
            Dataset::try_from_flat("x", Metric::Euclidean, 0, vec![]).unwrap_err(),
            DatasetError::ZeroDim
        );
        assert_eq!(
            Dataset::try_from_flat("x", Metric::Euclidean, 2, vec![]).unwrap_err(),
            DatasetError::Empty
        );
        assert_eq!(
            Dataset::try_new("x", Metric::Euclidean, vec![]).unwrap_err(),
            DatasetError::Empty
        );
    }

    #[test]
    fn renumbering_moves_rows_and_tracks_external_ids() {
        let d = unit_square();
        assert!(d.permutation().is_none());
        let r = d.renumbered(&[2, 0, 3, 1]);
        for (new, &old) in [2usize, 0, 3, 1].iter().enumerate() {
            assert_eq!(r.row(new), d.row(old));
            assert_eq!(r.external_id(new), old);
            assert_eq!(r.internal_id(old), new);
        }
        // Renumbering a renumbered dataset composes back to the original
        // numbering — here, back to the identity (perm normalizes away).
        let back = r.renumbered(&[1, 3, 0, 2]);
        assert!(back.permutation().is_none());
        for id in back.ids() {
            assert_eq!(back.row(id), d.row(id));
        }
    }

    #[test]
    fn identity_renumbering_normalizes_to_no_permutation() {
        let d = unit_square();
        let r = d.renumbered(&[0, 1, 2, 3]);
        assert!(r.permutation().is_none());
        assert_eq!(r.flat_coords(), d.flat_coords());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn renumbering_rejects_non_permutations() {
        let _ = unit_square().renumbered(&[0, 0, 1, 2]);
    }

    #[test]
    fn push_point_tracks_external_ids_and_normalizes_identity() {
        let mut d = unit_square();
        // Appending the "next" external id keeps the identity numbering.
        let internal = d.push_point_external(&[0.5, 0.5], 4).expect("fresh id");
        assert_eq!(internal, 4);
        assert!(d.permutation().is_none());
        assert_eq!(d.row(4), &[0.5, 0.5]);
        // A gap in the external numbering materializes a sparse bijection.
        let internal = d.push_point_external(&[2.0, 2.0], 9).expect("fresh id");
        assert_eq!(internal, 5);
        let p = d.permutation().expect("sparse bijection");
        assert!(!p.is_dense());
        assert_eq!(d.external_id(5), 9);
        assert_eq!(d.internal_id(9), 5);
        // Collisions and malformed rows are typed rejections.
        assert_eq!(
            d.push_point_external(&[0.0, 0.0], 9).unwrap_err(),
            DatasetError::ExternalIdTaken { external: 9 }
        );
        assert!(matches!(
            d.push_point_external(&[1.0], 10).unwrap_err(),
            DatasetError::MixedDim { .. }
        ));
        assert!(matches!(
            d.push_point_external(&[f64::NAN, 0.0], 10).unwrap_err(),
            DatasetError::NonFinite { .. }
        ));
    }

    #[test]
    fn remove_point_compacts_and_tombstones() {
        let mut d = unit_square();
        // Removing the last internal id of an identity numbering keeps it.
        assert_eq!(d.remove_point(3).expect("in range"), 3);
        assert!(d.permutation().is_none());
        assert_eq!(d.len(), 3);
        // A mid removal shifts later rows down and tombstones external 1.
        assert_eq!(d.remove_point(1).expect("in range"), 1);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(1), &[0.0, 1.0], "old internal 2 shifted down");
        assert_eq!(d.external_id(1), 2);
        let p = d.permutation().expect("sparse bijection");
        assert_eq!(p.internal_checked(1), None, "external 1 tombstoned");
        assert_eq!(
            d.remove_point(5).unwrap_err(),
            DatasetError::OutOfRange { id: 5, len: 2 }
        );
        assert_eq!(d.remove_point(0).expect("in range"), 0);
        assert_eq!(
            d.remove_point(0).unwrap_err(),
            DatasetError::Empty,
            "cannot empty a dataset"
        );
    }

    #[test]
    fn push_then_remove_round_trips_through_renumbered_datasets() {
        let d = unit_square().renumbered(&[2, 0, 3, 1]);
        let mut d = d;
        let internal = d.push_point_external(&[5.0, 5.0], 4).expect("fresh id");
        assert_eq!(d.external_id(internal), 4);
        assert_eq!(d.internal_id(4), internal);
        let removed = d.remove_point(0).expect("in range");
        assert_eq!(removed, 2, "internal 0 was external 2 after renumbering");
        assert_eq!(d.internal_id(4), 3, "later internals shifted down");
        assert_eq!(d.external_id(0), 0);
    }

    #[test]
    fn try_constructors_accept_good_input() {
        let d = Dataset::try_from_flat("ok", Metric::Manhattan, 2, vec![0.0, 1.0, 2.0, 3.0])
            .expect("valid buffer");
        assert_eq!(d.len(), 2);
        assert_eq!(d.metric(), Metric::Manhattan);
    }
}
