//! Datasets: an immutable point collection plus the metric it is compared
//! under.
//!
//! The DisC heuristics, the M-tree and the baselines all take a `&Dataset`
//! and address objects by [`ObjId`]. Keeping the metric inside the dataset
//! mirrors the paper's setup, where the metric is a property of the workload
//! (Euclidean for spatial data, Hamming for the camera catalogue).

use crate::{distance::Metric, point::Point, ObjId};

/// A named collection of points under a fixed metric.
#[derive(Clone, Debug)]
pub struct Dataset {
    name: String,
    metric: Metric,
    points: Vec<Point>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or if the points disagree on
    /// dimensionality.
    pub fn new(name: impl Into<String>, metric: Metric, points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "dataset must contain at least one point");
        let dim = points[0].dim();
        assert!(
            points.iter().all(|p| p.dim() == dim),
            "all points must share dimensionality"
        );
        Self {
            name: name.into(),
            metric,
            points,
        }
    }

    /// Dataset name (used in experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metric objects are compared under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty (never true by construction; present for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality of the space.
    pub fn dim(&self) -> usize {
        self.points[0].dim()
    }

    /// The point with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn point(&self, id: ObjId) -> &Point {
        &self.points[id]
    }

    /// All points, indexable by [`ObjId`].
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Distance between objects `a` and `b`.
    #[inline]
    pub fn dist(&self, a: ObjId, b: ObjId) -> f64 {
        self.metric.dist(&self.points[a], &self.points[b])
    }

    /// Distance between object `a` and an arbitrary point.
    #[inline]
    pub fn dist_to(&self, a: ObjId, p: &Point) -> f64 {
        self.metric.dist(&self.points[a], p)
    }

    /// Iterator over all object ids.
    pub fn ids(&self) -> impl Iterator<Item = ObjId> + '_ {
        0..self.points.len()
    }

    /// Rescales every coordinate into `[0, 1]` per dimension (min-max
    /// normalisation), as the paper does for the Cities dataset. Dimensions
    /// with zero spread map to 0.
    pub fn normalized(&self) -> Self {
        let dim = self.dim();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in &self.points {
            for (d, &c) in p.coords().iter().enumerate() {
                lo[d] = lo[d].min(c);
                hi[d] = hi[d].max(c);
            }
        }
        let points = self
            .points
            .iter()
            .map(|p| {
                Point::new(
                    p.coords()
                        .iter()
                        .enumerate()
                        .map(|(d, &c)| {
                            let span = hi[d] - lo[d];
                            if span > 0.0 {
                                (c - lo[d]) / span
                            } else {
                                0.0
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        Self {
            name: self.name.clone(),
            metric: self.metric,
            points,
        }
    }

    /// A sub-dataset containing exactly the given objects, preserving their
    /// order. Returns the mapping from new ids to original ids alongside.
    ///
    /// Local zooming (Section 3 of the paper) operates on the neighbourhood
    /// `N_r(p_i)` of a single object; this is the primitive it uses.
    pub fn restrict(&self, ids: &[ObjId]) -> (Self, Vec<ObjId>) {
        assert!(!ids.is_empty(), "restriction must keep at least one object");
        let points = ids.iter().map(|&i| self.points[i].clone()).collect();
        (
            Self {
                name: format!("{}[{} objects]", self.name, ids.len()),
                metric: self.metric,
                points,
            },
            ids.to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Dataset {
        Dataset::new(
            "square",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),
                Point::new2(1.0, 0.0),
                Point::new2(0.0, 1.0),
                Point::new2(1.0, 1.0),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let d = unit_square();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.name(), "square");
        assert_eq!(d.metric(), Metric::Euclidean);
        assert!(!d.is_empty());
        assert_eq!(d.ids().count(), 4);
    }

    #[test]
    fn pairwise_distance() {
        let d = unit_square();
        assert!((d.dist(0, 3) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(d.dist(1, 1), 0.0);
    }

    #[test]
    fn dist_to_free_point() {
        let d = unit_square();
        let q = Point::new2(0.0, 0.5);
        assert!((d.dist_to(0, &q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_maps_to_unit_range() {
        let d = Dataset::new(
            "raw",
            Metric::Euclidean,
            vec![
                Point::new2(10.0, -5.0),
                Point::new2(20.0, 5.0),
                Point::new2(15.0, 0.0),
            ],
        )
        .normalized();
        assert_eq!(d.point(0).coords(), &[0.0, 0.0]);
        assert_eq!(d.point(1).coords(), &[1.0, 1.0]);
        assert_eq!(d.point(2).coords(), &[0.5, 0.5]);
    }

    #[test]
    fn normalization_handles_constant_dimension() {
        let d = Dataset::new(
            "flat",
            Metric::Euclidean,
            vec![Point::new2(3.0, 1.0), Point::new2(3.0, 2.0)],
        )
        .normalized();
        assert_eq!(d.point(0).coord(0), 0.0);
        assert_eq!(d.point(1).coord(0), 0.0);
    }

    #[test]
    fn restriction_preserves_points_and_mapping() {
        let d = unit_square();
        let (sub, map) = d.restrict(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), d.point(3));
        assert_eq!(sub.point(1), d.point(1));
        assert_eq!(map, vec![3, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty_dataset() {
        let _ = Dataset::new("empty", Metric::Euclidean, vec![]);
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn rejects_mixed_dimensions() {
        let _ = Dataset::new(
            "mixed",
            Metric::Euclidean,
            vec![Point::new2(0.0, 0.0), Point::new(vec![1.0, 2.0, 3.0])],
        );
    }
}
