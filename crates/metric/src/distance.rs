//! Distance metrics.
//!
//! The paper uses the Euclidean distance for the synthetic and Cities
//! workloads and the Hamming distance for the categorical Cameras workload
//! (Section 6); Manhattan appears in the analytical bounds (Lemma 3 and
//! Lemma 4(ii)). Chebyshev is included because it is the natural third
//! Minkowski companion and exercises metric-genericity in tests.
//!
//! All four are genuine metrics (non-negative, symmetric, zero iff the
//! points coincide over the compared representation, triangle inequality),
//! which the M-tree requires for correctness of its covering-radius pruning.
//!
//! ## Kernels
//!
//! Every metric dispatches once on the dimensionality and then runs a
//! *monomorphic* kernel: fully unrolled for the common low dimensions
//! (2 = synthetic/Cities, 4 = the scaling sweeps, 7 = the Cameras
//! categorical width) and a 4-wide chunked loop otherwise, so the
//! compiler can keep the accumulators in registers and vectorize. The
//! kernels operate on raw `&[f64]` slices — the flat storage layout of
//! [`crate::dataset::Dataset`] feeds them directly without touching a
//! `Point` allocation.
//!
//! ## Batched one-to-many kernels
//!
//! [`Metric::dist_batch`] evaluates one query point against a *block*
//! of points stored in lane-major ("SoA") layout: coordinate `d` of
//! block point `i` lives at `lanes[d * stride + i]`. One dispatch on
//! `(metric, dim)` then covers the whole block, and the per-point loop
//! bodies are branch-free with unit-stride loads, so the compiler
//! auto-vectorizes them (including the `sqrt`). The results are
//! **bitwise identical** to calling the scalar kernel per point: each
//! batched body performs the same floating-point operations in the same
//! order as the corresponding scalar specialization (squares and
//! absolute differences make the `q − p` operand orientation
//! irrelevant for finite inputs, which datasets guarantee). The M-tree
//! self-join's blocked leaf sweeps rely on that equivalence — property
//! tests in this module pin it per metric, dimension and degenerate
//! block shape.

use crate::point::Point;

/// A distance metric over [`Point`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Straight-line (L2) distance.
    Euclidean,
    /// City-block (L1) distance.
    Manhattan,
    /// Maximum per-coordinate (L∞) distance.
    Chebyshev,
    /// Number of coordinates on which the two points differ. Intended for
    /// categorical codes; equality is exact.
    Hamming,
}

// ---------------------------------------------------------------------
// Monomorphic kernels over coordinate slices
// ---------------------------------------------------------------------

/// Squared Euclidean distance, dimension-specialized.
#[inline]
fn sq_euclidean(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
    match xs.len() {
        1 => {
            let d = xs[0] - ys[0];
            d * d
        }
        2 => {
            let d0 = xs[0] - ys[0];
            let d1 = xs[1] - ys[1];
            d0 * d0 + d1 * d1
        }
        3 => {
            let d0 = xs[0] - ys[0];
            let d1 = xs[1] - ys[1];
            let d2 = xs[2] - ys[2];
            d0 * d0 + d1 * d1 + d2 * d2
        }
        4 => {
            let d0 = xs[0] - ys[0];
            let d1 = xs[1] - ys[1];
            let d2 = xs[2] - ys[2];
            let d3 = xs[3] - ys[3];
            (d0 * d0 + d1 * d1) + (d2 * d2 + d3 * d3)
        }
        _ => {
            // Two independent accumulator pairs break the add-latency
            // chain; tails of < 4 lanes fold into the scalar loop.
            let mut acc0 = 0.0;
            let mut acc1 = 0.0;
            let (chunks_x, tail_x) = xs.split_at(xs.len() & !3);
            let (chunks_y, tail_y) = ys.split_at(xs.len() & !3);
            for (cx, cy) in chunks_x.chunks_exact(4).zip(chunks_y.chunks_exact(4)) {
                let d0 = cx[0] - cy[0];
                let d1 = cx[1] - cy[1];
                let d2 = cx[2] - cy[2];
                let d3 = cx[3] - cy[3];
                acc0 += d0 * d0 + d1 * d1;
                acc1 += d2 * d2 + d3 * d3;
            }
            for (x, y) in tail_x.iter().zip(tail_y) {
                let d = x - y;
                acc0 += d * d;
            }
            acc0 + acc1
        }
    }
}

/// Manhattan (L1) distance, dimension-specialized.
#[inline]
fn manhattan(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
    match xs.len() {
        1 => (xs[0] - ys[0]).abs(),
        2 => (xs[0] - ys[0]).abs() + (xs[1] - ys[1]).abs(),
        4 => {
            ((xs[0] - ys[0]).abs() + (xs[1] - ys[1]).abs())
                + ((xs[2] - ys[2]).abs() + (xs[3] - ys[3]).abs())
        }
        _ => xs.iter().zip(ys).map(|(x, y)| (x - y).abs()).sum(),
    }
}

/// Chebyshev (L∞) distance, dimension-specialized.
#[inline]
fn chebyshev(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
    match xs.len() {
        1 => (xs[0] - ys[0]).abs(),
        2 => (xs[0] - ys[0]).abs().max((xs[1] - ys[1]).abs()),
        _ => xs
            .iter()
            .zip(ys)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max),
    }
}

/// Hamming distance over categorical codes, width-specialized for the
/// Cameras catalogue (7 attributes).
#[inline]
fn hamming(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
    match xs.len() {
        7 => {
            // Branchless unroll: each comparison contributes 0 or 1.
            let mut n = 0u32;
            n += u32::from(xs[0] != ys[0]);
            n += u32::from(xs[1] != ys[1]);
            n += u32::from(xs[2] != ys[2]);
            n += u32::from(xs[3] != ys[3]);
            n += u32::from(xs[4] != ys[4]);
            n += u32::from(xs[5] != ys[5]);
            n += u32::from(xs[6] != ys[6]);
            f64::from(n)
        }
        _ => xs.iter().zip(ys).filter(|(x, y)| x != y).count() as f64,
    }
}

// ---------------------------------------------------------------------
// Batched one-to-many kernels over lane-major (SoA) blocks
// ---------------------------------------------------------------------

/// Batched Euclidean distances: mirrors `sq_euclidean`'s specialization
/// arms (including the 4-wide chunked accumulator order) per point, so
/// every output is bitwise identical to the scalar kernel's.
fn batch_euclidean(q: &[f64], lanes: &[f64], stride: usize, out: &mut [f64]) {
    let n = out.len();
    match q.len() {
        1 => {
            let xs = &lanes[..n];
            for i in 0..n {
                let d = q[0] - xs[i];
                out[i] = (d * d).sqrt();
            }
        }
        2 => {
            let (q0, q1) = (q[0], q[1]);
            let xs = &lanes[..n];
            let ys = &lanes[stride..stride + n];
            for i in 0..n {
                let d0 = q0 - xs[i];
                let d1 = q1 - ys[i];
                out[i] = (d0 * d0 + d1 * d1).sqrt();
            }
        }
        3 => {
            let (q0, q1, q2) = (q[0], q[1], q[2]);
            let xs = &lanes[..n];
            let ys = &lanes[stride..stride + n];
            let zs = &lanes[2 * stride..2 * stride + n];
            for i in 0..n {
                let d0 = q0 - xs[i];
                let d1 = q1 - ys[i];
                let d2 = q2 - zs[i];
                out[i] = (d0 * d0 + d1 * d1 + d2 * d2).sqrt();
            }
        }
        4 => {
            let (q0, q1, q2, q3) = (q[0], q[1], q[2], q[3]);
            let l0 = &lanes[..n];
            let l1 = &lanes[stride..stride + n];
            let l2 = &lanes[2 * stride..2 * stride + n];
            let l3 = &lanes[3 * stride..3 * stride + n];
            for i in 0..n {
                let d0 = q0 - l0[i];
                let d1 = q1 - l1[i];
                let d2 = q2 - l2[i];
                let d3 = q3 - l3[i];
                out[i] = ((d0 * d0 + d1 * d1) + (d2 * d2 + d3 * d3)).sqrt();
            }
        }
        dim => {
            // Replicates the scalar kernel's two-accumulator 4-wide
            // chunking per point (strided lane loads; the low dims
            // above carry the vectorized fast paths).
            for (i, o) in out.iter_mut().enumerate() {
                let mut acc0 = 0.0;
                let mut acc1 = 0.0;
                let mut d = 0;
                while d + 4 <= dim {
                    let d0 = q[d] - lanes[d * stride + i];
                    let d1 = q[d + 1] - lanes[(d + 1) * stride + i];
                    let d2 = q[d + 2] - lanes[(d + 2) * stride + i];
                    let d3 = q[d + 3] - lanes[(d + 3) * stride + i];
                    acc0 += d0 * d0 + d1 * d1;
                    acc1 += d2 * d2 + d3 * d3;
                    d += 4;
                }
                while d < dim {
                    let t = q[d] - lanes[d * stride + i];
                    acc0 += t * t;
                    d += 1;
                }
                *o = (acc0 + acc1).sqrt();
            }
        }
    }
}

/// Batched Manhattan distances (see [`batch_euclidean`] for the
/// bitwise-identity contract; `manhattan`'s arms are 1, 2, 4 and a
/// plain left-to-right sum starting from 0.0 otherwise).
fn batch_manhattan(q: &[f64], lanes: &[f64], stride: usize, out: &mut [f64]) {
    let n = out.len();
    match q.len() {
        1 => {
            let xs = &lanes[..n];
            for i in 0..n {
                out[i] = (q[0] - xs[i]).abs();
            }
        }
        2 => {
            let (q0, q1) = (q[0], q[1]);
            let xs = &lanes[..n];
            let ys = &lanes[stride..stride + n];
            for i in 0..n {
                out[i] = (q0 - xs[i]).abs() + (q1 - ys[i]).abs();
            }
        }
        4 => {
            let (q0, q1, q2, q3) = (q[0], q[1], q[2], q[3]);
            let l0 = &lanes[..n];
            let l1 = &lanes[stride..stride + n];
            let l2 = &lanes[2 * stride..2 * stride + n];
            let l3 = &lanes[3 * stride..3 * stride + n];
            for i in 0..n {
                out[i] = ((q0 - l0[i]).abs() + (q1 - l1[i]).abs())
                    + ((q2 - l2[i]).abs() + (q3 - l3[i]).abs());
            }
        }
        dim => {
            for (i, o) in out.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (d, &qd) in q.iter().enumerate().take(dim) {
                    acc += (qd - lanes[d * stride + i]).abs();
                }
                *o = acc;
            }
        }
    }
}

/// Batched Chebyshev distances (`chebyshev`'s arms are 1, 2 and a
/// `fold(0.0, max)` otherwise).
fn batch_chebyshev(q: &[f64], lanes: &[f64], stride: usize, out: &mut [f64]) {
    let n = out.len();
    match q.len() {
        1 => {
            let xs = &lanes[..n];
            for i in 0..n {
                out[i] = (q[0] - xs[i]).abs();
            }
        }
        2 => {
            let (q0, q1) = (q[0], q[1]);
            let xs = &lanes[..n];
            let ys = &lanes[stride..stride + n];
            for i in 0..n {
                out[i] = (q0 - xs[i]).abs().max((q1 - ys[i]).abs());
            }
        }
        dim => {
            for (i, o) in out.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for (d, &qd) in q.iter().enumerate().take(dim) {
                    acc = acc.max((qd - lanes[d * stride + i]).abs());
                }
                *o = acc;
            }
        }
    }
}

/// Batched Hamming distances (exactly integral, so bitwise identity is
/// trivial; the 7-wide Cameras unroll gets the branchless fast path).
fn batch_hamming(q: &[f64], lanes: &[f64], stride: usize, out: &mut [f64]) {
    let n = out.len();
    match q.len() {
        7 => {
            let (q0, q1, q2, q3, q4, q5, q6) = (q[0], q[1], q[2], q[3], q[4], q[5], q[6]);
            let l0 = &lanes[..n];
            let l1 = &lanes[stride..stride + n];
            let l2 = &lanes[2 * stride..2 * stride + n];
            let l3 = &lanes[3 * stride..3 * stride + n];
            let l4 = &lanes[4 * stride..4 * stride + n];
            let l5 = &lanes[5 * stride..5 * stride + n];
            let l6 = &lanes[6 * stride..6 * stride + n];
            for i in 0..n {
                let mut c = 0u32;
                c += u32::from(q0 != l0[i]);
                c += u32::from(q1 != l1[i]);
                c += u32::from(q2 != l2[i]);
                c += u32::from(q3 != l3[i]);
                c += u32::from(q4 != l4[i]);
                c += u32::from(q5 != l5[i]);
                c += u32::from(q6 != l6[i]);
                out[i] = f64::from(c);
            }
        }
        dim => {
            for (i, o) in out.iter_mut().enumerate() {
                let mut c = 0usize;
                for (d, &qd) in q.iter().enumerate().take(dim) {
                    c += usize::from(qd != lanes[d * stride + i]);
                }
                *o = c as f64;
            }
        }
    }
}

impl Metric {
    /// Distance between two coordinate slices — the hot-path entry point
    /// fed directly by the flat dataset buffer.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slices have different lengths.
    #[inline]
    pub fn dist_coords(&self, xs: &[f64], ys: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => sq_euclidean(xs, ys).sqrt(),
            Metric::Manhattan => manhattan(xs, ys),
            Metric::Chebyshev => chebyshev(xs, ys),
            Metric::Hamming => hamming(xs, ys),
        }
    }

    /// Distance between two points.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the points have different dimensionality.
    #[inline]
    pub fn dist(&self, a: &Point, b: &Point) -> f64 {
        self.dist_coords(a.coords(), b.coords())
    }

    /// Batched one-to-many distances: `out[i]` becomes the distance from
    /// the query coordinates `q` to block point `i`, where the block is
    /// stored lane-major ("SoA"): coordinate `d` of point `i` lives at
    /// `lanes[d * stride + i]`. `out.len()` points are evaluated (so a
    /// prefix of a larger block can be swept by passing the block's full
    /// stride with a shorter `out`).
    ///
    /// Every output is **bitwise identical** to
    /// `dist_coords(q, point_i)` — the batched bodies replicate the
    /// scalar specializations operation for operation (see the
    /// [module docs](self)) — while paying the metric/dimension dispatch
    /// once per block instead of once per pair and letting the compiler
    /// vectorize the per-point loop.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `out.len() > stride`, and via slice
    /// bounds when `lanes` is shorter than the accessed lane region
    /// (`(dim − 1) * stride + out.len()`).
    #[inline]
    pub fn dist_batch(&self, q: &[f64], lanes: &[f64], stride: usize, out: &mut [f64]) {
        if out.is_empty() {
            return;
        }
        debug_assert!(out.len() <= stride, "block prefix longer than stride");
        match self {
            Metric::Euclidean => batch_euclidean(q, lanes, stride, out),
            Metric::Manhattan => batch_manhattan(q, lanes, stride, out),
            Metric::Chebyshev => batch_chebyshev(q, lanes, stride, out),
            Metric::Hamming => batch_hamming(q, lanes, stride, out),
        }
    }

    /// Squared-distance shortcut for Euclidean comparisons that only need
    /// ordering (avoids the square root); falls back to `dist` squared for
    /// the other metrics.
    #[inline]
    pub fn dist_cmp(&self, a: &Point, b: &Point) -> f64 {
        self.dist_cmp_coords(a.coords(), b.coords())
    }

    /// Slice counterpart of [`Metric::dist_cmp`].
    #[inline]
    pub fn dist_cmp_coords(&self, xs: &[f64], ys: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => sq_euclidean(xs, ys),
            _ => {
                let d = self.dist_coords(xs, ys);
                d * d
            }
        }
    }

    /// Whether the metric produces integral distances (true for Hamming);
    /// the Cameras experiments sweep integer radii.
    pub fn is_discrete(&self) -> bool {
        matches!(self, Metric::Hamming)
    }

    /// A short lowercase name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Chebyshev => "chebyshev",
            Metric::Hamming => "hamming",
        }
    }

    /// The largest possible distance between two points of dimension `dim`
    /// whose coordinates lie in `[0, 1]` (used to pick radius sweeps).
    pub fn max_range(&self, dim: usize) -> f64 {
        match self {
            Metric::Euclidean => (dim as f64).sqrt(),
            Metric::Manhattan => dim as f64,
            Metric::Chebyshev => 1.0,
            Metric::Hamming => dim as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn euclidean_matches_pythagoras() {
        let d = Metric::Euclidean.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_sums_axis_moves() {
        let d = Metric::Manhattan.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_takes_the_max_axis() {
        let d = Metric::Chebyshev.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_counts_differing_attributes() {
        let a = Point::categorical(&[1, 2, 3, 4]);
        let b = Point::categorical(&[1, 9, 3, 0]);
        assert_eq!(Metric::Hamming.dist(&a, &b), 2.0);
        assert_eq!(Metric::Hamming.dist(&a, &a), 0.0);
    }

    #[test]
    fn discrete_flag_only_for_hamming() {
        assert!(Metric::Hamming.is_discrete());
        assert!(!Metric::Euclidean.is_discrete());
        assert!(!Metric::Manhattan.is_discrete());
        assert!(!Metric::Chebyshev.is_discrete());
    }

    #[test]
    fn max_range_in_unit_cube() {
        assert!((Metric::Euclidean.max_range(2) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(Metric::Manhattan.max_range(3), 3.0);
        assert_eq!(Metric::Chebyshev.max_range(7), 1.0);
        assert_eq!(Metric::Hamming.max_range(7), 7.0);
    }

    #[test]
    fn dist_cmp_orders_like_dist() {
        let a = p(&[0.1, 0.2]);
        let b = p(&[0.9, 0.8]);
        let c = p(&[0.15, 0.25]);
        for m in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Hamming,
        ] {
            let near = m.dist_cmp(&a, &c);
            let far = m.dist_cmp(&a, &b);
            assert!(near <= far, "{m:?} ordering broken");
        }
    }

    const ALL: [Metric; 4] = [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Hamming,
    ];

    fn coords() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-10.0..10.0f64, 1..6)
    }

    /// Reference implementations the specialized kernels must agree with.
    fn naive(m: Metric, xs: &[f64], ys: &[f64]) -> f64 {
        match m {
            Metric::Euclidean => xs
                .iter()
                .zip(ys)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => xs.iter().zip(ys).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => xs
                .iter()
                .zip(ys)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            Metric::Hamming => xs.iter().zip(ys).filter(|(x, y)| x != y).count() as f64,
        }
    }

    #[test]
    fn specialized_kernels_match_reference_at_every_tested_dim() {
        // Deterministic coordinates exercising each specialization arm
        // (1–4, the 7-wide Hamming unroll, and the chunked tail path).
        for dim in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 11, 16] {
            let xs: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
            let ys: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.81).cos() * 3.0).collect();
            for m in ALL {
                let got = m.dist_coords(&xs, &ys);
                let want = naive(m, &xs, &ys);
                assert!(
                    (got - want).abs() < 1e-9,
                    "{m:?} dim {dim}: {got} vs {want}"
                );
            }
        }
    }

    /// Transposes row-major points into the lane-major block layout
    /// `dist_batch` consumes.
    fn to_lanes(points: &[Vec<f64>], dim: usize) -> Vec<f64> {
        let n = points.len();
        let mut lanes = vec![0.0; dim * n];
        for (i, p) in points.iter().enumerate() {
            for (d, &c) in p.iter().enumerate() {
                lanes[d * n + i] = c;
            }
        }
        lanes
    }

    /// `dist_batch` output, bit for bit, against per-point scalar calls.
    fn assert_batch_bitwise(m: Metric, q: &[f64], points: &[Vec<f64>]) {
        let n = points.len();
        let lanes = to_lanes(points, q.len());
        let mut out = vec![f64::NAN; n];
        m.dist_batch(q, &lanes, n, &mut out);
        for (i, p) in points.iter().enumerate() {
            let want = m.dist_coords(q, p);
            assert_eq!(
                out[i].to_bits(),
                want.to_bits(),
                "{m:?} dim {} point {i}: batch {} vs scalar {want}",
                q.len(),
                out[i]
            );
        }
        // Prefix sweep: evaluating only the first half against the full
        // stride must leave the tail untouched and the head identical.
        let half = n / 2;
        let mut prefix = vec![f64::NAN; half];
        m.dist_batch(q, &lanes, n, &mut prefix);
        for (i, v) in prefix.iter().enumerate() {
            assert_eq!(v.to_bits(), out[i].to_bits(), "{m:?} prefix point {i}");
        }
    }

    #[test]
    fn dist_batch_matches_scalar_at_every_specialized_dim() {
        // Deterministic sweep of every specialization arm: dims 1–4, the
        // 7-wide Hamming unroll, and the chunked generic path (5, 8, 9,
        // 11), across block sizes including 0 and 1.
        for dim in [1usize, 2, 3, 4, 5, 7, 8, 9, 11] {
            for n in [0usize, 1, 2, 3, 17, 64] {
                let q: Vec<f64> = (0..dim).map(|d| (d as f64 * 0.29).sin() * 2.0).collect();
                let points: Vec<Vec<f64>> = (0..n)
                    .map(|i| {
                        (0..dim)
                            .map(|d| ((i * dim + d) as f64 * 0.61).cos() * 2.0)
                            .collect()
                    })
                    .collect();
                for m in ALL {
                    assert_batch_bitwise(m, &q, &points);
                }
            }
        }
    }

    #[test]
    fn dist_batch_degenerate_blocks() {
        // Empty block, single point, duplicate points, the query itself
        // duplicated into the block, and NaN-free extreme magnitudes
        // (huge, tiny-subnormal, ±0.0).
        let q = vec![1.0e300, -0.0];
        let dup = vec![5e-324, 1.0e300];
        let blocks: Vec<Vec<Vec<f64>>> = vec![
            vec![],
            vec![vec![0.0, -0.0]],
            vec![dup.clone(), dup.clone(), dup.clone()],
            vec![q.clone(), q.clone()],
            vec![
                vec![f64::MAX, -f64::MAX],
                vec![f64::MIN_POSITIVE, -f64::MIN_POSITIVE],
                vec![-1.0e300, 1.0e300],
            ],
        ];
        for points in &blocks {
            for m in ALL {
                assert_batch_bitwise(m, &q, points);
            }
        }
    }

    proptest! {
        /// `dist_batch` ≡ scalar `dist_coords`, bitwise, on all four
        /// metrics for arbitrary dims, block sizes and coordinates.
        #[test]
        fn dist_batch_is_bitwise_scalar(
            q in coords(),
            rows in prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 1..6), 0..20),
        ) {
            let dim = rows.iter().map(Vec::len).fold(q.len(), usize::min);
            let q = &q[..dim];
            let points: Vec<Vec<f64>> = rows.iter().map(|r| r[..dim].to_vec()).collect();
            for m in ALL {
                assert_batch_bitwise(m, q, &points);
            }
        }
    }

    proptest! {
        #[test]
        fn metric_axioms(a in coords(), b in coords(), c in coords()) {
            // Force equal dimensionality by truncation.
            let d = a.len().min(b.len()).min(c.len());
            let (pa, pb, pc) = (
                p(&a[..d]),
                p(&b[..d]),
                p(&c[..d]),
            );
            for m in ALL {
                let dab = m.dist(&pa, &pb);
                let dba = m.dist(&pb, &pa);
                let dac = m.dist(&pa, &pc);
                let dcb = m.dist(&pc, &pb);
                prop_assert!(dab >= 0.0);
                prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
                prop_assert_eq!(m.dist(&pa, &pa), 0.0, "identity");
                prop_assert!(dab <= dac + dcb + 1e-9, "triangle inequality for {:?}", m);
            }
        }

        #[test]
        fn euclidean_never_exceeds_manhattan(a in coords(), b in coords()) {
            let d = a.len().min(b.len());
            let (pa, pb) = (p(&a[..d]), p(&b[..d]));
            let e = Metric::Euclidean.dist(&pa, &pb);
            let m = Metric::Manhattan.dist(&pa, &pb);
            let ch = Metric::Chebyshev.dist(&pa, &pb);
            prop_assert!(e <= m + 1e-9);
            prop_assert!(ch <= e + 1e-9);
        }

        #[test]
        fn kernels_match_reference(a in coords(), b in coords()) {
            let d = a.len().min(b.len());
            for m in ALL {
                let got = m.dist_coords(&a[..d], &b[..d]);
                let want = naive(m, &a[..d], &b[..d]);
                prop_assert!((got - want).abs() < 1e-9, "{:?}: {} vs {}", m, got, want);
            }
        }
    }
}
