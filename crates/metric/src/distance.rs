//! Distance metrics.
//!
//! The paper uses the Euclidean distance for the synthetic and Cities
//! workloads and the Hamming distance for the categorical Cameras workload
//! (Section 6); Manhattan appears in the analytical bounds (Lemma 3 and
//! Lemma 4(ii)). Chebyshev is included because it is the natural third
//! Minkowski companion and exercises metric-genericity in tests.
//!
//! All four are genuine metrics (non-negative, symmetric, zero iff the
//! points coincide over the compared representation, triangle inequality),
//! which the M-tree requires for correctness of its covering-radius pruning.
//!
//! ## Kernels
//!
//! Every metric dispatches once on the dimensionality and then runs a
//! *monomorphic* kernel: fully unrolled for the common low dimensions
//! (2 = synthetic/Cities, 4 = the scaling sweeps, 7 = the Cameras
//! categorical width) and a 4-wide chunked loop otherwise, so the
//! compiler can keep the accumulators in registers and vectorize. The
//! kernels operate on raw `&[f64]` slices — the flat storage layout of
//! [`crate::dataset::Dataset`] feeds them directly without touching a
//! `Point` allocation.

use crate::point::Point;

/// A distance metric over [`Point`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Straight-line (L2) distance.
    Euclidean,
    /// City-block (L1) distance.
    Manhattan,
    /// Maximum per-coordinate (L∞) distance.
    Chebyshev,
    /// Number of coordinates on which the two points differ. Intended for
    /// categorical codes; equality is exact.
    Hamming,
}

// ---------------------------------------------------------------------
// Monomorphic kernels over coordinate slices
// ---------------------------------------------------------------------

/// Squared Euclidean distance, dimension-specialized.
#[inline]
fn sq_euclidean(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
    match xs.len() {
        1 => {
            let d = xs[0] - ys[0];
            d * d
        }
        2 => {
            let d0 = xs[0] - ys[0];
            let d1 = xs[1] - ys[1];
            d0 * d0 + d1 * d1
        }
        3 => {
            let d0 = xs[0] - ys[0];
            let d1 = xs[1] - ys[1];
            let d2 = xs[2] - ys[2];
            d0 * d0 + d1 * d1 + d2 * d2
        }
        4 => {
            let d0 = xs[0] - ys[0];
            let d1 = xs[1] - ys[1];
            let d2 = xs[2] - ys[2];
            let d3 = xs[3] - ys[3];
            (d0 * d0 + d1 * d1) + (d2 * d2 + d3 * d3)
        }
        _ => {
            // Two independent accumulator pairs break the add-latency
            // chain; tails of < 4 lanes fold into the scalar loop.
            let mut acc0 = 0.0;
            let mut acc1 = 0.0;
            let (chunks_x, tail_x) = xs.split_at(xs.len() & !3);
            let (chunks_y, tail_y) = ys.split_at(xs.len() & !3);
            for (cx, cy) in chunks_x.chunks_exact(4).zip(chunks_y.chunks_exact(4)) {
                let d0 = cx[0] - cy[0];
                let d1 = cx[1] - cy[1];
                let d2 = cx[2] - cy[2];
                let d3 = cx[3] - cy[3];
                acc0 += d0 * d0 + d1 * d1;
                acc1 += d2 * d2 + d3 * d3;
            }
            for (x, y) in tail_x.iter().zip(tail_y) {
                let d = x - y;
                acc0 += d * d;
            }
            acc0 + acc1
        }
    }
}

/// Manhattan (L1) distance, dimension-specialized.
#[inline]
fn manhattan(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
    match xs.len() {
        1 => (xs[0] - ys[0]).abs(),
        2 => (xs[0] - ys[0]).abs() + (xs[1] - ys[1]).abs(),
        4 => {
            ((xs[0] - ys[0]).abs() + (xs[1] - ys[1]).abs())
                + ((xs[2] - ys[2]).abs() + (xs[3] - ys[3]).abs())
        }
        _ => xs.iter().zip(ys).map(|(x, y)| (x - y).abs()).sum(),
    }
}

/// Chebyshev (L∞) distance, dimension-specialized.
#[inline]
fn chebyshev(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
    match xs.len() {
        1 => (xs[0] - ys[0]).abs(),
        2 => (xs[0] - ys[0]).abs().max((xs[1] - ys[1]).abs()),
        _ => xs
            .iter()
            .zip(ys)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max),
    }
}

/// Hamming distance over categorical codes, width-specialized for the
/// Cameras catalogue (7 attributes).
#[inline]
fn hamming(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
    match xs.len() {
        7 => {
            // Branchless unroll: each comparison contributes 0 or 1.
            let mut n = 0u32;
            n += u32::from(xs[0] != ys[0]);
            n += u32::from(xs[1] != ys[1]);
            n += u32::from(xs[2] != ys[2]);
            n += u32::from(xs[3] != ys[3]);
            n += u32::from(xs[4] != ys[4]);
            n += u32::from(xs[5] != ys[5]);
            n += u32::from(xs[6] != ys[6]);
            f64::from(n)
        }
        _ => xs.iter().zip(ys).filter(|(x, y)| x != y).count() as f64,
    }
}

impl Metric {
    /// Distance between two coordinate slices — the hot-path entry point
    /// fed directly by the flat dataset buffer.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slices have different lengths.
    #[inline]
    pub fn dist_coords(&self, xs: &[f64], ys: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => sq_euclidean(xs, ys).sqrt(),
            Metric::Manhattan => manhattan(xs, ys),
            Metric::Chebyshev => chebyshev(xs, ys),
            Metric::Hamming => hamming(xs, ys),
        }
    }

    /// Distance between two points.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the points have different dimensionality.
    #[inline]
    pub fn dist(&self, a: &Point, b: &Point) -> f64 {
        self.dist_coords(a.coords(), b.coords())
    }

    /// Squared-distance shortcut for Euclidean comparisons that only need
    /// ordering (avoids the square root); falls back to `dist` squared for
    /// the other metrics.
    #[inline]
    pub fn dist_cmp(&self, a: &Point, b: &Point) -> f64 {
        self.dist_cmp_coords(a.coords(), b.coords())
    }

    /// Slice counterpart of [`Metric::dist_cmp`].
    #[inline]
    pub fn dist_cmp_coords(&self, xs: &[f64], ys: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => sq_euclidean(xs, ys),
            _ => {
                let d = self.dist_coords(xs, ys);
                d * d
            }
        }
    }

    /// Whether the metric produces integral distances (true for Hamming);
    /// the Cameras experiments sweep integer radii.
    pub fn is_discrete(&self) -> bool {
        matches!(self, Metric::Hamming)
    }

    /// A short lowercase name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Chebyshev => "chebyshev",
            Metric::Hamming => "hamming",
        }
    }

    /// The largest possible distance between two points of dimension `dim`
    /// whose coordinates lie in `[0, 1]` (used to pick radius sweeps).
    pub fn max_range(&self, dim: usize) -> f64 {
        match self {
            Metric::Euclidean => (dim as f64).sqrt(),
            Metric::Manhattan => dim as f64,
            Metric::Chebyshev => 1.0,
            Metric::Hamming => dim as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn euclidean_matches_pythagoras() {
        let d = Metric::Euclidean.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_sums_axis_moves() {
        let d = Metric::Manhattan.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_takes_the_max_axis() {
        let d = Metric::Chebyshev.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_counts_differing_attributes() {
        let a = Point::categorical(&[1, 2, 3, 4]);
        let b = Point::categorical(&[1, 9, 3, 0]);
        assert_eq!(Metric::Hamming.dist(&a, &b), 2.0);
        assert_eq!(Metric::Hamming.dist(&a, &a), 0.0);
    }

    #[test]
    fn discrete_flag_only_for_hamming() {
        assert!(Metric::Hamming.is_discrete());
        assert!(!Metric::Euclidean.is_discrete());
        assert!(!Metric::Manhattan.is_discrete());
        assert!(!Metric::Chebyshev.is_discrete());
    }

    #[test]
    fn max_range_in_unit_cube() {
        assert!((Metric::Euclidean.max_range(2) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(Metric::Manhattan.max_range(3), 3.0);
        assert_eq!(Metric::Chebyshev.max_range(7), 1.0);
        assert_eq!(Metric::Hamming.max_range(7), 7.0);
    }

    #[test]
    fn dist_cmp_orders_like_dist() {
        let a = p(&[0.1, 0.2]);
        let b = p(&[0.9, 0.8]);
        let c = p(&[0.15, 0.25]);
        for m in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Hamming,
        ] {
            let near = m.dist_cmp(&a, &c);
            let far = m.dist_cmp(&a, &b);
            assert!(near <= far, "{m:?} ordering broken");
        }
    }

    const ALL: [Metric; 4] = [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Hamming,
    ];

    fn coords() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-10.0..10.0f64, 1..6)
    }

    /// Reference implementations the specialized kernels must agree with.
    fn naive(m: Metric, xs: &[f64], ys: &[f64]) -> f64 {
        match m {
            Metric::Euclidean => xs
                .iter()
                .zip(ys)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => xs.iter().zip(ys).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => xs
                .iter()
                .zip(ys)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            Metric::Hamming => xs.iter().zip(ys).filter(|(x, y)| x != y).count() as f64,
        }
    }

    #[test]
    fn specialized_kernels_match_reference_at_every_tested_dim() {
        // Deterministic coordinates exercising each specialization arm
        // (1–4, the 7-wide Hamming unroll, and the chunked tail path).
        for dim in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 11, 16] {
            let xs: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
            let ys: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.81).cos() * 3.0).collect();
            for m in ALL {
                let got = m.dist_coords(&xs, &ys);
                let want = naive(m, &xs, &ys);
                assert!(
                    (got - want).abs() < 1e-9,
                    "{m:?} dim {dim}: {got} vs {want}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn metric_axioms(a in coords(), b in coords(), c in coords()) {
            // Force equal dimensionality by truncation.
            let d = a.len().min(b.len()).min(c.len());
            let (pa, pb, pc) = (
                p(&a[..d]),
                p(&b[..d]),
                p(&c[..d]),
            );
            for m in ALL {
                let dab = m.dist(&pa, &pb);
                let dba = m.dist(&pb, &pa);
                let dac = m.dist(&pa, &pc);
                let dcb = m.dist(&pc, &pb);
                prop_assert!(dab >= 0.0);
                prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
                prop_assert_eq!(m.dist(&pa, &pa), 0.0, "identity");
                prop_assert!(dab <= dac + dcb + 1e-9, "triangle inequality for {:?}", m);
            }
        }

        #[test]
        fn euclidean_never_exceeds_manhattan(a in coords(), b in coords()) {
            let d = a.len().min(b.len());
            let (pa, pb) = (p(&a[..d]), p(&b[..d]));
            let e = Metric::Euclidean.dist(&pa, &pb);
            let m = Metric::Manhattan.dist(&pa, &pb);
            let ch = Metric::Chebyshev.dist(&pa, &pb);
            prop_assert!(e <= m + 1e-9);
            prop_assert!(ch <= e + 1e-9);
        }

        #[test]
        fn kernels_match_reference(a in coords(), b in coords()) {
            let d = a.len().min(b.len());
            for m in ALL {
                let got = m.dist_coords(&a[..d], &b[..d]);
                let want = naive(m, &a[..d], &b[..d]);
                prop_assert!((got - want).abs() < 1e-9, "{:?}: {} vs {}", m, got, want);
            }
        }
    }
}
