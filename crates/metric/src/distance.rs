//! Distance metrics.
//!
//! The paper uses the Euclidean distance for the synthetic and Cities
//! workloads and the Hamming distance for the categorical Cameras workload
//! (Section 6); Manhattan appears in the analytical bounds (Lemma 3 and
//! Lemma 4(ii)). Chebyshev is included because it is the natural third
//! Minkowski companion and exercises metric-genericity in tests.
//!
//! All four are genuine metrics (non-negative, symmetric, zero iff the
//! points coincide over the compared representation, triangle inequality),
//! which the M-tree requires for correctness of its covering-radius pruning.

use crate::point::Point;

/// A distance metric over [`Point`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Straight-line (L2) distance.
    Euclidean,
    /// City-block (L1) distance.
    Manhattan,
    /// Maximum per-coordinate (L∞) distance.
    Chebyshev,
    /// Number of coordinates on which the two points differ. Intended for
    /// categorical codes; equality is exact.
    Hamming,
}

impl Metric {
    /// Distance between two points.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the points have different dimensionality.
    #[inline]
    pub fn dist(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        let (xs, ys) = (a.coords(), b.coords());
        match self {
            Metric::Euclidean => xs
                .iter()
                .zip(ys)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => xs.iter().zip(ys).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => xs
                .iter()
                .zip(ys)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            Metric::Hamming => xs.iter().zip(ys).filter(|(x, y)| x != y).count() as f64,
        }
    }

    /// Squared-distance shortcut for Euclidean comparisons that only need
    /// ordering (avoids the square root); falls back to `dist` squared for
    /// the other metrics.
    #[inline]
    pub fn dist_cmp(&self, a: &Point, b: &Point) -> f64 {
        match self {
            Metric::Euclidean => a
                .coords()
                .iter()
                .zip(b.coords())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>(),
            _ => {
                let d = self.dist(a, b);
                d * d
            }
        }
    }

    /// Whether the metric produces integral distances (true for Hamming);
    /// the Cameras experiments sweep integer radii.
    pub fn is_discrete(&self) -> bool {
        matches!(self, Metric::Hamming)
    }

    /// A short lowercase name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Chebyshev => "chebyshev",
            Metric::Hamming => "hamming",
        }
    }

    /// The largest possible distance between two points of dimension `dim`
    /// whose coordinates lie in `[0, 1]` (used to pick radius sweeps).
    pub fn max_range(&self, dim: usize) -> f64 {
        match self {
            Metric::Euclidean => (dim as f64).sqrt(),
            Metric::Manhattan => dim as f64,
            Metric::Chebyshev => 1.0,
            Metric::Hamming => dim as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn euclidean_matches_pythagoras() {
        let d = Metric::Euclidean.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_sums_axis_moves() {
        let d = Metric::Manhattan.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_takes_the_max_axis() {
        let d = Metric::Chebyshev.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_counts_differing_attributes() {
        let a = Point::categorical(&[1, 2, 3, 4]);
        let b = Point::categorical(&[1, 9, 3, 0]);
        assert_eq!(Metric::Hamming.dist(&a, &b), 2.0);
        assert_eq!(Metric::Hamming.dist(&a, &a), 0.0);
    }

    #[test]
    fn discrete_flag_only_for_hamming() {
        assert!(Metric::Hamming.is_discrete());
        assert!(!Metric::Euclidean.is_discrete());
        assert!(!Metric::Manhattan.is_discrete());
        assert!(!Metric::Chebyshev.is_discrete());
    }

    #[test]
    fn max_range_in_unit_cube() {
        assert!((Metric::Euclidean.max_range(2) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(Metric::Manhattan.max_range(3), 3.0);
        assert_eq!(Metric::Chebyshev.max_range(7), 1.0);
        assert_eq!(Metric::Hamming.max_range(7), 7.0);
    }

    #[test]
    fn dist_cmp_orders_like_dist() {
        let a = p(&[0.1, 0.2]);
        let b = p(&[0.9, 0.8]);
        let c = p(&[0.15, 0.25]);
        for m in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Hamming,
        ] {
            let near = m.dist_cmp(&a, &c);
            let far = m.dist_cmp(&a, &b);
            assert!(near <= far, "{m:?} ordering broken");
        }
    }

    const ALL: [Metric; 4] = [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Hamming,
    ];

    fn coords() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-10.0..10.0f64, 1..6)
    }

    proptest! {
        #[test]
        fn metric_axioms(a in coords(), b in coords(), c in coords()) {
            // Force equal dimensionality by truncation.
            let d = a.len().min(b.len()).min(c.len());
            let (pa, pb, pc) = (
                p(&a[..d]),
                p(&b[..d]),
                p(&c[..d]),
            );
            for m in ALL {
                let dab = m.dist(&pa, &pb);
                let dba = m.dist(&pb, &pa);
                let dac = m.dist(&pa, &pc);
                let dcb = m.dist(&pc, &pb);
                prop_assert!(dab >= 0.0);
                prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
                prop_assert_eq!(m.dist(&pa, &pa), 0.0, "identity");
                prop_assert!(dab <= dac + dcb + 1e-9, "triangle inequality for {:?}", m);
            }
        }

        #[test]
        fn euclidean_never_exceeds_manhattan(a in coords(), b in coords()) {
            let d = a.len().min(b.len());
            let (pa, pb) = (p(&a[..d]), p(&b[..d]));
            let e = Metric::Euclidean.dist(&pa, &pb);
            let m = Metric::Manhattan.dist(&pa, &pb);
            let ch = Metric::Chebyshev.dist(&pa, &pb);
            prop_assert!(e <= m + 1e-9);
            prop_assert!(ch <= e + 1e-9);
        }
    }
}
