//! A synthetic replica of the paper's "Cameras" dataset.
//!
//! The original consists of 579 digital cameras with 7 characteristics
//! (brand, model, megapixels, zoom, interface, battery, storage) scraped
//! from acme.com/digicams, compared under the Hamming distance (paper
//! Section 6). That source is defunct, so this module synthesises a
//! catalogue with the same shape (see DESIGN.md §4):
//!
//! * 579 rows × 7 categorical attributes with realistic cardinalities,
//! * brand-correlated attribute distributions (a Canon compact is more
//!   likely to pair USB with SD storage, etc.),
//! * a tail of near-duplicate models (variant rows differing in at most
//!   one attribute), calibrated so that the r = 1 DisC solution size lands
//!   near the paper's 461 out of 579,
//! * integer Hamming radii 1–6 as the experiment sweep.

use disc_metric::{Dataset, Metric, ObjId, Point};
use rand::{rngs::StdRng, RngExt as _, SeedableRng};

/// Cardinality of the paper's Cameras dataset.
pub const CAMERAS_CARDINALITY: usize = 579;

/// Number of attributes per camera.
pub const CAMERA_ATTRIBUTES: usize = 7;

/// One categorical attribute: its name and value labels (codes index into
/// `values`).
#[derive(Clone, Debug)]
pub struct AttributeInfo {
    /// Attribute name, e.g. `"brand"`.
    pub name: &'static str,
    /// Human-readable labels for each code.
    pub values: Vec<&'static str>,
}

/// The camera catalogue: the Hamming-metric dataset plus the attribute
/// schema for presentation.
#[derive(Clone, Debug)]
pub struct CameraCatalog {
    /// The 579×7 categorical dataset under the Hamming metric.
    pub dataset: Dataset,
    /// Per-attribute schema, aligned with point dimensions.
    pub attributes: Vec<AttributeInfo>,
}

impl CameraCatalog {
    /// Human-readable rendering of one camera row.
    pub fn describe(&self, id: ObjId) -> String {
        let p = self.dataset.point(id);
        self.attributes
            .iter()
            .enumerate()
            .map(|(d, a)| format!("{}={}", a.name, a.values[p.coord(d) as usize]))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Label of attribute `dim` for camera `id`.
    pub fn label(&self, id: ObjId, dim: usize) -> &'static str {
        let code = self.dataset.point(id).coord(dim) as usize;
        self.attributes[dim].values[code]
    }
}

const BRANDS: [&str; 12] = [
    "Canon",
    "Nikon",
    "Sony",
    "FujiFilm",
    "Pentax",
    "Olympus",
    "Kodak",
    "Ricoh",
    "Epson",
    "Toshiba",
    "Panasonic",
    "Casio",
];
const LINES: [&str; 8] = [
    "Compact",
    "Ultracompact",
    "Superzoom",
    "Bridge",
    "DSLR",
    "Rugged",
    "Entry",
    "Pro",
];
const MEGAPIXELS: [&str; 14] = [
    "0.8", "1.2", "1.4", "1.9", "2.2", "3.0", "3.9", "5.0", "6.0", "8.0", "10.0", "12.0", "14.0",
    "16.0",
];
const ZOOMS: [&str; 10] = [
    "none", "2.2x", "2.8x", "3.0x", "3.2x", "4.0x", "5.0x", "6.0x", "10x", "35x",
];
const INTERFACES: [&str; 6] = [
    "serial",
    "USB",
    "serial+USB",
    "USB+FireWire",
    "FireWire",
    "none",
];
const BATTERIES: [&str; 5] = ["AA", "lithium", "NiMH", "NiCd", "AA+lithium"];
const STORAGE: [&str; 10] = [
    "CompactFlash",
    "SmartMedia",
    "MemoryStick",
    "SecureDigital",
    "MMC+SD",
    "xD-PictureCard",
    "internal+CF",
    "internal+SM",
    "SDHC",
    "CF+SD",
];

/// Number of rows that are near-duplicate variants of an earlier row
/// (differing in at most one attribute). Together with the accidental
/// Hamming-1 pairs produced by the popularity skew this is calibrated
/// against the paper's r = 1 solution size of 461: 579 − 461 = 118 rows
/// should be absorbed by a Hamming-1 representative.
const VARIANT_ROWS: usize = 80;

/// The fixed-seed camera catalogue used throughout the evaluation.
pub fn camera_catalog() -> CameraCatalog {
    camera_catalog_with_seed(1999)
}

/// Camera catalogue with an explicit seed.
pub fn camera_catalog_with_seed(seed: u64) -> CameraCatalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let base_rows = CAMERAS_CARDINALITY - VARIANT_ROWS;
    let mut rows: Vec<[u32; CAMERA_ATTRIBUTES]> = Vec::with_capacity(CAMERAS_CARDINALITY);

    while rows.len() < base_rows {
        let row = sample_row(&mut rng);
        // Reject exact duplicates among base rows so the near-duplicate
        // budget stays controlled by VARIANT_ROWS.
        if !rows.contains(&row) {
            rows.push(row);
        }
    }
    // Variant rows: copy an earlier row and tweak at most one attribute.
    for _ in 0..VARIANT_ROWS {
        let src = rows[rng.random_range(0..rows.len())];
        let mut row = src;
        // 1-in-5 rows are exact duplicates (re-badged models); the rest
        // change exactly one non-brand attribute.
        if rng.random_range(0..5u32) != 0 {
            let dim = rng.random_range(1..CAMERA_ATTRIBUTES);
            let card = attribute_cardinality(dim) as u32;
            row[dim] = (row[dim] + 1 + rng.random_range(0..card - 1)) % card;
        }
        rows.push(row);
    }

    let points = rows.iter().map(|r| Point::categorical(r)).collect();
    CameraCatalog {
        dataset: Dataset::new("cameras", Metric::Hamming, points),
        attributes: vec![
            AttributeInfo {
                name: "brand",
                values: BRANDS.to_vec(),
            },
            AttributeInfo {
                name: "line",
                values: LINES.to_vec(),
            },
            AttributeInfo {
                name: "megapixels",
                values: MEGAPIXELS.to_vec(),
            },
            AttributeInfo {
                name: "zoom",
                values: ZOOMS.to_vec(),
            },
            AttributeInfo {
                name: "interface",
                values: INTERFACES.to_vec(),
            },
            AttributeInfo {
                name: "battery",
                values: BATTERIES.to_vec(),
            },
            AttributeInfo {
                name: "storage",
                values: STORAGE.to_vec(),
            },
        ],
    }
}

fn attribute_cardinality(dim: usize) -> usize {
    match dim {
        0 => BRANDS.len(),
        1 => LINES.len(),
        2 => MEGAPIXELS.len(),
        3 => ZOOMS.len(),
        4 => INTERFACES.len(),
        5 => BATTERIES.len(),
        6 => STORAGE.len(),
        _ => unreachable!("7 attributes"),
    }
}

/// Samples one camera with brand-correlated attributes.
fn sample_row(rng: &mut StdRng) -> [u32; CAMERA_ATTRIBUTES] {
    let brand = rng.random_range(0..BRANDS.len() as u32);
    // Brand bias: each brand prefers a window of the value range for the
    // correlated attributes; a third of samples escape the window.
    let biased = |rng: &mut StdRng, card: usize, anchor: u32| -> u32 {
        if rng.random_range(0..3u32) == 0 {
            rng.random_range(0..card as u32)
        } else {
            let window = (card as u32 / 3).max(1);
            (anchor * 7 + rng.random_range(0..window)) % card as u32
        }
    };
    let line = biased(rng, LINES.len(), brand);
    // Megapixels and zoom are era-correlated: draw an "era" then sample
    // both near it.
    let era = rng.random_range(0..MEGAPIXELS.len() as u32);
    let mp = (era + rng.random_range(0..3u32)).min(MEGAPIXELS.len() as u32 - 1);
    let zoom = ((era / 2) + rng.random_range(0..3u32)).min(ZOOMS.len() as u32 - 1);
    // Popularity skew mirroring real catalogues: USB interfaces, lithium/AA
    // batteries and SD storage dominate; the skew creates the attribute
    // sharing that keeps the r = 6 DisC solution tiny (paper: 2).
    let interface = match rng.random_range(0..10u32) {
        0..=5 => 1, // USB
        6..=7 => biased(rng, INTERFACES.len(), brand.wrapping_add(era / 5)),
        _ => rng.random_range(0..INTERFACES.len() as u32),
    };
    let battery = match rng.random_range(0..10u32) {
        0..=3 => 1, // lithium
        4..=6 => 0, // AA
        _ => biased(rng, BATTERIES.len(), brand),
    };
    let storage = match rng.random_range(0..10u32) {
        0..=3 => 3, // SecureDigital
        4..=6 => biased(rng, STORAGE.len(), brand.wrapping_add(era / 4)),
        _ => rng.random_range(0..STORAGE.len() as u32),
    };
    [brand, line, mp, zoom, interface, battery, storage]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_and_schema_match_paper() {
        let c = camera_catalog();
        assert_eq!(c.dataset.len(), CAMERAS_CARDINALITY);
        assert_eq!(c.dataset.dim(), CAMERA_ATTRIBUTES);
        assert_eq!(c.dataset.metric(), Metric::Hamming);
        assert_eq!(c.attributes.len(), CAMERA_ATTRIBUTES);
    }

    #[test]
    fn codes_stay_within_schema() {
        let c = camera_catalog();
        for id in c.dataset.ids() {
            for (d, attr) in c.attributes.iter().enumerate() {
                let code = c.dataset.point(id).coord(d);
                assert_eq!(code.fract(), 0.0);
                assert!((code as usize) < attr.values.len(), "{d}: {code}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let (a, b) = (camera_catalog(), camera_catalog());
        for id in [0usize, 57, 300, 578] {
            assert_eq!(a.dataset.point(id), b.dataset.point(id));
        }
    }

    #[test]
    fn near_duplicate_tail_exists() {
        // Count rows that have a Hamming ≤ 1 twin with a smaller id:
        // these are the ones the r = 1 DisC solution absorbs; by
        // calibration the count should be near 579 − 461 = 118.
        let c = camera_catalog();
        let d = &c.dataset;
        let mut absorbed = 0usize;
        for i in 0..d.len() {
            if (0..i).any(|j| d.dist(i, j) <= 1.0) {
                absorbed += 1;
            }
        }
        assert!(
            (90..=150).contains(&absorbed),
            "absorbed rows {absorbed} out of calibration range"
        );
    }

    #[test]
    fn hamming_six_is_rare() {
        // At r = 6 nearly everything is within distance 6 of everything
        // else (rows share at least one attribute value with most rows),
        // so the r = 6 DisC solution should be tiny (paper: 2-4).
        let c = camera_catalog();
        let d = &c.dataset;
        let sampled: Vec<(usize, usize)> =
            (0..100).flat_map(|i| (0..i).map(move |j| (i, j))).collect();
        let far_pairs = sampled.iter().filter(|&&(i, j)| d.dist(i, j) > 6.0).count();
        assert!(
            far_pairs * 5 < sampled.len(),
            "{far_pairs}/{} pairs differ in all attributes",
            sampled.len()
        );
    }

    #[test]
    fn describe_renders_labels() {
        let c = camera_catalog();
        let s = c.describe(0);
        assert!(s.contains("brand="));
        assert!(s.contains("storage="));
        let label = c.label(0, 0);
        assert!(BRANDS.contains(&label));
    }
}
