//! Workload generators for the DisC diversity evaluation (paper
//! Section 6).
//!
//! Four datasets, all seeded and fully reproducible:
//!
//! * [`synthetic::uniform`] — points uniformly distributed in `[0, 1]^d`;
//! * [`synthetic::clustered`] — hyper-spherical clusters of different
//!   sizes (the paper's "Clustered"/"normal" default);
//! * [`cities`] — a synthetic replica of the paper's 5,922 Greek
//!   cities/villages (the original rtreeportal.org dump is not
//!   redistributable; see DESIGN.md §4 for why the substitution preserves
//!   the experiments' behaviour);
//! * [`cameras`] — a synthetic replica of the paper's 579-camera
//!   catalogue with 7 categorical attributes under the Hamming distance
//!   (the original acme.com source is defunct; see DESIGN.md §4).
//!
//! [`spec::Workload`] enumerates the four for the experiment harness and
//! carries each one's paper radius sweep.

pub mod cameras;
pub mod cities;
pub mod spec;
pub mod synthetic;

pub use cameras::{camera_catalog, CameraCatalog};
pub use cities::greek_cities;
pub use spec::Workload;
