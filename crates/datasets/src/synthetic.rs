//! Synthetic workloads: "Uniform" and "Clustered" (paper Table 2).

use disc_metric::{Dataset, Metric, Point};
use rand::{rngs::StdRng, RngExt as _, SeedableRng};

/// `n` points uniformly distributed in `[0, 1]^dim` under the Euclidean
/// metric.
pub fn uniform(n: usize, dim: usize, seed: u64) -> Dataset {
    assert!(n > 0 && dim > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.random_range(0.0..1.0)).collect()))
        .collect();
    Dataset::new(format!("uniform-{n}-{dim}d"), Metric::Euclidean, points)
}

/// `n` points forming `clusters` hyper-spherical clusters of different
/// sizes in `[0, 1]^dim` (the paper's "Clustered" distribution: normally
/// distributed around cluster centres, cluster populations and spreads
/// varying).
///
/// Cluster populations follow a geometric-ish decay so some clusters are
/// dense and some sparse; spreads vary by a factor of ~4 between clusters.
/// Points are clamped to `[0, 1]^dim`.
pub fn clustered(n: usize, dim: usize, clusters: usize, seed: u64) -> Dataset {
    assert!(n > 0 && dim > 0 && clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);

    // Cluster centres keep a margin so most mass stays inside the cube.
    let centres: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.random_range(0.15..0.85)).collect())
        .collect();
    // Decaying weights: cluster k gets weight ~ 1 / (1 + k/2).
    let weights: Vec<f64> = (0..clusters)
        .map(|k| 1.0 / (1.0 + k as f64 / 2.0))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let spreads: Vec<f64> = (0..clusters)
        .map(|_| rng.random_range(0.02..0.08))
        .collect();

    let mut points = Vec::with_capacity(n);
    let mut counts = vec![0usize; clusters];
    // Deterministic allocation of points to clusters by weight.
    for (k, w) in weights.iter().enumerate() {
        counts[k] = ((w / total_w) * n as f64).round() as usize;
    }
    // Fix rounding drift on the largest cluster.
    let assigned: usize = counts.iter().sum();
    if assigned > n {
        counts[0] -= assigned - n;
    } else {
        counts[0] += n - assigned;
    }

    for (k, &count) in counts.iter().enumerate() {
        for _ in 0..count {
            let coords = (0..dim)
                .map(|d| {
                    let offset = gaussian(&mut rng) * spreads[k];
                    (centres[k][d] + offset).clamp(0.0, 1.0)
                })
                .collect();
            points.push(Point::new(coords));
        }
    }
    Dataset::new(format!("clustered-{n}-{dim}d"), Metric::Euclidean, points)
}

/// The paper's default clustered workload: 10,000 2-D points (Table 2).
pub fn paper_clustered(seed: u64) -> Dataset {
    clustered(10_000, 2, 10, seed)
}

/// The paper's default uniform workload: 10,000 2-D points (Table 2).
pub fn paper_uniform(seed: u64) -> Dataset {
    uniform(10_000, 2, seed)
}

/// Standard normal sample via Box–Muller (avoids a distribution-crate
/// dependency).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_requested_shape() {
        let d = uniform(500, 3, 1);
        assert_eq!(d.len(), 500);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.metric(), Metric::Euclidean);
        for id in d.ids() {
            for &c in d.point(id).coords() {
                assert!((0.0..=1.0).contains(&c));
            }
        }
    }

    #[test]
    fn uniform_is_reproducible_and_seed_sensitive() {
        let a = uniform(100, 2, 7);
        let b = uniform(100, 2, 7);
        let c = uniform(100, 2, 8);
        assert_eq!(a.point(42), b.point(42));
        assert_ne!(a.point(42), c.point(42));
    }

    #[test]
    fn clustered_has_requested_shape() {
        let d = clustered(1000, 2, 5, 2);
        assert_eq!(d.len(), 1000);
        assert_eq!(d.dim(), 2);
        for id in d.ids() {
            for &c in d.point(id).coords() {
                assert!((0.0..=1.0).contains(&c));
            }
        }
    }

    #[test]
    fn clustered_is_denser_than_uniform() {
        // Mean nearest-neighbour distance in a clustered set is much
        // smaller than in a uniform set of the same size.
        let n = 400;
        let (u, c) = (uniform(n, 2, 3), clustered(n, 2, 6, 3));
        let mean_nn = |d: &Dataset| {
            d.ids()
                .map(|i| {
                    d.ids()
                        .filter(|&j| j != i)
                        .map(|j| d.dist(i, j))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / n as f64
        };
        assert!(
            mean_nn(&c) < mean_nn(&u),
            "clustered {:.4} should be denser than uniform {:.4}",
            mean_nn(&c),
            mean_nn(&u)
        );
    }

    #[test]
    fn clustered_point_count_exact_despite_rounding() {
        for n in [997, 1000, 1003] {
            for k in [3, 7, 11] {
                assert_eq!(clustered(n, 2, k, 4).len(), n, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn paper_defaults_have_table2_cardinality() {
        assert_eq!(paper_uniform(0).len(), 10_000);
        assert_eq!(paper_clustered(0).len(), 10_000);
        assert_eq!(paper_clustered(0).dim(), 2);
    }
}
