//! Workload enumeration for the experiment harness: the paper's four
//! datasets with their radius sweeps.

use disc_metric::Dataset;

use crate::{cameras, cities, synthetic};

/// One of the paper's evaluation workloads (Table 2 defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// 10,000 uniform 2-D points.
    Uniform,
    /// 10,000 clustered 2-D points (the paper default "normal"
    /// distribution).
    Clustered,
    /// 5,922 Greek cities (synthetic replica).
    Cities,
    /// 579 cameras, 7 categorical attributes, Hamming metric.
    Cameras,
}

impl Workload {
    /// All four workloads in the paper's presentation order.
    pub const ALL: [Workload; 4] = [
        Workload::Uniform,
        Workload::Clustered,
        Workload::Cities,
        Workload::Cameras,
    ];

    /// Workload name as used in figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Uniform => "Uniform",
            Workload::Clustered => "Clustered",
            Workload::Cities => "Cities",
            Workload::Cameras => "Cameras",
        }
    }

    /// Materialises the dataset with the given seed (the two "real"
    /// replicas use their own fixed internal seeds so they are identical
    /// across experiments).
    pub fn build(&self, seed: u64) -> Dataset {
        match self {
            Workload::Uniform => synthetic::paper_uniform(seed),
            Workload::Clustered => synthetic::paper_clustered(seed),
            Workload::Cities => cities::greek_cities(),
            Workload::Cameras => cameras::camera_catalog().dataset,
        }
    }

    /// The radius sweep used for this workload in Table 3 / Figures 7–8.
    pub fn paper_radii(&self) -> Vec<f64> {
        match self {
            Workload::Uniform | Workload::Clustered => (1..=7).map(|i| i as f64 * 0.01).collect(),
            Workload::Cities => vec![0.001, 0.0025, 0.005, 0.0075, 0.010, 0.0125, 0.015],
            Workload::Cameras => (1..=6).map(|i| i as f64).collect(),
        }
    }

    /// The subset of radii used by the zooming experiments
    /// (Figures 11–16), ordered small → large.
    pub fn zoom_radii(&self) -> Vec<f64> {
        match self {
            Workload::Uniform | Workload::Clustered => (1..=7).map(|i| i as f64 * 0.01).collect(),
            Workload::Cities => vec![0.001, 0.0025, 0.005, 0.0075, 0.010, 0.0125],
            Workload::Cameras => (1..=6).map(|i| i as f64).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::Metric;

    #[test]
    fn builds_all_workloads() {
        assert_eq!(Workload::Uniform.build(0).len(), 10_000);
        assert_eq!(Workload::Clustered.build(0).len(), 10_000);
        assert_eq!(Workload::Cities.build(0).len(), 5_922);
        assert_eq!(Workload::Cameras.build(0).len(), 579);
    }

    #[test]
    fn metric_assignment() {
        assert_eq!(Workload::Cameras.build(0).metric(), Metric::Hamming);
        assert_eq!(Workload::Cities.build(0).metric(), Metric::Euclidean);
    }

    #[test]
    fn radius_sweeps_match_paper_axes() {
        assert_eq!(Workload::Uniform.paper_radii().len(), 7);
        assert_eq!(Workload::Clustered.paper_radii()[0], 0.01);
        assert_eq!(Workload::Clustered.paper_radii()[6], 0.07);
        assert_eq!(Workload::Cities.paper_radii()[0], 0.001);
        assert_eq!(
            Workload::Cameras.paper_radii(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
    }

    #[test]
    fn names_and_all() {
        assert_eq!(Workload::ALL.len(), 4);
        assert_eq!(Workload::Clustered.name(), "Clustered");
    }
}
