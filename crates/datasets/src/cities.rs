//! A synthetic replica of the paper's "Cities" dataset.
//!
//! The original is a collection of 5,922 2-D points for Greek cities and
//! villages from rtreeportal.org, normalised to `[0, 1]²` (paper
//! Section 6). The dump is not redistributable, so this module generates a
//! population-geography-like point set with the same cardinality and the
//! statistical properties the experiments depend on (see DESIGN.md §4):
//!
//! * a few large conurbations (dense, thousands of points),
//! * many mid-sized towns with satellite villages,
//! * sparse island chains and rural scatter,
//! * min-max normalisation to `[0, 1]²` under the Euclidean metric.
//!
//! The generator is fixed-seed by default ([`greek_cities`]) so every run
//! of the experiment harness sees the identical dataset.

use disc_metric::{Dataset, Metric, Point};
use rand::{rngs::StdRng, RngExt as _, SeedableRng};

use crate::synthetic::gaussian;

/// Cardinality of the paper's Cities dataset.
pub const CITIES_CARDINALITY: usize = 5_922;

/// The fixed-seed Cities replica used throughout the evaluation.
pub fn greek_cities() -> Dataset {
    cities_with_seed(1821)
}

/// Cities replica with an explicit seed (tests use this to check
/// robustness of downstream code against resampling).
pub fn cities_with_seed(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points: Vec<Point> = Vec::with_capacity(CITIES_CARDINALITY);

    // Two dominant conurbations (Athens, Thessaloniki analogues):
    // anisotropic dense blobs holding ~30% of all settlements.
    let conurbations = [
        (0.62, 0.35, 0.045, 0.030, 1_150usize),
        (0.48, 0.78, 0.035, 0.025, 620usize),
    ];
    for &(cx, cy, sx, sy, count) in &conurbations {
        for _ in 0..count {
            points.push(clamped(
                cx + gaussian(&mut rng) * sx,
                cy + gaussian(&mut rng) * sy,
            ));
        }
    }

    // ~45 regional towns, each with a Gaussian halo of villages. Sizes
    // decay with rank (Zipf-like), spreads vary.
    let towns = 45usize;
    let mut town_centres = Vec::with_capacity(towns);
    for _ in 0..towns {
        town_centres.push((rng.random_range(0.08..0.92), rng.random_range(0.08..0.92)));
    }
    let town_total: usize = CITIES_CARDINALITY - 1_770 - 700; // rest after conurbations and scatter
    let weights: Vec<f64> = (0..towns).map(|k| 1.0 / (1.0 + k as f64)).collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut produced = 0usize;
    for (k, &(cx, cy)) in town_centres.iter().enumerate() {
        let mut count = ((weights[k] / weight_sum) * town_total as f64).round() as usize;
        if k == towns - 1 {
            count = town_total - produced; // absorb rounding drift
        }
        produced += count;
        let spread = rng.random_range(0.012..0.05);
        for _ in 0..count {
            points.push(clamped(
                cx + gaussian(&mut rng) * spread,
                cy + gaussian(&mut rng) * spread,
            ));
        }
    }

    // Island chains / rural scatter: uniform noise, 700 points.
    while points.len() < CITIES_CARDINALITY {
        points.push(clamped(
            rng.random_range(0.0..1.0),
            rng.random_range(0.0..1.0),
        ));
    }
    points.truncate(CITIES_CARDINALITY);

    Dataset::new("cities", Metric::Euclidean, points).normalized()
}

fn clamped(x: f64, y: f64) -> Point {
    Point::new2(x.clamp(0.0, 1.0), y.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_paper() {
        let d = greek_cities();
        assert_eq!(d.len(), CITIES_CARDINALITY);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.metric(), Metric::Euclidean);
    }

    #[test]
    fn normalised_to_unit_square() {
        let d = greek_cities();
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for id in d.ids() {
            for (k, &c) in d.point(id).coords().iter().enumerate() {
                assert!((0.0..=1.0).contains(&c));
                lo[k] = lo[k].min(c);
                hi[k] = hi[k].max(c);
            }
        }
        // Min-max normalisation touches both ends.
        assert!(lo[0] < 1e-9 && lo[1] < 1e-9);
        assert!(hi[0] > 1.0 - 1e-9 && hi[1] > 1.0 - 1e-9);
    }

    #[test]
    fn deterministic() {
        let (a, b) = (greek_cities(), greek_cities());
        for id in [0usize, 100, 3000, 5921] {
            assert_eq!(a.point(id), b.point(id));
        }
    }

    #[test]
    fn strongly_non_uniform_density() {
        // Compare mean nearest-neighbour distance against a uniform set of
        // the same size: the cities replica must be substantially denser
        // locally (clustered), which is what drives the paper's Cities
        // results.
        let cities = greek_cities();
        let uni = crate::synthetic::uniform(CITIES_CARDINALITY, 2, 9);
        // Sample every 20th point to keep the O(n²) check fast.
        let mean_nn = |d: &Dataset| {
            let ids: Vec<usize> = (0..d.len()).step_by(20).collect();
            ids.iter()
                .map(|&i| {
                    d.ids()
                        .filter(|&j| j != i)
                        .map(|j| d.dist(i, j))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / ids.len() as f64
        };
        let (c, u) = (mean_nn(&cities), mean_nn(&uni));
        assert!(c < u * 0.8, "cities nn {c:.5} vs uniform nn {u:.5}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = cities_with_seed(1);
        let b = cities_with_seed(2);
        assert_ne!(a.point(10), b.point(10));
    }
}
