//! Bench companion of Table 3: wall-clock time of every heuristic the
//! table reports (B-DisC, G-DisC, the Lazy variants and G-C) at a small
//! and a large radius on the clustered workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_bench::{bench_clustered, bench_tree};
use disc_core::Heuristic;
use std::hint::black_box;

fn table3(c: &mut Criterion) {
    let data = bench_clustered(2_000);
    let tree = bench_tree(&data);
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for (name, h) in Heuristic::table3_rows() {
        for r in [0.02, 0.06] {
            group.bench_with_input(
                BenchmarkId::new(name.clone(), format!("r={r}")),
                &r,
                |b, &r| b.iter(|| black_box(h.run(&tree, r).size())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
