//! Bench companion of Figure 10: M-tree construction under the four
//! splitting policies and the query cost Greedy-DisC pays on each tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_bench::{bench_uniform, BENCH_SEED};
use disc_core::{greedy_disc, GreedyVariant};
use disc_mtree::{MTree, MTreeConfig, SplitPolicy};
use std::hint::black_box;

fn build(c: &mut Criterion) {
    let data = bench_uniform(2_000);
    let mut group = c.benchmark_group("fig10_build");
    group.sample_size(10);
    for (name, policy) in SplitPolicy::figure10_policies() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            b.iter(|| {
                let cfg = MTreeConfig {
                    capacity: 50,
                    split_policy: p,
                    seed: BENCH_SEED,
                    ..MTreeConfig::default()
                };
                black_box(MTree::build(&data, cfg).node_count())
            })
        });
    }
    group.finish();
}

fn query(c: &mut Criterion) {
    let data = bench_uniform(2_000);
    let mut group = c.benchmark_group("fig10_greedy_on_policy");
    group.sample_size(10);
    for (name, policy) in SplitPolicy::figure10_policies() {
        let tree = MTree::build(
            &data,
            MTreeConfig {
                capacity: 50,
                split_policy: policy,
                seed: BENCH_SEED,
                ..MTreeConfig::default()
            },
        );
        tree.reset_node_accesses();
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| black_box(greedy_disc(&tree, 0.2, GreedyVariant::Grey, true).size()))
        });
    }
    group.finish();
}

criterion_group!(benches, build, query);
criterion_main!(benches);
