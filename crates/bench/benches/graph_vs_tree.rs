//! Bulk neighbourhood materialisation: CSR graph build (M-tree
//! self-join vs O(n²) scan vs sharded scan) and graph-resident vs
//! tree-backed selection loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use disc_bench::{bench_clustered, bench_tree};
use disc_core::{greedy_c, greedy_c_graph, greedy_disc, greedy_disc_graph, GreedyVariant};
use disc_graph::UnitDiskGraph;
use std::hint::black_box;

const RADIUS: f64 = 0.04;

/// Materialising `G_{P,r}`: dual-tree self-join vs all-pairs scans.
fn graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(10);
    for n in [1_000usize, 2_000, 4_000] {
        let data = bench_clustered(n);
        let tree = bench_tree(&data);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("self_join", n), &n, |b, _| {
            b.iter(|| black_box(UnitDiskGraph::from_mtree(&tree, RADIUS).edge_count()))
        });
        group.bench_with_input(BenchmarkId::new("scan_n2", n), &n, |b, _| {
            b.iter(|| black_box(UnitDiskGraph::build(&data, RADIUS).edge_count()))
        });
        #[cfg(feature = "parallel")]
        group.bench_with_input(BenchmarkId::new("scan_n2_parallel", n), &n, |b, _| {
            b.iter(|| black_box(UnitDiskGraph::build_parallel(&data, RADIUS).edge_count()))
        });
    }
    group.finish();
}

/// Selection loops over a resident graph vs tree-backed range queries.
/// The graph side excludes materialisation (see `graph_build` and the
/// `fig_graph_vs_tree` binary for end-to-end numbers).
fn selection(c: &mut Criterion) {
    let data = bench_clustered(2_000);
    let tree = bench_tree(&data);
    let graph = UnitDiskGraph::from_mtree(&tree, RADIUS);
    let mut group = c.benchmark_group("graph_vs_tree_selection");
    group.sample_size(10);
    group.bench_function("greedy_disc_graph", |b| {
        b.iter(|| black_box(greedy_disc_graph(&graph).size()))
    });
    group.bench_function("greedy_disc_tree_pruned", |b| {
        b.iter(|| black_box(greedy_disc(&tree, RADIUS, GreedyVariant::Grey, true).size()))
    });
    group.bench_function("greedy_c_graph", |b| {
        b.iter(|| black_box(greedy_c_graph(&graph).size()))
    });
    group.bench_function("greedy_c_tree", |b| {
        b.iter(|| black_box(greedy_c(&tree, RADIUS).size()))
    });
    group.finish();
}

criterion_group!(benches, graph_build, selection);
criterion_main!(benches);
