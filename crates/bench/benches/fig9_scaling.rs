//! Bench companion of Figure 9: Greedy-DisC scaling with dataset
//! cardinality and dimensionality, plus the query-hot-path comparisons
//! (parent-distance pruning on/off, count seeding serial vs threaded).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use disc_bench::{bench_tree, BENCH_SEED};
use disc_core::{greedy_disc, par, GreedyVariant};
use disc_datasets::synthetic::clustered;
use disc_mtree::{MTree, MTreeConfig};
use std::hint::black_box;

fn cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_cardinality");
    group.sample_size(10);
    for n in [500usize, 1_000, 2_000, 4_000] {
        let data = clustered(n, 2, 8, BENCH_SEED);
        let tree = bench_tree(&data);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(greedy_disc(&tree, 0.04, GreedyVariant::Grey, true).size()))
        });
    }
    group.finish();
}

fn dimensionality(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_dimensionality");
    group.sample_size(10);
    for d in [2usize, 4, 6, 8, 10] {
        let data = clustered(1_000, d, 8, BENCH_SEED);
        let tree = bench_tree(&data);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(greedy_disc(&tree, 0.04, GreedyVariant::Grey, true).size()))
        });
    }
    group.finish();
}

/// Wall-clock effect of the parent-distance lemma on Greedy-DisC (same
/// solutions, fewer distance computations).
fn parent_pruning(c: &mut Criterion) {
    let data = clustered(2_000, 2, 8, BENCH_SEED);
    let mut group = c.benchmark_group("fig9_parent_pruning");
    group.sample_size(10);
    for (label, pruning) in [("lemma_on", true), ("lemma_off", false)] {
        let tree = MTree::build(&data, MTreeConfig::default().with_parent_pruning(pruning));
        tree.reset_node_accesses();
        group.bench_function(label, |b| {
            b.iter(|| black_box(greedy_disc(&tree, 0.04, GreedyVariant::Grey, true).size()))
        });
    }
    group.finish();
}

/// Count seeding (one range query per object): serial loop vs the
/// threaded fan-out used under the `parallel` feature.
fn seeding(c: &mut Criterion) {
    let data = clustered(4_000, 2, 8, BENCH_SEED);
    let tree = bench_tree(&data);
    let seed_serial = || {
        par::seed_counts_serial(data.len(), |id, scratch: &mut Vec<usize>| {
            tree.range_query_objs_into(id, 0.04, scratch);
            (scratch.len() - 1) as u32
        })
    };
    let mut group = c.benchmark_group("fig9_count_seeding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("serial", |b| b.iter(|| black_box(seed_serial())));
    #[cfg(feature = "parallel")]
    group.bench_function("parallel", |b| {
        b.iter(|| {
            black_box(par::seed_counts_parallel(
                data.len(),
                |id, scratch: &mut Vec<usize>| {
                    tree.range_query_objs_into(id, 0.04, scratch);
                    (scratch.len() - 1) as u32
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    cardinality,
    dimensionality,
    parent_pruning,
    seeding
);
criterion_main!(benches);
