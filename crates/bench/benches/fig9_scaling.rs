//! Bench companion of Figure 9: Greedy-DisC scaling with dataset
//! cardinality and dimensionality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use disc_bench::{bench_tree, BENCH_SEED};
use disc_core::{greedy_disc, GreedyVariant};
use disc_datasets::synthetic::clustered;
use std::hint::black_box;

fn cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_cardinality");
    group.sample_size(10);
    for n in [500usize, 1_000, 2_000, 4_000] {
        let data = clustered(n, 2, 8, BENCH_SEED);
        let tree = bench_tree(&data);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(greedy_disc(&tree, 0.04, GreedyVariant::Grey, true).size()))
        });
    }
    group.finish();
}

fn dimensionality(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_dimensionality");
    group.sample_size(10);
    for d in [2usize, 4, 6, 8, 10] {
        let data = clustered(1_000, d, 8, BENCH_SEED);
        let tree = bench_tree(&data);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(greedy_disc(&tree, 0.04, GreedyVariant::Grey, true).size()))
        });
    }
    group.finish();
}

criterion_group!(benches, cardinality, dimensionality);
criterion_main!(benches);
