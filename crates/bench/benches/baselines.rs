//! Bench companion of Figure 6: the comparison models (MaxMin, MaxSum,
//! k-medoids) against DisC and r-C at a matched k.

use criterion::{criterion_group, criterion_main, Criterion};
use disc_baselines::{kmedoids, maxmin_select, maxsum_select};
use disc_bench::{bench_clustered, bench_tree, BENCH_SEED};
use disc_core::{fast_c, greedy_c, greedy_disc, GreedyVariant};
use std::hint::black_box;

fn models(c: &mut Criterion) {
    let data = bench_clustered(1_000);
    let tree = bench_tree(&data);
    let r = 0.15;
    let k = greedy_disc(&tree, r, GreedyVariant::Grey, true)
        .size()
        .max(2);

    let mut group = c.benchmark_group("fig6_models");
    group.sample_size(10);
    group.bench_function("r-DisC (Greedy-DisC)", |b| {
        b.iter(|| black_box(greedy_disc(&tree, r, GreedyVariant::Grey, true).size()))
    });
    group.bench_function("r-C (Greedy-C)", |b| {
        b.iter(|| black_box(greedy_c(&tree, r).size()))
    });
    group.bench_function("Fast-C", |b| b.iter(|| black_box(fast_c(&tree, r).size())));
    group.bench_function("MaxMin", |b| {
        b.iter(|| black_box(maxmin_select(&data, k).len()))
    });
    group.bench_function("MaxSum", |b| {
        b.iter(|| black_box(maxsum_select(&data, k).len()))
    });
    group.bench_function("k-medoids", |b| {
        b.iter(|| black_box(kmedoids(&data, k, BENCH_SEED).medoids.len()))
    });
    group.finish();
}

criterion_group!(benches, models);
criterion_main!(benches);
