//! Bench companion of Figures 7 and 8: wall-clock time of the
//! basic/greedy heuristics with and without pruning, plus the pruned
//! greedy update-strategy variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_bench::{bench_clustered, bench_tree, bench_uniform};
use disc_core::Heuristic;
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    let uniform = bench_uniform(2_000);
    let clustered = bench_clustered(2_000);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for (dname, data) in [("uniform", &uniform), ("clustered", &clustered)] {
        let tree = bench_tree(data);
        for (name, h) in Heuristic::figure7_series() {
            group.bench_with_input(BenchmarkId::new(name.clone(), dname), &0.04, |b, &r| {
                b.iter(|| black_box(h.run(&tree, r).node_accesses))
            });
        }
    }
    group.finish();
}

fn fig8(c: &mut Criterion) {
    let clustered = bench_clustered(2_000);
    let tree = bench_tree(&clustered);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for (name, h) in Heuristic::figure8_series() {
        group.bench_with_input(
            BenchmarkId::new(name.clone(), "clustered"),
            &0.04,
            |b, &r| b.iter(|| black_box(h.run(&tree, r).node_accesses)),
        );
    }
    group.finish();
}

criterion_group!(benches, fig7, fig8);
criterion_main!(benches);
