//! Bench companion of Figures 11–16: zoom-in and zoom-out operators
//! against a from-scratch Greedy-DisC recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disc_bench::{bench_clustered, bench_tree};
use disc_core::{
    greedy_disc, greedy_zoom_in, greedy_zoom_out, zoom_in, zoom_out, GreedyVariant, ZoomOutVariant,
};
use std::hint::black_box;

fn zoom_in_group(c: &mut Criterion) {
    let data = bench_clustered(2_000);
    let tree = bench_tree(&data);
    let prev = greedy_disc(&tree, 0.06, GreedyVariant::Grey, true);
    let r_new = 0.03;
    let mut group = c.benchmark_group("fig11_13_zoom_in");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("scratch", "Greedy-DisC"), |b| {
        b.iter(|| black_box(greedy_disc(&tree, r_new, GreedyVariant::Grey, true).size()))
    });
    group.bench_function(BenchmarkId::new("zoom", "Zoom-In"), |b| {
        b.iter(|| black_box(zoom_in(&tree, &prev, r_new).result.size()))
    });
    group.bench_function(BenchmarkId::new("zoom", "Greedy-Zoom-In"), |b| {
        b.iter(|| black_box(greedy_zoom_in(&tree, &prev, r_new).result.size()))
    });
    group.finish();
}

fn zoom_out_group(c: &mut Criterion) {
    let data = bench_clustered(2_000);
    let tree = bench_tree(&data);
    let prev = greedy_disc(&tree, 0.03, GreedyVariant::Grey, true);
    let r_new = 0.06;
    let mut group = c.benchmark_group("fig14_16_zoom_out");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("scratch", "Greedy-DisC"), |b| {
        b.iter(|| black_box(greedy_disc(&tree, r_new, GreedyVariant::Grey, true).size()))
    });
    group.bench_function(BenchmarkId::new("zoom", "Zoom-Out"), |b| {
        b.iter(|| black_box(zoom_out(&tree, &prev, r_new).result.size()))
    });
    for v in [
        ZoomOutVariant::GreedyA,
        ZoomOutVariant::GreedyB,
        ZoomOutVariant::GreedyC,
    ] {
        group.bench_function(BenchmarkId::new("zoom", v.name()), |b| {
            b.iter(|| black_box(greedy_zoom_out(&tree, &prev, r_new, v).result.size()))
        });
    }
    group.finish();
}

criterion_group!(benches, zoom_in_group, zoom_out_group);
criterion_main!(benches);
