//! Scale-tier sharded-build measurement — the `BENCH_scale.json`
//! producer for the 10^5–10^6 object tier.
//!
//! Runs the full [`disc_core::build_sharded_with`] pipeline (spatial
//! partitioning, per-shard M-trees, intra-shard self-joins, boundary
//! cross-joins, multi-slice CSR assembly) over a clustered and a
//! uniform 2-D workload and records, per workload: the per-phase
//! wall-clocks, the exact distance/node accounting (deterministic at
//! every worker count), the boundary-join share of the join work, and
//! the process peak RSS (`VmHWM`).
//!
//! The binary *fails* (non-zero exit) when the boundary joins charge
//! 25% or more of the total join distance computations on the
//! clustered workload — the overhead bound that keeps the sharded
//! pipeline honest as a scale-out story (boundary work must stay a
//! fringe, not a second all-pairs join). Smoke tiers (`SCALE_N` below
//! `100_000`) report the share but skip the gate: the degree-targeted
//! radius grows as `1/sqrt(n)`, so at small `n` the boundary bands
//! are proportionally thicker and the share is not comparable to the
//! acceptance tier's.
//!
//! Usage: `cargo run --release -p disc-bench --bin measure_scale
//! [-- <output-path>]` (default `BENCH_scale.json`).
//!
//! * `SCALE_N` — object count (default `100_000`; CI smoke uses
//!   `20_000`).
//! * `SCALE_SHARDS` — shard count (default `8`).
//! * `SCALE_MILLION=1` — additionally run the 10^6 tier (off by
//!   default: ~1 GiB peak on the clustered workload).
//! * `SELF_JOIN_THREADS` — worker threads (default: one per core).
//!
//! The radius per tier targets a mean degree of ~60 on the uniform
//! workload (`r = sqrt(60 / (π·n))`), so edge volume grows linearly
//! with `n` instead of quadratically; the clustered workload reuses
//! the same radius and lands denser (its local neighbourhoods are
//! tighter), which is exactly the regime the boundary-share gate
//! cares about.

use disc_bench::{measure_scale, peak_rss_kib, self_join_threads_from_env, BENCH_SEED};
use disc_datasets::synthetic::{clustered, uniform};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let n: usize = std::env::var("SCALE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let shards: usize = std::env::var("SCALE_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let million = std::env::var("SCALE_MILLION").is_ok_and(|v| v == "1");
    let threads = self_join_threads_from_env().unwrap_or(0);

    let mut tiers = vec![n];
    if million {
        tiers.push(1_000_000);
    }

    let mut rows = Vec::new();
    for tier_n in tiers {
        // Degree-60 target on the uniform square: n·π·r² ≈ 60.
        let radius = (60.0 / (std::f64::consts::PI * tier_n as f64)).sqrt();
        eprintln!(
            "measure_scale: n={tier_n} dim=2 seed={BENCH_SEED} r={radius:.5} \
             shards={shards} threads={}",
            if threads == 0 {
                "auto".to_string()
            } else {
                threads.to_string()
            }
        );
        for (workload, data) in [
            ("clustered", clustered(tier_n, 2, 8, BENCH_SEED)),
            ("uniform", uniform(tier_n, 2, BENCH_SEED)),
        ] {
            let m = measure_scale(&data, workload, radius, shards, threads);
            let s = &m.stats;
            eprintln!(
                "  {workload}: {} edges (mean degree {:.1}), {:.0}ms total \
                 (partition {:.0} + renumber {:.0} + tree {:.0} + intra {:.0} \
                 + boundary {:.0} + merge {:.0} + assembly {:.0}), \
                 {} dc (boundary share {:.2}%), {} pairs joined of {}, \
                 peak RSS {} MiB",
                s.edges,
                m.mean_degree,
                m.build_ms,
                s.partition_ms,
                s.renumber_ms,
                s.tree_ms,
                s.intra_join_ms,
                s.boundary_join_ms,
                s.merge_ms,
                s.assembly_ms,
                s.distance_computations(),
                s.boundary_dc_share() * 100.0,
                s.boundary_pairs_joined,
                s.boundary_pairs_considered,
                m.peak_rss_kib / 1024
            );
            if workload == "clustered" && tier_n >= 100_000 {
                assert!(
                    m.boundary_share_bounded(),
                    "boundary-join overhead gate: boundary joins charged {:.1}% \
                     of the join distance computations on the clustered workload \
                     (bound: 25%)",
                    s.boundary_dc_share() * 100.0
                );
            }
            rows.push(m.to_json());
        }
    }

    let json = format!(
        "{{\n  \"seed\": {BENCH_SEED},\n  \"shards\": {shards},\n  \
         \"peak_rss_kib\": {},\n  \"workloads\": [\n    {}\n  ]\n}}\n",
        peak_rss_kib(),
        rows.join(",\n    ")
    );
    std::fs::write(&out_path, &json).expect("write scale report");
    eprintln!("measure_scale: wrote {out_path}; boundary-share gate passed");
    println!("{json}");
}
