//! Graph-resident vs tree-backed pipeline comparison, with regression
//! gates — the CI companion of the `graph_vs_tree` section that
//! `fig9_report` records into `BENCH_fig9.json`.
//!
//! Two ways to run Greedy-DisC / Greedy-C on the fig9 clustered
//! workload:
//!
//! * **tree-backed** — the pruned M-tree runners (range queries in the
//!   selection loop);
//! * **graph-resident** — one `MTree::range_self_join` materialises the
//!   CSR neighbourhood graph, then the selection loop runs with zero
//!   index queries.
//!
//! The binary *fails* (non-zero exit) when the bulk materialisation
//! stops paying for itself:
//!
//! 1. the self-join's `distance_computations()` must stay below the
//!    O(n²) all-pairs count `n(n−1)/2`;
//! 2. the graph-resident end-to-end run (self-join build + select) must
//!    not exceed the tree-backed pruned run's distance computations;
//! 3. graph-resident solutions must equal the tree-backed exact ones;
//! 4. **parallel/serial parity** — the parallel self-join must charge
//!    exactly the serial traversal's `distance_computations()`, emit a
//!    byte-identical edge list, assemble a byte-identical sharded CSR,
//!    and select the same solution (the `selfjoin_par` section).
//!
//! Usage: `cargo run --release -p disc-bench --bin fig_graph_vs_tree
//! [-- <output-path>]` (default `BENCH_graph_vs_tree.json`). `GRAPH_N`
//! overrides the object count: CI's smoke gate runs at `GRAPH_N=2000`;
//! the acceptance workload is 10_000. `SELF_JOIN_THREADS` forces the
//! parallel side's worker count (CI runs a 1/2/3/8 matrix of these).

use disc_bench::{
    measure_graph_vs_tree, measure_selfjoin_par, self_join_threads_from_env, BENCH_SEED,
};
use disc_datasets::synthetic::clustered;
use disc_mtree::{MTree, MTreeConfig};

const RADIUS: f64 = 0.04;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_graph_vs_tree.json".to_string());
    let n: usize = std::env::var("GRAPH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let smoke = n < 10_000;

    eprintln!("fig_graph_vs_tree: clustered n={n} dim=2 clusters=8 seed={BENCH_SEED} r={RADIUS}");
    let data = clustered(n, 2, 8, BENCH_SEED);
    let tree = MTree::build(&data, MTreeConfig::default());

    // Shared measurement (also asserts graph-resident solutions equal
    // the tree-backed exact ones).
    let m = measure_graph_vs_tree(&tree, RADIUS);

    eprintln!(
        "  self-join: {} edges, {} distance comps ({:.1}% of n(n-1)/2={}), build {:.1}ms",
        m.edges,
        m.self_join_dc,
        100.0 * m.self_join_dc as f64 / m.pairs_all as f64,
        m.pairs_all,
        m.build_ms
    );
    eprintln!(
        "  greedy_disc: graph build+select {:.1}ms / {} dc vs tree {:.1}ms / {} dc (|S|={})",
        m.build_ms + m.disc_select_ms,
        m.self_join_dc,
        m.disc_tree_ms,
        m.disc_tree_dc,
        m.disc_size
    );
    eprintln!(
        "  greedy_c:    graph build+select {:.1}ms / {} dc vs tree {:.1}ms / {} dc (|S|={})",
        m.build_ms + m.c_select_ms,
        m.self_join_dc,
        m.c_tree_ms,
        m.c_tree_dc,
        m.c_size
    );

    // ---------------------------------------------------------------
    // Serial vs parallel self-join build.
    // ---------------------------------------------------------------
    let sj = measure_selfjoin_par(&tree, RADIUS, self_join_threads_from_env());
    eprintln!(
        "  self-join par: serial {:.1}ms vs parallel {:.1}ms ({:.2}x, threads={}{}), \
         dc {} vs {}",
        sj.serial_ms,
        sj.parallel_ms,
        sj.speedup(),
        sj.threads,
        if sj.forced { " forced" } else { "" },
        sj.serial_dc,
        sj.parallel_dc
    );

    // ---------------------------------------------------------------
    // Gates (solution equality is asserted inside the measurement).
    // ---------------------------------------------------------------
    assert!(
        m.self_join_dc < m.pairs_all,
        "self-join regressed above the O(n²) pair count: {} >= {}",
        m.self_join_dc,
        m.pairs_all
    );
    assert!(
        m.self_join_dc <= m.disc_tree_dc,
        "graph pipeline (self-join {} dc) no longer beats the tree-backed \
         pruned Greedy-DisC ({} dc)",
        m.self_join_dc,
        m.disc_tree_dc
    );
    assert_eq!(
        sj.parallel_dc, sj.serial_dc,
        "parallel self-join lost or double-counted distance computations"
    );
    assert!(
        sj.edges_identical,
        "parallel self-join edge list diverged from the serial traversal"
    );
    assert!(
        sj.csr_identical,
        "sharded CSR assembly diverged from the serial assembly"
    );
    assert!(
        sj.solutions_identical,
        "greedy_disc_graph solutions diverged between serial and parallel builds"
    );

    let json = format!(
        "{{\n  \"workload\": {{\"dataset\": \"clustered\", \"n\": {n}, \"dim\": 2, \
         \"clusters\": 8, \"seed\": {BENCH_SEED}, \"radius\": {RADIUS}, \"smoke\": {smoke}}},\n\
         \x20 \"pairs_all\": {},\n\
         \x20 \"self_join\": {{\"distance_computations\": {}, \"edges\": {}, \
         \"build_ms\": {:.3}}},\n\
         \x20 \"greedy_disc\": {{\"graph\": {{\"total_distance_computations\": {}, \
         \"build_plus_select_ms\": {:.3}}}, \"tree_pruned\": {{\"distance_computations\": \
         {}, \"total_ms\": {:.3}}}, \"solution_size\": {}}},\n\
         \x20 \"greedy_c\": {{\"graph\": {{\"total_distance_computations\": {}, \
         \"build_plus_select_ms\": {:.3}}}, \"tree\": {{\"distance_computations\": {}, \
         \"total_ms\": {:.3}}}, \"solution_size\": {}}},\n\
         \x20 \"selfjoin_par\": {}\n}}\n",
        m.pairs_all,
        m.self_join_dc,
        m.edges,
        m.build_ms,
        m.self_join_dc,
        m.build_ms + m.disc_select_ms,
        m.disc_tree_dc,
        m.disc_tree_ms,
        m.disc_size,
        m.self_join_dc,
        m.build_ms + m.c_select_ms,
        m.c_tree_dc,
        m.c_tree_ms,
        m.c_size,
        sj.to_json(),
    );
    std::fs::write(&out_path, &json).expect("write graph-vs-tree report");
    eprintln!("fig_graph_vs_tree: wrote {out_path}; all gates passed");
    println!("{json}");
}
