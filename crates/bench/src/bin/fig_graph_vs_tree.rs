//! Graph-resident vs tree-backed pipeline comparison, with regression
//! gates — the CI companion of the `graph_vs_tree` section that
//! `fig9_report` records into `BENCH_fig9.json`.
//!
//! Two ways to run Greedy-DisC / Greedy-C on the fig9 clustered
//! workload:
//!
//! * **tree-backed** — the pruned M-tree runners (range queries in the
//!   selection loop);
//! * **graph-resident** — one `MTree::range_self_join` materialises the
//!   CSR neighbourhood graph, then the selection loop runs with zero
//!   index queries.
//!
//! The binary *fails* (non-zero exit) when the bulk materialisation
//! stops paying for itself:
//!
//! 1. the self-join's `distance_computations()` must stay below the
//!    O(n²) all-pairs count `n(n−1)/2`;
//! 2. the graph-resident end-to-end run (self-join build + select) must
//!    not exceed the tree-backed pruned run's distance computations;
//! 3. graph-resident solutions must equal the tree-backed exact ones.
//!
//! Usage: `cargo run --release -p disc-bench --bin fig_graph_vs_tree
//! [-- <output-path>]` (default `BENCH_graph_vs_tree.json`). `GRAPH_N`
//! overrides the object count: CI's smoke gate runs at `GRAPH_N=2000`;
//! the acceptance workload is 10_000.

use disc_bench::{measure_graph_vs_tree, BENCH_SEED};
use disc_datasets::synthetic::clustered;
use disc_mtree::{MTree, MTreeConfig};

const RADIUS: f64 = 0.04;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_graph_vs_tree.json".to_string());
    let n: usize = std::env::var("GRAPH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let smoke = n < 10_000;

    eprintln!("fig_graph_vs_tree: clustered n={n} dim=2 clusters=8 seed={BENCH_SEED} r={RADIUS}");
    let data = clustered(n, 2, 8, BENCH_SEED);
    let tree = MTree::build(&data, MTreeConfig::default());

    // Shared measurement (also asserts graph-resident solutions equal
    // the tree-backed exact ones).
    let m = measure_graph_vs_tree(&tree, RADIUS);

    eprintln!(
        "  self-join: {} edges, {} distance comps ({:.1}% of n(n-1)/2={}), build {:.1}ms",
        m.edges,
        m.self_join_dc,
        100.0 * m.self_join_dc as f64 / m.pairs_all as f64,
        m.pairs_all,
        m.build_ms
    );
    eprintln!(
        "  greedy_disc: graph build+select {:.1}ms / {} dc vs tree {:.1}ms / {} dc (|S|={})",
        m.build_ms + m.disc_select_ms,
        m.self_join_dc,
        m.disc_tree_ms,
        m.disc_tree_dc,
        m.disc_size
    );
    eprintln!(
        "  greedy_c:    graph build+select {:.1}ms / {} dc vs tree {:.1}ms / {} dc (|S|={})",
        m.build_ms + m.c_select_ms,
        m.self_join_dc,
        m.c_tree_ms,
        m.c_tree_dc,
        m.c_size
    );

    // ---------------------------------------------------------------
    // Gates (solution equality is asserted inside the measurement).
    // ---------------------------------------------------------------
    assert!(
        m.self_join_dc < m.pairs_all,
        "self-join regressed above the O(n²) pair count: {} >= {}",
        m.self_join_dc,
        m.pairs_all
    );
    assert!(
        m.self_join_dc <= m.disc_tree_dc,
        "graph pipeline (self-join {} dc) no longer beats the tree-backed \
         pruned Greedy-DisC ({} dc)",
        m.self_join_dc,
        m.disc_tree_dc
    );

    let json = format!(
        "{{\n  \"workload\": {{\"dataset\": \"clustered\", \"n\": {n}, \"dim\": 2, \
         \"clusters\": 8, \"seed\": {BENCH_SEED}, \"radius\": {RADIUS}, \"smoke\": {smoke}}},\n\
         \x20 \"pairs_all\": {},\n\
         \x20 \"self_join\": {{\"distance_computations\": {}, \"edges\": {}, \
         \"build_ms\": {:.3}}},\n\
         \x20 \"greedy_disc\": {{\"graph\": {{\"total_distance_computations\": {}, \
         \"build_plus_select_ms\": {:.3}}}, \"tree_pruned\": {{\"distance_computations\": \
         {}, \"total_ms\": {:.3}}}, \"solution_size\": {}}},\n\
         \x20 \"greedy_c\": {{\"graph\": {{\"total_distance_computations\": {}, \
         \"build_plus_select_ms\": {:.3}}}, \"tree\": {{\"distance_computations\": {}, \
         \"total_ms\": {:.3}}}, \"solution_size\": {}}}\n}}\n",
        m.pairs_all,
        m.self_join_dc,
        m.edges,
        m.build_ms,
        m.self_join_dc,
        m.build_ms + m.disc_select_ms,
        m.disc_tree_dc,
        m.disc_tree_ms,
        m.disc_size,
        m.self_join_dc,
        m.build_ms + m.c_select_ms,
        m.c_tree_dc,
        m.c_tree_ms,
        m.c_size,
    );
    std::fs::write(&out_path, &json).expect("write graph-vs-tree report");
    eprintln!("fig_graph_vs_tree: wrote {out_path}; all gates passed");
    println!("{json}");
}
