//! Graph-resident vs tree-backed **zooming** comparison, with
//! regression gates — the CI companion of the `zoom_graph` section that
//! `fig9_report` records into `BENCH_fig9.json`.
//!
//! The workload is a chained zoom-in sweep over four radii on the fig9
//! clustered dataset: Greedy-DisC at `r_max`, then Greedy-Zoom-In to
//! each smaller radius, adapting the previous solution (Lemma 5 chain).
//! Two executions:
//!
//! * **tree-backed** — the Section 5.2 operators (closest-black
//!   preparation + pruned range queries at every step);
//! * **graph-resident** — one distance-annotated self-join at `r_max`
//!   builds a `StratifiedDiskGraph`; every radius of the sweep then
//!   reads sorted-adjacency prefixes and the index is never touched
//!   again.
//!
//! The binary *fails* (non-zero exit) when:
//!
//! 1. any step's graph-resident solution diverges from the tree-backed
//!    one (byte-identical pinning);
//! 2. the graph-resident sweep charges any distance computation beyond
//!    the one `r_max` annotated self-join (the acceptance invariant: a
//!    whole multi-radius sweep costs no more than one self-join);
//! 3. graph-resident zooming stops beating the tree-backed sweep on
//!    total distance computations;
//! 4. the annotated build's distance computations exceed
//!    `plain self-join + edges` (every annotated distance beyond the
//!    plain traversal must belong to an emitted edge — the
//!    inclusion-qualified pairs);
//! 5. the annotated self-join or the sharded stratified assembly loses
//!    serial/parallel parity (counters, edge bytes, CSR bytes);
//! 6. the graph-resident zoom-out and multi-radius runners diverge from
//!    their tree-backed counterparts on the same workload;
//! 7. the snapshot round trip (save → checksum-validated load) is not
//!    byte-identical, or the zoom sweep replayed on the *loaded* graph
//!    diverges from the sweep on the freshly built one — with either
//!    load path: under `--features parallel` the load validates section
//!    checksums on scoped threads, and this gate (plus the re-baselined
//!    `load_ms` in the report) is exactly as strict, because
//!    acceptance/rejection is pinned byte-identical to the serial
//!    validator;
//! 8. the hardened serving core loses hash parity with the in-process
//!    runners, drops a request from its counters, or fails to
//!    shed/degrade under deliberate saturation (`serve` section);
//! 9. streaming mutations on the loaded catalog diverge from a
//!    from-scratch rebuild over the final object set, or one insert
//!    stops beating one full rebuild by at least 10×
//!    (`streaming` section).
//!
//! Usage: `cargo run --release -p disc-bench --bin zoom_graph_vs_tree
//! [-- <output-path>]` (default `BENCH_zoom_graph.json`). `GRAPH_N`
//! overrides the object count (CI smoke runs `GRAPH_N=2000`; the
//! acceptance workload is 10_000). `SELF_JOIN_THREADS` forces the
//! parallel side's worker/shard count (CI runs a 1/2/3/8 matrix).

use disc_bench::{
    measure_serve, measure_store, measure_streaming, measure_zoom_graph_vs_tree,
    self_join_threads_from_env, BENCH_SEED,
};
use disc_core::{
    greedy_disc, greedy_disc_graph, greedy_zoom_in_graph, greedy_zoom_out, multi_radius_basic_disc,
    multi_radius_graph, multi_radius_greedy_disc, zoom_out_graph, GreedyVariant, ZoomOutVariant,
};
use disc_datasets::synthetic::clustered;
use disc_mtree::{MTree, MTreeConfig};

/// The sweep: fig9's standard radius 0.04 bracketed by one coarser and
/// two finer settings; `R_MAX` is the stratified build radius.
const R_MAX: f64 = 0.08;
const TARGETS: [f64; 3] = [0.06, 0.04, 0.02];

/// CSR-assembly regression gate, expressed as a ratio against the
/// same run's annotated self-join instead of an absolute wall-clock:
/// both phases stream the same edge set on the same host in the same
/// process, so host speed, memory bandwidth, and contention cancel
/// out of the quotient. The renumbered build's recorded acceptance
/// ratio is ~3.8 (assembly 470ms / self-join 125ms at n = 10_000);
/// the gate fails any acceptance run whose assembly exceeds 6× the
/// self-join — a genuine assembly regression moves the ratio, a slow
/// CI host moves both numerators. Smoke runs (`GRAPH_N` below
/// 10_000) skip the gate: at small n both phases are sub-millisecond
/// and the quotient is noise.
const ASSEMBLY_RATIO_LIMIT: f64 = 6.0;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_zoom_graph.json".to_string());
    let n: usize = std::env::var("GRAPH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let smoke = n < 10_000;

    eprintln!(
        "zoom_graph_vs_tree: clustered n={n} dim=2 clusters=8 seed={BENCH_SEED} \
         r_max={R_MAX} targets={TARGETS:?}"
    );
    let data = clustered(n, 2, 8, BENCH_SEED);
    let tree = MTree::build(&data, MTreeConfig::default());

    let m = measure_zoom_graph_vs_tree(&tree, R_MAX, &TARGETS, self_join_threads_from_env());

    eprintln!(
        "  stratified build: {} edges, {} distance comps (plain self-join {}, \
         annotation surcharge {}), {:.1}ms (join {:.1}ms + assembly {:.1}ms)",
        m.strat_edges,
        m.strat_build_dc,
        m.plain_selfjoin_dc,
        m.strat_build_dc - m.plain_selfjoin_dc,
        m.strat_build_ms,
        m.strat_selfjoin_ms,
        m.strat_assembly_ms
    );
    eprintln!("  sweep |S| per radius: {:?} (r_max then targets)", m.sizes);
    eprintln!(
        "  graph sweep: total {} dc (extra beyond build: {}), {:.1}ms; \
         tree sweep: {} dc / {} accesses, {:.1}ms",
        m.graph_total_dc(),
        m.graph_sweep_extra_dc,
        m.strat_build_ms + m.graph_sweep_ms,
        m.tree_sweep_dc,
        m.tree_sweep_accesses,
        m.tree_sweep_ms
    );
    eprintln!(
        "  annotated parity: dc {} vs {} (threads={}{}), edges_identical={}, \
         csr_identical={}",
        m.annotated_serial_dc,
        m.annotated_parallel_dc,
        m.threads,
        if m.forced { " forced" } else { "" },
        m.annotated_edges_identical,
        m.stratified_csr_identical
    );

    // ---------------------------------------------------------------
    // Gates.
    // ---------------------------------------------------------------
    assert!(
        m.solutions_identical,
        "graph-resident zooming diverged from the tree-backed operators"
    );
    assert_eq!(
        m.graph_sweep_extra_dc, 0,
        "the graph-resident sweep must cost no distance computations \
         beyond the one r_max self-join"
    );
    assert!(
        m.graph_total_dc() < m.tree_sweep_dc,
        "graph-resident zooming ({} dc) no longer beats the tree-backed \
         sweep ({} dc)",
        m.graph_total_dc(),
        m.tree_sweep_dc
    );
    assert!(
        m.dc_within_edge_bound(),
        "stratified build gate: annotated build computed {} distances, beyond the \
         plain self-join's {} + {} edges — the annotated traversal is paying for \
         non-edges",
        m.strat_build_dc,
        m.plain_selfjoin_dc,
        m.strat_edges
    );
    assert_eq!(
        m.annotated_parallel_dc, m.annotated_serial_dc,
        "annotated self-join lost or double-counted distance computations"
    );
    assert!(
        m.annotated_edges_identical,
        "parallel annotated edge list diverged from the serial traversal"
    );
    assert!(
        m.stratified_csr_identical,
        "sharded stratified CSR diverged from the serial assembly"
    );
    if !smoke {
        assert!(
            m.strat_assembly_ms <= ASSEMBLY_RATIO_LIMIT * m.strat_selfjoin_ms,
            "assembly regression gate: {:.1}ms exceeds {ASSEMBLY_RATIO_LIMIT}x \
             the same run's annotated self-join ({:.1}ms)",
            m.strat_assembly_ms,
            m.strat_selfjoin_ms
        );
    }

    // Zoom-out and multi-radius parity on the same stratified graph
    // (reusing the measurement's build; keeps every graph-resident
    // runner under one gate). The zoom-out seed is the first target
    // radius — variant (c) recounts every remaining red with a pruned
    // range query per selection on the tree side, so a finer seed
    // (hundreds of reds) would turn this gate into the dominant cost of
    // the acceptance run.
    let strat = &m.strat;
    // The measured graph is leaf-order renumbered; every graph-resident
    // runner that also takes a tree needs the relabeled twin (same
    // internal numbering as the graph). Rebuilding it is an O(n) id
    // rewrite off the same deterministic leaf order.
    let order = tree.objects_in_leaf_order_uncounted();
    let tree2 = tree.relabeled(&m.data, &order);
    let prev_small = greedy_disc(&tree, TARGETS[0], GreedyVariant::Grey, true);
    for v in [
        ZoomOutVariant::Plain,
        ZoomOutVariant::GreedyA,
        ZoomOutVariant::GreedyB,
        ZoomOutVariant::GreedyC,
    ] {
        let tree_z = greedy_zoom_out(&tree, &prev_small, R_MAX, v);
        let graph_z = zoom_out_graph(&tree2, strat, &prev_small, R_MAX, v);
        assert_eq!(
            graph_z.result.solution, tree_z.result.solution,
            "zoom-out {v:?} diverged between graph and tree"
        );
    }
    let radii: Vec<f64> = (0..data.len())
        .map(|id| if id % 2 == 0 { TARGETS[1] } else { R_MAX })
        .collect();
    assert_eq!(
        multi_radius_graph(&tree2, strat, &radii, true).solution,
        multi_radius_greedy_disc(&tree, &radii, true).solution,
        "multi-radius greedy diverged between graph and tree"
    );
    assert_eq!(
        multi_radius_graph(&tree2, strat, &radii, false).solution,
        multi_radius_basic_disc(&tree, &radii, true).solution,
        "multi-radius basic diverged between graph and tree"
    );
    eprintln!("  zoom-out and multi-radius parity: ok");

    // Snapshot persistence smoke: the measured build goes through the
    // fail-closed store (save → aligned read → checksum-validated
    // decode), the round trip is pinned byte-identical, and the whole
    // zoom sweep is replayed on the *loaded* graph against the freshly
    // built one — the compatibility gate for the on-disk format.
    let (store, _loaded_data, loaded_graph) = measure_store(&m.data, strat);
    assert!(
        store.round_trip_identical,
        "snapshot round trip was not byte-identical"
    );
    assert!(
        loaded_graph.offsets() == strat.offsets()
            && loaded_graph.neighbors_flat() == strat.neighbors_flat()
            && loaded_graph.dists_flat() == strat.dists_flat(),
        "loaded stratified CSR diverged from the built graph"
    );
    let sweep = |g: &disc_graph::StratifiedDiskGraph| {
        let mut sols = Vec::new();
        let mut prev = greedy_disc_graph(&g.view(R_MAX).to_unit_disk_graph());
        sols.push(prev.solution.clone());
        for &r_new in &TARGETS {
            prev = greedy_zoom_in_graph(g, &prev, r_new).result;
            sols.push(prev.solution.clone());
        }
        sols
    };
    assert_eq!(
        sweep(&loaded_graph),
        sweep(strat),
        "zoom sweep on the loaded graph diverged from the built graph"
    );
    eprintln!(
        "  store: {} bytes, save {:.1}ms, load {:.1}ms ({} validation), \
         round trip byte-identical, loaded-graph sweep parity: ok",
        store.snapshot_bytes,
        store.save_ms,
        store.load_ms,
        if cfg!(feature = "parallel") {
            "parallel-capable"
        } else {
            "serial"
        }
    );

    // Hardened serving gate: the disc-cli pool serves the *loaded*
    // graph — the exact bytes a production `disc serve` would open —
    // and must (a) return hashes identical to the in-process runners,
    // (b) account for every request exactly once, (c) degrade and shed
    // under deliberate saturation.
    let serve = measure_serve(
        &_loaded_data,
        &loaded_graph,
        &[R_MAX, TARGETS[1], TARGETS[2]],
        4,
        if smoke { 3 } else { 5 },
        10,
    );
    assert!(
        serve.parity(),
        "hardened serving gate failed: {}",
        serve.to_json()
    );
    eprintln!(
        "  serve: {} requests on {} workers in {:.1}ms ({:.2}ms/req, {} cache hits); \
         flood {} -> {} degraded / {} shed; hash parity: ok",
        serve.requests,
        serve.workers,
        serve.total_ms,
        serve.per_request_ms(),
        serve.cache_hits,
        serve.flood,
        serve.degraded,
        serve.shed
    );

    // Streaming mutation gate: per-insert catalog maintenance on the
    // loaded graph must answer identically to a from-scratch rebuild
    // over the final object set and beat that rebuild at least 10× per
    // insert.
    let streaming = measure_streaming(
        &_loaded_data,
        &loaded_graph,
        if smoke { 32 } else { 64 },
        if smoke { 16 } else { 32 },
        TARGETS[1],
    );
    assert!(
        streaming.gate(),
        "streaming gate failed (rebuild-beating 10x + rebuild parity): {}",
        streaming.to_json()
    );
    eprintln!(
        "  streaming: {} inserts at {:.3}ms each vs rebuild {:.1}ms \
         ({:.0}x), {} deletes in {:.1}ms, rebuild parity: ok",
        streaming.inserts,
        streaming.per_insert_ms(),
        streaming.rebuild_ms,
        streaming.speedup(),
        streaming.deletes,
        streaming.delete_total_ms
    );

    let json = format!(
        "{{\n  \"workload\": {{\"dataset\": \"clustered\", \"n\": {n}, \"dim\": 2, \
         \"clusters\": 8, \"seed\": {BENCH_SEED}, \"smoke\": {smoke}}},\n\
         \x20 \"zoom_graph\": {},\n\
         \x20 \"store\": {},\n\
         \x20 \"serve\": {},\n\
         \x20 \"streaming\": {}\n}}\n",
        m.to_json(),
        store.to_json(),
        serve.to_json(),
        streaming.to_json()
    );
    std::fs::write(&out_path, &json).expect("write zoom-graph report");
    eprintln!("zoom_graph_vs_tree: wrote {out_path}; all gates passed");
    println!("{json}");
}
