//! fig9 perf report: pins the query-hot-path optimisations on the
//! Figure 9 scaling workload (clustered, n ≥ 10k, Greedy-DisC and
//! Greedy-C) and writes the numbers to `BENCH_fig9.json` so the perf
//! trajectory accumulates across PRs.
//!
//! Reported:
//!
//! * **distance computations** of the count-seeding pass and of the full
//!   Greedy-DisC / Greedy-C runs, with the M-tree parent-distance lemma
//!   off vs on (`MTreeConfig::parent_pruning`) — the ratio is the
//!   index-layer saving;
//! * **wall-clock** of the count-seeding pass, serial vs threaded
//!   (`disc-core`'s `parallel` feature; on a single-core host both sides
//!   coincide, so the thread count is recorded alongside);
//! * **graph-resident vs tree-backed Greedy-DisC** — one
//!   `MTree::range_self_join` materialises the CSR neighbourhood graph
//!   (distance computations recorded against the O(n²) pair count),
//!   then selection runs with zero index queries; build + select
//!   wall-clock and distance computations for both pipelines (see the
//!   `fig_graph_vs_tree` binary for the gated CI companion);
//! * **snapshot persistence** — save/load wall-clock and on-disk size of
//!   the fail-closed `disc-store` snapshot of the stratified build, with
//!   the round trip pinned byte-identical.
//!
//! Usage: `cargo run --release -p disc-bench --features parallel --bin
//! fig9_report [-- <output-path>]` (default output `BENCH_fig9.json`).
//! `FIG9_N` overrides the object count (the acceptance workload is
//! 10_000; lower it only for smoke runs, which mark the JSON
//! accordingly).

use std::time::Instant;

use disc_bench::BENCH_SEED;
use disc_core::{fast_c, greedy_c, greedy_disc, par, GreedyVariant};
use disc_datasets::synthetic::clustered;
use disc_mtree::{MTree, MTreeConfig};

/// Figure 9's default radius for the clustered workload.
const RADIUS: f64 = 0.04;

struct PruningRow {
    label: &'static str,
    off: u64,
    on: u64,
}

impl PruningRow {
    fn ratio(&self) -> f64 {
        self.off as f64 / self.on.max(1) as f64
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fig9.json".to_string());
    let n: usize = std::env::var("FIG9_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let smoke = n < 10_000;

    eprintln!("fig9_report: clustered n={n} dim=2 clusters=8 seed={BENCH_SEED} r={RADIUS}");
    let data = clustered(n, 2, 8, BENCH_SEED);
    let tree_on = MTree::build(&data, MTreeConfig::default());
    let tree_off = MTree::build(&data, MTreeConfig::default().with_parent_pruning(false));

    // ---------------------------------------------------------------
    // Distance computations: parent-distance lemma off vs on.
    // ---------------------------------------------------------------
    // The seeding pass is measured exactly as the heuristics run it:
    // object-only queries (counting needs no distances).
    let seeding_dc = |tree: &MTree<'_>| {
        tree.reset_distance_computations();
        let counts = par::seed_counts_serial(data.len(), |id, scratch: &mut Vec<usize>| {
            tree.range_query_objs_into(id, RADIUS, scratch);
            (scratch.len() - 1) as u32
        });
        assert!(!counts.is_empty());
        tree.reset_distance_computations()
    };
    let full_dc = |tree: &MTree<'_>, algo: &dyn Fn(&MTree<'_>)| {
        tree.reset_distance_computations();
        algo(tree);
        tree.reset_distance_computations()
    };

    let rows = vec![
        PruningRow {
            label: "count_seeding",
            off: seeding_dc(&tree_off),
            on: seeding_dc(&tree_on),
        },
        PruningRow {
            label: "greedy_disc_full",
            off: full_dc(&tree_off, &|t| {
                greedy_disc(t, RADIUS, GreedyVariant::Grey, true);
            }),
            on: full_dc(&tree_on, &|t| {
                greedy_disc(t, RADIUS, GreedyVariant::Grey, true);
            }),
        },
        PruningRow {
            label: "greedy_c_full",
            off: full_dc(&tree_off, &|t| {
                greedy_c(t, RADIUS);
            }),
            on: full_dc(&tree_on, &|t| {
                greedy_c(t, RADIUS);
            }),
        },
        PruningRow {
            label: "fast_c_full",
            off: full_dc(&tree_off, &|t| {
                fast_c(t, RADIUS);
            }),
            on: full_dc(&tree_on, &|t| {
                fast_c(t, RADIUS);
            }),
        },
    ];
    for row in &rows {
        eprintln!(
            "  dist comps {:<18} off={:>12} on={:>12} ratio={:.2}x",
            row.label,
            row.off,
            row.on,
            row.ratio()
        );
    }

    // ---------------------------------------------------------------
    // Count-seeding wall clock: serial vs threaded fan-out.
    // ---------------------------------------------------------------
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let time_seeding = |run: &dyn Fn() -> Vec<u32>| {
        let _warmup = run();
        let reps = 3;
        let start = Instant::now();
        for _ in 0..reps {
            let counts = run();
            std::hint::black_box(&counts);
        }
        start.elapsed().as_secs_f64() * 1_000.0 / f64::from(reps)
    };
    let serial_ms = time_seeding(&|| {
        par::seed_counts_serial(data.len(), |id, scratch: &mut Vec<usize>| {
            tree_on.range_query_objs_into(id, RADIUS, scratch);
            (scratch.len() - 1) as u32
        })
    });
    #[cfg(feature = "parallel")]
    let parallel_ms = time_seeding(&|| {
        par::seed_counts_parallel(data.len(), |id, scratch: &mut Vec<usize>| {
            tree_on.range_query_objs_into(id, RADIUS, scratch);
            (scratch.len() - 1) as u32
        })
    });
    #[cfg(not(feature = "parallel"))]
    let parallel_ms = f64::NAN;
    // The threaded fan-out short-circuits to the serial loop when only
    // one worker is available or the corpus is below its parallel
    // floor; a "speedup" there would compare the serial code against
    // itself, so it is reported as null with the marker instead.
    let seeding_effective_threads = if threads <= 1 || data.len() < 2_048 {
        1
    } else {
        threads
    };
    let seeding_short_circuited = !cfg!(feature = "parallel") || seeding_effective_threads <= 1;
    let speedup = serial_ms / parallel_ms;
    eprintln!(
        "  seeding wall-clock serial={serial_ms:.1}ms parallel={parallel_ms:.1}ms \
         speedup={speedup:.2}x (threads={threads}, effective={seeding_effective_threads}, \
         short_circuited={seeding_short_circuited}, parallel feature {})",
        cfg!(feature = "parallel")
    );

    // ---------------------------------------------------------------
    // Scalar vs batched one-to-many distance kernel (the leaf-block
    // sweep primitive of the self-join); bitwise identity is asserted.
    // ---------------------------------------------------------------
    let kernel = disc_bench::measure_kernel(&data, 20);
    assert!(
        kernel.identical,
        "batched distance kernel diverged bitwise from the scalar kernel"
    );
    eprintln!(
        "  kernel (dim {}): scalar {:.2}ns/dist, batched {:.2}ns/dist, {:.2}x",
        kernel.dim,
        kernel.scalar_ns_per_dist(),
        kernel.batch_ns_per_dist(),
        kernel.speedup()
    );

    // ---------------------------------------------------------------
    // Graph-resident vs tree-backed Greedy-DisC (build + select),
    // shared with the gated `fig_graph_vs_tree` binary.
    // ---------------------------------------------------------------
    let gvt = disc_bench::measure_graph_vs_tree(&tree_on, RADIUS);
    eprintln!(
        "  graph vs tree: self-join {} dc ({:.1}% of {} pairs), \
         graph {:.1}ms end-to-end vs tree {:.1}ms / {} dc",
        gvt.self_join_dc,
        100.0 * gvt.self_join_dc as f64 / gvt.pairs_all as f64,
        gvt.pairs_all,
        gvt.build_ms + gvt.disc_select_ms,
        gvt.disc_tree_ms,
        gvt.disc_tree_dc
    );

    // ---------------------------------------------------------------
    // Graph-resident vs tree-backed zooming: a chained zoom-in sweep
    // over four radii, one stratified build vs per-step tree queries
    // (shared with the gated `zoom_graph_vs_tree` binary).
    // ---------------------------------------------------------------
    let zg = disc_bench::measure_zoom_graph_vs_tree(
        &tree_on,
        0.08,
        &[0.06, RADIUS, 0.02],
        disc_bench::self_join_threads_from_env(),
    );
    assert!(
        zg.parity(),
        "graph-resident zooming diverged from tree-backed (solutions_identical={}, \
         dc {} vs {}, edges_identical={}, csr_identical={})",
        zg.solutions_identical,
        zg.annotated_serial_dc,
        zg.annotated_parallel_dc,
        zg.annotated_edges_identical,
        zg.stratified_csr_identical
    );
    eprintln!(
        "  zoom graph vs tree: sweep sizes {:?}, graph {} dc total (extra {}) vs \
         tree {} dc, build {:.1}ms + sweep {:.1}ms vs tree {:.1}ms",
        zg.sizes,
        zg.graph_total_dc(),
        zg.graph_sweep_extra_dc,
        zg.tree_sweep_dc,
        zg.strat_build_ms,
        zg.graph_sweep_ms,
        zg.tree_sweep_ms
    );
    // ---------------------------------------------------------------
    // Snapshot persistence: save/load wall-clock and size for the
    // stratified build the zooming section just measured, with the
    // round trip pinned byte-identical (fail-closed store).
    // ---------------------------------------------------------------
    let (store, _loaded_data, loaded_graph) = disc_bench::measure_store(&zg.data, &zg.strat);
    assert!(
        store.round_trip_identical,
        "snapshot round trip was not byte-identical"
    );
    assert!(
        loaded_graph.offsets() == zg.strat.offsets()
            && loaded_graph.neighbors_flat() == zg.strat.neighbors_flat()
            && loaded_graph.dists_flat() == zg.strat.dists_flat(),
        "loaded stratified CSR diverged from the built graph"
    );
    drop(loaded_graph);
    eprintln!(
        "  store: snapshot {} bytes, save {:.1}ms, load {:.1}ms, round trip byte-identical",
        store.snapshot_bytes, store.save_ms, store.load_ms
    );

    // Only the JSON (scalar fields) is needed past this point; free the
    // carried stratified graph before the wall-clock-sensitive
    // self-join timing below so its resident set cannot skew the
    // serial-vs-parallel numbers.
    let zoom_graph_json = zg.to_json();
    drop(zg);

    // ---------------------------------------------------------------
    // Serial vs parallel self-join build (SELF_JOIN_THREADS forces the
    // worker count; parity of counters/edges/CSR/solutions must hold).
    // ---------------------------------------------------------------
    let sj = disc_bench::measure_selfjoin_par(
        &tree_on,
        RADIUS,
        disc_bench::self_join_threads_from_env(),
    );
    assert!(
        sj.parity(),
        "parallel self-join diverged from serial (dc {} vs {}, edges_identical={}, \
         csr_identical={}, solutions_identical={})",
        sj.parallel_dc,
        sj.serial_dc,
        sj.edges_identical,
        sj.csr_identical,
        sj.solutions_identical
    );
    eprintln!(
        "  self-join build serial={:.1}ms parallel={:.1}ms speedup={:.2}x \
         (threads={}{}, dc parity {} == {})",
        sj.serial_ms,
        sj.parallel_ms,
        sj.speedup(),
        sj.threads,
        if sj.forced { " forced" } else { "" },
        sj.serial_dc,
        sj.parallel_dc
    );

    // ---------------------------------------------------------------
    // Hand-rolled JSON (no serde in the environment).
    // ---------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"dataset\": \"clustered\", \"n\": {n}, \"dim\": 2, \
         \"clusters\": 8, \"seed\": {BENCH_SEED}, \"radius\": {RADIUS}, \"smoke\": {smoke}}},\n"
    ));
    json.push_str("  \"distance_computations\": {\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"parent_pruning_off\": {}, \"parent_pruning_on\": {}, \
             \"ratio\": {:.3}}}{}\n",
            row.label,
            row.off,
            row.on,
            row.ratio(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    // A build without the `parallel` feature has no threaded side to
    // measure: record the reason instead of a null the downstream JSON
    // consumers would have to special-case (NaN is not valid JSON
    // either way).
    let threaded_side = if !cfg!(feature = "parallel") {
        "\"skipped\": \"parallel feature disabled\"".to_string()
    } else if seeding_short_circuited {
        // Serial code on both sides: no speedup to report.
        format!("\"parallel_ms\": {parallel_ms:.3}, \"speedup\": null")
    } else {
        format!("\"parallel_ms\": {parallel_ms:.3}, \"speedup\": {speedup:.3}")
    };
    json.push_str(&format!(
        "  \"count_seeding_wall_clock\": {{\"serial_ms\": {serial_ms:.3}, \
         {threaded_side}, \"threads\": {threads}, \
         \"effective_threads\": {seeding_effective_threads}, \
         \"short_circuited\": {seeding_short_circuited}, \"parallel_feature\": {}}},\n",
        cfg!(feature = "parallel")
    ));
    json.push_str(&format!("  \"kernel\": {},\n", kernel.to_json()));
    json.push_str(&format!(
        "  \"graph_vs_tree\": {{\"pairs_all\": {}, \
         \"self_join\": {{\"distance_computations\": {}, \"edges\": {}, \
         \"build_ms\": {:.3}}}, \
         \"greedy_disc_graph\": {{\"total_distance_computations\": {}, \
         \"build_plus_select_ms\": {:.3}}}, \
         \"greedy_disc_tree_pruned\": {{\"distance_computations\": {}, \
         \"total_ms\": {:.3}}}, \"solution_size\": {}}},\n",
        gvt.pairs_all,
        gvt.self_join_dc,
        gvt.edges,
        gvt.build_ms,
        gvt.self_join_dc,
        gvt.build_ms + gvt.disc_select_ms,
        gvt.disc_tree_dc,
        gvt.disc_tree_ms,
        gvt.disc_size
    ));
    json.push_str(&format!("  \"zoom_graph\": {zoom_graph_json},\n"));
    json.push_str(&format!("  \"store\": {},\n", store.to_json()));
    json.push_str(&format!("  \"selfjoin_par\": {}\n", sj.to_json()));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_fig9.json");
    eprintln!("fig9_report: wrote {out_path}");
    println!("{json}");
}
