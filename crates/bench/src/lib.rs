//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure wall-clock time of the same computations whose
//! node-access counts the `disc-eval` experiments report; one bench
//! target exists per paper table/figure group (see `benches/`):
//!
//! * `table3_solution_sizes` — Table 3 heuristics,
//! * `fig7_8_node_accesses` — Figures 7–8 basic/greedy/cover heuristics,
//! * `fig9_scaling` — Figure 9 cardinality/dimensionality scaling,
//! * `fig10_fat_factor` — Figure 10 splitting policies (build + query),
//! * `zooming` — Figures 11–16 zoom-in/zoom-out operators,
//! * `baselines` — Figure 6 comparison models.
//!
//! Benchmarks run on bench-scale datasets (a few thousand objects) so a
//! full `cargo bench` completes in minutes; the eval harness is the tool
//! for paper-scale numbers.

use disc_datasets::synthetic::{clustered, uniform};
use disc_metric::Dataset;
use disc_mtree::{MTree, MTreeConfig};

/// Seed shared by all bench datasets.
pub const BENCH_SEED: u64 = 77;

/// Bench-scale clustered dataset (2-D).
pub fn bench_clustered(n: usize) -> Dataset {
    clustered(n, 2, 8, BENCH_SEED)
}

/// Bench-scale uniform dataset (2-D).
pub fn bench_uniform(n: usize) -> Dataset {
    uniform(n, 2, BENCH_SEED)
}

/// Default tree (capacity 50, MinOverlap) with the build cost cleared.
pub fn bench_tree(data: &Dataset) -> MTree<'_> {
    let tree = MTree::build(data, MTreeConfig::default());
    tree.reset_node_accesses();
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let d = bench_clustered(300);
        assert_eq!(d.len(), 300);
        let t = bench_tree(&d);
        assert_eq!(t.node_accesses(), 0);
        assert_eq!(bench_uniform(100).len(), 100);
    }
}
