//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure wall-clock time of the same computations whose
//! node-access counts the `disc-eval` experiments report; one bench
//! target exists per paper table/figure group (see `benches/`):
//!
//! * `table3_solution_sizes` — Table 3 heuristics,
//! * `fig7_8_node_accesses` — Figures 7–8 basic/greedy/cover heuristics,
//! * `fig9_scaling` — Figure 9 cardinality/dimensionality scaling,
//! * `fig10_fat_factor` — Figure 10 splitting policies (build + query),
//! * `zooming` — Figures 11–16 zoom-in/zoom-out operators,
//! * `baselines` — Figure 6 comparison models,
//! * `graph_vs_tree` — CSR graph materialisation (self-join vs O(n²)
//!   scans) and graph-resident vs tree-backed selection loops.
//!
//! Benchmarks run on bench-scale datasets (a few thousand objects) so a
//! full `cargo bench` completes in minutes; the eval harness is the tool
//! for paper-scale numbers.

use std::time::Instant;

use disc_core::{greedy_c, greedy_c_graph, greedy_disc, greedy_disc_graph, GreedyVariant};
use disc_datasets::synthetic::{clustered, uniform};
use disc_graph::UnitDiskGraph;
use disc_metric::Dataset;
use disc_mtree::{MTree, MTreeConfig, SelfJoinConfig};

/// Seed shared by all bench datasets.
pub const BENCH_SEED: u64 = 77;

/// Bench-scale clustered dataset (2-D).
pub fn bench_clustered(n: usize) -> Dataset {
    clustered(n, 2, 8, BENCH_SEED)
}

/// Bench-scale uniform dataset (2-D).
pub fn bench_uniform(n: usize) -> Dataset {
    uniform(n, 2, BENCH_SEED)
}

/// Default tree (capacity 50, MinOverlap) with the build cost cleared.
pub fn bench_tree(data: &Dataset) -> MTree<'_> {
    let tree = MTree::build(data, MTreeConfig::default());
    tree.reset_node_accesses();
    tree
}

/// One graph-resident vs tree-backed pipeline measurement (shared by
/// `fig9_report`'s `graph_vs_tree` section and the gated
/// `fig_graph_vs_tree` binary, so the two reports cannot drift).
pub struct GraphVsTree {
    /// `n(n−1)/2`, the O(n²) scan's distance-computation count.
    pub pairs_all: u64,
    /// Distance computations of the self-join materialisation (the
    /// graph pipeline's *total*: selection adds zero).
    pub self_join_dc: u64,
    /// Undirected edges of `G_{P,r}`.
    pub edges: usize,
    /// Self-join + CSR assembly wall-clock.
    pub build_ms: f64,
    /// Graph-resident Greedy-DisC selection wall-clock.
    pub disc_select_ms: f64,
    /// Tree-backed pruned Greedy-DisC distance computations.
    pub disc_tree_dc: u64,
    /// Tree-backed pruned Greedy-DisC wall-clock.
    pub disc_tree_ms: f64,
    /// Greedy-DisC solution size (identical across pipelines).
    pub disc_size: usize,
    /// Graph-resident Greedy-C selection wall-clock.
    pub c_select_ms: f64,
    /// Tree-backed Greedy-C distance computations.
    pub c_tree_dc: u64,
    /// Tree-backed Greedy-C wall-clock.
    pub c_tree_ms: f64,
    /// Greedy-C solution size (identical across pipelines).
    pub c_size: usize,
}

/// Runs both pipelines at `radius` and asserts the graph-resident
/// solutions equal the tree-backed exact ones. Resets (and so consumes)
/// the tree's distance-computation counter.
pub fn measure_graph_vs_tree(tree: &MTree<'_>, radius: f64) -> GraphVsTree {
    let n = tree.len() as u64;

    tree.reset_distance_computations();
    let t = Instant::now();
    let graph = UnitDiskGraph::from_mtree(tree, radius);
    let build_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let self_join_dc = tree.reset_distance_computations();

    let t = Instant::now();
    let graph_disc = greedy_disc_graph(&graph);
    let disc_select_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let t = Instant::now();
    let graph_c = greedy_c_graph(&graph);
    let c_select_ms = t.elapsed().as_secs_f64() * 1_000.0;

    tree.reset_distance_computations();
    let t = Instant::now();
    let tree_disc = greedy_disc(tree, radius, GreedyVariant::Grey, true);
    let disc_tree_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let disc_tree_dc = tree.reset_distance_computations();

    let t = Instant::now();
    let tree_c = greedy_c(tree, radius);
    let c_tree_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let c_tree_dc = tree.reset_distance_computations();

    assert_eq!(
        graph_disc.solution, tree_disc.solution,
        "graph-resident Greedy-DisC diverged from the tree-backed exact solution"
    );
    assert_eq!(
        graph_c.solution, tree_c.solution,
        "graph-resident Greedy-C diverged from the tree-backed solution"
    );

    GraphVsTree {
        pairs_all: n * n.saturating_sub(1) / 2,
        self_join_dc,
        edges: graph.edge_count(),
        build_ms,
        disc_select_ms,
        disc_tree_dc,
        disc_tree_ms,
        disc_size: tree_disc.size(),
        c_select_ms,
        c_tree_dc,
        c_tree_ms,
        c_size: tree_c.size(),
    }
}

/// One serial-vs-parallel self-join build measurement (the
/// `selfjoin_par` section of `BENCH_fig9.json` and
/// `BENCH_graph_vs_tree.json`, shared so the two reports cannot drift).
pub struct SelfJoinPar {
    /// Worker thread count of the parallel side.
    pub threads: usize,
    /// Whether the thread count was forced (e.g. via `SELF_JOIN_THREADS`)
    /// rather than auto-detected.
    pub forced: bool,
    /// Serial dual-tree traversal wall-clock (ms).
    pub serial_ms: f64,
    /// Parallel dual-tree traversal wall-clock (ms).
    pub parallel_ms: f64,
    /// Distance computations charged by the serial traversal.
    pub serial_dc: u64,
    /// Distance computations charged by the parallel traversal (the
    /// parity gate requires this to equal `serial_dc` exactly).
    pub parallel_dc: u64,
    /// Undirected edges found (identical on both sides by construction;
    /// `edges_identical` pins it).
    pub edges: usize,
    /// Whether the two edge lists are byte-identical (set and order).
    pub edges_identical: bool,
    /// Whether serial `from_edges` and sharded `from_edges_sharded`
    /// assemble byte-identical CSR arrays (`offsets` and `neighbors`).
    pub csr_identical: bool,
    /// Whether graph-resident Greedy-DisC picks the same solution on
    /// both graphs.
    pub solutions_identical: bool,
}

impl SelfJoinPar {
    /// Serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }

    /// The CI parity gate: distance-computation totals, edge lists, CSR
    /// bytes and solutions must all agree between the serial and
    /// parallel pipelines.
    pub fn parity(&self) -> bool {
        self.serial_dc == self.parallel_dc
            && self.edges_identical
            && self.csr_identical
            && self.solutions_identical
    }

    /// The `selfjoin_par` JSON object, shared verbatim by
    /// `BENCH_fig9.json` and `BENCH_graph_vs_tree.json` so the two
    /// reports cannot drift (no serde in the environment; a non-finite
    /// speedup serialises as `null`).
    pub fn to_json(&self) -> String {
        let speedup = if self.speedup().is_finite() {
            format!("{:.3}", self.speedup())
        } else {
            "null".to_string()
        };
        format!(
            "{{\"threads\": {}, \"forced\": {}, \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {speedup}, \
             \"serial_distance_computations\": {}, \
             \"parallel_distance_computations\": {}, \"edges\": {}, \
             \"parity\": {}}}",
            self.threads,
            self.forced,
            self.serial_ms,
            self.parallel_ms,
            self.serial_dc,
            self.parallel_dc,
            self.edges,
            self.parity()
        )
    }
}

/// The `SELF_JOIN_THREADS` override both perf binaries honour (CI's
/// thread-count matrix smoke); `None` when unset or unparsable.
pub fn self_join_threads_from_env() -> Option<usize> {
    std::env::var("SELF_JOIN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Measures the serial vs parallel self-join build at `radius` and
/// cross-checks every determinism guarantee the parallel path makes
/// (edge order, distance counter, sharded CSR bytes, selection output).
/// `forced_threads` overrides the worker count (CI's `SELF_JOIN_THREADS`
/// matrix); `None` auto-detects. Resets (and so consumes) the tree's
/// distance-computation counter.
pub fn measure_selfjoin_par(
    tree: &MTree<'_>,
    radius: f64,
    forced_threads: Option<usize>,
) -> SelfJoinPar {
    let threads = forced_threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });

    tree.reset_distance_computations();
    let t = Instant::now();
    let serial_edges = tree.range_self_join_serial(radius);
    let serial_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let serial_dc = tree.reset_distance_computations();

    let t = Instant::now();
    let parallel_edges = tree.range_self_join_with(radius, SelfJoinConfig { threads });
    let parallel_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let parallel_dc = tree.reset_distance_computations();

    let serial_graph = UnitDiskGraph::from_edges(tree.len(), radius, &serial_edges);
    let sharded_graph =
        UnitDiskGraph::from_edges_sharded(tree.len(), radius, &parallel_edges, threads);

    SelfJoinPar {
        threads,
        forced: forced_threads.is_some(),
        serial_ms,
        parallel_ms,
        serial_dc,
        parallel_dc,
        edges: serial_edges.len(),
        edges_identical: serial_edges == parallel_edges,
        csr_identical: serial_graph.offsets() == sharded_graph.offsets()
            && serial_graph.neighbors_flat() == sharded_graph.neighbors_flat(),
        solutions_identical: greedy_disc_graph(&serial_graph).solution
            == greedy_disc_graph(&sharded_graph).solution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let d = bench_clustered(300);
        assert_eq!(d.len(), 300);
        let t = bench_tree(&d);
        assert_eq!(t.node_accesses(), 0);
        assert_eq!(bench_uniform(100).len(), 100);
    }

    #[test]
    fn selfjoin_par_measurement_holds_parity() {
        let d = bench_clustered(500);
        let t = bench_tree(&d);
        for threads in [1, 2, 3, 8] {
            let m = measure_selfjoin_par(&t, 0.04, Some(threads));
            assert!(m.parity(), "parity failed at threads={threads}");
            assert!(m.forced && m.threads == threads);
            assert!(m.edges > 0 && m.serial_dc > 0);
        }
        let auto = measure_selfjoin_par(&t, 0.04, None);
        assert!(auto.parity() && !auto.forced);
    }

    #[test]
    fn graph_vs_tree_measurement_is_consistent() {
        let d = bench_clustered(400);
        let t = bench_tree(&d);
        let m = measure_graph_vs_tree(&t, 0.04);
        assert_eq!(m.pairs_all, 400 * 399 / 2);
        assert!(m.self_join_dc > 0 && m.self_join_dc < m.pairs_all);
        assert!(m.edges > 0);
        assert!(m.disc_size > 0 && m.c_size > 0);
    }
}
