//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure wall-clock time of the same computations whose
//! node-access counts the `disc-eval` experiments report; one bench
//! target exists per paper table/figure group (see `benches/`):
//!
//! * `table3_solution_sizes` — Table 3 heuristics,
//! * `fig7_8_node_accesses` — Figures 7–8 basic/greedy/cover heuristics,
//! * `fig9_scaling` — Figure 9 cardinality/dimensionality scaling,
//! * `fig10_fat_factor` — Figure 10 splitting policies (build + query),
//! * `zooming` — Figures 11–16 zoom-in/zoom-out operators,
//! * `baselines` — Figure 6 comparison models,
//! * `graph_vs_tree` — CSR graph materialisation (self-join vs O(n²)
//!   scans) and graph-resident vs tree-backed selection loops.
//!
//! Benchmarks run on bench-scale datasets (a few thousand objects) so a
//! full `cargo bench` completes in minutes; the eval harness is the tool
//! for paper-scale numbers.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use disc_cli::serve::{ServeConfig, Server, Sink};
use disc_cli::state::ServeState;
use disc_cli::worker::{solution_hash, Op, Outcome, Reply, Request};
use disc_core::{
    greedy_c, greedy_c_graph, greedy_disc, greedy_disc_graph, greedy_zoom_in, greedy_zoom_in_graph,
    GreedyVariant,
};
use disc_datasets::synthetic::{clustered, uniform};
use disc_graph::{StratifiedDiskGraph, StreamingCatalog, UnitDiskGraph};
use disc_metric::{Dataset, IdPermutation};
use disc_mtree::{MTree, MTreeConfig, SelfJoinConfig};

/// Seed shared by all bench datasets.
pub const BENCH_SEED: u64 = 77;

/// Bench-scale clustered dataset (2-D).
pub fn bench_clustered(n: usize) -> Dataset {
    clustered(n, 2, 8, BENCH_SEED)
}

/// Bench-scale uniform dataset (2-D).
pub fn bench_uniform(n: usize) -> Dataset {
    uniform(n, 2, BENCH_SEED)
}

/// Default tree (capacity 50, MinOverlap) with the build cost cleared.
pub fn bench_tree(data: &Dataset) -> MTree<'_> {
    let tree = MTree::build(data, MTreeConfig::default());
    tree.reset_node_accesses();
    tree
}

/// One graph-resident vs tree-backed pipeline measurement (shared by
/// `fig9_report`'s `graph_vs_tree` section and the gated
/// `fig_graph_vs_tree` binary, so the two reports cannot drift).
pub struct GraphVsTree {
    /// `n(n−1)/2`, the O(n²) scan's distance-computation count.
    pub pairs_all: u64,
    /// Distance computations of the self-join materialisation (the
    /// graph pipeline's *total*: selection adds zero).
    pub self_join_dc: u64,
    /// Undirected edges of `G_{P,r}`.
    pub edges: usize,
    /// Self-join + CSR assembly wall-clock.
    pub build_ms: f64,
    /// Graph-resident Greedy-DisC selection wall-clock.
    pub disc_select_ms: f64,
    /// Tree-backed pruned Greedy-DisC distance computations.
    pub disc_tree_dc: u64,
    /// Tree-backed pruned Greedy-DisC wall-clock.
    pub disc_tree_ms: f64,
    /// Greedy-DisC solution size (identical across pipelines).
    pub disc_size: usize,
    /// Graph-resident Greedy-C selection wall-clock.
    pub c_select_ms: f64,
    /// Tree-backed Greedy-C distance computations.
    pub c_tree_dc: u64,
    /// Tree-backed Greedy-C wall-clock.
    pub c_tree_ms: f64,
    /// Greedy-C solution size (identical across pipelines).
    pub c_size: usize,
}

/// Runs both pipelines at `radius` and asserts the graph-resident
/// solutions equal the tree-backed exact ones. Resets (and so consumes)
/// the tree's distance-computation counter.
pub fn measure_graph_vs_tree(tree: &MTree<'_>, radius: f64) -> GraphVsTree {
    let n = tree.len() as u64;

    tree.reset_distance_computations();
    let t = Instant::now();
    let graph = UnitDiskGraph::from_mtree(tree, radius);
    let build_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let self_join_dc = tree.reset_distance_computations();

    let t = Instant::now();
    let graph_disc = greedy_disc_graph(&graph);
    let disc_select_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let t = Instant::now();
    let graph_c = greedy_c_graph(&graph);
    let c_select_ms = t.elapsed().as_secs_f64() * 1_000.0;

    tree.reset_distance_computations();
    let t = Instant::now();
    let tree_disc = greedy_disc(tree, radius, GreedyVariant::Grey, true);
    let disc_tree_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let disc_tree_dc = tree.reset_distance_computations();

    let t = Instant::now();
    let tree_c = greedy_c(tree, radius);
    let c_tree_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let c_tree_dc = tree.reset_distance_computations();

    assert_eq!(
        graph_disc.solution, tree_disc.solution,
        "graph-resident Greedy-DisC diverged from the tree-backed exact solution"
    );
    assert_eq!(
        graph_c.solution, tree_c.solution,
        "graph-resident Greedy-C diverged from the tree-backed solution"
    );

    GraphVsTree {
        pairs_all: n * n.saturating_sub(1) / 2,
        self_join_dc,
        edges: graph.edge_count(),
        build_ms,
        disc_select_ms,
        disc_tree_dc,
        disc_tree_ms,
        disc_size: tree_disc.size(),
        c_select_ms,
        c_tree_dc,
        c_tree_ms,
        c_size: tree_c.size(),
    }
}

/// One serial-vs-parallel self-join build measurement (the
/// `selfjoin_par` section of `BENCH_fig9.json` and
/// `BENCH_graph_vs_tree.json`, shared so the two reports cannot drift).
pub struct SelfJoinPar {
    /// Worker thread count of the parallel side.
    pub threads: usize,
    /// Whether the thread count was forced (e.g. via `SELF_JOIN_THREADS`)
    /// rather than auto-detected.
    pub forced: bool,
    /// Worker threads the "parallel" side actually ran with: the
    /// self-join short-circuits to the serial traversal when the
    /// resolved thread count is 1 (e.g. a single-core host), so this is
    /// 1 there and `threads` otherwise.
    pub effective_threads: usize,
    /// Whether the parallel side short-circuited to serial — in which
    /// case a "speedup" would compare the serial code against itself
    /// and is reported as `null` instead.
    pub short_circuited: bool,
    /// Serial dual-tree traversal wall-clock (ms).
    pub serial_ms: f64,
    /// Parallel dual-tree traversal wall-clock (ms).
    pub parallel_ms: f64,
    /// Distance computations charged by the serial traversal.
    pub serial_dc: u64,
    /// Distance computations charged by the parallel traversal (the
    /// parity gate requires this to equal `serial_dc` exactly).
    pub parallel_dc: u64,
    /// Undirected edges found (identical on both sides by construction;
    /// `edges_identical` pins it).
    pub edges: usize,
    /// Whether the two edge lists are byte-identical (set and order).
    pub edges_identical: bool,
    /// Whether serial `from_edges` and sharded `from_edges_sharded`
    /// assemble byte-identical CSR arrays (`offsets` and `neighbors`).
    pub csr_identical: bool,
    /// Whether graph-resident Greedy-DisC picks the same solution on
    /// both graphs.
    pub solutions_identical: bool,
}

impl SelfJoinPar {
    /// Serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }

    /// The CI parity gate: distance-computation totals, edge lists, CSR
    /// bytes and solutions must all agree between the serial and
    /// parallel pipelines.
    pub fn parity(&self) -> bool {
        self.serial_dc == self.parallel_dc
            && self.edges_identical
            && self.csr_identical
            && self.solutions_identical
    }

    /// The `selfjoin_par` JSON object, shared verbatim by
    /// `BENCH_fig9.json` and `BENCH_graph_vs_tree.json` so the two
    /// reports cannot drift (no serde in the environment; a non-finite
    /// speedup serialises as `null`).
    pub fn to_json(&self) -> String {
        // A short-circuited "parallel" side ran the serial code: its
        // wall-clock ratio is measurement noise, not a speedup, and
        // serialises as null so downstream dashboards cannot chart it.
        let speedup = if !self.short_circuited && self.speedup().is_finite() {
            format!("{:.3}", self.speedup())
        } else {
            "null".to_string()
        };
        format!(
            "{{\"threads\": {}, \"forced\": {}, \"effective_threads\": {}, \
             \"short_circuited\": {}, \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {speedup}, \
             \"serial_distance_computations\": {}, \
             \"parallel_distance_computations\": {}, \"edges\": {}, \
             \"parity\": {}}}",
            self.threads,
            self.forced,
            self.effective_threads,
            self.short_circuited,
            self.serial_ms,
            self.parallel_ms,
            self.serial_dc,
            self.parallel_dc,
            self.edges,
            self.parity()
        )
    }
}

/// The `SELF_JOIN_THREADS` override both perf binaries honour (CI's
/// thread-count matrix smoke); `None` when unset or unparsable.
pub fn self_join_threads_from_env() -> Option<usize> {
    std::env::var("SELF_JOIN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Measures the serial vs parallel self-join build at `radius` and
/// cross-checks every determinism guarantee the parallel path makes
/// (edge order, distance counter, sharded CSR bytes, selection output).
/// `forced_threads` overrides the worker count (CI's `SELF_JOIN_THREADS`
/// matrix); `None` auto-detects. Resets (and so consumes) the tree's
/// distance-computation counter.
pub fn measure_selfjoin_par(
    tree: &MTree<'_>,
    radius: f64,
    forced_threads: Option<usize>,
) -> SelfJoinPar {
    let threads = forced_threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });

    // Warm both sides once (allocator pages, edge-buffer capacity)
    // before timing: whichever side ran first used to pay the kernel's
    // page-clearing for its freshly grown buffers, skewing a
    // serial-vs-parallel comparison that should only see traversal
    // cost.
    let mut serial_edges = Vec::new();
    tree.range_self_join_serial_into(radius, &mut serial_edges);
    let mut parallel_edges = Vec::new();
    tree.range_self_join_with_into(radius, SelfJoinConfig { threads }, &mut parallel_edges);

    tree.reset_distance_computations();
    let t = Instant::now();
    tree.range_self_join_serial_into(radius, &mut serial_edges);
    let serial_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let serial_dc = tree.reset_distance_computations();

    let t = Instant::now();
    tree.range_self_join_with_into(radius, SelfJoinConfig { threads }, &mut parallel_edges);
    let parallel_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let parallel_dc = tree.reset_distance_computations();

    let serial_graph = UnitDiskGraph::from_edges(tree.len(), radius, &serial_edges);
    let sharded_graph =
        UnitDiskGraph::from_edges_sharded(tree.len(), radius, &parallel_edges, threads);

    SelfJoinPar {
        threads,
        forced: forced_threads.is_some(),
        // Mirror of the self-join's own dispatch: a resolved thread
        // count of 1 falls back to the serial traversal, so the
        // "parallel" measurement ran serial code.
        effective_threads: threads.max(1),
        short_circuited: threads <= 1,
        serial_ms,
        parallel_ms,
        serial_dc,
        parallel_dc,
        edges: serial_edges.len(),
        edges_identical: serial_edges == parallel_edges,
        csr_identical: serial_graph.offsets() == sharded_graph.offsets()
            && serial_graph.neighbors_flat() == sharded_graph.neighbors_flat(),
        solutions_identical: greedy_disc_graph(&serial_graph).solution
            == greedy_disc_graph(&sharded_graph).solution,
    }
}

/// One graph-resident vs tree-backed **zooming** measurement: a
/// chained zoom-in sweep (`r_max`, then each target radius in turn)
/// executed once over a radius-stratified graph and once with the
/// tree-backed operators. Shared by `fig9_report`'s `zoom_graph`
/// section and the gated `zoom_graph_vs_tree` binary, so the two
/// reports cannot drift.
pub struct ZoomGraphVsTree {
    /// The sweep's largest radius (the stratified build radius).
    pub r_max: f64,
    /// The zoom-in targets below `r_max`, in sweep (descending) order.
    pub targets: Vec<f64>,
    /// Worker/shard count of the annotated parity check.
    pub threads: usize,
    /// Whether `threads` was forced (e.g. via `SELF_JOIN_THREADS`).
    pub forced: bool,
    /// Distance computations of the one annotated `r_max` self-join +
    /// stratified CSR assembly — the graph pipeline's *total*: the
    /// sweep itself adds zero.
    pub strat_build_dc: u64,
    /// Stratified build wall-clock (self-join + assembly).
    pub strat_build_ms: f64,
    /// The annotated self-join traversal's share of the build.
    pub strat_selfjoin_ms: f64,
    /// The radix-sorted CSR assembly's share of the build.
    pub strat_assembly_ms: f64,
    /// Undirected edges of the stratified graph at `r_max`.
    pub strat_edges: usize,
    /// Wall-clock of the leaf-order renumbering (order extraction,
    /// dataset renumber, tree relabel). Kept outside `strat_build_ms`,
    /// which remains self-join + assembly.
    pub renumber_ms: f64,
    /// The leaf-order renumbered dataset the production build ran on.
    /// It carries the internal↔external bijection `strat` shares, so
    /// callers persisting the build (`measure_store`) must pair `strat`
    /// with this dataset, not the original one.
    pub data: Dataset,
    /// The stratified graph itself (the timed production build), so
    /// callers needing further parity checks — e.g. the gated binary's
    /// zoom-out and multi-radius gates — reuse it instead of paying a
    /// second annotated self-join.
    pub strat: StratifiedDiskGraph,
    /// Distance computations charged during the graph-resident sweep
    /// (must be 0 — the sweep never touches the index).
    pub graph_sweep_extra_dc: u64,
    /// Graph-resident sweep wall-clock (initial Greedy-DisC at `r_max`
    /// plus every zoom-in step).
    pub graph_sweep_ms: f64,
    /// The *plain* (un-annotated) `r_max` self-join's distance
    /// computations, for reference: the annotation surcharge is
    /// `strat_build_dc - plain_selfjoin_dc`.
    pub plain_selfjoin_dc: u64,
    /// Tree-backed sweep distance computations (Greedy-DisC at `r_max`
    /// plus every Greedy-Zoom-In, preparation included).
    pub tree_sweep_dc: u64,
    /// Tree-backed sweep node accesses (preparation included).
    pub tree_sweep_accesses: u64,
    /// Tree-backed sweep wall-clock.
    pub tree_sweep_ms: f64,
    /// Whether every step of the sweep produced byte-identical
    /// solutions on both sides.
    pub solutions_identical: bool,
    /// Solution size at `r_max` and after each zoom-in step.
    pub sizes: Vec<usize>,
    /// Annotated self-join: serial distance computations.
    pub annotated_serial_dc: u64,
    /// Annotated self-join: forced-thread-count distance computations
    /// (the parity gate requires equality with the serial total).
    pub annotated_parallel_dc: u64,
    /// Whether the serial and parallel annotated edge lists are
    /// byte-identical (order and f64 annotations included).
    pub annotated_edges_identical: bool,
    /// Whether serial and sharded stratified CSR assembly agree byte
    /// for byte (`offsets`, `neighbors` and `dists`).
    pub stratified_csr_identical: bool,
}

impl ZoomGraphVsTree {
    /// Total distance computations of the graph-resident sweep: the one
    /// stratified build plus whatever the sweep added (gated to zero).
    pub fn graph_total_dc(&self) -> u64 {
        self.strat_build_dc + self.graph_sweep_extra_dc
    }

    /// The CI parity gate: identical solutions at every radius, exact
    /// annotated counter parity, byte-identical annotated edges and
    /// stratified CSR.
    pub fn parity(&self) -> bool {
        self.solutions_identical
            && self.annotated_serial_dc == self.annotated_parallel_dc
            && self.annotated_edges_identical
            && self.stratified_csr_identical
    }

    /// The stratified-build cost gate: every distance the annotated
    /// build computes beyond the plain self-join belongs to an emitted
    /// edge (the inclusion-qualified pairs), so the annotated total
    /// must stay within `plain + edges`. A regression here means the
    /// annotated traversal started paying for non-edges.
    pub fn dc_within_edge_bound(&self) -> bool {
        self.strat_build_dc <= self.plain_selfjoin_dc + self.strat_edges as u64
    }

    /// The `zoom_graph` JSON object shared by `BENCH_fig9.json` and
    /// `BENCH_zoom_graph.json` (no serde in the environment).
    pub fn to_json(&self) -> String {
        let targets = self
            .targets
            .iter()
            .map(|r| format!("{r}"))
            .collect::<Vec<_>>()
            .join(", ");
        let sizes = self
            .sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"r_max\": {}, \"targets\": [{targets}], \"threads\": {}, \"forced\": {}, \
             \"stratified_build\": {{\"distance_computations\": {}, \"edges\": {}, \
             \"renumber_ms\": {:.3}, \"selfjoin_ms\": {:.3}, \"assembly_ms\": {:.3}, \
             \"build_ms\": {:.3}, \"dc_within_edge_bound\": {}}}, \
             \"plain_self_join_distance_computations\": {}, \
             \"graph_sweep\": {{\"extra_distance_computations\": {}, \
             \"total_distance_computations\": {}, \"sweep_ms\": {:.3}}}, \
             \"tree_sweep\": {{\"distance_computations\": {}, \"node_accesses\": {}, \
             \"sweep_ms\": {:.3}}}, \
             \"solution_sizes\": [{sizes}], \"solutions_identical\": {}, \"parity\": {}}}",
            self.r_max,
            self.threads,
            self.forced,
            self.strat_build_dc,
            self.strat_edges,
            self.renumber_ms,
            self.strat_selfjoin_ms,
            self.strat_assembly_ms,
            self.strat_build_ms,
            self.dc_within_edge_bound(),
            self.plain_selfjoin_dc,
            self.graph_sweep_extra_dc,
            self.graph_total_dc(),
            self.graph_sweep_ms,
            self.tree_sweep_dc,
            self.tree_sweep_accesses,
            self.tree_sweep_ms,
            self.solutions_identical,
            self.parity()
        )
    }
}

/// Measures a chained zoom-in sweep (Greedy-DisC at `r_max`, then
/// Greedy-Zoom-In to each target radius in order) once graph-resident —
/// one stratified build, zero index work afterwards — and once
/// tree-backed, cross-checking byte-identical solutions at every step
/// plus the serial/parallel determinism of the annotated pipeline.
/// `forced_threads` overrides the worker/shard count (CI's
/// `SELF_JOIN_THREADS` matrix). Resets (and so consumes) the tree's
/// distance-computation and node-access counters.
pub fn measure_zoom_graph_vs_tree(
    tree: &MTree<'_>,
    r_max: f64,
    targets: &[f64],
    forced_threads: Option<usize>,
) -> ZoomGraphVsTree {
    assert!(
        targets.windows(2).all(|w| w[0] > w[1]) && targets.iter().all(|&r| r < r_max),
        "targets must descend below r_max"
    );
    let threads = forced_threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });

    // Leaf-order renumbering: the production build runs on a
    // renumbered dataset and relabeled tree whose leaf order is the
    // identity, so the annotated self-join emits endpoints in
    // near-row order and CSR fill walks warm cache lines. Solutions
    // stay in external ids on both sides (the graph carries the
    // bijection and the runners translate at the boundary).
    let t = Instant::now();
    let order = tree.objects_in_leaf_order_uncounted();
    let data2 = tree.data().renumbered(&order);
    let tree2 = tree.relabeled(&data2, &order);
    let renumber_ms = t.elapsed().as_secs_f64() * 1_000.0;

    // Annotated serial/parallel parity (edge lists, counters, CSR) on
    // the renumbered tree — the pipeline the production build uses.
    tree2.reset_distance_computations();
    let serial_edges = tree2.range_self_join_dist_serial(r_max);
    let annotated_serial_dc = tree2.reset_distance_computations();
    let par_edges = tree2.range_self_join_dist_with(r_max, SelfJoinConfig { threads });
    let annotated_parallel_dc = tree2.reset_distance_computations();
    let serial_strat = StratifiedDiskGraph::from_dist_edges(tree2.len(), r_max, &serial_edges);
    let sharded_strat =
        StratifiedDiskGraph::from_dist_edges_sharded(tree2.len(), r_max, &par_edges, threads);
    let annotated_edges_identical = serial_edges == par_edges;
    let stratified_csr_identical = serial_strat.offsets() == sharded_strat.offsets()
        && serial_strat.neighbors_flat() == sharded_strat.neighbors_flat()
        && serial_strat.dists_flat() == sharded_strat.dists_flat();
    // Free the parity transients before timing the production build:
    // several hundred MB of live edge lists and graphs would otherwise
    // push the build onto freshly faulted kernel pages and bill the
    // page-clearing to the build (it roughly doubled the recorded
    // wall clock at n = 10k).
    drop(serial_strat);
    drop(sharded_strat);
    drop(serial_edges);
    drop(par_edges);

    // Timed production build — `StratifiedDiskGraph::from_mtree`'s two
    // phases, driven through the same entry points it uses
    // (`range_self_join_dist` + `from_dist_edges_auto`) so the
    // annotated traversal and the radix-sorted CSR assembly are
    // attributed separately without duplicating its dispatch.
    tree2.reset_distance_computations();
    let t = Instant::now();
    let edges = tree2.range_self_join_dist(r_max);
    let strat_selfjoin_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let t = Instant::now();
    let strat = StratifiedDiskGraph::from_dist_edges_auto(tree2.len(), r_max, &edges);
    let strat_assembly_ms = t.elapsed().as_secs_f64() * 1_000.0;
    drop(edges);
    // The bijection rides on the graph (outside the timed phases; the
    // sweep below externalises every solution id through it).
    let strat = strat.with_permutation(data2.permutation().cloned());
    let strat_build_ms = strat_selfjoin_ms + strat_assembly_ms;
    let strat_build_dc = tree2.reset_distance_computations();

    // Plain self-join reference (annotation surcharge bookkeeping).
    let _ = tree2.range_self_join(r_max);
    let plain_selfjoin_dc = tree2.reset_distance_computations();

    // Tree-backed sweep (original numbering; solutions are external
    // ids on both sides, so the byte-identity check is direct).
    tree.reset_distance_computations();
    tree.reset_node_accesses();
    let t = Instant::now();
    let mut tree_sols: Vec<Vec<usize>> = Vec::new();
    let mut prev = greedy_disc(tree, r_max, GreedyVariant::Grey, true);
    tree_sols.push(prev.solution.clone());
    for &r_new in targets {
        prev = greedy_zoom_in(tree, &prev, r_new).result;
        tree_sols.push(prev.solution.clone());
    }
    let tree_sweep_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let tree_sweep_dc = tree.reset_distance_computations();
    let tree_sweep_accesses = tree.reset_node_accesses();

    // Graph-resident sweep: everything reads the stratified graph.
    let t = Instant::now();
    let mut graph_sols: Vec<Vec<usize>> = Vec::new();
    let mut prev_g = greedy_disc_graph(&strat.view(r_max).to_unit_disk_graph());
    graph_sols.push(prev_g.solution.clone());
    for &r_new in targets {
        prev_g = greedy_zoom_in_graph(&strat, &prev_g, r_new).result;
        graph_sols.push(prev_g.solution.clone());
    }
    let graph_sweep_ms = t.elapsed().as_secs_f64() * 1_000.0;
    // Neither tree may have been touched by the graph sweep.
    let graph_sweep_extra_dc =
        tree.reset_distance_computations() + tree2.reset_distance_computations();
    drop(tree2);

    ZoomGraphVsTree {
        r_max,
        targets: targets.to_vec(),
        threads,
        forced: forced_threads.is_some(),
        strat_build_dc,
        strat_build_ms,
        strat_selfjoin_ms,
        strat_assembly_ms,
        strat_edges: strat.edge_count(),
        renumber_ms,
        data: data2,
        strat,
        graph_sweep_extra_dc,
        graph_sweep_ms,
        plain_selfjoin_dc,
        tree_sweep_dc,
        tree_sweep_accesses,
        tree_sweep_ms,
        solutions_identical: graph_sols == tree_sols,
        sizes: graph_sols.iter().map(Vec::len).collect(),
        annotated_serial_dc,
        annotated_parallel_dc,
        annotated_edges_identical,
        stratified_csr_identical,
    }
}

/// One snapshot save/load measurement (the `store` section of
/// `BENCH_fig9.json` and the gated `zoom_graph_vs_tree` store smoke):
/// the measured stratified graph and its dataset go through the full
/// fail-closed persistence path — `disc_store::write_snapshot` to a
/// temp file, `read_snapshot` into aligned storage, checksum-validated
/// `decode` — and the round trip is pinned byte-identical by
/// re-encoding the loaded pair and comparing against the file bytes.
pub struct StoreBench {
    /// Snapshot size on disk (bytes).
    pub snapshot_bytes: u64,
    /// Encode + write wall-clock (ms).
    pub save_ms: f64,
    /// Read + validate + decode wall-clock (ms).
    pub load_ms: f64,
    /// Whether re-encoding the loaded dataset/graph reproduced the file
    /// byte for byte (covers coords, CSR arrays, distances, metadata).
    pub round_trip_identical: bool,
}

impl StoreBench {
    /// Hand-rolled JSON object (no serde in the environment).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"snapshot_bytes\": {}, \"save_ms\": {:.3}, \"load_ms\": {:.3}, \
             \"round_trip_identical\": {}}}",
            self.snapshot_bytes, self.save_ms, self.load_ms, self.round_trip_identical
        )
    }
}

/// Measures the snapshot save/load path for `data` + `strat` and
/// returns the timings plus the byte-identity verdict, along with the
/// loaded pair so callers can run further parity gates on the loaded
/// graph (the `zoom_graph_vs_tree` binary replays its sweep on it).
/// The temp file is removed before returning.
pub fn measure_store(
    data: &Dataset,
    strat: &StratifiedDiskGraph,
) -> (StoreBench, Dataset, StratifiedDiskGraph) {
    let dir = std::env::temp_dir().join("disc-bench-store");
    std::fs::create_dir_all(&dir).expect("create snapshot temp dir");
    let path = dir.join(format!("snapshot-{}.discsnap", std::process::id()));

    let t = Instant::now();
    let snapshot_bytes = disc_store::write_snapshot(&path, data, strat).expect("write snapshot");
    let save_ms = t.elapsed().as_secs_f64() * 1_000.0;

    let t = Instant::now();
    let bytes = disc_store::read_snapshot(&path).expect("read snapshot");
    let (loaded_data, loaded_graph) =
        disc_store::decode(bytes.as_bytes()).expect("decode snapshot");
    let load_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let _ = std::fs::remove_file(&path);

    let reencoded = disc_store::encode(&loaded_data, &loaded_graph).expect("re-encode snapshot");
    let round_trip_identical = reencoded.as_slice() == bytes.as_bytes();

    (
        StoreBench {
            snapshot_bytes,
            save_ms,
            load_ms,
            round_trip_identical,
        },
        loaded_data,
        loaded_graph,
    )
}

/// One hardened-serving measurement (the `serve` section of
/// `BENCH_zoom_graph.json`): request latency under a healthy pool, and
/// shed/degraded behaviour under deliberate saturation, both against
/// the same `disc-cli` serving core `disc serve` runs.
pub struct ServeBench {
    /// Worker threads of the throughput phase.
    pub workers: usize,
    /// Zoom requests submitted in the throughput phase.
    pub requests: usize,
    /// Distinct radii cycled through.
    pub unique_radii: usize,
    /// Submit-to-drained wall-clock of the throughput phase (ms).
    pub total_ms: f64,
    /// Requests completed in the throughput phase (gated to all).
    pub completed: u64,
    /// Worker-path cache hits during the throughput phase.
    pub cache_hits: u64,
    /// Whether every served hash equalled the in-process
    /// `greedy_disc_graph` hash at its radius (parity by construction,
    /// verified anyway).
    pub solutions_identical: bool,
    /// Whether the throughput phase's final counters satisfy the serve
    /// bookkeeping identities.
    pub counters_consistent: bool,
    /// Requests flooded at a deliberately saturated 1-worker /
    /// 1-slot-queue pool.
    pub flood: usize,
    /// Flood requests served degraded from the per-radius cache.
    pub degraded: u64,
    /// Flood requests shed with the typed overload reply.
    pub shed: u64,
    /// Whether the overload phase's final counters satisfy the
    /// identities (every flooded request accounted for exactly once).
    pub overload_consistent: bool,
}

impl ServeBench {
    /// Mean wall-clock per request in the throughput phase.
    pub fn per_request_ms(&self) -> f64 {
        self.total_ms / self.requests.max(1) as f64
    }

    /// The CI serve gate: hash parity and exact counters in both
    /// phases, and the saturated pool both degraded and shed (i.e.
    /// admission control actually engaged).
    pub fn parity(&self) -> bool {
        self.solutions_identical
            && self.counters_consistent
            && self.overload_consistent
            && self.completed == self.requests as u64
            && self.degraded > 0
            && self.shed > 0
    }

    /// The `serve` JSON object of `BENCH_zoom_graph.json` (no serde in
    /// the environment).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\": {}, \"requests\": {}, \"unique_radii\": {}, \
             \"total_ms\": {:.3}, \"per_request_ms\": {:.4}, \"completed\": {}, \
             \"cache_hits\": {}, \"solutions_identical\": {}, \
             \"counters_consistent\": {}, \"flood\": {}, \"degraded\": {}, \
             \"shed\": {}, \"overload_consistent\": {}, \"parity\": {}}}",
            self.workers,
            self.requests,
            self.unique_radii,
            self.total_ms,
            self.per_request_ms(),
            self.completed,
            self.cache_hits,
            self.solutions_identical,
            self.counters_consistent,
            self.flood,
            self.degraded,
            self.shed,
            self.overload_consistent,
            self.parity()
        )
    }
}

/// Sink collecting the hash of every successfully served zoom.
#[derive(Default)]
struct HashSink {
    hashes: Mutex<Vec<u64>>,
}

impl Sink for HashSink {
    fn deliver(&self, reply: &Reply) {
        if let Outcome::Zoomed { value, .. } = &reply.outcome {
            self.hashes
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(value.hash);
        }
    }

    fn info(&self, _line: &str) {}
}

/// Measures the hardened serving core over `graph`: `rounds` cycles of
/// zooms across `radii` on a `workers`-thread pool (latency +
/// hash-parity against in-process `greedy_disc_graph`), then a
/// deliberately saturated 1-worker pool flooded with `2 × flood_half`
/// requests alternating a cached and an uncached radius (shed/degraded
/// accounting). `radii` needs at least two entries within
/// `(0, graph.radius()]`.
pub fn measure_serve(
    data: &Dataset,
    graph: &StratifiedDiskGraph,
    radii: &[f64],
    workers: usize,
    rounds: usize,
    flood_half: usize,
) -> ServeBench {
    assert!(radii.len() >= 2, "serve bench needs two radii");
    let catalog = StreamingCatalog::try_new(data.clone(), graph.clone())
        .expect("bench dataset/graph pair is consistent");
    let state = ServeState::from_catalog(catalog);
    let expected: Vec<u64> = radii
        .iter()
        .map(|&r| solution_hash(&greedy_disc_graph(&graph.view(r).to_unit_disk_graph()).solution))
        .collect();

    // Throughput phase: queue large enough that nothing sheds.
    let requests = radii.len() * rounds;
    let sink = Arc::new(HashSink::default());
    let server = Server::start(
        Arc::clone(&state),
        ServeConfig {
            workers,
            queue: requests.max(1),
            cache: radii.len(),
        },
        Arc::<HashSink>::clone(&sink) as Arc<dyn Sink>,
    );
    let t = Instant::now();
    for round in 0..rounds {
        for (i, &radius) in radii.iter().enumerate() {
            server.submit(Request {
                id: (round * radii.len() + i) as u64,
                op: Op::Zoom { radius },
                deadline: None,
            });
        }
    }
    let drained = server.drain(Duration::from_secs(600));
    let total_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let snap = server.shutdown();
    let hashes = sink.hashes.lock().unwrap_or_else(|p| p.into_inner());
    let solutions_identical =
        hashes.len() == requests && hashes.iter().all(|h| expected.contains(h));

    // Overload phase: one worker pinned by a sleep, one queue slot
    // filled, then a flood alternating a cache-warm radius (must come
    // back degraded) and a cache-cold one (must shed).
    let overload_sink = Arc::new(HashSink::default());
    let overload = Server::start(
        state,
        ServeConfig {
            workers: 1,
            queue: 1,
            cache: radii.len(),
        },
        Arc::<HashSink>::clone(&overload_sink) as Arc<dyn Sink>,
    );
    overload.submit(Request {
        id: 0,
        op: Op::Zoom { radius: radii[0] },
        deadline: None,
    });
    overload.drain(Duration::from_secs(600));
    overload.submit(Request {
        id: 1,
        op: Op::Sleep { ms: 250 },
        deadline: None,
    });
    std::thread::sleep(Duration::from_millis(50)); // worker picked up the sleep
    overload.submit(Request {
        id: 2,
        op: Op::Sleep { ms: 1 },
        deadline: None,
    });
    let flood = 2 * flood_half;
    for i in 0..flood {
        overload.submit(Request {
            id: 100 + i as u64,
            op: Op::Zoom {
                radius: radii[i % 2],
            },
            deadline: None,
        });
    }
    overload.drain(Duration::from_secs(600));
    let overload_snap = overload.shutdown();

    ServeBench {
        workers,
        requests,
        unique_radii: radii.len(),
        total_ms,
        completed: snap.completed,
        cache_hits: snap.cache_hits,
        solutions_identical,
        counters_consistent: drained && snap.is_consistent(),
        flood,
        degraded: overload_snap.degraded,
        shed: overload_snap.shed,
        overload_consistent: overload_snap.is_consistent(),
    }
}

/// One streaming-mutation measurement (the `streaming` section of
/// `BENCH_zoom_graph.json`): per-insert catalog-maintenance latency
/// against a full from-scratch rebuild of the stratified graph over
/// the final object set, plus solution parity of the mutated catalog
/// against that rebuild.
pub struct StreamingBench {
    /// Live objects before the mutations.
    pub n: usize,
    /// Points inserted.
    pub inserts: usize,
    /// Objects deleted.
    pub deletes: usize,
    /// Wall-clock of all inserts (ms).
    pub insert_total_ms: f64,
    /// Wall-clock of all deletes (ms).
    pub delete_total_ms: f64,
    /// Wall-clock of one from-scratch rebuild over the final object
    /// set (M-tree build + self-join + CSR assembly), ms.
    pub rebuild_ms: f64,
    /// Distance computations charged by the mutation layer (exactly
    /// `n` per insert, none per delete).
    pub mutation_dc: u64,
    /// Whether greedy solutions over the mutated catalog equal the
    /// from-scratch rebuild at the probe radius (external ids).
    pub solutions_match: bool,
    /// Deletes replayed on each clone in the unlink-vs-rescan
    /// comparison below.
    pub delete_compare_ops: usize,
    /// Total wall-clock of the in-place reverse-index unlink
    /// (`remove_object`, the production delete path), ms.
    pub unlink_total_ms: f64,
    /// Total wall-clock of the filtering-rebuild baseline
    /// (`remove_object_rescan`, the pre-reverse-index delete), ms —
    /// same delete sequence on a clone of the same graph.
    pub rescan_total_ms: f64,
    /// Whether both delete paths left byte-identical CSR arrays
    /// (offsets, neighbors, distance bits).
    pub delete_paths_identical: bool,
}

impl StreamingBench {
    /// Mean wall-clock per insert.
    pub fn per_insert_ms(&self) -> f64 {
        self.insert_total_ms / self.inserts.max(1) as f64
    }

    /// How many times cheaper one insert is than one full rebuild.
    pub fn speedup(&self) -> f64 {
        self.rebuild_ms / self.per_insert_ms()
    }

    /// How many times cheaper one in-place unlink delete is than the
    /// filtering-rebuild baseline (same delete sequence, same graph).
    pub fn delete_speedup(&self) -> f64 {
        self.rescan_total_ms / self.unlink_total_ms
    }

    /// The CI streaming gate: the mutated catalog answers like a
    /// rebuild, one insert beats one rebuild by at least 10×, and the
    /// reverse-index delete beats the rescan baseline by at least 2×
    /// while staying byte-identical to it.
    pub fn gate(&self) -> bool {
        self.solutions_match
            && self.speedup() >= 10.0
            && self.delete_paths_identical
            && self.delete_speedup() >= 2.0
    }

    /// The `streaming` JSON object of `BENCH_zoom_graph.json` (no
    /// serde in the environment; a non-finite speedup serialises as
    /// `null`).
    pub fn to_json(&self) -> String {
        let speedup = if self.speedup().is_finite() {
            format!("{:.1}", self.speedup())
        } else {
            "null".to_string()
        };
        let delete_speedup = if self.delete_speedup().is_finite() {
            format!("{:.2}", self.delete_speedup())
        } else {
            "null".to_string()
        };
        format!(
            "{{\"n\": {}, \"inserts\": {}, \"deletes\": {}, \
             \"insert_total_ms\": {:.3}, \"per_insert_ms\": {:.5}, \
             \"delete_total_ms\": {:.3}, \"rebuild_ms\": {:.3}, \
             \"speedup\": {speedup}, \"mutation_distance_computations\": {}, \
             \"solutions_match\": {}, \"delete_compare_ops\": {}, \
             \"per_delete_unlink_ms\": {:.5}, \"per_delete_rescan_ms\": {:.5}, \
             \"delete_speedup\": {delete_speedup}, \
             \"delete_paths_identical\": {}, \"gate\": {}}}",
            self.n,
            self.inserts,
            self.deletes,
            self.insert_total_ms,
            self.per_insert_ms(),
            self.delete_total_ms,
            self.rebuild_ms,
            self.mutation_dc,
            self.solutions_match,
            self.delete_compare_ops,
            self.unlink_total_ms / self.delete_compare_ops.max(1) as f64,
            self.rescan_total_ms / self.delete_compare_ops.max(1) as f64,
            self.delete_paths_identical,
            self.gate()
        )
    }
}

/// Measures the streaming mutation layer over `graph`: `inserts`
/// point insertions (duplicating existing coordinates, the worst case
/// for edge splicing density) and `deletes` removals, timed against
/// one from-scratch rebuild of the stratified graph over the final
/// object set through the production M-tree self-join pipeline. The
/// probe at `radius` pins that the mutated catalog and the rebuild
/// select identical external ids.
pub fn measure_streaming(
    data: &Dataset,
    graph: &StratifiedDiskGraph,
    inserts: usize,
    deletes: usize,
    radius: f64,
) -> StreamingBench {
    let n = data.len();
    assert!(deletes < n, "streaming bench must leave live objects");
    let mut catalog = StreamingCatalog::try_new(data.clone(), graph.clone())
        .expect("bench dataset/graph pair is consistent");
    let dim = data.dim();

    let t = Instant::now();
    for i in 0..inserts {
        let v = (i * 31) % n;
        let coords = data.flat_coords()[v * dim..(v + 1) * dim].to_vec();
        catalog.insert(&coords).expect("in-range insert");
    }
    let insert_total_ms = t.elapsed().as_secs_f64() * 1_000.0;

    let t = Instant::now();
    for ext in 0..deletes {
        catalog.remove_external(ext).expect("live id");
    }
    let delete_total_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let mutation_dc = catalog.distance_computations();

    // The alternative the mutation layer replaces: a full rebuild over
    // the final object set through the production pipeline.
    let t = Instant::now();
    let perm =
        IdPermutation::try_new_sparse(catalog.live_externals()).expect("live ids are unique");
    let rebuilt_data = Dataset::from_flat(
        "rebuild",
        catalog.data().metric(),
        catalog.data().dim(),
        catalog.data().flat_coords().to_vec(),
    )
    .with_permutation(Some(Arc::new(perm)));
    let tree = MTree::build(&rebuilt_data, MTreeConfig::default());
    let rebuilt = StratifiedDiskGraph::from_mtree_checked(
        &tree,
        graph.radius(),
        SelfJoinConfig::with_threads(self_join_threads_from_env().unwrap_or(0)),
        None,
    )
    .expect("self-join over a clean dataset");
    let rebuild_ms = t.elapsed().as_secs_f64() * 1_000.0;

    let mine = greedy_disc_graph(&catalog.graph().view(radius).to_unit_disk_graph());
    let scratch = greedy_disc_graph(&rebuilt.view(radius).to_unit_disk_graph());

    // Delete-path comparison: the same deterministic delete sequence
    // replayed on two clones of the *original* graph — once through the
    // production in-place reverse-index unlink, once through the old
    // filtering rebuild — timed separately and pinned byte-identical.
    let delete_compare_ops = deletes.max(1);
    let seq: Vec<usize> = (0..delete_compare_ops)
        .map(|i| (i * 131) % (n - i))
        .collect();
    let mut unlink_graph = graph.clone();
    let mut rescan_graph = graph.clone();
    let t = Instant::now();
    for &v in &seq {
        unlink_graph.remove_object(v).expect("live id");
    }
    let unlink_total_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let t = Instant::now();
    for &v in &seq {
        rescan_graph.remove_object_rescan(v).expect("live id");
    }
    let rescan_total_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let delete_paths_identical = unlink_graph.offsets() == rescan_graph.offsets()
        && unlink_graph.neighbors_flat() == rescan_graph.neighbors_flat()
        && unlink_graph.dists_flat() == rescan_graph.dists_flat();

    StreamingBench {
        n,
        inserts,
        deletes,
        insert_total_ms,
        delete_total_ms,
        rebuild_ms,
        mutation_dc,
        solutions_match: mine.solution == scratch.solution,
        delete_compare_ops,
        unlink_total_ms,
        rescan_total_ms,
        delete_paths_identical,
    }
}

/// One scalar-vs-batched distance-kernel measurement (the `kernel`
/// section of `BENCH_fig9.json`): the same one-to-many workload — one
/// query object against the whole dataset — evaluated with per-pair
/// [`disc_metric::Metric::dist_coords`] calls and with one
/// [`disc_metric::Metric::dist_batch`] sweep over the lane-major block.
pub struct KernelBench {
    /// Block size (the dataset cardinality).
    pub n: usize,
    /// Dimensionality (selects the kernel specialization arm).
    pub dim: usize,
    /// Timed repetitions per side.
    pub reps: usize,
    /// Scalar loop wall-clock per repetition (ms).
    pub scalar_ms: f64,
    /// Batched kernel wall-clock per repetition (ms).
    pub batch_ms: f64,
    /// Whether every batched output was bitwise identical to the scalar
    /// kernel's (the contract the self-join's parity pins depend on).
    pub identical: bool,
}

impl KernelBench {
    /// Scalar nanoseconds per distance.
    pub fn scalar_ns_per_dist(&self) -> f64 {
        self.scalar_ms * 1e6 / self.n as f64
    }

    /// Batched nanoseconds per distance.
    pub fn batch_ns_per_dist(&self) -> f64 {
        self.batch_ms * 1e6 / self.n as f64
    }

    /// Scalar / batched wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.scalar_ms / self.batch_ms
    }

    /// The `kernel` JSON object of `BENCH_fig9.json` (no serde in the
    /// environment; a sub-clock-resolution timing would make the
    /// ratios non-finite, which is not valid JSON, so those serialise
    /// as null).
    pub fn to_json(&self) -> String {
        let num = |v: f64, digits: usize| {
            if v.is_finite() {
                format!("{v:.digits$}")
            } else {
                "null".to_string()
            }
        };
        format!(
            "{{\"n\": {}, \"dim\": {}, \"reps\": {}, \
             \"scalar_ns_per_dist\": {}, \"batch_ns_per_dist\": {}, \
             \"speedup\": {}, \"identical\": {}}}",
            self.n,
            self.dim,
            self.reps,
            num(self.scalar_ns_per_dist(), 2),
            num(self.batch_ns_per_dist(), 2),
            num(self.speedup(), 3),
            self.identical
        )
    }
}

/// Measures the scalar and batched one-to-many kernels on `data`
/// (query = object 0 against every object) and cross-checks bitwise
/// identity of every output pair.
pub fn measure_kernel(data: &Dataset, reps: usize) -> KernelBench {
    let (n, dim, metric) = (data.len(), data.dim(), data.metric());
    // Lane-major transpose of the whole dataset, as the M-tree leaves
    // store their blocks.
    let mut lanes = vec![0.0f64; n * dim];
    for id in 0..n {
        for (d, &c) in data.row(id).iter().enumerate() {
            lanes[d * n + id] = c;
        }
    }
    let q: Vec<f64> = data.row(0).to_vec();
    let mut scalar_out = vec![0.0f64; n];
    let mut batch_out = vec![0.0f64; n];

    let time = |out: &mut Vec<f64>, f: &dyn Fn(&mut Vec<f64>)| {
        f(out); // warmup
        let t = Instant::now();
        for _ in 0..reps {
            f(out);
            std::hint::black_box(&*out);
        }
        t.elapsed().as_secs_f64() * 1_000.0 / reps.max(1) as f64
    };
    let scalar_ms = time(&mut scalar_out, &|out| {
        for (id, o) in out.iter_mut().enumerate() {
            *o = metric.dist_coords(&q, data.row(id));
        }
    });
    let batch_ms = time(&mut batch_out, &|out| {
        metric.dist_batch(&q, &lanes, n, out);
    });

    let identical = scalar_out
        .iter()
        .zip(&batch_out)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    KernelBench {
        n,
        dim,
        reps,
        scalar_ms,
        batch_ms,
        identical,
    }
}

/// One sharded-build measurement at scale (one workload row of
/// `BENCH_scale.json`): the full [`disc_core::build_sharded_with`]
/// pipeline timed end to end, with the per-phase wall-clocks and the
/// exact distance/node accounting lifted straight off the returned
/// [`disc_core::ShardedBuildStats`].
pub struct ScaleBench {
    /// Workload label (`"clustered"` or `"uniform"`).
    pub workload: String,
    /// Object count.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Build radius (`r_max`).
    pub radius: f64,
    /// Requested shard count.
    pub shards_requested: usize,
    /// End-to-end sharded build wall-clock (ms).
    pub build_ms: f64,
    /// Per-phase timings and exact counters from the build.
    pub stats: disc_core::ShardedBuildStats,
    /// Mean vertex degree of the assembled graph.
    pub mean_degree: f64,
    /// Peak resident set of the process so far (`VmHWM`, kiB), read
    /// after the build — an upper bound on the build's own footprint.
    pub peak_rss_kib: u64,
}

impl ScaleBench {
    /// The boundary-join overhead bound the scale tier gates: on the
    /// clustered workload, boundary joins must stay under 25% of the
    /// total join distance computations.
    pub fn boundary_share_bounded(&self) -> bool {
        self.stats.boundary_dc_share() < 0.25
    }

    /// One workload object of the `BENCH_scale.json` report.
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        format!(
            "{{\"workload\": \"{}\", \"n\": {}, \"dim\": {}, \"radius\": {}, \
             \"shards_requested\": {}, \"shards_planned\": {}, \
             \"boundary_pairs_considered\": {}, \"boundary_pairs_joined\": {}, \
             \"edges\": {}, \"mean_degree\": {:.1}, \"build_ms\": {:.1}, \
             \"phase_ms\": {{\"partition\": {:.1}, \"renumber\": {:.1}, \
             \"tree\": {:.1}, \"intra_join\": {:.1}, \"boundary_join\": {:.1}, \
             \"merge\": {:.1}, \"assembly\": {:.1}}}, \
             \"distance_computations\": {}, \
             \"dc\": {{\"partition\": {}, \"tree\": {}, \"intra_join\": {}, \
             \"boundary_join\": {}}}, \"boundary_dc_share\": {:.4}, \
             \"node_accesses\": {}, \"peak_rss_kib\": {}}}",
            self.workload,
            self.n,
            self.dim,
            self.radius,
            self.shards_requested,
            s.shards,
            s.boundary_pairs_considered,
            s.boundary_pairs_joined,
            s.edges,
            self.mean_degree,
            self.build_ms,
            s.partition_ms,
            s.renumber_ms,
            s.tree_ms,
            s.intra_join_ms,
            s.boundary_join_ms,
            s.merge_ms,
            s.assembly_ms,
            s.distance_computations(),
            s.partition_dc,
            s.tree_dc,
            s.intra_join_dc,
            s.boundary_join_dc,
            s.boundary_dc_share(),
            s.node_accesses,
            self.peak_rss_kib
        )
    }
}

/// Peak resident set (`VmHWM`) of this process in kiB, from
/// `/proc/self/status`; `0` where procfs is unavailable.
pub fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Runs one sharded build over `data` and packages the scale-tier
/// measurement. The caller picks the radius (degree target) and shard
/// count; `threads = 0` lets the executor size itself.
pub fn measure_scale(
    data: &Dataset,
    workload: &str,
    radius: f64,
    shards: usize,
    threads: usize,
) -> ScaleBench {
    let config = disc_core::ShardedBuildConfig {
        threads,
        ..disc_core::ShardedBuildConfig::default()
    };
    let t = Instant::now();
    let built = disc_core::build_sharded_with(data, radius, shards, config, None)
        .expect("scale bench dataset is clean");
    let build_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let stats = built.stats;
    ScaleBench {
        workload: workload.to_string(),
        n: data.len(),
        dim: data.dim(),
        radius,
        shards_requested: shards,
        build_ms,
        stats,
        mean_degree: 2.0 * stats.edges as f64 / data.len().max(1) as f64,
        peak_rss_kib: peak_rss_kib(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_measurement_records_phases_rss_and_share() {
        let d = bench_clustered(1_500);
        let m = measure_scale(&d, "clustered", 0.03, 4, 1);
        assert_eq!(m.n, 1_500);
        assert!(m.stats.edges > 0 && m.mean_degree > 0.0);
        assert!(m.build_ms > 0.0);
        assert!(m.peak_rss_kib > 0, "VmHWM must be readable on this host");
        let share = m.stats.boundary_dc_share();
        assert!((0.0..1.0).contains(&share));
        let j = m.to_json();
        for key in [
            "\"phase_ms\"",
            "\"peak_rss_kib\"",
            "\"boundary_dc_share\"",
            "\"distance_computations\"",
        ] {
            assert!(j.contains(key), "scale json missing {key}");
        }
    }

    #[test]
    fn kernel_measurement_is_bitwise_identical() {
        let d = bench_clustered(2_000);
        let k = measure_kernel(&d, 2);
        assert!(k.identical, "batched kernel diverged from scalar");
        assert_eq!(k.n, 2_000);
        assert_eq!(k.dim, 2);
        assert!(k.scalar_ms > 0.0 && k.batch_ms > 0.0);
    }

    #[test]
    fn stratified_build_stays_within_edge_bound() {
        let d = bench_clustered(600);
        let t = bench_tree(&d);
        let m = measure_zoom_graph_vs_tree(&t, 0.08, &[0.06, 0.04, 0.02], Some(2));
        assert!(
            m.dc_within_edge_bound(),
            "annotated build {} dc beyond plain {} + edges {}",
            m.strat_build_dc,
            m.plain_selfjoin_dc,
            m.strat_edges
        );
        assert!(m.strat_selfjoin_ms >= 0.0 && m.strat_assembly_ms >= 0.0);
        assert!(
            (m.strat_build_ms - m.strat_selfjoin_ms - m.strat_assembly_ms).abs() < 1e-9,
            "build wall clock must be the sum of its phases"
        );
    }

    #[test]
    fn fixtures_build() {
        let d = bench_clustered(300);
        assert_eq!(d.len(), 300);
        let t = bench_tree(&d);
        assert_eq!(t.node_accesses(), 0);
        assert_eq!(bench_uniform(100).len(), 100);
    }

    #[test]
    fn selfjoin_par_measurement_holds_parity() {
        let d = bench_clustered(500);
        let t = bench_tree(&d);
        for threads in [1, 2, 3, 8] {
            let m = measure_selfjoin_par(&t, 0.04, Some(threads));
            assert!(m.parity(), "parity failed at threads={threads}");
            assert!(m.forced && m.threads == threads);
            assert!(m.edges > 0 && m.serial_dc > 0);
            assert_eq!(m.short_circuited, threads <= 1);
            assert_eq!(m.effective_threads, threads);
            if m.short_circuited {
                assert!(
                    m.to_json().contains("\"speedup\": null"),
                    "a short-circuited run must not report a speedup"
                );
            }
        }
        let auto = measure_selfjoin_par(&t, 0.04, None);
        assert!(auto.parity() && !auto.forced);
    }

    #[test]
    fn serve_measurement_holds_parity_and_sheds_under_flood() {
        let d = bench_clustered(500);
        let g = StratifiedDiskGraph::build(&d, 0.08);
        let m = measure_serve(&d, &g, &[0.08, 0.04, 0.02], 2, 3, 5);
        assert!(m.solutions_identical, "served hashes diverged");
        assert!(m.counters_consistent);
        assert!(m.overload_consistent);
        assert_eq!(m.completed, 9);
        assert!(m.degraded > 0, "saturated pool never served degraded");
        assert!(m.shed > 0, "saturated pool never shed");
        assert!(m.parity(), "{}", m.to_json());
    }

    #[test]
    fn streaming_measurement_matches_rebuild_and_beats_it() {
        let d = bench_clustered(2_000);
        let g = StratifiedDiskGraph::build(&d, 0.08);
        let m = measure_streaming(&d, &g, 32, 16, 0.04);
        assert_eq!(m.n, 2_000);
        assert!(m.solutions_match, "mutated catalog diverged from rebuild");
        assert!(m.mutation_dc >= (32 * 2_000) as u64, "exact insert charge");
        assert!(
            m.delete_paths_identical,
            "unlink and rescan deletes diverged: {}",
            m.to_json()
        );
        // The wall-clock thresholds (insert 10x, delete 2x) are
        // calibrated for optimised code — the gated release binaries
        // enforce them in CI. A debug build keeps the correctness
        // halves of the gate plus a direction check on the ratios.
        if cfg!(debug_assertions) {
            assert!(
                m.speedup() > 1.0 && m.delete_speedup() > 1.0,
                "even unoptimised, the structural wins must show: {}",
                m.to_json()
            );
        } else {
            assert!(
                m.gate(),
                "per-insert must beat a full rebuild 10x and the unlink \
                 delete must beat the rescan 2x: {}",
                m.to_json()
            );
        }
    }

    #[test]
    fn graph_vs_tree_measurement_is_consistent() {
        let d = bench_clustered(400);
        let t = bench_tree(&d);
        let m = measure_graph_vs_tree(&t, 0.04);
        assert_eq!(m.pairs_all, 400 * 399 / 2);
        assert!(m.self_join_dc > 0 && m.self_join_dc < m.pairs_all);
        assert!(m.edges > 0);
        assert!(m.disc_size > 0 && m.c_size > 0);
    }

    #[test]
    fn zoom_graph_measurement_holds_parity_and_adds_no_distances() {
        let d = bench_clustered(600);
        let t = bench_tree(&d);
        for threads in [1, 2, 3, 8] {
            let m = measure_zoom_graph_vs_tree(&t, 0.08, &[0.06, 0.04, 0.02], Some(threads));
            assert!(m.parity(), "parity failed at threads={threads}");
            assert!(m.forced && m.threads == threads);
            assert_eq!(
                m.graph_sweep_extra_dc, 0,
                "graph sweep must not touch the index"
            );
            assert_eq!(m.sizes.len(), 4);
            assert!(m.sizes.windows(2).all(|w| w[0] <= w[1]), "Lemma 5 sizes");
            assert!(m.strat_build_dc >= m.plain_selfjoin_dc);
            assert_eq!(
                m.data.permutation(),
                m.strat.permutation(),
                "renumbered dataset and graph must share the bijection"
            );
            assert!(
                m.data.permutation().is_some(),
                "leaf order must renumber a clustered corpus"
            );
            // The renumbered pair must persist through the store path.
            let (store, _, _) = measure_store(&m.data, &m.strat);
            assert!(store.round_trip_identical);
        }
        let auto = measure_zoom_graph_vs_tree(&t, 0.08, &[0.06, 0.04, 0.02], None);
        assert!(auto.parity() && !auto.forced);
    }
}
