//! Renumbering transparency: leaf-order renumbering is an internal
//! cache-layout change, so every graph-resident runner must produce
//! byte-identical solutions — in *external* ids — before and after it,
//! and the renumbered snapshot must round-trip byte-identically, under
//! all four metrics and every self-join thread/shard count CI pins
//! (1, 2, 3, 8).

use disc_core::{
    greedy_c_graph, greedy_disc_graph, greedy_zoom_in_graph, multi_radius_graph, zoom_out_graph,
    ZoomOutVariant,
};
use disc_graph::StratifiedDiskGraph;
use disc_metric::{Dataset, Metric, Point};
use disc_mtree::{MTree, MTreeConfig, SelfJoinConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn point(metric: Metric, i: usize) -> Point {
    if metric == Metric::Hamming {
        Point::categorical(&[(i % 7) as u32, (i % 3) as u32, (i / 5 % 4) as u32])
    } else {
        // A deterministic scatter over [0, 1)²; the co-prime strides
        // keep duplicates rare without an RNG.
        Point::new2((i * 37 % 100) as f64 * 0.01, (i * 61 % 100) as f64 * 0.01)
    }
}

/// (r_max, zoom-in target) per metric: Hamming distances are small
/// integers, the continuous metrics live on the unit square.
fn radii(metric: Metric) -> (f64, f64) {
    if metric == Metric::Hamming {
        (2.0, 1.0)
    } else {
        (0.2, 0.12)
    }
}

/// Every graph-resident runner's outputs on `strat` (solutions leave
/// the runners in external ids regardless of the graph's numbering).
fn all_runner_outputs(tree: &MTree<'_>, strat: &StratifiedDiskGraph) -> Vec<Vec<usize>> {
    let (r_max, r_small) = radii(tree.data().metric());
    let mut outputs = Vec::new();

    let at_max = greedy_disc_graph(&strat.view(r_max).to_unit_disk_graph());
    outputs.push(at_max.solution.clone());
    outputs.push(greedy_c_graph(&strat.view(r_max).to_unit_disk_graph()).solution);

    let zoomed_in = greedy_zoom_in_graph(strat, &at_max, r_small).result;
    outputs.push(zoomed_in.solution.clone());

    let at_small = greedy_disc_graph(&strat.view(r_small).to_unit_disk_graph());
    for variant in [
        ZoomOutVariant::Plain,
        ZoomOutVariant::GreedyA,
        ZoomOutVariant::GreedyB,
        ZoomOutVariant::GreedyC,
    ] {
        outputs.push(
            zoom_out_graph(tree, strat, &at_small, r_max, variant)
                .result
                .solution,
        );
    }

    let per_object: Vec<f64> = (0..strat.len())
        .map(|external| if external % 2 == 0 { r_small } else { r_max })
        .collect();
    outputs.push(multi_radius_graph(tree, strat, &per_object, true).solution);
    outputs.push(multi_radius_graph(tree, strat, &per_object, false).solution);

    outputs
}

#[test]
fn renumbering_preserves_every_runner_and_the_snapshot_round_trip() {
    for metric in [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Hamming,
    ] {
        let data = Dataset::new(
            "renumbering-parity",
            metric,
            (0..300).map(|i| point(metric, i)).collect(),
        );
        let (r_max, _) = radii(metric);
        let tree = MTree::build(&data, MTreeConfig::default());
        let order = tree.objects_in_leaf_order_uncounted();
        let data2 = data.renumbered(&order);
        let tree2 = tree.relabeled(&data2, &order);

        let mut snapshots: Vec<Vec<u8>> = Vec::new();
        for threads in THREAD_COUNTS {
            let config = SelfJoinConfig::with_threads(threads);
            let strat = StratifiedDiskGraph::from_mtree_checked(&tree, r_max, config, None)
                .expect("original build");
            let strat2 = StratifiedDiskGraph::from_mtree_checked(&tree2, r_max, config, None)
                .expect("renumbered build");
            assert!(
                strat2.permutation().is_some(),
                "{metric:?}: leaf order left the corpus unrenumbered"
            );

            assert_eq!(
                all_runner_outputs(&tree, &strat),
                all_runner_outputs(&tree2, &strat2),
                "{metric:?} threads={threads}: a runner's external-id \
                 solution changed under renumbering"
            );

            // The renumbered snapshot round-trips byte-identically and
            // the loaded pair reproduces the same external solutions.
            let bytes = disc_store::encode(&data2, &strat2).expect("encode");
            let (loaded_data, loaded_graph) = disc_store::decode(&bytes).expect("decode");
            assert_eq!(
                disc_store::encode(&loaded_data, &loaded_graph).expect("re-encode"),
                bytes,
                "{metric:?} threads={threads}: snapshot round trip not byte-identical"
            );
            assert_eq!(
                all_runner_outputs(&tree2, &loaded_graph),
                all_runner_outputs(&tree2, &strat2),
                "{metric:?} threads={threads}: loaded graph diverged from built graph"
            );
            snapshots.push(bytes);
        }
        assert!(
            snapshots.windows(2).all(|w| w[0] == w[1]),
            "{metric:?}: snapshot bytes differ across SELF_JOIN_THREADS"
        );
    }
}
