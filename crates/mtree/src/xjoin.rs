//! Cross-tree range join for the sharded build's boundary pairs.
//!
//! [`cross_tree_join_dist_checked`] emits every pair `(a, b)` with
//! `d(a, b) ≤ r` where `a` is indexed by one M-tree and `b` by another,
//! both built over the *same* dataset (the sharded build's per-shard
//! trees share the globally renumbered dataset, so edges emerge in
//! global ids and never need translation). The traversal is a serial
//! dual-tree descent with covering-radius pruning: a node pair whose
//! pivot distance exceeds `r + radius_left + radius_right` cannot
//! contain a joining pair (triangle inequality) and is cut. As
//! everywhere in this workspace, exclusion bounds get a relative ulp
//! margin on the keep side, so rounding can only ever descend into a
//! fruitless subtree pair, never drop an edge — the property the
//! sharded build's byte-identity gate rests on.
//!
//! Leaf×leaf pairs go through a batched kernel mirroring the self-join's
//! cross-leaf step: one [`disc_metric::Metric::dist_batch`] sweep
//! computes each surviving left entry's distances to the right leaf's
//! SoA lane block, after a per-entry prefilter against the right pivot
//! (`d(e, p_B) − radius_B > r` excludes `e` outright).
//!
//! Counters are charged in bulk to the **left** tree — the sharded
//! build passes the lower-numbered shard on the left, making the
//! boundary-join charge attribution deterministic and easy to sum. The
//! traversal itself is serial, so at a fixed shard count the counts are
//! identical at every worker-thread count.

use disc_metric::cancel::CancelToken;

use crate::error::JoinError;
use crate::node::NodeId;
use crate::selfjoin::DistEdge;
use crate::tree::MTree;

/// One pending node pair of the dual descent. Pruning happens at push
/// time (the child's pivot distance to the fixed side is compared
/// against the covering radii right when the child is generated), so a
/// popped task is always worth descending.
struct XTask {
    a: NodeId,
    b: NodeId,
}

/// Scratch and counters for one cross-join invocation.
#[derive(Default)]
struct XBuf {
    edges: Vec<DistEdge>,
    dist_comps: u64,
    accesses: u64,
    stack: Vec<XTask>,
    left: Vec<(u32, f64)>,
    dists: Vec<f64>,
}

/// Keep-side ulp margin for exclusion bounds, mirroring the self-join's
/// inclusion margin budget (`2·dim + 8` ulps of the bound).
#[inline]
fn slack(bound: f64, dim: usize) -> f64 {
    bound * ((2 * dim + 8) as f64 * f64::EPSILON)
}

/// Distance-annotated cross-tree range join of two M-trees over the
/// same dataset (asserted), with typed radius validation and
/// cooperative cancellation at task granularity. Edges come back
/// normalized `a < b`; node accesses and distance computations are
/// charged to `left`'s counters (see the [module docs](self)).
///
/// On cancellation the counters reflect exactly the work performed up
/// to the abandoned task and no partial edge list escapes.
pub fn cross_tree_join_dist_checked(
    left: &MTree<'_>,
    right: &MTree<'_>,
    r: f64,
    cancel: Option<&CancelToken>,
) -> Result<Vec<DistEdge>, JoinError> {
    assert!(
        std::ptr::eq(left.data(), right.data()),
        "cross-tree join requires both trees to index the same dataset"
    );
    if r.is_nan() || r < 0.0 {
        return Err(JoinError::InvalidRadius(r));
    }
    let mut buf = XBuf::default();
    buf.stack.push(XTask {
        a: left.root(),
        b: right.root(),
    });
    let result = run(left, right, r, &mut buf, cancel);
    left.charge_accesses_bulk(buf.accesses);
    left.charge_distances_bulk(buf.dist_comps);
    match result {
        Ok(()) => Ok(buf.edges),
        Err(e) => Err(e),
    }
}

fn run(
    left: &MTree<'_>,
    right: &MTree<'_>,
    r: f64,
    buf: &mut XBuf,
    cancel: Option<&CancelToken>,
) -> Result<(), JoinError> {
    let data = left.data();
    let dim = data.dim();
    while let Some(task) = buf.stack.pop() {
        if let Some(c) = cancel {
            c.checkpoint()?;
        }
        let na = left.node(task.a);
        let nb = right.node(task.b);
        buf.accesses += 2;
        if na.is_leaf() && nb.is_leaf() {
            join_leaves(left, right, task.a, task.b, r, buf);
            continue;
        }
        // Expansion priority: a side without a pivot contributes no
        // pruning information, descend it first; then prefer internal
        // nodes over leaves; then the larger covering radius.
        let expand_a = if na.pivot.is_none() != nb.pivot.is_none() {
            na.pivot.is_none()
        } else if na.is_leaf() != nb.is_leaf() {
            !na.is_leaf()
        } else {
            na.radius >= nb.radius
        };
        let (exp_tree, exp_id, fix_tree, fix_id, a_side) = if expand_a {
            (left, task.a, right, task.b, true)
        } else {
            (right, task.b, left, task.a, false)
        };
        let children = exp_tree.node(exp_id).children().to_vec();
        let fixed = fix_tree.node(fix_id);
        let fixed_pivot = fixed.pivot;
        for child in children {
            let nc = exp_tree.node(child);
            let pc = nc.pivot_id();
            if let Some(pf) = fixed_pivot {
                let d = data.dist(pc, pf);
                buf.dist_comps += 1;
                let bound = r + nc.radius + fixed.radius;
                if d > bound + slack(bound, dim) {
                    continue;
                }
            }
            let (a, b) = if a_side {
                (child, fix_id)
            } else {
                (fix_id, child)
            };
            buf.stack.push(XTask { a, b });
        }
    }
    Ok(())
}

/// Batched leaf×leaf kernel. One batch computes each left entry's
/// distance to the right pivot (prefiltering entries that cannot reach
/// the right ball), then one batch per surviving entry sweeps the right
/// leaf's lane block; pairs at `d ≤ r` are emitted with their exact
/// computed distance — the same `dist_batch` kernel the self-join uses,
/// so the annotation bits agree across pipelines.
fn join_leaves(left: &MTree<'_>, right: &MTree<'_>, a: NodeId, b: NodeId, r: f64, buf: &mut XBuf) {
    let data = left.data();
    let metric = data.metric();
    let dim = data.dim();
    let na = left.node(a);
    let nb = right.node(b);
    let ea = na.leaf_entries();
    let eb = nb.leaf_entries();
    if ea.is_empty() || eb.is_empty() {
        return;
    }
    let ka = ea.len();
    let kb = eb.len();
    buf.left.clear();
    match nb.pivot {
        Some(pb) => {
            // d(e, x) ≥ d(e, p_B) − radius_B for every x in B: one
            // lane sweep of the left block against p_B excludes left
            // entries whole rows at a time.
            buf.dists.resize(ka, 0.0);
            metric.dist_batch(data.row(pb), &na.lanes, ka, &mut buf.dists[..ka]);
            buf.dist_comps += ka as u64;
            let bound = r + nb.radius;
            let keep = bound + slack(bound, dim);
            for (i, &d1b) in buf.dists[..ka].iter().enumerate() {
                if d1b <= keep {
                    buf.left.push((i as u32, d1b));
                }
            }
        }
        None => {
            // Right tree is a single root leaf: no pivot, no prefilter.
            buf.left.extend((0..ka as u32).map(|i| (i, 0.0)));
        }
    }
    for t in 0..buf.left.len() {
        let (i, _) = buf.left[t];
        let e1 = ea[i as usize].object;
        buf.dists.resize(kb, 0.0);
        metric.dist_batch(data.row(e1), &nb.lanes, kb, &mut buf.dists[..kb]);
        buf.dist_comps += kb as u64;
        for (j, e2) in eb.iter().enumerate() {
            let d = buf.dists[j];
            if d <= r {
                if e1 < e2.object {
                    buf.edges.push((e1, e2.object, d));
                } else {
                    buf.edges.push((e2.object, e1, d));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{MTree, MTreeConfig};
    use disc_metric::{Dataset, Metric, Point};
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn random_data(n: usize, seed: u64, metric: Metric) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        Dataset::new("xjoin-test", metric, points)
    }

    fn brute_cross(data: &Dataset, split: usize, r: f64) -> Vec<DistEdge> {
        let mut edges = Vec::new();
        for a in 0..split {
            for b in split..data.len() {
                let d = data.dist(a, b);
                if d <= r {
                    edges.push((a, b, d));
                }
            }
        }
        edges.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        edges
    }

    fn check(n: usize, split: usize, r: f64, seed: u64, metric: Metric) {
        let data = random_data(n, seed, metric);
        let config = MTreeConfig::default();
        let ta = MTree::build_range(&data, config, 0..split);
        let tb = MTree::build_range(&data, config, split..n);
        let mut got =
            cross_tree_join_dist_checked(&ta, &tb, r, None).expect("valid radius never fails");
        got.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        assert_eq!(got, brute_cross(&data, split, r), "n={n} split={split}");
    }

    #[test]
    fn matches_brute_force_across_metrics() {
        for metric in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Hamming,
        ] {
            check(240, 100, 0.12, 11, metric);
        }
    }

    #[test]
    fn handles_tiny_trees_and_zero_radius() {
        check(3, 1, 0.5, 12, Metric::Euclidean);
        check(2, 1, 0.0, 13, Metric::Euclidean);
        check(64, 63, 0.2, 14, Metric::Euclidean);
    }

    #[test]
    fn duplicates_across_the_split_join_at_zero_radius() {
        let points = vec![Point::new2(0.25, 0.75); 10];
        let data = Dataset::new("dup", Metric::Euclidean, points);
        let config = MTreeConfig::default();
        let ta = MTree::build_range(&data, config, 0..5);
        let tb = MTree::build_range(&data, config, 5..10);
        let edges = cross_tree_join_dist_checked(&ta, &tb, 0.0, None).expect("valid radius");
        assert_eq!(edges.len(), 25);
        assert!(edges.iter().all(|&(a, b, d)| a < 5 && b >= 5 && d == 0.0));
    }

    #[test]
    fn rejects_invalid_radius_and_counts_work() {
        let data = random_data(50, 15, Metric::Euclidean);
        let config = MTreeConfig::default();
        let ta = MTree::build_range(&data, config, 0..25);
        let tb = MTree::build_range(&data, config, 25..50);
        assert_eq!(
            cross_tree_join_dist_checked(&ta, &tb, -1.0, None),
            Err(JoinError::InvalidRadius(-1.0))
        );
        let (dc0, na0) = (ta.distance_computations(), ta.node_accesses());
        let (dc0_b, na0_b) = (tb.distance_computations(), tb.node_accesses());
        let edges = cross_tree_join_dist_checked(&ta, &tb, 0.3, None).expect("valid radius");
        assert!(!edges.is_empty());
        assert!(ta.distance_computations() > dc0);
        assert!(ta.node_accesses() > na0);
        // All charge lands on the left tree; the right tree keeps its
        // build-time counts untouched.
        assert_eq!(tb.distance_computations(), dc0_b);
        assert_eq!(tb.node_accesses(), na0_b);
    }

    #[test]
    fn cancellation_stops_cleanly() {
        let data = random_data(200, 16, Metric::Euclidean);
        let config = MTreeConfig::default();
        let ta = MTree::build_range(&data, config, 0..100);
        let tb = MTree::build_range(&data, config, 100..200);
        let token = disc_metric::CancelToken::new();
        token.cancel();
        assert_eq!(
            cross_tree_join_dist_checked(&ta, &tb, 0.5, Some(&token)),
            Err(JoinError::Cancelled)
        );
    }
}
