//! Structural invariant checking for the M-tree. Used pervasively by
//! tests (including property-based tests in dependent crates); not called
//! on hot paths.

use std::collections::HashSet;

use disc_metric::ObjId;

use crate::node::{NodeId, NodeKind};
use crate::tree::MTree;

/// Checks every structural invariant of the tree and returns a description
/// of the first violation found.
///
/// Invariants:
/// 1. every node except the root has a pivot and a parent that lists it;
/// 2. covering radii bound the distance from each node's pivot to every
///    object in its subtree;
/// 3. cached `dist_to_pivot` / `dist_to_parent` values are correct;
/// 4. all leaves are at the same depth (the tree is balanced);
/// 5. node sizes never exceed the capacity;
/// 6. every object appears in exactly one leaf and `leaf_of` agrees;
/// 7. the leaf chain enumerates every leaf exactly once, in a single pass;
/// 8. every leaf's blocked SoA coordinate lanes mirror its entry list
///    bit for bit (lane `d` of entry `i` at `lanes[d * k + i]`), and
///    internal nodes keep the block empty.
pub fn check_invariants(tree: &MTree<'_>) -> Result<(), String> {
    let root = tree.root();
    if tree.node(root).parent.is_some() {
        return Err("root must not have a parent".into());
    }

    let mut seen_objects: HashSet<ObjId> = HashSet::new();
    let mut leaf_depths: Vec<usize> = Vec::new();
    let mut reachable_leaves: HashSet<NodeId> = HashSet::new();

    check_node(
        tree,
        root,
        1,
        &mut seen_objects,
        &mut leaf_depths,
        &mut reachable_leaves,
    )?;

    // 4. balanced
    if let Some((&first, rest)) = leaf_depths.split_first() {
        if rest.iter().any(|&d| d != first) {
            return Err(format!("unbalanced tree: leaf depths {leaf_depths:?}"));
        }
        if first != tree.height() {
            return Err(format!(
                "height {} disagrees with leaf depth {first}",
                tree.height()
            ));
        }
    }

    // 6. object coverage
    if seen_objects.len() != tree.len() {
        return Err(format!(
            "tree stores {} of {} objects",
            seen_objects.len(),
            tree.len()
        ));
    }

    // 7. leaf chain
    let chained: Vec<NodeId> = tree.leaves().collect();
    let chained_set: HashSet<NodeId> = chained.iter().copied().collect();
    if chained.len() != chained_set.len() {
        return Err("leaf chain visits a leaf twice".into());
    }
    if chained_set != reachable_leaves {
        return Err(format!(
            "leaf chain covers {} leaves, tree has {}",
            chained_set.len(),
            reachable_leaves.len()
        ));
    }

    Ok(())
}

fn check_node(
    tree: &MTree<'_>,
    node: NodeId,
    depth: usize,
    seen: &mut HashSet<ObjId>,
    leaf_depths: &mut Vec<usize>,
    leaves: &mut HashSet<NodeId>,
) -> Result<(), String> {
    let n = tree.node(node);
    let data = tree.data();

    if node != tree.root() && n.pivot.is_none() {
        return Err(format!("non-root node {node} lacks a pivot"));
    }
    // 5. capacity
    if n.len() > tree.config().capacity {
        return Err(format!(
            "node {node} holds {} entries over capacity {}",
            n.len(),
            tree.config().capacity
        ));
    }
    if node != tree.root() && n.is_empty() {
        return Err(format!("non-root node {node} is empty"));
    }

    // 3. cached distance to parent pivot
    if let Some(parent) = n.parent {
        let pn = tree.node(parent);
        if !pn.children().contains(&node) {
            return Err(format!("parent {parent} does not list child {node}"));
        }
        let expect = match (pn.pivot, n.pivot) {
            (Some(pp), Some(np)) => data.dist(np, pp),
            _ => 0.0,
        };
        if (n.dist_to_parent - expect).abs() > 1e-9 {
            return Err(format!(
                "node {node}: dist_to_parent {} should be {expect}",
                n.dist_to_parent
            ));
        }
    }

    match &n.kind {
        NodeKind::Leaf(entries) => {
            leaf_depths.push(depth);
            leaves.insert(node);
            // 8. SoA lanes mirror the entry list exactly.
            let k = entries.len();
            if n.lanes.len() != k * data.dim() {
                return Err(format!(
                    "leaf {node}: SoA block holds {} values for {k} entries of dim {}",
                    n.lanes.len(),
                    data.dim()
                ));
            }
            for (i, e) in entries.iter().enumerate() {
                for (d, &c) in data.row(e.object).iter().enumerate() {
                    if n.lanes[d * k + i].to_bits() != c.to_bits() {
                        return Err(format!(
                            "leaf {node}: SoA lane {d} of entry {i} is {} but object {} has {c}",
                            n.lanes[d * k + i],
                            e.object
                        ));
                    }
                }
            }
            for e in entries {
                if !seen.insert(e.object) {
                    return Err(format!("object {} stored twice", e.object));
                }
                if tree.leaf_of(e.object) != node {
                    return Err(format!(
                        "object {} registered to leaf {} but stored in {node}",
                        e.object,
                        tree.leaf_of(e.object)
                    ));
                }
                if let Some(p) = n.pivot {
                    let d = data.dist(e.object, p);
                    if (e.dist_to_pivot - d).abs() > 1e-9 {
                        return Err(format!(
                            "object {}: cached pivot distance {} should be {d}",
                            e.object, e.dist_to_pivot
                        ));
                    }
                    // 2. radius bounds objects
                    if d > n.radius + 1e-9 {
                        return Err(format!(
                            "object {} at distance {d} exceeds leaf {node} radius {}",
                            e.object, n.radius
                        ));
                    }
                }
            }
        }
        NodeKind::Internal(children) => {
            if children.is_empty() {
                return Err(format!("internal node {node} has no children"));
            }
            if !n.lanes.is_empty() {
                return Err(format!("internal node {node} carries a SoA leaf block"));
            }
            for &c in children {
                if tree.node(c).parent != Some(node) {
                    return Err(format!("child {c} does not point back to {node}"));
                }
                check_node(tree, c, depth + 1, seen, leaf_depths, leaves)?;
            }
            // 2. radius bounds every object in the subtree.
            if let Some(p) = n.pivot {
                for obj in subtree_objects(tree, node) {
                    let d = data.dist(obj, p);
                    if d > n.radius + 1e-9 {
                        return Err(format!(
                            "object {obj} at distance {d} exceeds node {node} radius {}",
                            n.radius
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// All objects stored under `node`.
pub fn subtree_objects(tree: &MTree<'_>, node: NodeId) -> Vec<ObjId> {
    let mut out = Vec::new();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        match &tree.node(id).kind {
            NodeKind::Leaf(entries) => out.extend(entries.iter().map(|e| e.object)),
            NodeKind::Internal(children) => stack.extend_from_slice(children),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{MTree, MTreeConfig};
    use disc_metric::{Dataset, Metric, Point};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    #[test]
    fn valid_tree_passes() {
        let mut rng = StdRng::seed_from_u64(77);
        let data = Dataset::new(
            "d",
            Metric::Euclidean,
            (0..200)
                .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                .collect(),
        );
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        check_invariants(&tree).unwrap();
        let objs = subtree_objects(&tree, tree.root());
        assert_eq!(objs.len(), 200);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Trees over arbitrary point sets, capacities, metrics and split
        /// policies satisfy all invariants.
        #[test]
        fn arbitrary_trees_are_valid(
            seed in 0u64..10_000,
            n in 2usize..150,
            cap in 2usize..14,
            policy_idx in 0usize..4,
            metric_idx in 0usize..3,
        ) {
            let metric = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev][metric_idx];
            let mut rng = StdRng::seed_from_u64(seed);
            let data = Dataset::new(
                "prop",
                metric,
                (0..n)
                    .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                    .collect(),
            );
            let policy = crate::split::SplitPolicy::figure10_policies()[policy_idx].1;
            let tree = MTree::build(
                &data,
                MTreeConfig { capacity: cap, split_policy: policy, seed, ..MTreeConfig::default() },
            );
            prop_assert!(check_invariants(&tree).is_ok());
        }
    }
}
