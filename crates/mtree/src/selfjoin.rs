//! Batched range self-join: all pairs of indexed objects within `r`, in
//! one dual-tree traversal.
//!
//! The DisC heuristics are computations over the neighbourhood graph
//! `G_{P,r}` (paper Section 2.2). Deriving that graph with one range
//! query per object costs `n` root-to-leaf traversals and re-examines
//! every node pair from both sides. The self-join instead walks *node
//! pairs* top-down, visiting each unordered pair of subtrees at most
//! once, and emits every object pair `(i, j)` with `i < j` and
//! `d(i, j) ≤ r` exactly once — the edge list of `G_{P,r}`.
//!
//! ## Pruning
//!
//! Three layers of bounds cut the pair space, all reusing the cached
//! distances PR 1 introduced and all charged to
//! [`MTree::distance_computations`] when they do compute a distance:
//!
//! * **covering-radius bound** — a node pair `(A, B)` with
//!   `d(p_A, p_B) > r + radius(A) + radius(B)` contains no joining pair
//!   and is discarded whole;
//! * **parent-distance bound** (gated on
//!   [`MTreeConfig::parent_pruning`](crate::MTreeConfig)) — before
//!   computing `d(p_A, p_c)` for a child `c` of `B`, the cached
//!   `d(p_c, p_B)` gives `d(p_A, p_c) ≥ |d(p_A, p_B) − d(p_c, p_B)|`;
//!   when that lower bound already exceeds `r + radius(A) + radius(c)`
//!   the child pair dies distance-free. Sibling pairs inside one node
//!   use the same lemma through their shared parent pivot.
//! * **leaf-entry bounds** — inside leaf pairs, every entry's cached
//!   pivot (and, intra-leaf, vantage) distances give exclusion *and*
//!   inclusion tests per object pair, so most pairs resolve without a
//!   fresh distance computation.
//!
//! None of the bounds is approximate: the emitted edge set is exactly
//! the O(n²) scan's (the property tests in `disc-graph` pin this on all
//! four metrics).

use disc_metric::ObjId;

use crate::node::{LeafEntry, NodeId, NodeKind};
use crate::tree::MTree;

impl MTree<'_> {
    /// Computes the range self-join: every unordered pair of indexed
    /// objects within distance `r`, as `(i, j)` with `i < j`, each pair
    /// exactly once. This is the edge list of the neighbourhood graph
    /// `G_{P,r}` materialised in one traversal.
    pub fn range_self_join(&self, r: f64) -> Vec<(ObjId, ObjId)> {
        let mut out = Vec::new();
        self.range_self_join_into(r, &mut out);
        out
    }

    /// [`MTree::range_self_join`] into a reusable edge buffer (cleared
    /// first).
    pub fn range_self_join_into(&self, r: f64, out: &mut Vec<(ObjId, ObjId)>) {
        assert!(r >= 0.0, "radius must be non-negative");
        out.clear();
        if self.is_empty() {
            return;
        }
        self.join_same(self.root(), r, out);
    }

    /// Joins a subtree with itself.
    fn join_same(&self, node: NodeId, r: f64, out: &mut Vec<(ObjId, ObjId)>) {
        self.touch();
        match &self.node(node).kind {
            NodeKind::Leaf(entries) => self.join_leaf_self(node, entries, r, out),
            NodeKind::Internal(children) => {
                let lemma = self.config().parent_pruning && self.node(node).pivot.is_some();
                for (i, &ci) in children.iter().enumerate() {
                    self.join_same(ci, r, out);
                    let ni = self.node(ci);
                    for &cj in &children[i + 1..] {
                        let nj = self.node(cj);
                        // Sibling lower bound through the shared parent
                        // pivot: d(p_i, p_j) ≥ |d(p_i, p) − d(p_j, p)|.
                        if lemma
                            && (ni.dist_to_parent - nj.dist_to_parent).abs()
                                > r + ni.radius + nj.radius
                        {
                            continue;
                        }
                        let pi = ni.pivot.expect("children have pivots");
                        let pj = nj.pivot.expect("children have pivots");
                        let d = self.dist_objs(pi, pj);
                        if d <= r + ni.radius + nj.radius {
                            self.join_pair(ci, cj, d, r, out);
                        }
                    }
                }
            }
        }
    }

    /// Joins two *distinct* subtrees whose pivot distance `d_pivots` is
    /// already known (and already passed the covering-radius bound).
    fn join_pair(
        &self,
        a: NodeId,
        b: NodeId,
        d_pivots: f64,
        r: f64,
        out: &mut Vec<(ObjId, ObjId)>,
    ) {
        let na = self.node(a);
        let nb = self.node(b);
        match (&na.kind, &nb.kind) {
            (NodeKind::Leaf(ea), NodeKind::Leaf(eb)) => {
                self.touch();
                self.touch();
                self.join_leaf_cross(a, ea, b, eb, d_pivots, r, out);
            }
            _ => {
                // Expand the node with the larger covering radius (its
                // children shrink the bound the most); expand the
                // internal one when the other is a leaf.
                let expand_a = match (&na.kind, &nb.kind) {
                    (NodeKind::Internal(_), NodeKind::Leaf(_)) => true,
                    (NodeKind::Leaf(_), NodeKind::Internal(_)) => false,
                    _ => na.radius >= nb.radius,
                };
                let (fixed, expanded, d_known) = if expand_a {
                    (b, a, d_pivots)
                } else {
                    (a, b, d_pivots)
                };
                self.touch();
                let nf = self.node(fixed);
                let pf = nf.pivot.expect("non-root nodes have pivots");
                let lemma = self.config().parent_pruning;
                for &child in self.node(expanded).children() {
                    let nc = self.node(child);
                    // Parent-distance bound: d(p_f, p_c) is at least
                    // |d(p_f, p_e) − d(p_c, p_e)| for the expanded
                    // node's pivot p_e.
                    if lemma && (d_known - nc.dist_to_parent).abs() > r + nf.radius + nc.radius {
                        continue;
                    }
                    let pc = nc.pivot.expect("children have pivots");
                    let d = self.dist_objs(pf, pc);
                    if d <= r + nf.radius + nc.radius {
                        self.join_pair(fixed, child, d, r, out);
                    }
                }
            }
        }
    }

    /// All joining pairs within one leaf. Every bound below uses only
    /// distances cached in the leaf entries, so pairs that resolve via a
    /// bound cost zero distance computations.
    fn join_leaf_self(
        &self,
        leaf: NodeId,
        entries: &[LeafEntry],
        r: f64,
        out: &mut Vec<(ObjId, ObjId)>,
    ) {
        let has_pivot = self.node(leaf).pivot.is_some();
        let use_cached = self.config().parent_pruning && has_pivot;
        for (i, ei) in entries.iter().enumerate() {
            for ej in &entries[i + 1..] {
                if use_cached {
                    // Exclusion by any cached reference annulus
                    // (pivot, vantage, second vantage).
                    if (ei.dist_to_pivot - ej.dist_to_pivot).abs() > r
                        || (ei.dist_to_vantage - ej.dist_to_vantage).abs() > r
                        || (ei.dist_to_vantage2 - ej.dist_to_vantage2).abs() > r
                    {
                        continue;
                    }
                    // Inclusion: d(e_i, e_j) ≤ d(e_i, ref) + d(ref, e_j).
                    if ei.dist_to_pivot + ej.dist_to_pivot <= r
                        || ei.dist_to_vantage + ej.dist_to_vantage <= r
                        || ei.dist_to_vantage2 + ej.dist_to_vantage2 <= r
                    {
                        push_edge(out, ei.object, ej.object);
                        continue;
                    }
                }
                if self.dist_objs(ei.object, ej.object) <= r {
                    push_edge(out, ei.object, ej.object);
                }
            }
        }
    }

    /// All joining pairs across two distinct leaves with known pivot
    /// distance `d_pivots`. Each surviving left entry computes one
    /// distance to the right pivot, turning the right scan into a
    /// cached-annulus filter (exclusion and inclusion) per entry.
    #[allow(clippy::too_many_arguments)]
    fn join_leaf_cross(
        &self,
        _a: NodeId,
        ea: &[LeafEntry],
        b: NodeId,
        eb: &[LeafEntry],
        d_pivots: f64,
        r: f64,
        out: &mut Vec<(ObjId, ObjId)>,
    ) {
        let nb = self.node(b);
        let pb = nb.pivot.expect("non-root nodes have pivots");
        let lemma = self.config().parent_pruning;
        for e1 in ea {
            // d(e1, anything in B) ≥ d(p_A, p_B) − d(e1, p_A) − radius(B).
            if lemma && d_pivots - e1.dist_to_pivot - nb.radius > r {
                continue;
            }
            let d1b = self.dist_objs(e1.object, pb);
            if d1b > r + nb.radius {
                continue;
            }
            for e2 in eb {
                if lemma {
                    if (d1b - e2.dist_to_pivot).abs() > r {
                        continue;
                    }
                    if d1b + e2.dist_to_pivot <= r {
                        push_edge(out, e1.object, e2.object);
                        continue;
                    }
                }
                if self.dist_objs(e1.object, e2.object) <= r {
                    push_edge(out, e1.object, e2.object);
                }
            }
        }
    }
}

#[inline]
fn push_edge(out: &mut Vec<(ObjId, ObjId)>, a: ObjId, b: ObjId) {
    if a < b {
        out.push((a, b));
    } else {
        out.push((b, a));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MTreeConfig;
    use disc_metric::{Dataset, Metric, Point};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn random_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        Dataset::new("random", Metric::Euclidean, pts)
    }

    /// Brute-force edge list, sorted.
    fn scan_edges(data: &Dataset, r: f64) -> Vec<(ObjId, ObjId)> {
        let mut edges = Vec::new();
        for i in 0..data.len() {
            for j in (i + 1)..data.len() {
                if data.dist(i, j) <= r {
                    edges.push((i, j));
                }
            }
        }
        edges
    }

    fn sorted(mut edges: Vec<(ObjId, ObjId)>) -> Vec<(ObjId, ObjId)> {
        edges.sort_unstable();
        edges
    }

    #[test]
    fn self_join_matches_scan() {
        let data = random_data(250, 31);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        for r in [0.0, 0.03, 0.1, 0.4, 1.5] {
            let got = sorted(tree.range_self_join(r));
            assert_eq!(got, scan_edges(&data, r), "r={r}");
        }
    }

    #[test]
    fn self_join_matches_scan_without_parent_pruning() {
        let data = random_data(200, 32);
        let tree = MTree::build(
            &data,
            MTreeConfig::with_capacity(6).with_parent_pruning(false),
        );
        for r in [0.05, 0.2] {
            assert_eq!(sorted(tree.range_self_join(r)), scan_edges(&data, r));
        }
    }

    #[test]
    fn self_join_emits_each_pair_once() {
        let data = random_data(300, 33);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
        let edges = tree.range_self_join(0.15);
        let mut seen = std::collections::HashSet::new();
        for &(i, j) in &edges {
            assert!(i < j, "normalised order");
            assert!(seen.insert((i, j)), "duplicate edge ({i}, {j})");
        }
    }

    #[test]
    fn self_join_computes_fewer_distances_than_all_pairs() {
        let data = random_data(600, 34);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(16));
        tree.reset_distance_computations();
        let edges = tree.range_self_join(0.05);
        let dc = tree.reset_distance_computations();
        let n = data.len() as u64;
        assert!(
            dc < n * (n - 1) / 2,
            "self-join {dc} distances vs all-pairs {}",
            n * (n - 1) / 2
        );
        assert!(!edges.is_empty());
    }

    #[test]
    fn self_join_charges_node_accesses() {
        let data = random_data(150, 35);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        tree.reset_node_accesses();
        let _ = tree.range_self_join(0.1);
        assert!(tree.node_accesses() > 0);
    }

    #[test]
    fn single_object_and_tiny_trees() {
        let one = Dataset::new("one", Metric::Euclidean, vec![Point::new2(0.5, 0.5)]);
        let tree = MTree::build(&one, MTreeConfig::default());
        assert!(tree.range_self_join(10.0).is_empty());

        let two = Dataset::new(
            "two",
            Metric::Euclidean,
            vec![Point::new2(0.0, 0.0), Point::new2(0.5, 0.0)],
        );
        let tree = MTree::build(&two, MTreeConfig::default());
        assert_eq!(tree.range_self_join(1.0), vec![(0, 1)]);
        assert!(tree.range_self_join(0.1).is_empty());
    }

    #[test]
    fn duplicate_points_join_at_radius_zero() {
        let data = Dataset::new(
            "dups",
            Metric::Euclidean,
            vec![
                Point::new2(0.3, 0.3),
                Point::new2(0.3, 0.3),
                Point::new2(0.9, 0.9),
            ],
        );
        let tree = MTree::build(&data, MTreeConfig::with_capacity(2));
        assert_eq!(sorted(tree.range_self_join(0.0)), vec![(0, 1)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The self-join equals the O(n²) scan for arbitrary data, radii
        /// and node capacities, with and without the parent-distance
        /// lemma.
        #[test]
        fn self_join_is_exact(seed in 0u64..1000, r in 0.0..0.7f64, cap in 2usize..12) {
            let data = random_data(120, seed);
            let want = scan_edges(&data, r);
            let lemma = MTree::build(&data, MTreeConfig::with_capacity(cap));
            prop_assert_eq!(&sorted(lemma.range_self_join(r)), &want);
            let plain = MTree::build(
                &data,
                MTreeConfig::with_capacity(cap).with_parent_pruning(false),
            );
            prop_assert_eq!(&sorted(plain.range_self_join(r)), &want);
        }
    }
}
