//! Batched range self-join: all pairs of indexed objects within `r`, in
//! one dual-tree traversal — serial or parallel, with byte-identical
//! output either way.
//!
//! The DisC heuristics are computations over the neighbourhood graph
//! `G_{P,r}` (paper Section 2.2). Deriving that graph with one range
//! query per object costs `n` root-to-leaf traversals and re-examines
//! every node pair from both sides. The self-join instead walks *node
//! pairs* top-down, visiting each unordered pair of subtrees at most
//! once, and emits every object pair `(i, j)` with `i < j` and
//! `d(i, j) ≤ r` exactly once — the edge list of `G_{P,r}`.
//!
//! ## Pruning
//!
//! Three layers of bounds cut the pair space, all reusing the cached
//! distances PR 1 introduced and all charged to
//! [`MTree::distance_computations`] when they do compute a distance:
//!
//! * **covering-radius bound** — a node pair `(A, B)` with
//!   `d(p_A, p_B) > r + radius(A) + radius(B)` contains no joining pair
//!   and is discarded whole;
//! * **parent-distance bound** (gated on
//!   [`MTreeConfig::parent_pruning`](crate::MTreeConfig)) — before
//!   computing `d(p_A, p_c)` for a child `c` of `B`, the cached
//!   `d(p_c, p_B)` gives `d(p_A, p_c) ≥ |d(p_A, p_B) − d(p_c, p_B)|`;
//!   when that lower bound already exceeds `r + radius(A) + radius(c)`
//!   the child pair dies distance-free. Sibling pairs inside one node
//!   use the same lemma through their shared parent pivot.
//! * **leaf-entry bounds** — inside leaf pairs, every entry's cached
//!   pivot (and, intra-leaf, vantage) distances give exclusion *and*
//!   inclusion tests per object pair, so most pairs resolve without a
//!   fresh distance computation;
//! * **subtree inclusion** — a task whose objects are *all* pairwise
//!   within `r` (a self-task with `2 · radius ≤ r`, or a pair task with
//!   `d(p_A, p_B) + radius(A) + radius(B) ≤ r`) stops recursing and
//!   emits its complete cross product: distance-free in plain mode, at
//!   batched-kernel cost in annotated mode (every such pair is an edge,
//!   so the annotated surcharge stays bounded by the edge count).
//!
//! None of the bounds is approximate: the emitted edge set is exactly
//! the O(n²) scan's (the property tests in `disc-graph` and the
//! workspace concurrency tier pin this on all four metrics).
//!
//! ## Blocked leaf kernels
//!
//! Leaf-level work is evaluated as **block sweeps**, not per-pair
//! `PointView` calls. Every leaf stores its entries' coordinates in a
//! lane-major SoA block (see [`crate::node`]); for each left entry the
//! kernel first classifies the opposing entries with the cached-bound
//! filters above, then gathers the survivors that still need a distance
//! into a reusable scratch block and evaluates them with **one**
//! `disc_metric::Metric::dist_batch` call — one metric/dimension
//! dispatch and a vectorizable unit-stride loop per sweep, bitwise
//! identical to the scalar kernel per pair. Edges are emitted in
//! opposing-entry order regardless of whether a pair's distance came
//! from an inclusion bound or the batch, so the plain and annotated
//! edge lists stay byte-identical (annotations aside) by construction.
//! All scratch (survivor lists, gathered lanes, batch outputs, task
//! stacks) lives in a per-traversal arena that the parallel path reuses
//! across a worker's tasks.
//!
//! ## Plain and distance-annotated output
//!
//! The traversal is generic over the edge element it emits:
//!
//! * **plain** — `(a, b)` pairs ([`MTree::range_self_join`] and
//!   friends); inclusion shortcuts (leaf-entry and subtree) emit edges
//!   distance-free;
//! * **annotated** — [`DistEdge`] triples `(a, b, d(a, b))`
//!   ([`MTree::range_self_join_dist`] and friends); every edge carries
//!   its *exact* distance, so inclusion-qualified pairs fill their
//!   distances through the batched kernels instead of skipping the
//!   computation. Every distance the annotated traversal computes
//!   beyond the plain one belongs to an emitted edge, so its counter
//!   total is bounded by `plain + edges` (the `zoom_graph_vs_tree`
//!   binary gates this). The emitted edge list — annotations stripped —
//!   is byte-identical to the plain variant's, and the annotated
//!   traversal has the same serial/parallel parity guarantees (a test
//!   pins both).
//!
//! The annotated variant feeds `disc-graph`'s `StratifiedDiskGraph`: one
//! self-join at the largest radius of interest yields a graph every
//! smaller radius can be read out of as a sorted-row prefix.
//!
//! ## Ordering contract
//!
//! Every edge is emitted as `(a, b)` with `a < b`, and the edge list is
//! in **task order**: the traversal is a sequence of *node-pair tasks*
//! ([`Task`] below — a subtree joined with itself, or two disjoint
//! subtrees joined with a known pivot distance), visited in depth-first
//! serial order; the output is the concatenation of each leaf-level
//! task's edges in that order. The serial and parallel drivers produce
//! the *same byte-identical* `Vec` — order included — so downstream CSR
//! assembly never needs a sort.
//!
//! All `*_into` variants clear the output buffer first, matching the
//! query `*_into` family in [`crate::query`].
//!
//! ## Parallel execution and why it is deterministic
//!
//! [`MTree::range_self_join_with`] splits the traversal in two phases:
//!
//! 1. **Bounded-depth serial expansion.** Starting from the root task
//!    `Same(root)`, tasks are repeatedly *expanded one level* — exactly
//!    the step the serial recursion would take, including every pruning
//!    bound and every pivot-distance computation — until the work list
//!    holds at least `threads × TASKS_PER_WORKER` leaf-or-internal
//!    tasks or no task can expand further. Expansion happens on the
//!    calling thread in serial traversal order, so the work list is a
//!    *frontier* of the serial recursion tree: independent tasks whose
//!    concatenated outputs, in list order, are precisely the serial
//!    output. Edges are only ever emitted by leaf-level tasks, so
//!    expansion itself emits nothing.
//! 2. **Scoped workers.** `std::thread::scope` workers drain the work
//!    list through an atomic cursor. Each task's edges go to a buffer
//!    slot keyed by its work-list index, and each worker accumulates
//!    its distance-computation and node-access counts locally. After
//!    the scope joins, slots are concatenated in index order and the
//!    per-worker counters are added to the tree's global counters in
//!    one bulk charge each — the totals equal the serial traversal's
//!    exactly, because the multiset of distances computed is scheduling
//!    independent (expansion order is fixed, and each task's internal
//!    traversal is sequential).
//!
//! No step of either phase consults thread identity, timing, or
//! scheduling order for anything except *which worker* runs a task, so
//! the result is a pure function of `(tree, r, nothing else)` — the
//! thread count only changes wall-clock time. The workspace
//! `tests/concurrency.rs` tier pins this across thread counts 1, 2, 3
//! and 8 on all four metrics.

use std::sync::atomic::{AtomicUsize, Ordering};

use disc_metric::cancel::{CancelToken, Cancelled};
use disc_metric::{Metric, ObjId};

use crate::error::JoinError;
use crate::node::{NodeId, NodeKind};
use crate::tree::MTree;

/// How many work items the expansion phase aims to produce per worker
/// thread. More items smooth out load imbalance between cheap and
/// expensive node pairs; the expansion cost is a handful of tree levels
/// either way.
const TASKS_PER_WORKER: usize = 8;

/// Hard bound on expansion passes. Each pass descends at most one tree
/// level on one side of every task, so `2 × height` passes reach the
/// leaves; 64 covers any tree this workspace can build while keeping
/// the expansion provably finite.
const MAX_EXPANSION_PASSES: usize = 64;

/// Below this many indexed objects the auto-threaded dispatch falls
/// back to the serial traversal (thread spawn/join dominates).
const MIN_PARALLEL: usize = 1_024;

/// Tuning knobs for [`MTree::range_self_join_with`].
///
/// Primarily a **test override**: the workspace concurrency tier forces
/// `threads` to 1, 2, 3 and 8 to pin that the parallel traversal is
/// byte-identical to the serial one regardless of worker count.
/// Production callers normally use [`MTree::range_self_join`], which
/// picks the thread count automatically (and only goes parallel when
/// the `parallel` feature is enabled).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelfJoinConfig {
    /// Worker thread count. `0` (the default) means one worker per
    /// available core, falling back to the serial traversal for small
    /// trees; any explicit value ≥ 2 is honoured exactly, even on small
    /// inputs (so tests can exercise the parallel machinery on tiny
    /// trees). An *effective* count of 1 — explicit or auto-detected —
    /// dispatches straight to the serial traversal: the frontier
    /// expansion and slot merge only pay off with real workers, and the
    /// output is byte-identical either way (a test pins this).
    pub threads: usize,
}

impl SelfJoinConfig {
    /// Config with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }
}

/// A distance-annotated self-join edge: `(a, b, dist(a, b))` with
/// `a < b`. The annotation is the *exact* metric distance (never a
/// bound), so downstream structures can stratify edges by radius — see
/// `disc-graph`'s `StratifiedDiskGraph`.
pub type DistEdge = (ObjId, ObjId, f64);

/// The element type a self-join traversal emits: plain `(a, b)` pairs or
/// distance-annotated [`DistEdge`]s. Mirrors the `RangeSink::NEEDS_DIST`
/// pattern in [`crate::query`]: annotated output disables the
/// distance-free *inclusion* shortcuts (which prove `d(a, b) ≤ r` from
/// cached reference distances without ever computing `d(a, b)`), so the
/// annotated traversal computes slightly more distances than the plain
/// one — every emitted edge then carries its exact distance. Exclusion
/// bounds are unaffected, and the emitted edge *list* (ignoring the
/// annotations) is byte-identical between the two modes.
trait JoinEdge: Copy + Send {
    /// Whether emission needs the exact pair distance.
    const NEEDS_DIST: bool;
    /// Builds an edge; `d` is the exact distance when `NEEDS_DIST`,
    /// otherwise possibly just an upper bound (and ignored).
    fn make(a: ObjId, b: ObjId, d: f64) -> Self;
}

impl JoinEdge for (ObjId, ObjId) {
    const NEEDS_DIST: bool = false;
    #[inline]
    fn make(a: ObjId, b: ObjId, _d: f64) -> Self {
        (a, b)
    }
}

impl JoinEdge for DistEdge {
    const NEEDS_DIST: bool = true;
    #[inline]
    fn make(a: ObjId, b: ObjId, d: f64) -> Self {
        (a, b, d)
    }
}

/// One task's slice of a worker's edge arena: `(task index, start,
/// end)` — the task index is the merge key that restores serial output
/// order.
type TaskSlot = (usize, usize, usize);

/// One worker's results: its task slots, the shared edge arena they
/// index into (one allocation reused across all of the worker's tasks),
/// and the worker's locally accumulated distance-computation and
/// node-access counts.
type WorkerResult<E> = (Vec<TaskSlot>, Vec<E>, u64, u64);

/// One independent unit of traversal work: a subtree joined with
/// itself, or two disjoint subtrees joined with their pivot distance
/// already computed (and already past the covering-radius bound).
#[derive(Clone, Copy, Debug)]
enum Task {
    /// Join `node`'s subtree with itself.
    Same(NodeId),
    /// Join two distinct subtrees whose pivot distance is known.
    Pair(NodeId, NodeId, f64),
}

/// Reusable scratch arena for the blocked leaf kernels, the subtree
/// inclusion sweeps and the task stacks. One arena lives per traversal
/// (serial) or per worker (parallel) inside its [`JoinBuf`], so no leaf
/// pair or task allocates on its own.
#[derive(Default)]
struct JoinScratch {
    /// Survivors of one left entry's opposing-row filter:
    /// `(block index, distance)` — the distance slot holds an inclusion
    /// bound immediately, or is filled by the batch for candidates.
    surv: Vec<(u32, f64)>,
    /// Positions in `surv` whose distance comes from the batch kernel.
    cand: Vec<u32>,
    /// Left-phase survivors of a cross task: `(block index, d(e, p_B))`.
    left: Vec<(u32, f64)>,
    /// Gathered candidate coordinate lanes (SoA, stride = candidates).
    lanes: Vec<f64>,
    /// Batch kernel output.
    dists: Vec<f64>,
    /// DFS leaf list of a subtree sweep.
    leaves: Vec<NodeId>,
    /// Object ids of a gathered subtree (left side of an all-pair
    /// sweep / the whole block of an all-self sweep).
    ids_a: Vec<ObjId>,
    /// Object ids of the right-side gathered subtree.
    ids_b: Vec<ObjId>,
    /// SoA coordinate block matching `ids_a`.
    lanes_a: Vec<f64>,
    /// SoA coordinate block matching `ids_b`.
    lanes_b: Vec<f64>,
    /// Depth-first task stack of `run_task`.
    stack: Vec<Task>,
    /// Subtask buffer one `step` writes into.
    sub: Vec<Task>,
}

/// Thread-local traversal state: the edges found so far, the
/// distance-computation and node-access counts accrued while finding
/// them, and the reusable scratch arena. Workers keep one of these
/// across all their tasks and flush the counters into the tree's global
/// atomics in a single bulk charge at the end, so the global totals
/// stay exact without per-distance atomic traffic.
struct JoinBuf<E> {
    edges: Vec<E>,
    dist_comps: u64,
    accesses: u64,
    scratch: JoinScratch,
}

impl<E> Default for JoinBuf<E> {
    fn default() -> Self {
        Self {
            edges: Vec::new(),
            dist_comps: 0,
            accesses: 0,
            scratch: JoinScratch::default(),
        }
    }
}

impl<E: JoinEdge> JoinBuf<E> {
    /// Records one node access.
    #[inline]
    fn touch(&mut self) {
        self.accesses += 1;
    }

    /// Counted distance between two indexed objects.
    #[inline]
    fn dist_objs(&mut self, tree: &MTree<'_>, a: ObjId, b: ObjId) -> f64 {
        self.dist_comps += 1;
        tree.data().dist(a, b)
    }
}

/// Conservative acceptance test for the inclusion shortcuts (per-pair,
/// per-row and per-subtree). `bound` is a sum of independently rounded distances (and
/// covering radii, themselves maxima over rounded sums), so a
/// mathematically valid `bound ≤ r` could be reached through a value
/// that rounded *down* while the pair's computed distance rounds up
/// past `r` — and the shortcut's emissions must match the O(n²) scan's
/// computed-distance test exactly. Shaving a relative margin off the
/// acceptance keeps every borderline pair on the compute-and-compare
/// path instead (correct by construction). The margin scales with the
/// dimensionality because the kernels' accumulated rounding does
/// (≈ dim/2 + 2 ulps for the chunked Euclidean sum plus the sqrt, and
/// the bound side stacks a handful of rounded terms of its own);
/// `2·dim + 8` ulps covers the worst case with room. Exact cases —
/// `bound == 0` at `r == 0`, duplicate points — stay unaffected
/// because the margin scales with the bound.
#[inline]
pub(crate) fn within_inclusion(bound: f64, r: f64, dim: usize) -> bool {
    bound + bound * ((2 * dim + 8) as f64 * f64::EPSILON) <= r
}

/// Emits one edge in normalised `(min, max)` orientation. `d` is the
/// exact distance on every path that can run in annotated mode
/// (distance-free inclusion shortcuts only fire when `E::NEEDS_DIST` is
/// false, and then pass an upper bound that the plain edge type
/// discards).
#[inline]
/// Typed radius validation shared by the checked entry points: NaN and
/// negative radii are rejected before any traversal state is touched.
fn validate_radius(r: f64) -> Result<(), JoinError> {
    if r.is_nan() || r < 0.0 {
        return Err(JoinError::InvalidRadius(r));
    }
    Ok(())
}

fn push_edge_into<E: JoinEdge>(edges: &mut Vec<E>, a: ObjId, b: ObjId, d: f64) {
    if a < b {
        edges.push(E::make(a, b, d));
    } else {
        edges.push(E::make(b, a, d));
    }
}

/// Shared gather-and-batch core: gathers `m` entries of `block`
/// (lane stride derived from the block and query lengths) selected by
/// `idx` into the `lanes` scratch, then batch-evaluates their
/// distances to `q` into `dists[..m]`. Returns the distance charge
/// (`m`).
fn batch_gather(
    metric: Metric,
    q: &[f64],
    block: &[f64],
    idx: impl Fn(usize) -> usize,
    m: usize,
    lanes: &mut Vec<f64>,
    dists: &mut Vec<f64>,
) -> u64 {
    if m == 0 {
        return 0;
    }
    let dim = q.len();
    let stride = block.len() / dim;
    // No clear() first: every retained slot is overwritten by the
    // gather below, so only the grown tail needs initialising.
    lanes.resize(dim * m, 0.0);
    for d in 0..dim {
        let src = &block[d * stride..(d + 1) * stride];
        let dst = &mut lanes[d * m..(d + 1) * m];
        for (t, slot) in dst.iter_mut().enumerate() {
            *slot = src[idx(t)];
        }
    }
    dists.resize(m, 0.0);
    metric.dist_batch(q, lanes, m, &mut dists[..m]);
    m as u64
}

/// [`batch_gather`] over the survivor list's candidates: `cand` holds
/// positions in `surv` (whose first element is the entry's block
/// index); the batched distances are scattered back into the selected
/// survivors' distance slots.
fn batch_fill(
    metric: Metric,
    q: &[f64],
    block: &[f64],
    surv: &mut [(u32, f64)],
    cand: &[u32],
    lanes: &mut Vec<f64>,
    dists: &mut Vec<f64>,
) -> u64 {
    let charged = batch_gather(
        metric,
        q,
        block,
        |t| surv[cand[t] as usize].0 as usize,
        cand.len(),
        lanes,
        dists,
    );
    for (t, &pos) in cand.iter().enumerate() {
        surv[pos as usize].1 = dists[t];
    }
    charged
}

/// [`batch_gather`] for the case where *every* listed entry needs a
/// distance (the left phase of a cross task): fills the listed
/// entries' distance slots in place.
fn batch_fill_all(
    metric: Metric,
    q: &[f64],
    block: &[f64],
    list: &mut [(u32, f64)],
    lanes: &mut Vec<f64>,
    dists: &mut Vec<f64>,
) -> u64 {
    let charged = batch_gather(
        metric,
        q,
        block,
        |t| list[t].0 as usize,
        list.len(),
        lanes,
        dists,
    );
    for (t, slot) in list.iter_mut().enumerate() {
        slot.1 = dists[t];
    }
    charged
}

impl MTree<'_> {
    /// Computes the range self-join: every unordered pair of indexed
    /// objects within distance `r`, as `(i, j)` with `i < j`, each pair
    /// exactly once, in the deterministic task order described in the
    /// [module docs](self). This is the edge list of the neighbourhood
    /// graph `G_{P,r}` materialised in one traversal.
    ///
    /// With the `parallel` feature enabled this dispatches to the
    /// multi-threaded traversal (auto thread count, byte-identical
    /// output); without it, to the serial traversal.
    pub fn range_self_join(&self, r: f64) -> Vec<(ObjId, ObjId)> {
        let mut out = Vec::new();
        self.range_self_join_into(r, &mut out);
        out
    }

    /// [`MTree::range_self_join`] into a reusable edge buffer. The
    /// buffer is cleared first (like every `*_into` API in this crate)
    /// and refilled in task order, `(a, b)` with `a < b`.
    pub fn range_self_join_into(&self, r: f64, out: &mut Vec<(ObjId, ObjId)>) {
        #[cfg(feature = "parallel")]
        self.range_self_join_with_into(r, SelfJoinConfig::default(), out);
        #[cfg(not(feature = "parallel"))]
        self.range_self_join_serial_into(r, out);
    }

    /// The single-threaded self-join traversal (always available; the
    /// reference side of the serial-vs-parallel parity gates).
    pub fn range_self_join_serial(&self, r: f64) -> Vec<(ObjId, ObjId)> {
        let mut out = Vec::new();
        self.range_self_join_serial_into(r, &mut out);
        out
    }

    /// [`MTree::range_self_join_serial`] into a reusable edge buffer
    /// (cleared first; same ordering contract).
    pub fn range_self_join_serial_into(&self, r: f64, out: &mut Vec<(ObjId, ObjId)>) {
        self.join_serial_into(r, out);
    }

    /// The self-join with an explicit thread count (see
    /// [`SelfJoinConfig`]). Byte-identical output — edge set *and*
    /// order — and identical [`MTree::distance_computations`] /
    /// [`MTree::node_accesses`] totals for every thread count,
    /// including 1.
    pub fn range_self_join_with(&self, r: f64, config: SelfJoinConfig) -> Vec<(ObjId, ObjId)> {
        let mut out = Vec::new();
        self.range_self_join_with_into(r, config, &mut out);
        out
    }

    /// [`MTree::range_self_join_with`] into a reusable edge buffer
    /// (cleared first; same ordering contract).
    pub fn range_self_join_with_into(
        &self,
        r: f64,
        config: SelfJoinConfig,
        out: &mut Vec<(ObjId, ObjId)>,
    ) {
        self.join_with_into(r, config, out);
    }

    /// The **distance-annotated** range self-join: the same edge list as
    /// [`MTree::range_self_join`] — same `(a, b)` with `a < b`
    /// normalisation, same deterministic task order — with every edge
    /// carrying its exact distance `d(a, b) ≤ r`.
    ///
    /// Annotation disables the leaf-level *inclusion* shortcuts (which
    /// prove `d ≤ r` from cached reference distances without computing
    /// `d`), so this traversal charges somewhat more
    /// [`MTree::distance_computations`] than the plain self-join at the
    /// same radius — the price of exact per-edge distances. Stripped of
    /// the annotations, the output is byte-identical to the plain
    /// variant's.
    ///
    /// With the `parallel` feature enabled this dispatches to the
    /// multi-threaded traversal (auto thread count, byte-identical
    /// output — annotations included); without it, to the serial one.
    pub fn range_self_join_dist(&self, r: f64) -> Vec<DistEdge> {
        let mut out = Vec::new();
        self.range_self_join_dist_into(r, &mut out);
        out
    }

    /// [`MTree::range_self_join_dist`] into a reusable edge buffer
    /// (cleared first; same ordering contract).
    pub fn range_self_join_dist_into(&self, r: f64, out: &mut Vec<DistEdge>) {
        #[cfg(feature = "parallel")]
        self.range_self_join_dist_with_into(r, SelfJoinConfig::default(), out);
        #[cfg(not(feature = "parallel"))]
        self.range_self_join_dist_serial_into(r, out);
    }

    /// The single-threaded distance-annotated traversal (always
    /// available; the reference side of the annotated parity gates).
    pub fn range_self_join_dist_serial(&self, r: f64) -> Vec<DistEdge> {
        let mut out = Vec::new();
        self.range_self_join_dist_serial_into(r, &mut out);
        out
    }

    /// [`MTree::range_self_join_dist_serial`] into a reusable edge
    /// buffer (cleared first; same ordering contract).
    pub fn range_self_join_dist_serial_into(&self, r: f64, out: &mut Vec<DistEdge>) {
        self.join_serial_into(r, out);
    }

    /// The distance-annotated self-join with an explicit thread count.
    /// Byte-identical output — edges, order *and* distance annotations —
    /// and exact counter parity with
    /// [`MTree::range_self_join_dist_serial`] for every thread count.
    pub fn range_self_join_dist_with(&self, r: f64, config: SelfJoinConfig) -> Vec<DistEdge> {
        let mut out = Vec::new();
        self.range_self_join_dist_with_into(r, config, &mut out);
        out
    }

    /// [`MTree::range_self_join_dist_with`] into a reusable edge buffer
    /// (cleared first; same ordering contract).
    pub fn range_self_join_dist_with_into(
        &self,
        r: f64,
        config: SelfJoinConfig,
        out: &mut Vec<DistEdge>,
    ) {
        self.join_with_into(r, config, out);
    }

    /// The fail-closed self-join entry point: validates the radius with
    /// a typed error (instead of the panicking contract of
    /// [`MTree::range_self_join`]) and polls an optional
    /// [`CancelToken`] at task granularity.
    ///
    /// On cancellation the traversal stops cleanly with
    /// [`JoinError::Cancelled`]: no partial edge list escapes, and the
    /// [`MTree::distance_computations`] / [`MTree::node_accesses`]
    /// counters reflect exactly the work performed up to the abandoned
    /// task (never more, never less), so a retried run on a fresh
    /// counter baseline is indistinguishable from a never-cancelled one.
    pub fn range_self_join_checked(
        &self,
        r: f64,
        config: SelfJoinConfig,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<(ObjId, ObjId)>, JoinError> {
        validate_radius(r)?;
        let mut out = Vec::new();
        self.join_with_core(r, config, &mut out, cancel)?;
        Ok(out)
    }

    /// Checked counterpart of [`MTree::range_self_join_dist_with`]: the
    /// distance-annotated self-join with typed radius validation and
    /// cooperative cancellation. Same contract as
    /// [`MTree::range_self_join_checked`].
    pub fn range_self_join_dist_checked(
        &self,
        r: f64,
        config: SelfJoinConfig,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<DistEdge>, JoinError> {
        validate_radius(r)?;
        let mut out = Vec::new();
        self.join_with_core(r, config, &mut out, cancel)?;
        Ok(out)
    }

    /// Generic serial driver behind both edge types.
    fn join_serial_into<E: JoinEdge>(&self, r: f64, out: &mut Vec<E>) {
        let Ok(()) = self.join_serial_core(r, out, None) else {
            unreachable!("cancellation is impossible without a token")
        };
    }

    /// Serial driver core: optionally cancellable. On `Err(Cancelled)`
    /// the counters are already charged for the work performed and
    /// `out` is left empty (its allocation is preserved).
    fn join_serial_core<E: JoinEdge>(
        &self,
        r: f64,
        out: &mut Vec<E>,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Cancelled> {
        assert!(r >= 0.0, "radius must be non-negative");
        out.clear();
        if self.is_empty() {
            return Ok(());
        }
        let mut buf = JoinBuf {
            edges: std::mem::take(out),
            ..JoinBuf::default()
        };
        let run = self.run_task(Task::Same(self.root()), r, &mut buf, cancel);
        // Bulk-charge exactly the work performed — also on the abandoned
        // path, so cancellation never loses or double-counts work.
        self.charge_accesses_bulk(buf.accesses);
        self.charge_distances_bulk(buf.dist_comps);
        if run.is_err() {
            buf.edges.clear();
        }
        *out = buf.edges;
        run
    }

    /// Generic two-phase parallel driver behind both edge types.
    fn join_with_into<E: JoinEdge>(&self, r: f64, config: SelfJoinConfig, out: &mut Vec<E>) {
        let Ok(()) = self.join_with_core(r, config, out, None) else {
            unreachable!("cancellation is impossible without a token")
        };
    }

    /// Parallel driver core behind both edge types (see the module docs
    /// for the determinism argument, which is edge-type independent),
    /// optionally cancellable at task granularity. On `Err(Cancelled)`
    /// counters are charged for exactly the work performed across all
    /// workers and `out` is left empty.
    fn join_with_core<E: JoinEdge>(
        &self,
        r: f64,
        config: SelfJoinConfig,
        out: &mut Vec<E>,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Cancelled> {
        assert!(r >= 0.0, "radius must be non-negative");
        let threads = if config.threads == 0 {
            let auto = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            if auto <= 1 || self.len() < MIN_PARALLEL {
                return self.join_serial_core(r, out, cancel);
            }
            auto
        } else {
            config.threads
        };
        if threads <= 1 {
            // One worker degenerates to the serial traversal; skip the
            // frontier expansion + slot merge entirely (they used to
            // cost ~60% extra wall clock at an effective thread count
            // of 1). Output and counters are byte-identical either way
            // — the traversal order never depended on the phase split.
            return self.join_serial_core(r, out, cancel);
        }
        out.clear();
        if self.is_empty() {
            return Ok(());
        }

        // Phase 1: bounded-depth serial expansion of the task frontier
        // (charges the expansion-level pivot distances and accesses on
        // this thread, exactly as the serial recursion would).
        let mut expand_buf = JoinBuf {
            edges: std::mem::take(out),
            ..JoinBuf::default()
        };
        let target = threads * TASKS_PER_WORKER;
        let mut tasks = vec![Task::Same(self.root())];
        for _ in 0..MAX_EXPANSION_PASSES {
            if let Some(c) = cancel {
                if c.checkpoint().is_err() {
                    // Charge the expansion work already performed and
                    // surface the cancellation with an empty buffer.
                    self.charge_accesses_bulk(expand_buf.accesses);
                    self.charge_distances_bulk(expand_buf.dist_comps);
                    expand_buf.edges.clear();
                    *out = expand_buf.edges;
                    return Err(Cancelled);
                }
            }
            if tasks.len() >= target || tasks.iter().all(|&t| self.is_terminal(t, r)) {
                break;
            }
            let mut next = Vec::with_capacity(tasks.len() * 4);
            for &t in &tasks {
                if self.is_terminal(t, r) {
                    next.push(t);
                } else {
                    let done = self.step(t, r, &mut expand_buf, &mut next);
                    debug_assert!(!done, "internal tasks expand, they never emit");
                }
            }
            tasks = next;
        }
        debug_assert!(
            expand_buf.edges.is_empty(),
            "expansion visits only internal node pairs and emits no edges"
        );

        // Phase 2: scoped workers drain the frontier through an atomic
        // cursor; each worker pushes its tasks' edges into one arena
        // (reused across tasks — no per-task allocation) and remembers
        // the per-task slice bounds; counters accumulate per worker.
        // threads >= 2 here (an effective count of 1 returned serial
        // above) and the task list is never empty (it starts from the
        // root), so this is at least 1.
        let workers = threads.min(tasks.len());
        let mut aborted = false;
        if workers <= 1 {
            // A frontier of one task: run in place.
            for &t in &tasks {
                if self.run_task(t, r, &mut expand_buf, cancel).is_err() {
                    aborted = true;
                    break;
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let per_worker: Vec<WorkerResult<E>> = std::thread::scope(|s| {
                let tasks = &tasks;
                let cursor = &cursor;
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(move || {
                            let mut buf = JoinBuf::default();
                            let mut done = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&task) = tasks.get(i) else { break };
                                let start = buf.edges.len();
                                if self.run_task(task, r, &mut buf, cancel).is_err() {
                                    // Abandon mid-task: the slot stays
                                    // unclaimed, which the merge below
                                    // reads as cancellation. The buffer
                                    // still carries this worker's exact
                                    // counters.
                                    break;
                                }
                                done.push((i, start, buf.edges.len()));
                            }
                            (done, buf.edges, buf.dist_comps, buf.accesses)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(res) => res,
                        // A worker panic is a bug, not a recoverable
                        // condition: re-raise it on the driver thread.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
            // Merge in task order: the concatenation equals the serial
            // traversal's output byte for byte. Counters from every
            // worker are folded in first so a cancelled run still
            // charges exactly the work performed.
            let mut slots: Vec<(usize, usize, usize)> = vec![(usize::MAX, 0, 0); tasks.len()];
            for (w, (done, _, dist_comps, accesses)) in per_worker.iter().enumerate() {
                expand_buf.dist_comps += dist_comps;
                expand_buf.accesses += accesses;
                for &(i, start, end) in done {
                    slots[i] = (w, start, end);
                }
            }
            if slots.iter().any(|&(w, _, _)| w == usize::MAX) {
                // At least one task was never completed: the token fired
                // mid-drain. (A token that trips only after every slot
                // was claimed does not fail the run — the output is
                // already complete and exact.)
                aborted = true;
            } else {
                for &(w, start, end) in &slots {
                    expand_buf
                        .edges
                        .extend_from_slice(&per_worker[w].1[start..end]);
                }
            }
        }
        self.charge_accesses_bulk(expand_buf.accesses);
        self.charge_distances_bulk(expand_buf.dist_comps);
        if aborted {
            expand_buf.edges.clear();
            *out = expand_buf.edges;
            return Err(Cancelled);
        }
        *out = expand_buf.edges;
        Ok(())
    }

    /// Whether a task runs to completion in one `step` (emitting its
    /// edges) as opposed to expanding into subtasks: leaf-level tasks,
    /// and tasks caught by the subtree inclusion bounds (all pairs
    /// provably within `r`). The expansion phase must agree with
    /// [`MTree::step`] on this, so the frontier never emits.
    fn is_terminal(&self, task: Task, r: f64) -> bool {
        match task {
            Task::Same(n) => {
                let nd = self.node(n);
                nd.is_leaf()
                    || (nd.pivot.is_some()
                        && within_inclusion(2.0 * nd.radius, r, self.data().dim()))
            }
            Task::Pair(a, b, d) => {
                let na = self.node(a);
                let nb = self.node(b);
                (na.is_leaf() && nb.is_leaf())
                    || within_inclusion(d + na.radius + nb.radius, r, self.data().dim())
            }
        }
    }

    /// Runs a task to completion, depth-first, emitting its edges into
    /// `buf` in serial traversal order. The task stack and subtask
    /// buffer live in the buf's scratch arena, reused across tasks.
    ///
    /// The optional [`CancelToken`] is polled once per popped task — a
    /// task either runs whole or not at all, so the counters charged
    /// from `buf` always account for completed work exactly. On
    /// `Err(Cancelled)` the buffer may hold a partial edge list; the
    /// drivers discard it before surfacing the error.
    fn run_task<E: JoinEdge>(
        &self,
        task: Task,
        r: f64,
        buf: &mut JoinBuf<E>,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Cancelled> {
        let mut stack = std::mem::take(&mut buf.scratch.stack);
        let mut sub = std::mem::take(&mut buf.scratch.sub);
        stack.clear();
        sub.clear();
        stack.push(task);
        let mut result = Ok(());
        while let Some(t) = stack.pop() {
            if let Some(c) = cancel {
                if let Err(e) = c.checkpoint() {
                    result = Err(e);
                    break;
                }
            }
            if !self.step(t, r, buf, &mut sub) {
                // Subtasks were produced in serial order; the stack pops
                // in reverse, so push them reversed.
                stack.extend(sub.drain(..).rev());
            }
        }
        stack.clear();
        sub.clear();
        buf.scratch.stack = stack;
        buf.scratch.sub = sub;
        result
    }

    /// Executes one level of the traversal. Leaf-level tasks run to
    /// completion (edges into `buf`) and return `true`; internal tasks
    /// push their surviving subtasks onto `out` *in serial traversal
    /// order* and return `false`. All pruning bounds and all counter
    /// charges happen here, identically for the serial recursion and
    /// the parallel expansion.
    fn step<E: JoinEdge>(
        &self,
        task: Task,
        r: f64,
        buf: &mut JoinBuf<E>,
        out: &mut Vec<Task>,
    ) -> bool {
        match task {
            Task::Same(node) => {
                let nd = self.node(node);
                // Subtree inclusion: every pair is within the node's
                // diameter bound, so the whole complete graph joins.
                // (The root's radius is unset, hence the pivot gate.)
                if nd.pivot.is_some() && within_inclusion(2.0 * nd.radius, r, self.data().dim()) {
                    self.emit_all_same(node, buf);
                    return true;
                }
                buf.touch();
                match &nd.kind {
                    NodeKind::Leaf(_) => {
                        self.join_leaf_self(node, r, buf);
                        true
                    }
                    NodeKind::Internal(children) => {
                        let lemma = self.config().parent_pruning && self.node(node).pivot.is_some();
                        for (i, &ci) in children.iter().enumerate() {
                            out.push(Task::Same(ci));
                            let ni = self.node(ci);
                            for &cj in &children[i + 1..] {
                                let nj = self.node(cj);
                                // Sibling lower bound through the shared
                                // parent pivot:
                                // d(p_i, p_j) ≥ |d(p_i, p) − d(p_j, p)|.
                                if lemma
                                    && (ni.dist_to_parent - nj.dist_to_parent).abs()
                                        > r + ni.radius + nj.radius
                                {
                                    continue;
                                }
                                let pi = ni.pivot_id();
                                let pj = nj.pivot_id();
                                let d = buf.dist_objs(self, pi, pj);
                                if d <= r + ni.radius + nj.radius {
                                    out.push(Task::Pair(ci, cj, d));
                                }
                            }
                        }
                        false
                    }
                }
            }
            Task::Pair(a, b, d_pivots) => {
                let na = self.node(a);
                let nb = self.node(b);
                // Subtree inclusion: the two covering balls fit inside
                // the query radius together, so the full cross product
                // joins without any further bound checks.
                if within_inclusion(d_pivots + na.radius + nb.radius, r, self.data().dim()) {
                    self.emit_all_pair(a, b, d_pivots, buf);
                    return true;
                }
                match (&na.kind, &nb.kind) {
                    (NodeKind::Leaf(_), NodeKind::Leaf(_)) => {
                        buf.touch();
                        buf.touch();
                        self.join_leaf_cross(a, b, d_pivots, r, buf);
                        true
                    }
                    _ => {
                        // Expand the node with the larger covering radius
                        // (its children shrink the bound the most);
                        // expand the internal one when the other is a
                        // leaf.
                        let expand_a = match (&na.kind, &nb.kind) {
                            (NodeKind::Internal(_), NodeKind::Leaf(_)) => true,
                            (NodeKind::Leaf(_), NodeKind::Internal(_)) => false,
                            _ => na.radius >= nb.radius,
                        };
                        let (fixed, expanded, d_known) = if expand_a {
                            (b, a, d_pivots)
                        } else {
                            (a, b, d_pivots)
                        };
                        buf.touch();
                        let nf = self.node(fixed);
                        let pf = nf.pivot_id();
                        let lemma = self.config().parent_pruning;
                        for &child in self.node(expanded).children() {
                            let nc = self.node(child);
                            // Parent-distance bound: d(p_f, p_c) is at
                            // least |d(p_f, p_e) − d(p_c, p_e)| for the
                            // expanded node's pivot p_e.
                            if lemma
                                && (d_known - nc.dist_to_parent).abs() > r + nf.radius + nc.radius
                            {
                                continue;
                            }
                            let pc = nc.pivot_id();
                            let d = buf.dist_objs(self, pf, pc);
                            if d <= r + nf.radius + nc.radius {
                                out.push(Task::Pair(fixed, child, d));
                            }
                        }
                        false
                    }
                }
            }
        }
    }

    /// All joining pairs within one leaf, as one block sweep per left
    /// entry. The cached-annulus bounds classify the opposing entries
    /// first (exclusion drops a pair distance-free; in plain mode
    /// inclusion resolves it distance-free too); the remaining
    /// candidates are gathered out of the leaf's SoA block and
    /// evaluated with one batched kernel call. Edges are emitted in
    /// opposing-entry order, so plain and annotated output stay
    /// byte-identical (annotations aside).
    fn join_leaf_self<E: JoinEdge>(&self, leaf: NodeId, r: f64, buf: &mut JoinBuf<E>) {
        let data = self.data();
        let (metric, dim) = (data.metric(), data.dim());
        let node = self.node(leaf);
        let entries = node.leaf_entries();
        let k = entries.len();
        let use_cached = self.config().parent_pruning && node.pivot.is_some();
        let JoinBuf {
            edges,
            dist_comps,
            scratch,
            ..
        } = buf;
        for (i, ei) in entries.iter().enumerate() {
            let m = k - i - 1;
            if m == 0 {
                break;
            }
            // Row inclusion: d(e_i, e_j) ≤ d(e_i, p) + radius ≤ r for
            // *every* remaining entry — emit the whole suffix without
            // per-pair filters (distance-free in plain mode, one
            // gather-free suffix sweep in annotated mode).
            if use_cached && within_inclusion(ei.dist_to_pivot + node.radius, r, dim) {
                if E::NEEDS_DIST {
                    scratch.dists.resize(m, 0.0);
                    metric.dist_batch(
                        data.row(ei.object),
                        &node.lanes[i + 1..],
                        k,
                        &mut scratch.dists[..m],
                    );
                    *dist_comps += m as u64;
                    for (t, ej) in entries[i + 1..].iter().enumerate() {
                        push_edge_into(edges, ei.object, ej.object, scratch.dists[t]);
                    }
                } else {
                    for ej in &entries[i + 1..] {
                        push_edge_into(
                            edges,
                            ei.object,
                            ej.object,
                            ei.dist_to_pivot + ej.dist_to_pivot,
                        );
                    }
                }
                continue;
            }
            scratch.surv.clear();
            scratch.cand.clear();
            for (j, ej) in entries.iter().enumerate().skip(i + 1) {
                if use_cached {
                    // Exclusion by any cached reference annulus
                    // (pivot, vantage, second vantage).
                    if (ei.dist_to_pivot - ej.dist_to_pivot).abs() > r
                        || (ei.dist_to_vantage - ej.dist_to_vantage).abs() > r
                        || (ei.dist_to_vantage2 - ej.dist_to_vantage2).abs() > r
                    {
                        continue;
                    }
                    // Inclusion: d(e_i, e_j) ≤ d(e_i, ref) + d(ref, e_j).
                    if !E::NEEDS_DIST {
                        let b0 = ei.dist_to_pivot + ej.dist_to_pivot;
                        let b1 = ei.dist_to_vantage + ej.dist_to_vantage;
                        let b2 = ei.dist_to_vantage2 + ej.dist_to_vantage2;
                        let bound = if within_inclusion(b0, r, dim) {
                            b0
                        } else if within_inclusion(b1, r, dim) {
                            b1
                        } else if within_inclusion(b2, r, dim) {
                            b2
                        } else {
                            f64::INFINITY
                        };
                        if bound.is_finite() {
                            scratch.surv.push((j as u32, bound));
                            continue;
                        }
                    }
                }
                scratch.cand.push(scratch.surv.len() as u32);
                scratch.surv.push((j as u32, 0.0));
            }
            if scratch.cand.len() == m {
                // Nothing filtered: sweep the suffix straight out of the
                // leaf block, no gather/scatter.
                scratch.dists.resize(m, 0.0);
                metric.dist_batch(
                    data.row(ei.object),
                    &node.lanes[i + 1..],
                    k,
                    &mut scratch.dists[..m],
                );
                *dist_comps += m as u64;
                for (t, ej) in entries[i + 1..].iter().enumerate() {
                    if scratch.dists[t] <= r {
                        push_edge_into(edges, ei.object, ej.object, scratch.dists[t]);
                    }
                }
                continue;
            }
            *dist_comps += batch_fill(
                metric,
                data.row(ei.object),
                &node.lanes,
                &mut scratch.surv,
                &scratch.cand,
                &mut scratch.lanes,
                &mut scratch.dists,
            );
            for &(j, d) in &scratch.surv {
                if d <= r {
                    push_edge_into(edges, ei.object, entries[j as usize].object, d);
                }
            }
        }
    }

    /// All joining pairs across two distinct leaves with known pivot
    /// distance `d_pivots`, as block sweeps: one batch evaluates every
    /// surviving left entry against the right pivot (turning the right
    /// scan into a cached-annulus filter per entry), then one batch per
    /// left entry evaluates its surviving right candidates.
    fn join_leaf_cross<E: JoinEdge>(
        &self,
        a: NodeId,
        b: NodeId,
        d_pivots: f64,
        r: f64,
        buf: &mut JoinBuf<E>,
    ) {
        let data = self.data();
        let (metric, dim) = (data.metric(), data.dim());
        let na = self.node(a);
        let nb = self.node(b);
        let ea = na.leaf_entries();
        let eb = nb.leaf_entries();
        let pb = nb.pivot_id();
        let lemma = self.config().parent_pruning;
        let JoinBuf {
            edges,
            dist_comps,
            scratch,
            ..
        } = buf;
        // Left phase: d(e1, anything in B) ≥ d(p_A, p_B) − d(e1, p_A)
        // − radius(B) prefilters, one batch computes the survivors'
        // pivot distances d(e1, p_B).
        scratch.left.clear();
        for (i, e1) in ea.iter().enumerate() {
            if lemma && d_pivots - e1.dist_to_pivot - nb.radius > r {
                continue;
            }
            scratch.left.push((i as u32, 0.0));
        }
        *dist_comps += batch_fill_all(
            metric,
            data.row(pb),
            &na.lanes,
            &mut scratch.left,
            &mut scratch.lanes,
            &mut scratch.dists,
        );
        let kb = eb.len();
        for t in 0..scratch.left.len() {
            let (i, d1b) = scratch.left[t];
            if d1b > r + nb.radius {
                continue;
            }
            let e1 = &ea[i as usize];
            // Row inclusion: d(e1, e2) ≤ d(e1, p_B) + radius(B) ≤ r for
            // *all* of B — emit the whole opposing row without per-pair
            // filters (distance-free in plain mode, one gather-free
            // block sweep in annotated mode).
            if lemma && within_inclusion(d1b + nb.radius, r, dim) {
                if E::NEEDS_DIST {
                    scratch.dists.resize(kb, 0.0);
                    metric.dist_batch(data.row(e1.object), &nb.lanes, kb, &mut scratch.dists[..kb]);
                    *dist_comps += kb as u64;
                    for (j, e2) in eb.iter().enumerate() {
                        push_edge_into(edges, e1.object, e2.object, scratch.dists[j]);
                    }
                } else {
                    for e2 in eb {
                        push_edge_into(edges, e1.object, e2.object, d1b + e2.dist_to_pivot);
                    }
                }
                continue;
            }
            scratch.surv.clear();
            scratch.cand.clear();
            for (j, e2) in eb.iter().enumerate() {
                if lemma {
                    if (d1b - e2.dist_to_pivot).abs() > r {
                        continue;
                    }
                    if !E::NEEDS_DIST && within_inclusion(d1b + e2.dist_to_pivot, r, dim) {
                        scratch.surv.push((j as u32, d1b + e2.dist_to_pivot));
                        continue;
                    }
                }
                scratch.cand.push(scratch.surv.len() as u32);
                scratch.surv.push((j as u32, 0.0));
            }
            if scratch.cand.len() == kb {
                // Nothing filtered: sweep B's whole block directly.
                scratch.dists.resize(kb, 0.0);
                metric.dist_batch(data.row(e1.object), &nb.lanes, kb, &mut scratch.dists[..kb]);
                *dist_comps += kb as u64;
                for (j, e2) in eb.iter().enumerate() {
                    if scratch.dists[j] <= r {
                        push_edge_into(edges, e1.object, e2.object, scratch.dists[j]);
                    }
                }
                continue;
            }
            *dist_comps += batch_fill(
                metric,
                data.row(e1.object),
                &nb.lanes,
                &mut scratch.surv,
                &scratch.cand,
                &mut scratch.lanes,
                &mut scratch.dists,
            );
            for &(j, d) in &scratch.surv {
                if d <= r {
                    push_edge_into(edges, e1.object, eb[j as usize].object, d);
                }
            }
        }
    }

    /// Depth-first subtree enumeration feeding the inclusion sweeps:
    /// appends every object under `node` to `ids` (leaf-chain order
    /// within the subtree), records the visited leaves, and charges one
    /// access per visited node.
    fn gather_subtree(
        &self,
        node: NodeId,
        accesses: &mut u64,
        ids: &mut Vec<ObjId>,
        leaves: &mut Vec<NodeId>,
    ) {
        *accesses += 1;
        match &self.node(node).kind {
            NodeKind::Leaf(entries) => {
                leaves.push(node);
                ids.extend(entries.iter().map(|e| e.object));
            }
            NodeKind::Internal(children) => {
                for &c in children {
                    self.gather_subtree(c, accesses, ids, leaves);
                }
            }
        }
    }

    /// Concatenates the SoA blocks of the gathered leaves into one
    /// lane-major block of `m` points (stride `m`), matching the id
    /// order [`MTree::gather_subtree`] produced. Pure `memcpy`s — each
    /// leaf lane is contiguous in both source and destination.
    fn fill_subtree_lanes(&self, leaves: &[NodeId], m: usize, lanes: &mut Vec<f64>) {
        let dim = self.data().dim();
        // No clear(): every slot is overwritten by the copies below.
        lanes.resize(dim * m, 0.0);
        for d in 0..dim {
            let mut cur = d * m;
            for &leaf in leaves {
                let node = self.node(leaf);
                let k = node.len();
                lanes[cur..cur + k].copy_from_slice(&node.lanes[d * k..(d + 1) * k]);
                cur += k;
            }
        }
    }

    /// Emits the complete graph on `node`'s subtree — every pair is
    /// within the diameter bound `2 · radius ≤ r`. Plain mode emits all
    /// pairs distance-free; annotated mode fills exact distances with
    /// one batched prefix sweep per object (every one of them an edge,
    /// so the surcharge is bounded by the emitted edge count). Pair
    /// order: `(ids[i], ids[j])` for `j` ascending, `i < j`.
    fn emit_all_same<E: JoinEdge>(&self, node: NodeId, buf: &mut JoinBuf<E>) {
        let data = self.data();
        let metric = data.metric();
        let bound = 2.0 * self.node(node).radius;
        let JoinBuf {
            edges,
            dist_comps,
            accesses,
            scratch,
        } = buf;
        scratch.ids_a.clear();
        scratch.leaves.clear();
        self.gather_subtree(node, accesses, &mut scratch.ids_a, &mut scratch.leaves);
        let ids = &scratch.ids_a;
        let m = ids.len();
        if E::NEEDS_DIST {
            self.fill_subtree_lanes(&scratch.leaves, m, &mut scratch.lanes_a);
            for j in 1..m {
                scratch.dists.resize(j, 0.0);
                metric.dist_batch(
                    data.row(ids[j]),
                    &scratch.lanes_a,
                    m,
                    &mut scratch.dists[..j],
                );
                *dist_comps += j as u64;
                for i in 0..j {
                    push_edge_into(edges, ids[i], ids[j], scratch.dists[i]);
                }
            }
        } else {
            for j in 1..m {
                for i in 0..j {
                    push_edge_into(edges, ids[i], ids[j], bound);
                }
            }
        }
    }

    /// Emits the full cross product of two subtrees — every cross pair
    /// is within `d_pivots + radius(A) + radius(B) ≤ r`. Plain mode is
    /// distance-free; annotated mode batches each left object against
    /// the gathered right block. Pair order: left objects outer (subtree
    /// order of `a`), right objects inner (subtree order of `b`).
    fn emit_all_pair<E: JoinEdge>(
        &self,
        a: NodeId,
        b: NodeId,
        d_pivots: f64,
        buf: &mut JoinBuf<E>,
    ) {
        let data = self.data();
        let metric = data.metric();
        let bound = d_pivots + self.node(a).radius + self.node(b).radius;
        let JoinBuf {
            edges,
            dist_comps,
            accesses,
            scratch,
        } = buf;
        scratch.ids_a.clear();
        scratch.leaves.clear();
        self.gather_subtree(a, accesses, &mut scratch.ids_a, &mut scratch.leaves);
        scratch.ids_b.clear();
        scratch.leaves.clear();
        self.gather_subtree(b, accesses, &mut scratch.ids_b, &mut scratch.leaves);
        let (ids_a, ids_b) = (&scratch.ids_a, &scratch.ids_b);
        let mb = ids_b.len();
        if E::NEEDS_DIST {
            self.fill_subtree_lanes(&scratch.leaves, mb, &mut scratch.lanes_b);
            for &x in ids_a {
                scratch.dists.resize(mb, 0.0);
                metric.dist_batch(data.row(x), &scratch.lanes_b, mb, &mut scratch.dists[..mb]);
                *dist_comps += mb as u64;
                for (t, &y) in ids_b.iter().enumerate() {
                    push_edge_into(edges, x, y, scratch.dists[t]);
                }
            }
        } else {
            for &x in ids_a {
                for &y in ids_b {
                    push_edge_into(edges, x, y, bound);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MTreeConfig;
    use disc_metric::{Dataset, Metric, Point};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn random_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        Dataset::new("random", Metric::Euclidean, pts)
    }

    /// Brute-force edge list, sorted.
    fn scan_edges(data: &Dataset, r: f64) -> Vec<(ObjId, ObjId)> {
        let mut edges = Vec::new();
        for i in 0..data.len() {
            for j in (i + 1)..data.len() {
                if data.dist(i, j) <= r {
                    edges.push((i, j));
                }
            }
        }
        edges
    }

    fn sorted(mut edges: Vec<(ObjId, ObjId)>) -> Vec<(ObjId, ObjId)> {
        edges.sort_unstable();
        edges
    }

    #[test]
    fn self_join_matches_scan() {
        let data = random_data(250, 31);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        for r in [0.0, 0.03, 0.1, 0.4, 1.5] {
            let got = sorted(tree.range_self_join(r));
            assert_eq!(got, scan_edges(&data, r), "r={r}");
        }
    }

    #[test]
    fn self_join_matches_scan_without_parent_pruning() {
        let data = random_data(200, 32);
        let tree = MTree::build(
            &data,
            MTreeConfig::with_capacity(6).with_parent_pruning(false),
        );
        for r in [0.05, 0.2] {
            assert_eq!(sorted(tree.range_self_join(r)), scan_edges(&data, r));
        }
    }

    #[test]
    fn self_join_emits_each_pair_once() {
        let data = random_data(300, 33);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
        let edges = tree.range_self_join(0.15);
        let mut seen = std::collections::HashSet::new();
        for &(i, j) in &edges {
            assert!(i < j, "normalised order");
            assert!(seen.insert((i, j)), "duplicate edge ({i}, {j})");
        }
    }

    #[test]
    fn self_join_computes_fewer_distances_than_all_pairs() {
        let data = random_data(600, 34);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(16));
        tree.reset_distance_computations();
        let edges = tree.range_self_join(0.05);
        let dc = tree.reset_distance_computations();
        let n = data.len() as u64;
        assert!(
            dc < n * (n - 1) / 2,
            "self-join {dc} distances vs all-pairs {}",
            n * (n - 1) / 2
        );
        assert!(!edges.is_empty());
    }

    #[test]
    fn self_join_charges_node_accesses() {
        let data = random_data(150, 35);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        tree.reset_node_accesses();
        let _ = tree.range_self_join(0.1);
        assert!(tree.node_accesses() > 0);
    }

    #[test]
    fn single_object_and_tiny_trees() {
        let one = Dataset::new("one", Metric::Euclidean, vec![Point::new2(0.5, 0.5)]);
        let tree = MTree::build(&one, MTreeConfig::default());
        assert!(tree.range_self_join(10.0).is_empty());
        assert!(tree
            .range_self_join_with(10.0, SelfJoinConfig::with_threads(4))
            .is_empty());

        let two = Dataset::new(
            "two",
            Metric::Euclidean,
            vec![Point::new2(0.0, 0.0), Point::new2(0.5, 0.0)],
        );
        let tree = MTree::build(&two, MTreeConfig::default());
        assert_eq!(tree.range_self_join(1.0), vec![(0, 1)]);
        assert!(tree.range_self_join(0.1).is_empty());
    }

    #[test]
    fn duplicate_points_join_at_radius_zero() {
        let data = Dataset::new(
            "dups",
            Metric::Euclidean,
            vec![
                Point::new2(0.3, 0.3),
                Point::new2(0.3, 0.3),
                Point::new2(0.9, 0.9),
            ],
        );
        let tree = MTree::build(&data, MTreeConfig::with_capacity(2));
        assert_eq!(sorted(tree.range_self_join(0.0)), vec![(0, 1)]);
    }

    #[test]
    fn all_duplicate_points_form_complete_graph_at_radius_zero() {
        // Degenerate input: every point identical, so every pair joins
        // even at r = 0 (zero-distance tie handling must not drop or
        // double pairs), with a tree deep enough to force splits.
        let n = 40;
        let data = Dataset::new(
            "all-dups",
            Metric::Euclidean,
            vec![Point::new2(0.5, 0.5); n],
        );
        let tree = MTree::build(&data, MTreeConfig::with_capacity(3));
        let want = scan_edges(&data, 0.0);
        assert_eq!(want.len(), n * (n - 1) / 2);
        assert_eq!(sorted(tree.range_self_join(0.0)), want);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                sorted(tree.range_self_join_with(0.0, SelfJoinConfig::with_threads(threads))),
                want,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn radius_at_least_diameter_yields_complete_graph() {
        let data = random_data(80, 36);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        // The unit square's diameter is √2 < 2.0.
        let edges = tree.range_self_join(2.0);
        assert_eq!(edges.len(), 80 * 79 / 2);
        assert_eq!(
            tree.range_self_join_with(2.0, SelfJoinConfig::with_threads(3)),
            edges
        );
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        // Not just the same set: the same Vec, order included, for
        // every forced thread count (including degenerate counts larger
        // than the task frontier).
        let data = random_data(350, 37);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(7));
        for r in [0.0, 0.05, 0.2, 2.0] {
            let serial = tree.range_self_join_serial(r);
            for threads in [1, 2, 3, 8, 64] {
                let par = tree.range_self_join_with(r, SelfJoinConfig::with_threads(threads));
                assert_eq!(par, serial, "threads={threads} r={r}");
            }
        }
    }

    #[test]
    fn parallel_charges_exactly_the_serial_counters() {
        // Fixed-seed workload: every thread count charges the same
        // distance-computation and node-access totals as the serial
        // traversal (lost or double-counted per-worker counters would
        // show up here).
        let data = random_data(500, 38);
        for parent_pruning in [true, false] {
            let tree = MTree::build(
                &data,
                MTreeConfig::with_capacity(9).with_parent_pruning(parent_pruning),
            );
            tree.reset_distance_computations();
            tree.reset_node_accesses();
            let serial = tree.range_self_join_serial(0.08);
            let serial_dc = tree.reset_distance_computations();
            let serial_acc = tree.reset_node_accesses();
            assert!(serial_dc > 0);
            for threads in [1, 2, 3, 8] {
                let par = tree.range_self_join_with(0.08, SelfJoinConfig::with_threads(threads));
                let par_dc = tree.reset_distance_computations();
                let par_acc = tree.reset_node_accesses();
                assert_eq!(par, serial, "threads={threads}");
                assert_eq!(par_dc, serial_dc, "distance comps, threads={threads}");
                assert_eq!(par_acc, serial_acc, "node accesses, threads={threads}");
            }
        }
    }

    #[test]
    fn forced_single_thread_dispatches_to_serial_byte_identically() {
        // The single-core pessimization fix: an effective thread count
        // of 1 must take the serial path (no frontier expansion + slot
        // merge) while producing byte-identical output — edges, order,
        // annotations — and charging the exact serial counters.
        let data = random_data(900, 40);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(12));
        for r in [0.0, 0.04, 0.15, 2.0] {
            tree.reset_distance_computations();
            tree.reset_node_accesses();
            let serial = tree.range_self_join_serial(r);
            let serial_dc = tree.reset_distance_computations();
            let serial_acc = tree.reset_node_accesses();
            let one = tree.range_self_join_with(r, SelfJoinConfig::with_threads(1));
            assert_eq!(one, serial, "plain threads=1 r={r}");
            assert_eq!(tree.reset_distance_computations(), serial_dc, "dc r={r}");
            assert_eq!(tree.reset_node_accesses(), serial_acc, "accesses r={r}");

            let serial_d = tree.range_self_join_dist_serial(r);
            let one_d = tree.range_self_join_dist_with(r, SelfJoinConfig::with_threads(1));
            assert_eq!(one_d, serial_d, "annotated threads=1 r={r}");
        }
    }

    #[test]
    fn subtree_inclusion_shortcut_is_exact() {
        // Tight clusters far apart: whole cluster subtrees fall inside
        // the radius (self and cross inclusion both fire), yet the edge
        // set must equal the scan's and annotations must stay exact.
        let mut rng = StdRng::seed_from_u64(55);
        let mut pts = Vec::new();
        for c in 0..6 {
            let (cx, cy) = ((c % 3) as f64 * 0.45, (c / 3) as f64 * 0.9);
            for _ in 0..40 {
                pts.push(Point::new2(
                    cx + rng.random_range(0.0..0.01),
                    cy + rng.random_range(0.0..0.01),
                ));
            }
        }
        let data = Dataset::new("clusters", Metric::Euclidean, pts);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        // Radii chosen so whole-cluster (0.05), cross-cluster (0.5) and
        // everything (2.0) trigger the inclusion shortcuts.
        for r in [0.05, 0.5, 2.0] {
            assert_eq!(
                sorted(tree.range_self_join(r)),
                scan_edges(&data, r),
                "r={r}"
            );
            for (a, b, d) in tree.range_self_join_dist_serial(r) {
                assert_eq!(d.to_bits(), data.dist(a, b).to_bits(), "({a}, {b}) r={r}");
            }
            let serial = tree.range_self_join_dist_serial(r);
            for threads in [2, 3, 8] {
                assert_eq!(
                    tree.range_self_join_dist_with(r, SelfJoinConfig::with_threads(threads)),
                    serial,
                    "threads={threads} r={r}"
                );
            }
        }
    }

    #[test]
    fn into_variants_clear_the_buffer() {
        let data = random_data(60, 39);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        let mut buf = vec![(7usize, 9usize); 4]; // stale content
        tree.range_self_join_into(0.1, &mut buf);
        let fresh = tree.range_self_join(0.1);
        assert_eq!(buf, fresh, "range_self_join_into must clear first");
        buf.push((1, 2));
        tree.range_self_join_serial_into(0.1, &mut buf);
        assert_eq!(buf, fresh);
        buf.push((3, 4));
        tree.range_self_join_with_into(0.1, SelfJoinConfig::with_threads(2), &mut buf);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn dist_join_strips_to_plain_edge_list() {
        // The annotated edge list, annotations removed, is byte-identical
        // to the plain one (same edges, same task order), with and
        // without the parent-distance lemma.
        let data = random_data(280, 50);
        for parent_pruning in [true, false] {
            let tree = MTree::build(
                &data,
                MTreeConfig::with_capacity(7).with_parent_pruning(parent_pruning),
            );
            for r in [0.0, 0.05, 0.2, 2.0] {
                let plain = tree.range_self_join_serial(r);
                let annotated = tree.range_self_join_dist_serial(r);
                let stripped: Vec<(ObjId, ObjId)> =
                    annotated.iter().map(|&(a, b, _)| (a, b)).collect();
                assert_eq!(stripped, plain, "lemma={parent_pruning} r={r}");
            }
        }
    }

    #[test]
    fn dist_join_annotations_are_exact_distances() {
        let data = random_data(220, 51);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        for r in [0.0, 0.08, 0.3] {
            for (a, b, d) in tree.range_self_join_dist(r) {
                assert!(a < b);
                assert!(d <= r);
                // Exact, not a bound: bitwise equal to the dataset's
                // distance kernel (the stratified prefix views rely on
                // this).
                assert_eq!(d.to_bits(), data.dist(a, b).to_bits(), "({a}, {b})");
            }
        }
    }

    #[test]
    fn dist_join_costs_more_but_bounded_by_all_pairs() {
        // Annotation disables the inclusion shortcuts, so it computes at
        // least as many distances as the plain traversal, but still far
        // fewer than the O(n²) scan on a sparse radius.
        let data = random_data(600, 52);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(16));
        tree.reset_distance_computations();
        let plain = tree.range_self_join_serial(0.05);
        let plain_dc = tree.reset_distance_computations();
        let annotated = tree.range_self_join_dist_serial(0.05);
        let annotated_dc = tree.reset_distance_computations();
        assert_eq!(plain.len(), annotated.len());
        assert!(annotated_dc >= plain_dc);
        let n = data.len() as u64;
        assert!(annotated_dc < n * (n - 1) / 2);
    }

    #[test]
    fn parallel_dist_join_is_byte_identical_with_exact_counters() {
        let data = random_data(400, 53);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(9));
        for r in [0.0, 0.08, 2.0] {
            tree.reset_distance_computations();
            tree.reset_node_accesses();
            let serial = tree.range_self_join_dist_serial(r);
            let serial_dc = tree.reset_distance_computations();
            let serial_acc = tree.reset_node_accesses();
            for threads in [1, 2, 3, 8] {
                let par = tree.range_self_join_dist_with(r, SelfJoinConfig::with_threads(threads));
                let par_dc = tree.reset_distance_computations();
                let par_acc = tree.reset_node_accesses();
                // Byte-identical includes the f64 annotations.
                assert_eq!(par, serial, "threads={threads} r={r}");
                assert_eq!(par_dc, serial_dc, "dc threads={threads} r={r}");
                assert_eq!(par_acc, serial_acc, "accesses threads={threads} r={r}");
            }
        }
    }

    #[test]
    fn dist_into_variants_clear_the_buffer() {
        let data = random_data(60, 54);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        let fresh = tree.range_self_join_dist(0.1);
        let mut buf = vec![(7usize, 9usize, 0.5f64); 4];
        tree.range_self_join_dist_into(0.1, &mut buf);
        assert_eq!(buf, fresh);
        buf.push((1, 2, 0.3));
        tree.range_self_join_dist_serial_into(0.1, &mut buf);
        assert_eq!(buf, fresh);
        buf.push((3, 4, 0.1));
        tree.range_self_join_dist_with_into(0.1, SelfJoinConfig::with_threads(2), &mut buf);
        assert_eq!(buf, fresh);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The self-join equals the O(n²) scan for arbitrary data, radii
        /// and node capacities, with and without the parent-distance
        /// lemma.
        #[test]
        fn self_join_is_exact(seed in 0u64..1000, r in 0.0..0.7f64, cap in 2usize..12) {
            let data = random_data(120, seed);
            let want = scan_edges(&data, r);
            let lemma = MTree::build(&data, MTreeConfig::with_capacity(cap));
            prop_assert_eq!(&sorted(lemma.range_self_join(r)), &want);
            let plain = MTree::build(
                &data,
                MTreeConfig::with_capacity(cap).with_parent_pruning(false),
            );
            prop_assert_eq!(&sorted(plain.range_self_join(r)), &want);
        }

        /// The parallel traversal is byte-identical to the serial one
        /// for arbitrary data, radii, capacities and thread counts.
        #[test]
        fn parallel_self_join_is_serial(
            seed in 0u64..1000,
            r in 0.0..0.5f64,
            cap in 2usize..12,
            threads in 1usize..9,
        ) {
            let data = random_data(100, seed);
            let tree = MTree::build(&data, MTreeConfig::with_capacity(cap));
            let serial = tree.range_self_join_serial(r);
            let par = tree.range_self_join_with(r, SelfJoinConfig::with_threads(threads));
            prop_assert_eq!(par, serial);
        }

        /// The annotated traversal emits the plain edge list (stripped)
        /// with exact distances, serial or parallel, for arbitrary
        /// inputs.
        #[test]
        fn dist_self_join_is_exact(
            seed in 0u64..1000,
            r in 0.0..0.5f64,
            cap in 2usize..12,
            threads in 1usize..9,
        ) {
            let data = random_data(100, seed);
            let tree = MTree::build(&data, MTreeConfig::with_capacity(cap));
            let serial = tree.range_self_join_dist_serial(r);
            let stripped: Vec<(ObjId, ObjId)> =
                serial.iter().map(|&(a, b, _)| (a, b)).collect();
            prop_assert_eq!(&stripped, &tree.range_self_join_serial(r));
            for &(a, b, d) in &serial {
                prop_assert_eq!(d.to_bits(), data.dist(a, b).to_bits());
            }
            let par = tree.range_self_join_dist_with(r, SelfJoinConfig::with_threads(threads));
            prop_assert_eq!(par, serial);
        }
    }

    // ------------------------------------------------------------------
    // Checked entry points: typed radius validation and cancellation
    // ------------------------------------------------------------------

    #[test]
    fn checked_rejects_nan_and_negative_radius() {
        let data = random_data(60, 1);
        let tree = MTree::build(&data, MTreeConfig::default());
        tree.reset_distance_computations();
        for r in [f64::NAN, -0.5, f64::NEG_INFINITY] {
            let err = tree
                .range_self_join_checked(r, SelfJoinConfig::default(), None)
                .unwrap_err();
            assert!(matches!(err, JoinError::InvalidRadius(_)), "r={r}: {err}");
            let err = tree
                .range_self_join_dist_checked(r, SelfJoinConfig::default(), None)
                .unwrap_err();
            assert!(matches!(err, JoinError::InvalidRadius(_)), "r={r}: {err}");
        }
        // Rejection happens before any traversal state is touched.
        assert_eq!(tree.reset_distance_computations(), 0);
    }

    #[test]
    fn checked_without_token_matches_the_plain_join() {
        let data = random_data(200, 7);
        let tree = MTree::build(&data, MTreeConfig::default());
        let plain = tree.range_self_join_serial(0.3);
        for threads in [1, 3] {
            let checked = tree
                .range_self_join_checked(0.3, SelfJoinConfig::with_threads(threads), None)
                .expect("uncancelled join succeeds");
            assert_eq!(checked, plain);
        }
        let dist = tree.range_self_join_dist_serial(0.3);
        let checked = tree
            .range_self_join_dist_checked(0.3, SelfJoinConfig::with_threads(3), None)
            .expect("uncancelled join succeeds");
        assert_eq!(checked, dist);
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_distance_work() {
        let data = random_data(200, 3);
        let tree = MTree::build(&data, MTreeConfig::default());
        tree.reset_distance_computations();
        tree.reset_node_accesses();
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let err = tree
                .range_self_join_checked(0.3, SelfJoinConfig::with_threads(threads), Some(&token))
                .unwrap_err();
            assert_eq!(err, JoinError::Cancelled);
        }
        assert_eq!(tree.distance_computations(), 0);
        assert_eq!(tree.node_accesses(), 0);
    }

    #[test]
    fn mid_build_cancellation_is_clean_and_counters_stay_exact() {
        let data = random_data(300, 11);
        let tree = MTree::build(&data, MTreeConfig::default());

        // Reference: the full serial run's exact counters and output.
        tree.reset_distance_computations();
        tree.reset_node_accesses();
        let full = tree
            .range_self_join_checked(0.3, SelfJoinConfig::with_threads(1), None)
            .expect("uncancelled join succeeds");
        let full_dc = tree.reset_distance_computations();
        let full_na = tree.reset_node_accesses();
        assert!(full_dc > 0 && !full.is_empty());

        // Cancel deterministically mid-traversal: the check budget trips
        // after a handful of tasks, long before the join completes.
        let token = CancelToken::with_check_budget(5);
        let err = tree
            .range_self_join_checked(0.3, SelfJoinConfig::with_threads(1), Some(&token))
            .unwrap_err();
        assert_eq!(err, JoinError::Cancelled);
        let cancelled_dc = tree.reset_distance_computations();
        let cancelled_na = tree.reset_node_accesses();
        // Partial work is charged, but never more than the full run.
        assert!(cancelled_dc < full_dc, "{cancelled_dc} vs {full_dc}");
        assert!(cancelled_na < full_na, "{cancelled_na} vs {full_na}");

        // No poisoned state: a retry on the same tree reproduces the
        // full run byte-for-byte with the exact reference counters.
        let retry = tree
            .range_self_join_checked(0.3, SelfJoinConfig::with_threads(1), None)
            .expect("retry after cancellation succeeds");
        assert_eq!(retry, full);
        assert_eq!(tree.reset_distance_computations(), full_dc);
        assert_eq!(tree.reset_node_accesses(), full_na);
    }

    #[test]
    fn parallel_cancellation_leaves_no_partial_state() {
        let data = random_data(400, 13);
        let tree = MTree::build(&data, MTreeConfig::default());
        let full = tree.range_self_join_dist_with(0.3, SelfJoinConfig::with_threads(4));
        tree.reset_distance_computations();
        tree.reset_node_accesses();

        let token = CancelToken::with_check_budget(10);
        let err = tree
            .range_self_join_dist_checked(0.3, SelfJoinConfig::with_threads(4), Some(&token))
            .unwrap_err();
        assert_eq!(err, JoinError::Cancelled);
        tree.reset_distance_computations();
        tree.reset_node_accesses();

        // The retry is byte-identical to the uncancelled parallel run.
        let retry = tree
            .range_self_join_dist_checked(0.3, SelfJoinConfig::with_threads(4), None)
            .expect("retry after cancellation succeeds");
        assert_eq!(retry, full);
    }

    #[test]
    fn expired_deadline_cancels_the_join() {
        let data = random_data(200, 17);
        let tree = MTree::build(&data, MTreeConfig::default());
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let err = tree
            .range_self_join_checked(0.3, SelfJoinConfig::with_threads(2), Some(&token))
            .unwrap_err();
        assert_eq!(err, JoinError::Cancelled);
    }
}
