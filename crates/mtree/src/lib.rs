//! An M-tree implementation tailored to the DisC diversity paper
//! (Section 5 of Drosou & Pitoura, VLDB 2013).
//!
//! The M-tree (Ciaccia, Patella & Zezula) is a balanced, paged metric
//! index: internal nodes route through *pivot* objects with *covering
//! radii*; leaf nodes store the indexed objects. This implementation
//! provides exactly the features the paper's algorithms rely on:
//!
//! * **node-access accounting** — the paper's computational cost metric;
//!   every node touched by an insert, range query, point query or leaf
//!   traversal bumps a counter readable via [`MTree::node_accesses`];
//! * **configurable splitting policies** ([`SplitPolicy`]) — including the
//!   paper's "MinOverlap" policy and the higher-fat-factor alternatives
//!   used in the Figure 10 experiment;
//! * **linked leaves** — a left-to-right chain so Basic-DisC can exploit
//!   locality with a single leaf pass;
//! * **colour-aware pruning** ([`ColorState`]) — the paper's Pruning Rule:
//!   subtrees that contain no white object are *grey* and range queries may
//!   skip them;
//! * **top-down and bottom-up range queries**, the latter with the
//!   stop-at-grey climb used by the Fast-C heuristic;
//! * **a batched range self-join** ([`MTree::range_self_join`]) that
//!   materialises the whole neighbourhood graph `G_{P,r}` in one
//!   dual-tree traversal with node-pair pruning — the bulk counterpart
//!   of issuing one range query per object. Behind the `parallel`
//!   feature the traversal fans out over `std::thread::scope` workers
//!   with byte-identical output and exact counters
//!   ([`SelfJoinConfig`] forces the thread count in tests);
//! * **fat-factor computation** ([`stats`]) for the Figure 10 experiment;
//! * **sharded-build primitives** — a spatial partitioner with a
//!   shard-count-independent canonical order ([`ShardPlan`]),
//!   range-restricted tree construction ([`MTree::build_range`]) and a
//!   cross-tree boundary join ([`cross_tree_join_dist_checked`]) so the
//!   r-disk graph can be built shard by shard, byte-identical to the
//!   single-tree build.

pub mod color;
pub mod error;
pub mod node;
pub mod query;
pub mod selfjoin;
pub mod shard;
pub mod split;
pub mod stats;
pub mod tree;
pub mod validate;
pub mod xjoin;

pub use color::{Color, ColorState};
pub use error::JoinError;
pub use node::{LeafEntry, Node, NodeId, NodeKind};
pub use query::RangeHit;
pub use selfjoin::{DistEdge, SelfJoinConfig};
pub use shard::ShardPlan;
pub use split::{PartitionPolicy, PromotePolicy, SplitPolicy};
pub use stats::TreeStats;
pub use tree::{MTree, MTreeConfig};
pub use xjoin::cross_tree_join_dist_checked;
