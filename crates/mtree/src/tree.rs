//! The M-tree proper: construction, insertion with recursive splitting,
//! leaf chaining, and node-access plus distance-computation accounting.

use std::sync::atomic::{AtomicU64, Ordering};

use disc_metric::{Dataset, ObjId};
use rand::{rngs::StdRng, SeedableRng};

use crate::node::{LeafEntry, Node, NodeId, NodeKind};
use crate::split::{split_entries, SplitPolicy};

/// An atomic counter padded to its own cache line, so the access and
/// distance counters don't false-share under the parallel seeding
/// fan-out. (True contention on one counter remains; per-thread
/// sharding is a noted follow-up if profiles show it mattering.)
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCounter(AtomicU64);

/// Construction parameters (paper Table 2: capacity 50, MinOverlap policy).
#[derive(Clone, Copy, Debug)]
pub struct MTreeConfig {
    /// Maximum number of entries per node before it splits.
    pub capacity: usize,
    /// Splitting policy.
    pub split_policy: SplitPolicy,
    /// Seed for the random promotion policy (ignored by the deterministic
    /// policies).
    pub seed: u64,
    /// Whether queries apply the classic M-tree parent-distance lemma:
    /// a child (or leaf entry) whose cached distance to its parent pivot
    /// already proves it outside the query ball is skipped *without*
    /// computing its own distance. Never changes results; disable only to
    /// measure the saving.
    pub parent_pruning: bool,
}

impl Default for MTreeConfig {
    fn default() -> Self {
        Self {
            capacity: 50,
            split_policy: SplitPolicy::MIN_OVERLAP,
            seed: 0,
            parent_pruning: true,
        }
    }
}

impl MTreeConfig {
    /// Config with a specific node capacity, otherwise defaults.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Config with a specific splitting policy, otherwise defaults.
    pub fn with_policy(split_policy: SplitPolicy) -> Self {
        Self {
            split_policy,
            ..Self::default()
        }
    }

    /// Same config with parent-distance pruning switched on or off.
    pub fn with_parent_pruning(self, parent_pruning: bool) -> Self {
        Self {
            parent_pruning,
            ..self
        }
    }
}

/// A balanced metric tree over a [`Dataset`].
///
/// The tree borrows the dataset; objects are addressed by [`ObjId`].
pub struct MTree<'a> {
    data: &'a Dataset,
    config: MTreeConfig,
    nodes: Vec<Node>,
    root: NodeId,
    height: usize,
    first_leaf: NodeId,
    /// Leaf currently holding each object, indexed by object id. For
    /// range-built trees ([`MTree::build_range`]) slots below the range
    /// start stay unused.
    obj_leaf: Vec<NodeId>,
    /// Number of objects actually indexed (`obj_leaf.len()` for prefix
    /// and full builds; `range.len()` for range builds).
    indexed: usize,
    /// Node accesses (the paper's cost metric). Atomic (relaxed) so
    /// read-only queries can account their cost, including from the
    /// parallel seeding fan-out in `disc-core`.
    accesses: PaddedCounter,
    /// Distance computations performed through the tree (insertions and
    /// queries). The paper counts node accesses; wall-clock time is
    /// dominated by distance computations, and this counter makes the
    /// parent-distance-pruning saving observable. Distances evaluated
    /// inside the split policies are not routed through the tree and stay
    /// uncounted (they are a one-off construction cost).
    dist_comps: PaddedCounter,
    rng: StdRng,
}

impl<'a> MTree<'a> {
    /// Builds a tree by inserting every object of `data` in id order.
    pub fn build(data: &'a Dataset, config: MTreeConfig) -> Self {
        Self::build_prefix(data, config, data.len())
    }

    /// Builds a tree over only the first `prefix` objects of `data` —
    /// the streaming entry point: later objects (already present in the
    /// dataset's buffer) are added one at a time with
    /// [`MTree::insert_object`], producing the same tree `build` would,
    /// since `build` is itself insertion in id order.
    pub fn build_prefix(data: &'a Dataset, config: MTreeConfig, prefix: usize) -> Self {
        assert!(
            (1..=data.len()).contains(&prefix),
            "prefix {prefix} outside 1..={}",
            data.len()
        );
        Self::build_range(data, config, 0..prefix)
    }

    /// Builds a tree over only the contiguous id range `range` of
    /// `data` — the sharded-build entry point: each spatial shard of a
    /// [renumbered](disc_metric::Dataset::renumbered) dataset is a
    /// contiguous id range, and a range tree indexes exactly those
    /// objects under their *global* ids, so intra-shard self-joins and
    /// cross-shard joins emit edges directly in the global numbering
    /// (and all cross-tree distances read the one shared dataset).
    /// Objects are inserted in id order, so `build_range(data, c, 0..n)`
    /// is byte-identical to `build(data, c)`.
    pub fn build_range(
        data: &'a Dataset,
        config: MTreeConfig,
        range: std::ops::Range<usize>,
    ) -> Self {
        assert!(config.capacity >= 2, "node capacity must be at least 2");
        assert!(
            range.start < range.end && range.end <= data.len(),
            "range {range:?} must be non-empty and within 0..{}",
            data.len()
        );
        let root = 0;
        let mut tree = Self {
            data,
            config,
            nodes: vec![Node::new_leaf(None, None)],
            root,
            height: 1,
            first_leaf: root,
            obj_leaf: vec![usize::MAX; range.end],
            indexed: range.len(),
            accesses: PaddedCounter::default(),
            dist_comps: PaddedCounter::default(),
            rng: StdRng::seed_from_u64(config.seed),
        };
        for id in range {
            tree.insert(id);
        }
        tree
    }

    /// Inserts the next dataset object into the tree — the streaming
    /// leaf insert. `object` must be exactly [`MTree::len`] (streaming
    /// ids are append-only; the dataset appends new points at the end of
    /// its buffer, with any fresh *external* id appended to its
    /// [`disc_metric::IdPermutation`]). The target leaf's entry list,
    /// cached reference distances and blocked SoA coordinate lanes are
    /// all refreshed (see [`MTree::build`]'s insertion path — this is
    /// the same code), and splits propagate as during the build, so the
    /// resulting tree is byte-identical to one built over the longer
    /// prefix from scratch.
    ///
    /// # Panics
    ///
    /// Panics when `object` is not the dataset row right after the
    /// currently indexed prefix.
    pub fn insert_object(&mut self, object: ObjId) {
        assert!(
            object < self.data.len(),
            "object {object} is not in the dataset (len {})",
            self.data.len()
        );
        assert_eq!(
            object,
            self.obj_leaf.len(),
            "streaming inserts are append-only: expected object {}",
            self.obj_leaf.len()
        );
        self.obj_leaf.push(usize::MAX);
        self.indexed += 1;
        self.insert(object);
    }

    /// The dataset this tree indexes.
    pub fn data(&self) -> &'a Dataset {
        self.data
    }

    /// Construction parameters.
    pub fn config(&self) -> &MTreeConfig {
        &self.config
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.indexed
    }

    /// Whether the tree indexes no objects.
    pub fn is_empty(&self) -> bool {
        self.indexed == 0
    }

    /// Number of nodes (`m` in the fat-factor formula).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree in levels (`h` in the fat-factor formula);
    /// a single root leaf has height 1.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// First leaf of the left-to-right chain.
    pub fn first_leaf(&self) -> NodeId {
        self.first_leaf
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Leaf currently holding `object`.
    pub fn leaf_of(&self, object: ObjId) -> NodeId {
        self.obj_leaf[object]
    }

    /// Total node accesses so far.
    pub fn node_accesses(&self) -> u64 {
        self.accesses.0.load(Ordering::Relaxed)
    }

    /// Resets the access counter (e.g. after the build phase) and returns
    /// the previous value.
    pub fn reset_node_accesses(&self) -> u64 {
        self.accesses.0.swap(0, Ordering::Relaxed)
    }

    /// Total distance computations performed through the tree so far.
    pub fn distance_computations(&self) -> u64 {
        self.dist_comps.0.load(Ordering::Relaxed)
    }

    /// Resets the distance-computation counter and returns the previous
    /// value.
    pub fn reset_distance_computations(&self) -> u64 {
        self.dist_comps.0.swap(0, Ordering::Relaxed)
    }

    /// Records one node access. Exposed to query code in this crate.
    #[inline]
    pub(crate) fn touch(&self) {
        self.accesses.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Distance from indexed object `obj` to the query coordinates,
    /// charged to the distance-computation counter. Every distance the
    /// tree evaluates goes through here (or [`MTree::dist_objs`]).
    #[inline]
    pub(crate) fn dist_q(&self, obj: ObjId, q: &[f64]) -> f64 {
        self.dist_comps.0.fetch_add(1, Ordering::Relaxed);
        self.data.dist_to_coords(obj, q)
    }

    /// Counted distance between two indexed objects.
    #[inline]
    pub(crate) fn dist_objs(&self, a: ObjId, b: ObjId) -> f64 {
        self.dist_comps.0.fetch_add(1, Ordering::Relaxed);
        self.data.dist(a, b)
    }

    /// Records one node access on behalf of an algorithm that reads a node
    /// directly (e.g. the leaf pass of Basic-DisC scanning a leaf page).
    #[inline]
    pub fn charge_access(&self) {
        self.touch();
    }

    /// Adds `n` node accesses in one bulk charge. The self-join workers
    /// count locally and flush here once per worker, so the global total
    /// stays exact without per-access atomic traffic.
    #[inline]
    pub(crate) fn charge_accesses_bulk(&self, n: u64) {
        self.accesses.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` distance computations in one bulk charge (see
    /// [`MTree::charge_accesses_bulk`]).
    #[inline]
    pub(crate) fn charge_distances_bulk(&self, n: u64) {
        self.dist_comps.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Iterator over leaf node ids in chain order.
    pub fn leaves(&self) -> LeafIter<'_, 'a> {
        LeafIter {
            tree: self,
            next: Some(self.first_leaf),
        }
    }

    /// Iterator over all objects in leaf-chain order, charging one node
    /// access per visited leaf (this is the "single left-to-right
    /// traversal" of Basic-DisC).
    pub fn objects_in_leaf_order(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.leaves().flat_map(move |leaf| {
            self.touch();
            self.nodes[leaf]
                .leaf_entries()
                .iter()
                .map(|e| e.object)
                .collect::<Vec<_>>()
        })
    }

    /// Objects in leaf order without charging node accesses (for tests and
    /// result presentation).
    pub fn objects_in_leaf_order_uncounted(&self) -> Vec<ObjId> {
        self.leaves()
            .flat_map(|leaf| self.nodes[leaf].leaf_entries().iter().map(|e| e.object))
            .collect()
    }

    /// The same tree re-addressed against a renumbered copy of its
    /// dataset: new id `i` is this tree's id `order[i]` (the contract of
    /// `Dataset::renumbered(order)`). Structure, covering radii, cached
    /// distances and SoA lanes are carried over untouched — only the
    /// stored object ids are rewritten, an O(n + nodes) relabel instead
    /// of a rebuild — so queries and self-joins on the relabeled tree
    /// traverse identically and emit edges in the new numbering. Counter
    /// totals carry over as starting values.
    ///
    /// When `order` is this tree's own leaf order
    /// ([`MTree::objects_in_leaf_order_uncounted`]), the relabeled
    /// tree's leaf order is exactly `0..n` — the locality-aware
    /// numbering whose self-join edges land in near-contiguous CSR rows.
    ///
    /// # Panics
    ///
    /// Panics when `order` is not a permutation of `0..len()` or `data`
    /// has a different length; debug builds additionally verify that
    /// `data.row(i)` holds the coordinates of old object `order[i]`.
    pub fn relabeled<'b>(&self, data: &'b Dataset, order: &[ObjId]) -> MTree<'b> {
        assert_eq!(data.len(), self.len(), "relabeled dataset must match");
        assert_eq!(order.len(), self.len(), "order must cover every object");
        let mut old_to_new = vec![usize::MAX; order.len()];
        for (new, &old) in order.iter().enumerate() {
            assert!(
                old < order.len() && old_to_new[old] == usize::MAX,
                "order is not a permutation of 0..{}",
                order.len()
            );
            old_to_new[old] = new;
        }
        #[cfg(debug_assertions)]
        for (new, &old) in order.iter().enumerate() {
            debug_assert_eq!(
                data.row(new),
                self.data.row(old),
                "row {new} of the relabeled dataset must hold old object {old}"
            );
        }
        let map = |o: ObjId| old_to_new[o];
        let nodes: Vec<Node> = self
            .nodes
            .iter()
            .map(|n| Node {
                pivot: n.pivot.map(map),
                radius: n.radius,
                vantage: n.vantage.map(map),
                vantage2: n.vantage2.map(map),
                dist_to_parent: n.dist_to_parent,
                parent: n.parent,
                next_leaf: n.next_leaf,
                lanes: n.lanes.clone(),
                kind: match &n.kind {
                    NodeKind::Internal(children) => NodeKind::Internal(children.clone()),
                    NodeKind::Leaf(entries) => NodeKind::Leaf(
                        entries
                            .iter()
                            .map(|e| LeafEntry {
                                object: map(e.object),
                                ..*e
                            })
                            .collect(),
                    ),
                },
            })
            .collect();
        let mut obj_leaf = vec![usize::MAX; self.obj_leaf.len()];
        for (old, &leaf) in self.obj_leaf.iter().enumerate() {
            obj_leaf[old_to_new[old]] = leaf;
        }
        MTree {
            data,
            config: self.config,
            nodes,
            root: self.root,
            height: self.height,
            first_leaf: self.first_leaf,
            obj_leaf,
            indexed: self.indexed,
            accesses: PaddedCounter(AtomicU64::new(self.node_accesses())),
            dist_comps: PaddedCounter(AtomicU64::new(self.distance_computations())),
            rng: StdRng::seed_from_u64(self.config.seed),
        }
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts `object` (already present in the dataset) into the tree.
    fn insert(&mut self, object: ObjId) {
        let point = self.data.row(object);
        // Descend to the best leaf, enlarging covering radii on the way.
        let mut node = self.root;
        loop {
            self.touch();
            match &self.nodes[node].kind {
                NodeKind::Leaf(_) => break,
                NodeKind::Internal(children) => {
                    let next = self.choose_child(children, point);
                    let d = self.dist_to_pivot(next, point);
                    let child = &mut self.nodes[next];
                    if d > child.radius {
                        child.radius = d;
                    }
                    node = next;
                }
            }
        }
        let d_pivot = self.dist_to_pivot(node, point);
        // The first entry of a leaf becomes its vantage, the second its
        // second vantage; later entries cache their distances to the
        // established references.
        let d_vantage = match self.nodes[node].vantage {
            Some(v) => self.dist_q(v, point),
            None => {
                self.nodes[node].vantage = Some(object);
                0.0
            }
        };
        let d_vantage2 = match self.nodes[node].vantage2 {
            Some(v) => self.dist_q(v, point),
            None if self.nodes[node].vantage != Some(object) => {
                // `object` becomes the second vantage: refresh the cached
                // vantage2 distances of the entries already present, so
                // the exactness invariant the scan filter relies on holds
                // even before the leaf's first split rewrites it.
                self.nodes[node].vantage2 = Some(object);
                let existing: Vec<ObjId> = self.nodes[node]
                    .leaf_entries()
                    .iter()
                    .map(|e| e.object)
                    .collect();
                let dists: Vec<f64> = existing
                    .iter()
                    .map(|&o| self.dist_objs(o, object))
                    .collect();
                match &mut self.nodes[node].kind {
                    NodeKind::Leaf(entries) => {
                        for (e, d) in entries.iter_mut().zip(dists) {
                            e.dist_to_vantage2 = d;
                        }
                    }
                    NodeKind::Internal(_) => unreachable!("descent ends at a leaf"),
                }
                0.0
            }
            None => 0.0,
        };
        {
            let leaf = &mut self.nodes[node];
            if d_pivot > leaf.radius {
                leaf.radius = d_pivot;
            }
            match &mut leaf.kind {
                NodeKind::Leaf(entries) => entries.push(LeafEntry {
                    object,
                    dist_to_pivot: d_pivot,
                    dist_to_vantage: d_vantage,
                    dist_to_vantage2: d_vantage2,
                }),
                NodeKind::Internal(_) => unreachable!("descent ends at a leaf"),
            }
        }
        self.obj_leaf[object] = node;
        self.rebuild_leaf_lanes(node);
        if self.nodes[node].len() > self.config.capacity {
            self.split(node);
        }
    }

    /// Rewrites `leaf`'s blocked SoA coordinate lanes from its current
    /// entry list (see [`Node::lanes`]): lane `d` of a `k`-entry leaf is
    /// `lanes[d * k..(d + 1) * k]`, entry order preserved. Called after
    /// every leaf mutation so the block never goes stale; O(dim · k)
    /// copies, negligible next to the distance work of the mutation
    /// itself.
    fn rebuild_leaf_lanes(&mut self, leaf: NodeId) {
        let data = self.data;
        let dim = data.dim();
        let node = &mut self.nodes[leaf];
        let NodeKind::Leaf(entries) = &node.kind else {
            unreachable!("rebuild_leaf_lanes on internal node");
        };
        let k = entries.len();
        node.lanes.clear();
        node.lanes.resize(dim * k, 0.0);
        for (i, e) in entries.iter().enumerate() {
            for (d, &c) in data.row(e.object).iter().enumerate() {
                node.lanes[d * k + i] = c;
            }
        }
    }

    /// Picks the child to descend into: prefer a child whose ball already
    /// contains the point (smallest distance); otherwise the child needing
    /// the least radius enlargement.
    fn choose_child(&self, children: &[NodeId], point: &[f64]) -> NodeId {
        let mut best_inside: Option<(f64, NodeId)> = None;
        let mut best_enlarge: Option<(f64, NodeId)> = None;
        for &c in children {
            let node = &self.nodes[c];
            let pivot = node.pivot_id();
            let d = self.dist_q(pivot, point);
            if d <= node.radius {
                if best_inside.is_none_or(|(bd, _)| d < bd) {
                    best_inside = Some((d, c));
                }
            } else {
                let enlarge = d - node.radius;
                if best_enlarge.is_none_or(|(be, _)| enlarge < be) {
                    best_enlarge = Some((enlarge, c));
                }
            }
        }
        match best_inside.or(best_enlarge) {
            Some((_, c)) => c,
            None => unreachable!("internal node has at least one child"),
        }
    }

    /// Distance from `point` to the pivot of `node` (0 if the node has no
    /// pivot, i.e. is the root).
    fn dist_to_pivot(&self, node: NodeId, point: &[f64]) -> f64 {
        match self.nodes[node].pivot {
            Some(p) => self.dist_q(p, point),
            None => 0.0,
        }
    }

    // ------------------------------------------------------------------
    // Splitting
    // ------------------------------------------------------------------

    /// Splits the overflowed `node`, recursing up the tree as needed.
    fn split(&mut self, node: NodeId) {
        // Representative object of each entry: the stored object for leaf
        // entries, the child pivot for internal entries.
        let reps: Vec<ObjId> = match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => entries.iter().map(|e| e.object).collect(),
            NodeKind::Internal(children) => {
                children.iter().map(|&c| self.nodes[c].pivot_id()).collect()
            }
        };
        let outcome = split_entries(
            self.data,
            &reps,
            self.nodes[node].pivot,
            self.config.split_policy,
            &mut self.rng,
        );

        // Two accesses: the reused node and its new sibling are rewritten.
        self.touch();
        self.touch();

        let new_id = self.nodes.len();
        let parent = self.nodes[node].parent;
        let is_leaf = self.nodes[node].is_leaf();

        // Distribute entries.
        match std::mem::replace(
            &mut self.nodes[node].kind,
            if is_leaf {
                NodeKind::Leaf(Vec::new())
            } else {
                NodeKind::Internal(Vec::new())
            },
        ) {
            NodeKind::Leaf(entries) => {
                let pick =
                    |idx: &[usize]| -> Vec<LeafEntry> { idx.iter().map(|&i| entries[i]).collect() };
                let e1 = pick(&outcome.side1);
                let e2 = pick(&outcome.side2);
                self.nodes
                    .push(Node::new_leaf(Some(outcome.pivot2), parent));
                for e in &e2 {
                    self.obj_leaf[e.object] = new_id;
                }
                self.install_leaf(node, outcome.pivot1, e1);
                self.install_leaf(new_id, outcome.pivot2, e2);
                // Chain the new leaf right after the reused one.
                let next = self.nodes[node].next_leaf;
                self.nodes[node].next_leaf = Some(new_id);
                self.nodes[new_id].next_leaf = next;
            }
            NodeKind::Internal(children) => {
                let pick =
                    |idx: &[usize]| -> Vec<NodeId> { idx.iter().map(|&i| children[i]).collect() };
                let c1 = pick(&outcome.side1);
                let c2 = pick(&outcome.side2);
                self.nodes
                    .push(Node::new_internal(Some(outcome.pivot2), parent, Vec::new()));
                for &c in &c2 {
                    self.nodes[c].parent = Some(new_id);
                }
                self.install_internal(node, outcome.pivot1, c1);
                self.install_internal(new_id, outcome.pivot2, c2);
            }
        }

        match parent {
            Some(p) => {
                // Register the sibling with the parent and refresh the
                // cached parent distances of both halves.
                self.touch();
                match &mut self.nodes[p].kind {
                    NodeKind::Internal(children) => children.push(new_id),
                    NodeKind::Leaf(_) => unreachable!("parents are internal"),
                }
                self.refresh_dist_to_parent(node);
                self.refresh_dist_to_parent(new_id);
                // The parent's covering radius still bounds every object in
                // its subtree (the object set did not change), so no
                // enlargement is needed.
                if self.nodes[p].len() > self.config.capacity {
                    self.split(p);
                }
            }
            None => {
                // The root split: grow a new root above the two halves.
                let new_root = self.nodes.len();
                self.nodes
                    .push(Node::new_internal(None, None, vec![node, new_id]));
                self.touch();
                self.nodes[node].parent = Some(new_root);
                self.nodes[new_id].parent = Some(new_root);
                self.nodes[node].dist_to_parent = 0.0;
                self.nodes[new_id].dist_to_parent = 0.0;
                self.root = new_root;
                self.height += 1;
            }
        }
    }

    /// Rewrites a leaf node's pivot and entries, recomputing cached
    /// distances (pivot and vantage) and the covering radius. The vantage
    /// is re-chosen as the entry farthest from the new pivot, so the two
    /// reference annuli used by the scan filter cross at a steep angle.
    fn install_leaf(&mut self, id: NodeId, pivot: ObjId, mut entries: Vec<LeafEntry>) {
        let mut radius = 0.0f64;
        let mut vantage = pivot;
        for e in &mut entries {
            e.dist_to_pivot = self.dist_objs(e.object, pivot);
            if e.dist_to_pivot > radius {
                radius = e.dist_to_pivot;
                vantage = e.object;
            }
        }
        // Second vantage: the entry farthest from the first, i.e. roughly
        // the other end of the leaf's diameter.
        let mut vantage2 = vantage;
        let mut far2 = -1.0f64;
        for e in &mut entries {
            e.dist_to_vantage = self.dist_objs(e.object, vantage);
            if e.dist_to_vantage > far2 {
                far2 = e.dist_to_vantage;
                vantage2 = e.object;
            }
        }
        for e in &mut entries {
            e.dist_to_vantage2 = self.dist_objs(e.object, vantage2);
        }
        let node = &mut self.nodes[id];
        node.pivot = Some(pivot);
        node.radius = radius;
        node.vantage = (!entries.is_empty()).then_some(vantage);
        node.vantage2 = (!entries.is_empty()).then_some(vantage2);
        node.kind = NodeKind::Leaf(entries);
        self.rebuild_leaf_lanes(id);
    }

    /// Rewrites an internal node's pivot and children, recomputing the
    /// children's cached parent distances and the covering radius.
    fn install_internal(&mut self, id: NodeId, pivot: ObjId, children: Vec<NodeId>) {
        let mut radius = 0.0f64;
        for &c in &children {
            let child_pivot = self.nodes[c].pivot_id();
            let d = self.dist_objs(child_pivot, pivot);
            self.nodes[c].dist_to_parent = d;
            radius = radius.max(d + self.nodes[c].radius);
        }
        let node = &mut self.nodes[id];
        node.pivot = Some(pivot);
        node.radius = radius;
        node.kind = NodeKind::Internal(children);
    }

    /// Refreshes `dist_to_parent` of `node` against its parent's pivot.
    fn refresh_dist_to_parent(&mut self, node: NodeId) {
        let Some(parent) = self.nodes[node].parent else {
            unreachable!("called on non-root")
        };
        let d = match (self.nodes[parent].pivot, self.nodes[node].pivot) {
            (Some(pp), Some(np)) => self.dist_objs(np, pp),
            _ => 0.0,
        };
        self.nodes[node].dist_to_parent = d;
    }
}

/// Iterator over leaf ids following the leaf chain.
pub struct LeafIter<'t, 'a> {
    tree: &'t MTree<'a>,
    next: Option<NodeId>,
}

impl Iterator for LeafIter<'_, '_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.tree.nodes[id].next_leaf;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_invariants;
    use disc_metric::{Metric, Point};
    use rand::RngExt as _;

    fn grid(n_side: usize) -> Dataset {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point::new2(
                    i as f64 / n_side as f64,
                    j as f64 / n_side as f64,
                ));
            }
        }
        Dataset::new("grid", Metric::Euclidean, pts)
    }

    fn random_points(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        Dataset::new("random", Metric::Euclidean, pts)
    }

    #[test]
    fn single_object_tree() {
        let data = Dataset::new("one", Metric::Euclidean, vec![Point::new2(0.5, 0.5)]);
        let tree = MTree::build(&data, MTreeConfig::default());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.leaf_of(0), tree.root());
        check_invariants(&tree).unwrap();
    }

    #[test]
    fn splits_produce_multiple_levels() {
        let data = grid(10); // 100 objects
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        assert!(tree.height() >= 3, "height {}", tree.height());
        assert!(tree.node_count() > 25);
        check_invariants(&tree).unwrap();
    }

    #[test]
    fn all_objects_reachable_via_leaf_chain() {
        let data = random_points(300, 1);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        let mut seen = tree.objects_in_leaf_order_uncounted();
        seen.sort_unstable();
        assert_eq!(seen, (0..300).collect::<Vec<_>>());
        check_invariants(&tree).unwrap();
    }

    #[test]
    fn obj_leaf_mapping_is_consistent() {
        let data = random_points(150, 2);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        for id in data.ids() {
            let leaf = tree.leaf_of(id);
            assert!(
                tree.node(leaf)
                    .leaf_entries()
                    .iter()
                    .any(|e| e.object == id),
                "object {id} not found in its registered leaf"
            );
        }
    }

    #[test]
    fn build_counts_node_accesses() {
        let data = random_points(100, 3);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        assert!(tree.node_accesses() >= 100, "at least one per insert");
        let before = tree.node_accesses();
        assert_eq!(tree.reset_node_accesses(), before);
        assert_eq!(tree.node_accesses(), 0);
    }

    #[test]
    fn leaf_order_traversal_charges_leaf_accesses() {
        let data = random_points(100, 4);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        tree.reset_node_accesses();
        let n_leaves = tree.leaves().count();
        tree.reset_node_accesses();
        let objs: Vec<ObjId> = tree.objects_in_leaf_order().collect();
        assert_eq!(objs.len(), 100);
        assert_eq!(tree.node_accesses(), n_leaves as u64);
    }

    #[test]
    fn all_split_policies_build_valid_trees() {
        let data = random_points(200, 5);
        for (name, policy) in SplitPolicy::figure10_policies() {
            let tree = MTree::build(
                &data,
                MTreeConfig {
                    capacity: 6,
                    split_policy: policy,
                    seed: 11,
                    ..MTreeConfig::default()
                },
            );
            check_invariants(&tree).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn identical_seeds_build_identical_random_trees() {
        let data = random_points(120, 6);
        let cfg = MTreeConfig {
            capacity: 5,
            split_policy: SplitPolicy::RANDOM,
            seed: 99,
            ..MTreeConfig::default()
        };
        let a = MTree::build(&data, cfg);
        let b = MTree::build(&data, cfg);
        assert_eq!(
            a.objects_in_leaf_order_uncounted(),
            b.objects_in_leaf_order_uncounted()
        );
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn leaf_order_relabel_is_structure_transparent() {
        let data = random_points(300, 9);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        let order = tree.objects_in_leaf_order_uncounted();
        let data2 = data.renumbered(&order);
        let tree2 = tree.relabeled(&data2, &order);
        // Relabeling by the tree's own leaf order makes the new leaf
        // order the identity, preserves the structure and the counter
        // totals, and keeps every invariant (cached distances are
        // checked against the renumbered dataset's rows).
        assert_eq!(
            tree2.objects_in_leaf_order_uncounted(),
            (0..300).collect::<Vec<_>>()
        );
        assert_eq!(tree2.node_count(), tree.node_count());
        assert_eq!(tree2.height(), tree.height());
        assert_eq!(tree2.node_accesses(), tree.node_accesses());
        assert_eq!(tree2.distance_computations(), tree.distance_computations());
        check_invariants(&tree2).unwrap();

        // Self-join edges are the original's, relabeled: comparing in
        // the original numbering, the edge multisets must coincide with
        // bit-identical distances.
        let relabel = |edges: Vec<(ObjId, ObjId, f64)>, ext: &dyn Fn(ObjId) -> ObjId| {
            let mut out: Vec<(ObjId, ObjId, u64)> = edges
                .into_iter()
                .map(|(a, b, d)| {
                    let (a, b) = (ext(a), ext(b));
                    (a.min(b), a.max(b), d.to_bits())
                })
                .collect();
            out.sort_unstable();
            out
        };
        let want = relabel(tree.range_self_join_dist_serial(0.1), &|o| o);
        let got = relabel(tree2.range_self_join_dist_serial(0.1), &|o| {
            data2.external_id(o)
        });
        assert_eq!(got, want);
    }

    #[test]
    fn streaming_inserts_reproduce_the_batch_build() {
        // `build` is insertion in id order, so a prefix build plus
        // streaming inserts must yield the same tree — structure, cached
        // distances, SoA lanes and obj→leaf mapping alike.
        let data = random_points(200, 10);
        let batch = MTree::build(&data, MTreeConfig::with_capacity(6));
        let mut streamed = MTree::build_prefix(&data, MTreeConfig::with_capacity(6), 120);
        assert_eq!(streamed.len(), 120);
        for id in 120..200 {
            streamed.insert_object(id);
        }
        assert_eq!(streamed.len(), batch.len());
        assert_eq!(streamed.node_count(), batch.node_count());
        assert_eq!(streamed.height(), batch.height());
        assert_eq!(
            streamed.objects_in_leaf_order_uncounted(),
            batch.objects_in_leaf_order_uncounted()
        );
        for id in 0..batch.node_count() {
            let (a, b) = (streamed.node(id), batch.node(id));
            assert_eq!(a.pivot, b.pivot, "node {id}");
            assert_eq!(a.radius.to_bits(), b.radius.to_bits(), "node {id}");
            assert_eq!(a.lanes, b.lanes, "node {id} SoA lanes");
        }
        for id in data.ids() {
            assert_eq!(streamed.leaf_of(id), batch.leaf_of(id), "object {id}");
        }
        check_invariants(&streamed).unwrap();
    }

    #[test]
    fn streaming_insert_keeps_the_id_bijection_consistent() {
        // A renumbered dataset extended with a fresh external id: the
        // tree indexes internal ids, the dataset's permutation carries
        // the appended external id, and range queries stay correct.
        let base = random_points(60, 11);
        let order: Vec<ObjId> = (0..60).rev().collect();
        let mut data = base.renumbered(&order);
        let appended_internal = data
            .push_point_external(&[0.5, 0.5], 77)
            .expect("fresh external id");
        assert_eq!(appended_internal, 60);
        let mut tree = MTree::build_prefix(&data, MTreeConfig::with_capacity(6), 60);
        tree.insert_object(appended_internal);
        assert_eq!(tree.len(), 61);
        assert_eq!(data.external_id(appended_internal), 77);
        check_invariants(&tree).unwrap();
        let hits = tree.range_query(&Point::new2(0.5, 0.5), 0.0);
        assert!(
            hits.iter().any(|h| h.object == appended_internal),
            "the appended object is indexed and findable"
        );
    }

    #[test]
    #[should_panic(expected = "append-only")]
    fn streaming_insert_rejects_id_gaps() {
        let data = random_points(10, 12);
        let mut tree = MTree::build_prefix(&data, MTreeConfig::default(), 5);
        tree.insert_object(7); // 5 is next; 7 leaves a gap
    }

    #[test]
    fn hamming_metric_tree_is_valid() {
        let mut rng = StdRng::seed_from_u64(8);
        let pts = (0..120)
            .map(|_| {
                Point::categorical(&[
                    rng.random_range(0..4u32),
                    rng.random_range(0..4u32),
                    rng.random_range(0..4u32),
                    rng.random_range(0..4u32),
                ])
            })
            .collect();
        let data = Dataset::new("cat", Metric::Hamming, pts);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        check_invariants(&tree).unwrap();
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 2")]
    fn rejects_capacity_below_two() {
        let data = grid(2);
        let _ = MTree::build(
            &data,
            MTreeConfig {
                capacity: 1,
                ..MTreeConfig::default()
            },
        );
    }
}
