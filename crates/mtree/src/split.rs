//! Node splitting policies.
//!
//! When a node overflows its capacity `c`, two of its `c + 1` entries are
//! *promoted* as the pivots of the two replacement nodes and the remaining
//! entries are *partitioned* between them (paper Section 5). The choice of
//! policy controls the overlap between sibling balls, quantified by the
//! fat-factor, which the Figure 10 experiment varies:
//!
//! * [`PromotePolicy::MinOverlap`] + [`PartitionPolicy::ClosestPivot`] —
//!   the paper's "MinOverlap" policy (lowest fat-factor): keep the
//!   overflowed node's pivot and promote the entry farthest from it.
//! * [`PromotePolicy::MaxDistance`] — promote the two entries with the
//!   greatest pairwise distance (higher fat-factor in the paper).
//! * [`PartitionPolicy::Balanced`] — assign an equal number of entries to
//!   each side instead of nearest-pivot assignment (higher still).
//! * [`PromotePolicy::Random`] — random pivots (highest fat-factor).

use disc_metric::{Dataset, ObjId};
use rand::{rngs::StdRng, RngExt as _};

/// How the two new pivots are chosen from the `c + 1` entries of an
/// overflowed node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PromotePolicy {
    /// Keep the overflowed node's current pivot and promote the entry
    /// farthest from it. For the (pivot-less) root, falls back to the
    /// farthest pair found by scanning from the first entry.
    MinOverlap,
    /// Promote the two entries with the maximum pairwise distance.
    MaxDistance,
    /// Promote two distinct entries uniformly at random (seeded).
    Random,
}

/// How the remaining entries are distributed between the two new nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Each entry goes to the closer promoted pivot (generalized
    /// hyperplane).
    ClosestPivot,
    /// Entries are sorted by `d(e, p1) - d(e, p2)` and the two halves are
    /// assigned so that both nodes receive the same number of entries
    /// (±1).
    Balanced,
}

/// A complete splitting policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitPolicy {
    /// Pivot promotion rule.
    pub promote: PromotePolicy,
    /// Entry partition rule.
    pub partition: PartitionPolicy,
}

impl SplitPolicy {
    /// The paper's default, lowest-overlap policy.
    pub const MIN_OVERLAP: Self = Self {
        promote: PromotePolicy::MinOverlap,
        partition: PartitionPolicy::ClosestPivot,
    };
    /// Promote the farthest pair, assign to the closest pivot.
    pub const MAX_DISTANCE: Self = Self {
        promote: PromotePolicy::MaxDistance,
        partition: PartitionPolicy::ClosestPivot,
    };
    /// Promote the farthest pair, balanced assignment.
    pub const BALANCED: Self = Self {
        promote: PromotePolicy::MaxDistance,
        partition: PartitionPolicy::Balanced,
    };
    /// Random pivots, balanced assignment (the paper's highest-fat-factor
    /// configuration).
    pub const RANDOM: Self = Self {
        promote: PromotePolicy::Random,
        partition: PartitionPolicy::Balanced,
    };

    /// The four policies evaluated in the Figure 10 experiment, from the
    /// expected lowest to highest fat-factor.
    pub fn figure10_policies() -> [(&'static str, Self); 4] {
        [
            ("min-overlap", Self::MIN_OVERLAP),
            ("max-distance", Self::MAX_DISTANCE),
            ("balanced", Self::BALANCED),
            ("random", Self::RANDOM),
        ]
    }
}

impl Default for SplitPolicy {
    fn default() -> Self {
        Self::MIN_OVERLAP
    }
}

/// Outcome of a split: promoted pivots and the entry indices assigned to
/// each side. Index positions refer to the `reps` slice passed to
/// [`split_entries`].
#[derive(Debug)]
pub struct SplitOutcome {
    /// Pivot of the first (reused) node.
    pub pivot1: ObjId,
    /// Pivot of the second (new) node.
    pub pivot2: ObjId,
    /// Indices of entries assigned to the first node.
    pub side1: Vec<usize>,
    /// Indices of entries assigned to the second node.
    pub side2: Vec<usize>,
}

/// Splits a set of entries represented by objects `reps` (the stored object
/// for leaf entries, the child pivot for internal entries).
///
/// `current_pivot` is the overflowed node's routing pivot, used by
/// [`PromotePolicy::MinOverlap`].
///
/// # Panics
///
/// Panics if fewer than two entries are given (nothing to split).
pub fn split_entries(
    data: &Dataset,
    reps: &[ObjId],
    current_pivot: Option<ObjId>,
    policy: SplitPolicy,
    rng: &mut StdRng,
) -> SplitOutcome {
    assert!(reps.len() >= 2, "cannot split fewer than two entries");
    let (i1, i2) = match policy.promote {
        PromotePolicy::MinOverlap => {
            // Anchor on the current pivot if it is among the entries,
            // otherwise on the entry closest to it (the pivot object itself
            // lives in a leaf further down for internal splits).
            let anchor = match current_pivot {
                Some(p) => reps
                    .iter()
                    .position(|&r| r == p)
                    .unwrap_or_else(|| nearest_index(data, reps, p)),
                None => 0,
            };
            (anchor, farthest_index(data, reps, reps[anchor], anchor))
        }
        PromotePolicy::MaxDistance => farthest_pair(data, reps),
        PromotePolicy::Random => {
            let a = rng.random_range(0..reps.len());
            let mut b = rng.random_range(0..reps.len() - 1);
            if b >= a {
                b += 1;
            }
            (a, b)
        }
    };
    let (p1, p2) = (reps[i1], reps[i2]);

    let mut side1 = Vec::with_capacity(reps.len() / 2 + 1);
    let mut side2 = Vec::with_capacity(reps.len() / 2 + 1);
    match policy.partition {
        PartitionPolicy::ClosestPivot => {
            for (i, &r) in reps.iter().enumerate() {
                if i == i1 {
                    side1.push(i);
                } else if i == i2 {
                    side2.push(i);
                } else if data.dist(r, p1) <= data.dist(r, p2) {
                    side1.push(i);
                } else {
                    side2.push(i);
                }
            }
        }
        PartitionPolicy::Balanced => {
            // Sort by preference for p1, then deal out halves.
            let mut order: Vec<usize> = (0..reps.len()).filter(|&i| i != i1 && i != i2).collect();
            order.sort_by(|&a, &b| {
                let da = data.dist(reps[a], p1) - data.dist(reps[a], p2);
                let db = data.dist(reps[b], p1) - data.dist(reps[b], p2);
                match da.partial_cmp(&db) {
                    Some(o) => o,
                    // Datasets are finite by construction, so pairwise
                    // distances (and their differences) never produce NaN.
                    None => unreachable!("finite distances are comparable"),
                }
            });
            side1.push(i1);
            side2.push(i2);
            let half = order.len().div_ceil(2);
            side1.extend_from_slice(&order[..half]);
            side2.extend_from_slice(&order[half..]);
        }
    }
    debug_assert!(!side1.is_empty() && !side2.is_empty());
    SplitOutcome {
        pivot1: p1,
        pivot2: p2,
        side1,
        side2,
    }
}

/// Index of the entry farthest from `from`, excluding `skip`. Also the
/// pivot-promotion core of the spatial shard planner
/// ([`crate::shard::ShardPlan`]), which reuses the MinOverlap rule
/// (anchor + farthest) on whole dataset partitions.
pub(crate) fn farthest_index(data: &Dataset, reps: &[ObjId], from: ObjId, skip: usize) -> usize {
    let mut best = usize::MAX;
    let mut best_d = f64::NEG_INFINITY;
    for (i, &r) in reps.iter().enumerate() {
        if i == skip {
            continue;
        }
        let d = data.dist(r, from);
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Index of the entry nearest to object `to`.
fn nearest_index(data: &Dataset, reps: &[ObjId], to: ObjId) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &r) in reps.iter().enumerate() {
        let d = data.dist(r, to);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// The exact farthest pair of entries (O(k²), with k ≤ capacity + 1).
fn farthest_pair(data: &Dataset, reps: &[ObjId]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut best_d = f64::NEG_INFINITY;
    for i in 0..reps.len() {
        for j in (i + 1)..reps.len() {
            let d = data.dist(reps[i], reps[j]);
            if d > best_d {
                best_d = d;
                best = (i, j);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::{Metric, Point};
    use rand::SeedableRng;

    /// Two clusters far apart: {0,1,2} near the origin, {3,4,5} near (1,1).
    fn two_clusters() -> Dataset {
        Dataset::new(
            "two-clusters",
            Metric::Euclidean,
            vec![
                Point::new2(0.00, 0.00),
                Point::new2(0.02, 0.00),
                Point::new2(0.00, 0.03),
                Point::new2(1.00, 1.00),
                Point::new2(0.98, 1.00),
                Point::new2(1.00, 0.97),
            ],
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn max_distance_separates_clusters() {
        let data = two_clusters();
        let reps: Vec<ObjId> = (0..6).collect();
        let out = split_entries(&data, &reps, None, SplitPolicy::MAX_DISTANCE, &mut rng());
        let s1: Vec<ObjId> = out.side1.iter().map(|&i| reps[i]).collect();
        let s2: Vec<ObjId> = out.side2.iter().map(|&i| reps[i]).collect();
        // Each side should be one of the two clusters.
        let mut a = s1.clone();
        let mut b = s2.clone();
        a.sort_unstable();
        b.sort_unstable();
        if a[0] == 0 {
            assert_eq!(a, vec![0, 1, 2]);
            assert_eq!(b, vec![3, 4, 5]);
        } else {
            assert_eq!(a, vec![3, 4, 5]);
            assert_eq!(b, vec![0, 1, 2]);
        }
    }

    #[test]
    fn min_overlap_keeps_current_pivot() {
        let data = two_clusters();
        let reps: Vec<ObjId> = (0..6).collect();
        let out = split_entries(&data, &reps, Some(1), SplitPolicy::MIN_OVERLAP, &mut rng());
        assert_eq!(out.pivot1, 1);
        // Farthest from object 1 is in the other cluster.
        assert!(out.pivot2 >= 3);
    }

    #[test]
    fn min_overlap_without_pivot_anchors_on_first_entry() {
        let data = two_clusters();
        let reps: Vec<ObjId> = (0..6).collect();
        let out = split_entries(&data, &reps, None, SplitPolicy::MIN_OVERLAP, &mut rng());
        assert_eq!(out.pivot1, 0);
        assert!(out.pivot2 >= 3);
    }

    #[test]
    fn balanced_partition_is_balanced() {
        let data = two_clusters();
        let reps: Vec<ObjId> = (0..6).collect();
        let out = split_entries(&data, &reps, None, SplitPolicy::BALANCED, &mut rng());
        assert_eq!(out.side1.len(), 3);
        assert_eq!(out.side2.len(), 3);
    }

    #[test]
    fn balanced_partition_with_odd_entries() {
        let data = two_clusters();
        let reps: Vec<ObjId> = (0..5).collect();
        let out = split_entries(&data, &reps, None, SplitPolicy::BALANCED, &mut rng());
        let (a, b) = (out.side1.len(), out.side2.len());
        assert_eq!(a + b, 5);
        assert!(a.abs_diff(b) <= 1);
    }

    #[test]
    fn random_promotion_is_deterministic_under_seed() {
        let data = two_clusters();
        let reps: Vec<ObjId> = (0..6).collect();
        let a = split_entries(&data, &reps, None, SplitPolicy::RANDOM, &mut rng());
        let b = split_entries(&data, &reps, None, SplitPolicy::RANDOM, &mut rng());
        assert_eq!(a.pivot1, b.pivot1);
        assert_eq!(a.pivot2, b.pivot2);
        assert_ne!(a.pivot1, a.pivot2);
    }

    #[test]
    fn every_entry_lands_on_exactly_one_side() {
        let data = two_clusters();
        let reps: Vec<ObjId> = (0..6).collect();
        for (_, policy) in SplitPolicy::figure10_policies() {
            let out = split_entries(&data, &reps, Some(0), policy, &mut rng());
            let mut all: Vec<usize> = out.side1.iter().chain(&out.side2).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..6).collect::<Vec<_>>(), "{policy:?}");
            assert!(!out.side1.is_empty() && !out.side2.is_empty());
        }
    }

    #[test]
    fn split_of_two_entries() {
        let data = two_clusters();
        let reps = vec![0, 5];
        for (_, policy) in SplitPolicy::figure10_policies() {
            let out = split_entries(&data, &reps, None, policy, &mut rng());
            assert_eq!(out.side1.len(), 1);
            assert_eq!(out.side2.len(), 1);
        }
    }
}
