//! Node layout of the M-tree.
//!
//! The arena-based layout keeps every node's routing information (pivot,
//! covering radius, distance to the parent pivot) *on the node itself*
//! rather than duplicated in a parent entry; parents store only child ids.
//! This removes a whole class of synchronisation bugs during splits.
//!
//! Access-counting note: in a disk-resident M-tree the routing information
//! of the children is physically stored in the parent page, so scanning the
//! children's pivots/radii while processing a node is part of *that node's*
//! access; a child is only charged when it is itself processed. The query
//! code in [`crate::query`] follows this accounting.
//!
//! ## Blocked SoA leaf layout
//!
//! Every leaf additionally carries its entries' coordinates in a
//! **lane-major ("SoA") block** ([`Node::lanes`]): with `k` entries and
//! dimensionality `dim`, coordinate `d` of entry `i` lives at
//! `lanes[d * k + i]`. The block mirrors [`NodeKind::Leaf`]'s entry
//! order exactly and is rewritten by the tree whenever the entry list
//! changes (insert append, split redistribution), so it is always
//! consistent — [`crate::validate::check_invariants`] pins this. The
//! self-join's leaf kernels feed these blocks straight into
//! `disc_metric::Metric::dist_batch`, turning per-pair metric dispatch
//! into one dispatch per block sweep with unit-stride, vectorizable
//! inner loops. Internal nodes keep the block empty.

use disc_metric::ObjId;

/// Index of a node in the tree arena.
pub type NodeId = usize;

/// A leaf slot: the indexed object and its cached reference distances.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeafEntry {
    /// The indexed object.
    pub object: ObjId,
    /// Cached distance from `object` to the leaf's routing pivot
    /// (0 when the leaf is the root and has no pivot).
    pub dist_to_pivot: f64,
    /// Cached distance from `object` to the leaf's vantage object
    /// ([`Node::vantage`]). A second triangle-inequality reference:
    /// during a range scan, `|d(q, v) − d(object, v)| > r` discards the
    /// entry without computing `d(q, object)`, independently of the pivot
    /// bound.
    pub dist_to_vantage: f64,
    /// Cached distance from `object` to the leaf's second vantage object
    /// ([`Node::vantage2`]) — a third annulus bound.
    pub dist_to_vantage2: f64,
}

/// Payload of a node: children ids for internal nodes, object entries for
/// leaves.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Routing node: ids of child nodes.
    Internal(Vec<NodeId>),
    /// Leaf node: the indexed objects.
    Leaf(Vec<LeafEntry>),
}

/// An M-tree node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Routing pivot. Every node except the root has one; the root routes
    /// through its children directly.
    pub pivot: Option<ObjId>,
    /// Covering radius: upper bound on the distance from `pivot` to any
    /// object stored in this subtree. 0 for the root (unused).
    pub radius: f64,
    /// Leaf-only second reference object (LAESA-style): entries cache
    /// their distance to it in [`LeafEntry::dist_to_vantage`]. Chosen as
    /// the entry farthest from the pivot when the leaf is (re)written,
    /// so the two reference annuli intersect at a steep angle and prune
    /// complementary regions. `None` for internal nodes and empty leaves.
    pub vantage: Option<ObjId>,
    /// Second leaf vantage: the entry farthest from [`Node::vantage`]
    /// (approximately the other end of the leaf's diameter), giving a
    /// third reference annulus. `None` for internal nodes and empty
    /// leaves.
    pub vantage2: Option<ObjId>,
    /// Cached distance from this node's pivot to the parent node's pivot
    /// (0 when the parent is the root).
    pub dist_to_parent: f64,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Next leaf in the left-to-right chain (`None` for internal nodes and
    /// the last leaf).
    pub next_leaf: Option<NodeId>,
    /// Leaf-only blocked SoA coordinate lanes: with `k` entries and
    /// dimensionality `dim`, coordinate `d` of entry `i` is
    /// `lanes[d * k + i]`, in the same order as the
    /// [`NodeKind::Leaf`] entry list (see the [module docs](self)).
    /// Empty for internal nodes; maintained by the tree on every leaf
    /// rewrite.
    pub lanes: Vec<f64>,
    /// Children or objects.
    pub kind: NodeKind,
}

impl Node {
    /// Pivot of a non-root node. Every node below the root is created
    /// with a pivot (the root alone has `None`), so callers walking
    /// children may rely on it.
    #[inline]
    pub fn pivot_id(&self) -> ObjId {
        match self.pivot {
            Some(p) => p,
            None => unreachable!("non-root nodes have pivots"),
        }
    }

    /// Creates an empty leaf.
    pub fn new_leaf(pivot: Option<ObjId>, parent: Option<NodeId>) -> Self {
        Self {
            pivot,
            radius: 0.0,
            vantage: None,
            vantage2: None,
            dist_to_parent: 0.0,
            parent,
            next_leaf: None,
            lanes: Vec::new(),
            kind: NodeKind::Leaf(Vec::new()),
        }
    }

    /// Creates an internal node over the given children.
    pub fn new_internal(
        pivot: Option<ObjId>,
        parent: Option<NodeId>,
        children: Vec<NodeId>,
    ) -> Self {
        Self {
            pivot,
            radius: 0.0,
            vantage: None,
            vantage2: None,
            dist_to_parent: 0.0,
            parent,
            next_leaf: None,
            lanes: Vec::new(),
            kind: NodeKind::Internal(children),
        }
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Number of entries (children or objects).
    pub fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Internal(c) => c.len(),
            NodeKind::Leaf(e) => e.len(),
        }
    }

    /// Whether the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Leaf entries.
    ///
    /// # Panics
    ///
    /// Panics if the node is internal.
    pub fn leaf_entries(&self) -> &[LeafEntry] {
        match &self.kind {
            NodeKind::Leaf(e) => e,
            NodeKind::Internal(_) => panic!("leaf_entries on internal node"),
        }
    }

    /// Child node ids.
    ///
    /// # Panics
    ///
    /// Panics if the node is a leaf.
    pub fn children(&self) -> &[NodeId] {
        match &self.kind {
            NodeKind::Internal(c) => c,
            NodeKind::Leaf(_) => panic!("children on leaf node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_construction() {
        let n = Node::new_leaf(Some(3), Some(0));
        assert!(n.is_leaf());
        assert!(n.is_empty());
        assert_eq!(n.len(), 0);
        assert_eq!(n.pivot, Some(3));
        assert_eq!(n.parent, Some(0));
        assert!(n.leaf_entries().is_empty());
    }

    #[test]
    fn internal_construction() {
        let n = Node::new_internal(None, None, vec![1, 2]);
        assert!(!n.is_leaf());
        assert_eq!(n.len(), 2);
        assert_eq!(n.children(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "children on leaf")]
    fn children_on_leaf_panics() {
        let n = Node::new_leaf(None, None);
        let _ = n.children();
    }

    #[test]
    #[should_panic(expected = "leaf_entries on internal")]
    fn entries_on_internal_panics() {
        let n = Node::new_internal(None, None, vec![]);
        let _ = n.leaf_entries();
    }
}
