//! Typed errors for the fallible M-tree entry points.

use std::fmt;

use disc_metric::cancel::Cancelled;

/// Why a checked self-join entry point refused to run or stopped early.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JoinError {
    /// The query radius was NaN or negative — there is no meaningful
    /// neighbourhood at such a radius, and silently treating it as 0
    /// (or letting NaN comparisons prune everything) would serve wrong
    /// answers.
    InvalidRadius(f64),
    /// The supplied [`disc_metric::CancelToken`] fired before the
    /// traversal completed. Counters still reflect exactly the work
    /// performed; no partial edge list escapes.
    Cancelled,
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRadius(r) => {
                write!(
                    f,
                    "self-join radius must be finite and non-negative, got {r}"
                )
            }
            Self::Cancelled => f.write_str("self-join cancelled before completion"),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<Cancelled> for JoinError {
    fn from(_: Cancelled) -> Self {
        Self::Cancelled
    }
}
