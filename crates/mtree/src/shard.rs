//! Spatial shard planning for the out-of-core-ready sharded build.
//!
//! [`ShardPlan`] partitions a dataset into `s` spatial shards by a
//! recursive **balanced median split**: each partition promotes two
//! pivots with the M-tree's MinOverlap rule (anchor + farthest, see
//! [`crate::split`]), orders its objects by the generalized-hyperplane
//! key `d(x, p1) − d(x, p2)` (ties by id), and halves at the median.
//! The recursion runs to a fixed stop size regardless of the requested
//! shard count, producing one **canonical permutation** of the dataset
//! (the depth-first concatenation of the final cells); the requested
//! shard count only selects *which prefix of the recursion tree* the
//! shard boundaries are read from. Two consequences the sharded build
//! relies on:
//!
//! * **Shard-count independence.** The permutation — and therefore the
//!   renumbered dataset, the assembled CSR and the snapshot bytes — is
//!   a pure function of the dataset, never of `shards`. Byte-identity
//!   of sharded and unsharded builds follows by construction.
//! * **Contiguity.** Every shard is a contiguous id range of the
//!   renumbered dataset, so a per-shard M-tree is just
//!   [`crate::MTree::build_range`] over the shared dataset — the shape a
//!   later out-of-process executor needs (ship one range + the boundary
//!   ball table, nothing else).
//!
//! The plan also records one **covering ball** per shard (center = the
//! shard's first object, radius = its farthest member), which
//! [`ShardPlan::boundary_pairs`] uses to discard shard pairs that
//! cannot join: by the triangle inequality, objects of shards `i` and
//! `j` are all farther than `r` apart when
//! `d(c_i, c_j) > r + rad_i + rad_j`. The skip test is conservative on
//! the *keep* side (same ulp-margin style as the self-join's inclusion
//! bounds), so rounding can only ever admit a fruitless cross-join,
//! never drop a joining pair.
//!
//! Every distance the planner evaluates is counted and readable via
//! [`ShardPlan::distance_computations`] — the sharded build's exact
//! accounting includes the partitioning phase.

use std::ops::Range;

use disc_metric::{Dataset, ObjId};

use crate::split::farthest_index;

/// Default recursion stop: partitions at or below this size become
/// cells and are never subdivided (so shard boundaries exist down to
/// roughly `n / DEFAULT_STOP` shards; beyond that, extra shards come
/// back empty). Matches the M-tree's default node capacity within a
/// small factor, so cells stay leaf-sized.
pub const DEFAULT_STOP: usize = 64;

/// A spatial partition of a dataset into contiguous shards of a
/// canonical, shard-count-independent permutation. See the [module
/// docs](self).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Canonical permutation: new id `i` is old id `order[i]` (the
    /// contract of `Dataset::renumbered`).
    order: Vec<ObjId>,
    /// Shard extents in the new numbering; disjoint, sorted, covering
    /// `0..n`. Ranges may be empty when more shards were requested than
    /// the recursion has cells.
    ranges: Vec<Range<usize>>,
    /// Covering ball per shard, `(center old id, radius)`; `None` for
    /// empty shards. The center is the shard's first object — in new
    /// numbering, `ranges[s].start` — stored under its *old* id so ball
    /// geometry can be queried against the original dataset.
    balls: Vec<Option<(ObjId, f64)>>,
    /// Distances evaluated while planning (promotions, partition keys,
    /// ball radii).
    distance_computations: u64,
}

impl ShardPlan {
    /// Plans `shards` spatial shards over `data` with the default
    /// recursion stop size.
    pub fn new(data: &Dataset, shards: usize) -> Self {
        Self::with_stop(data, shards, DEFAULT_STOP)
    }

    /// [`ShardPlan::new`] with an explicit recursion stop size — a test
    /// override: a small `stop` forces deep recursion (and therefore
    /// non-trivial shard boundaries) on datasets small enough to
    /// cross-validate against the O(n²) reference. `stop` is clamped to
    /// at least 1.
    ///
    /// The permutation depends on `stop` but **never** on `shards`:
    /// plans over the same dataset with the same `stop` agree on
    /// [`ShardPlan::order`] for every shard count.
    pub fn with_stop(data: &Dataset, shards: usize, stop: usize) -> Self {
        let n = data.len();
        let shards = shards.max(1);
        let stop = stop.max(1);
        let mut order: Vec<ObjId> = (0..n).collect();
        let mut dc = 0u64;
        split_recursive(data, &mut order, stop, &mut dc);

        let mut ranges = Vec::with_capacity(shards);
        shard_ranges(0, n, shards, stop, &mut ranges);
        debug_assert_eq!(ranges.len(), shards);
        debug_assert_eq!(ranges.iter().map(Range::len).sum::<usize>(), n);

        let balls = ranges
            .iter()
            .map(|r| {
                if r.is_empty() {
                    return None;
                }
                let center = order[r.start];
                let mut radius = 0.0f64;
                for &x in &order[r.start + 1..r.end] {
                    radius = radius.max(data.dist(center, x));
                }
                dc += (r.len() - 1) as u64;
                Some((center, radius))
            })
            .collect();

        Self {
            order,
            ranges,
            balls,
            distance_computations: dc,
        }
    }

    /// The canonical permutation: new id `i` is old id `order[i]` —
    /// feed this to `Dataset::renumbered`.
    pub fn order(&self) -> &[ObjId] {
        &self.order
    }

    /// Number of planned shards (including empty ones).
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Shard extents in the new numbering; disjoint, sorted, covering
    /// `0..n`.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Covering ball of shard `s` as `(center old id, radius)`; `None`
    /// for an empty shard.
    pub fn ball(&self, s: usize) -> Option<(ObjId, f64)> {
        self.balls[s]
    }

    /// Distances evaluated while planning.
    pub fn distance_computations(&self) -> u64 {
        self.distance_computations
    }

    /// Shard pairs whose covering balls are close enough that a
    /// cross-join at radius `r` could produce edges, with the distance
    /// charge of the filter. `data` must be the dataset the plan was
    /// built from (ball centers are old ids). Pairs come back as
    /// `(i, j)` with `i < j` in lexicographic order; pairs involving an
    /// empty shard never join and are never returned.
    ///
    /// The skip test `d(c_i, c_j) > r + rad_i + rad_j` is exact by the
    /// triangle inequality; a relative ulp margin on the keep side
    /// (mirroring the self-join's inclusion margins) makes rounding
    /// err towards keeping — a kept pair at worst wastes a cross-join
    /// that finds nothing.
    pub fn boundary_pairs(&self, data: &Dataset, r: f64) -> (Vec<(usize, usize)>, u64) {
        let dim = data.dim();
        let mut dc = 0u64;
        let mut pairs = Vec::new();
        for i in 0..self.ranges.len() {
            let Some((ci, rad_i)) = self.balls[i] else {
                continue;
            };
            for j in (i + 1)..self.ranges.len() {
                let Some((cj, rad_j)) = self.balls[j] else {
                    continue;
                };
                let d = data.dist(ci, cj);
                dc += 1;
                let bound = r + rad_i + rad_j;
                if d <= bound + bound * ((2 * dim + 8) as f64 * f64::EPSILON) {
                    pairs.push((i, j));
                }
            }
        }
        (pairs, dc)
    }
}

/// Recursive balanced median split of one partition (a slice of the
/// order array), in place. Promotion follows the MinOverlap rule on the
/// partition: anchor on the first object, promote the farthest object
/// from it. The partition key is the generalized hyperplane
/// `d(x, p1) − d(x, p2)` with the object id as tiebreak — a strict
/// total order, so the sorted result (and with it the whole canonical
/// permutation) is implementation-independent.
fn split_recursive(data: &Dataset, order: &mut [ObjId], stop: usize, dc: &mut u64) {
    let len = order.len();
    if len <= stop {
        return;
    }
    let p1 = order[0];
    let far = farthest_index(data, order, p1, 0);
    *dc += (len - 1) as u64;
    let p2 = order[far];
    let mut keyed: Vec<(f64, ObjId)> = order
        .iter()
        .map(|&x| (data.dist(x, p1) - data.dist(x, p2), x))
        .collect();
    *dc += 2 * len as u64;
    // Finite coordinates make every key finite; total_cmp is then the
    // ordinary order, and the id tiebreak makes it strict.
    keyed.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    for (slot, (_, x)) in order.iter_mut().zip(&keyed) {
        *slot = *x;
    }
    let mid = len.div_ceil(2);
    let (left, right) = order.split_at_mut(mid);
    split_recursive(data, left, stop, dc);
    split_recursive(data, right, stop, dc);
}

/// Reads `shards` shard extents off the recursion tree: the shard
/// budget descends the same midpoint rule as [`split_recursive`]
/// (which depends only on partition *lengths*), splitting the budget
/// ceil/floor at each level. A partition at or below the stop size is
/// a cell; a cell asked for more than one shard yields the cell plus
/// empty shards (the degenerate the parity tests pin).
fn shard_ranges(start: usize, len: usize, shards: usize, stop: usize, out: &mut Vec<Range<usize>>) {
    if shards <= 1 || len <= stop {
        out.push(start..start + len);
        for _ in 1..shards {
            out.push(start + len..start + len);
        }
        return;
    }
    let mid = len.div_ceil(2);
    shard_ranges(start, mid, shards.div_ceil(2), stop, out);
    shard_ranges(start + mid, len - mid, shards / 2, stop, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::{Metric, Point};
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn random_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        Dataset::new("shard-test", Metric::Euclidean, points)
    }

    #[test]
    fn order_is_a_permutation() {
        let data = random_data(300, 1);
        let plan = ShardPlan::with_stop(&data, 4, 16);
        let mut seen = vec![false; 300];
        for &o in plan.order() {
            assert!(!seen[o]);
            seen[o] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn order_is_shard_count_independent() {
        let data = random_data(257, 2);
        let reference = ShardPlan::with_stop(&data, 1, 16);
        for s in [2, 3, 5, 8, 64] {
            let plan = ShardPlan::with_stop(&data, s, 16);
            assert_eq!(plan.order(), reference.order(), "shards={s}");
            assert_eq!(plan.shards(), s);
        }
    }

    #[test]
    fn ranges_tile_the_dataset() {
        let data = random_data(200, 3);
        for s in [1, 2, 3, 8, 17] {
            let plan = ShardPlan::with_stop(&data, s, 16);
            let mut next = 0;
            for r in plan.ranges() {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, 200, "shards={s}");
        }
    }

    #[test]
    fn oversubscribed_plan_yields_empty_shards() {
        let data = random_data(40, 4);
        let plan = ShardPlan::with_stop(&data, 8, 64);
        // n <= stop: everything is one cell, the other shards are empty.
        assert_eq!(plan.shards(), 8);
        assert_eq!(plan.ranges()[0], 0..40);
        assert!(plan.ranges()[1..].iter().all(|r| r.is_empty()));
        assert!(plan.ball(0).is_some());
        assert!((1..8).all(|s| plan.ball(s).is_none()));
    }

    #[test]
    fn balls_cover_their_shards() {
        let data = random_data(500, 5);
        let plan = ShardPlan::with_stop(&data, 4, 32);
        for (s, r) in plan.ranges().iter().enumerate() {
            let Some((center, radius)) = plan.ball(s) else {
                assert!(r.is_empty());
                continue;
            };
            for &x in &plan.order()[r.clone()] {
                assert!(data.dist(center, x) <= radius);
            }
        }
    }

    #[test]
    fn boundary_pairs_only_skip_safe_pairs() {
        let data = random_data(400, 6);
        let r = 0.05;
        let plan = ShardPlan::with_stop(&data, 8, 16);
        let (pairs, dc) = plan.boundary_pairs(&data, r);
        assert!(dc > 0);
        let kept: std::collections::HashSet<(usize, usize)> = pairs.into_iter().collect();
        // Every cross-shard pair within r must live in a kept shard pair.
        let mut shard_of = vec![usize::MAX; 400];
        for (s, range) in plan.ranges().iter().enumerate() {
            for &x in &plan.order()[range.clone()] {
                shard_of[x] = s;
            }
        }
        for a in 0..400 {
            for b in (a + 1)..400 {
                if data.dist(a, b) <= r && shard_of[a] != shard_of[b] {
                    let key = (shard_of[a].min(shard_of[b]), shard_of[a].max(shard_of[b]));
                    assert!(kept.contains(&key), "pair ({a},{b}) lost by ball filter");
                }
            }
        }
    }

    #[test]
    fn duplicates_straddling_a_boundary_stay_planned() {
        // All points identical: keys tie everywhere, the id tiebreak
        // still yields a valid permutation, and every shard ball has
        // radius 0.
        let points = vec![Point::new2(0.5, 0.5); 64];
        let data = Dataset::new("dup", Metric::Euclidean, points);
        let plan = ShardPlan::with_stop(&data, 4, 8);
        let mut order = plan.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
        let (pairs, _) = plan.boundary_pairs(&data, 0.0);
        // Zero-distance duplicates across shards must keep their pairs.
        assert!(!pairs.is_empty());
    }

    #[test]
    fn planner_counts_its_distances() {
        let data = random_data(128, 7);
        let plan = ShardPlan::with_stop(&data, 2, 16);
        // At least one promotion (127) + keys (256) + ball radii.
        assert!(plan.distance_computations() > 300);
    }
}
