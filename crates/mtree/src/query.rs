//! Range and point queries over the M-tree, with node-access and
//! distance-computation accounting and the paper's colour-based pruning.
//!
//! * [`MTree::range_query`] — top-down `Q(q, r)`: every object within
//!   distance `r` of `q`.
//! * [`MTree::range_query_pruned`] — same, but skips *grey* subtrees (the
//!   Pruning Rule of Section 5: a subtree with no white objects cannot
//!   contribute anything a colouring pass still needs).
//! * [`MTree::range_query_bottom_up`] — starts at the leaf holding the
//!   query object and climbs towards the root, exploring intersecting
//!   sibling subtrees on the way. With `stop_at_grey`, the climb aborts at
//!   the first grey ancestor — the Fast-C behaviour, which may miss
//!   neighbours in distant leaves (by design).
//! * [`MTree::point_query_accesses`] — exact-match search used by the
//!   fat-factor computation.
//!
//! ## Parent-distance pruning
//!
//! Every query additionally applies the classic M-tree lemma (Ciaccia,
//! Patella & Zezula, Lemma 1 of the original paper) when
//! [`MTreeConfig::parent_pruning`](crate::MTreeConfig) is set (the
//! default): while scanning the entries of a node whose pivot `p` is at
//! known distance `d(q, p)` from the query, an entry with cached parent
//! distance `d(e, p)` satisfies `d(q, e) ≥ |d(q, p) − d(e, p)|` by the
//! triangle inequality — so whenever `|d(q, p) − d(e, p)| > r + radius(e)`
//! the entry (child subtree or leaf object) is discarded *without
//! computing `d(q, e)`*. Hit sets are identical with the lemma on or off;
//! only [`MTree::distance_computations`] changes.
//!
//! ## Scratch buffers
//!
//! Every query has a `*_into` variant that clears and fills a
//! caller-owned `Vec<RangeHit>`. The DisC seeding loops issue one range
//! query per object; reusing one buffer across the whole loop removes the
//! per-query allocation.

use disc_metric::{ObjId, Point};

use crate::color::ColorState;
use crate::node::{NodeId, NodeKind};
use crate::tree::MTree;

/// One range-query result: an object and its distance from the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeHit {
    /// The object found within the query ball.
    pub object: ObjId,
    /// Its distance from the query point.
    pub dist: f64,
}

/// Where a range query deposits its results. Two collectors exist:
/// `Vec<RangeHit>` (objects + exact distances) and `Vec<ObjId>`
/// (objects only). The object-only collector additionally unlocks the
/// *inclusion* shortcuts: an entry whose cached reference distances
/// prove `d(q, e) ≤ r` is accepted without computing `d(q, e)`, and a
/// child ball entirely inside the query ball is enumerated with no
/// distance computations at all. The DisC seeding and grey-update loops
/// only ever consume hit objects, so they ride the cheap path.
pub trait RangeSink {
    /// Whether exact distances must be materialised (disables the
    /// inclusion shortcuts).
    const NEEDS_DIST: bool;

    /// Accepts one in-ball object. `dist` is exact when
    /// [`RangeSink::NEEDS_DIST`] is true, otherwise an upper bound.
    fn accept(&mut self, object: ObjId, dist: f64);
}

impl RangeSink for Vec<RangeHit> {
    const NEEDS_DIST: bool = true;

    #[inline]
    fn accept(&mut self, object: ObjId, dist: f64) {
        self.push(RangeHit { object, dist });
    }
}

impl RangeSink for Vec<ObjId> {
    const NEEDS_DIST: bool = false;

    #[inline]
    fn accept(&mut self, object: ObjId, _dist: f64) {
        self.push(object);
    }
}

impl MTree<'_> {
    /// Top-down range query: all objects within distance `r` of `q`,
    /// including the query object itself if it is indexed. Results are in
    /// tree order (deterministic for a given tree).
    pub fn range_query(&self, q: &Point, r: f64) -> Vec<RangeHit> {
        let mut hits = Vec::new();
        self.range_query_into(q, r, &mut hits);
        hits
    }

    /// [`MTree::range_query`] into a reusable scratch buffer (cleared
    /// first).
    pub fn range_query_into(&self, q: &Point, r: f64, hits: &mut Vec<RangeHit>) {
        hits.clear();
        self.range_query_coords_into(q.coords(), r, None, hits);
    }

    /// Top-down range query around an indexed object.
    pub fn range_query_obj(&self, center: ObjId, r: f64) -> Vec<RangeHit> {
        let mut hits = Vec::new();
        self.range_query_obj_into(center, r, &mut hits);
        hits
    }

    /// [`MTree::range_query_obj`] into a reusable scratch buffer (cleared
    /// first).
    pub fn range_query_obj_into(&self, center: ObjId, r: f64, hits: &mut Vec<RangeHit>) {
        hits.clear();
        self.range_query_coords_into(self.data().row(center), r, None, hits);
    }

    /// Top-down range query that skips grey subtrees (no white objects).
    /// Objects inside visited leaves are returned regardless of their own
    /// colour; only whole-subtree pruning applies, exactly as in the
    /// paper's Pruning Rule.
    pub fn range_query_pruned(&self, q: &Point, r: f64, colors: &ColorState) -> Vec<RangeHit> {
        let mut hits = Vec::new();
        self.range_query_coords_into(q.coords(), r, Some(colors), &mut hits);
        hits
    }

    /// Pruned top-down range query around an indexed object.
    pub fn range_query_obj_pruned(
        &self,
        center: ObjId,
        r: f64,
        colors: &ColorState,
    ) -> Vec<RangeHit> {
        let mut hits = Vec::new();
        self.range_query_obj_pruned_into(center, r, colors, &mut hits);
        hits
    }

    /// [`MTree::range_query_obj_pruned`] into a reusable scratch buffer
    /// (cleared first).
    pub fn range_query_obj_pruned_into(
        &self,
        center: ObjId,
        r: f64,
        colors: &ColorState,
        hits: &mut Vec<RangeHit>,
    ) {
        hits.clear();
        self.range_query_coords_into(self.data().row(center), r, Some(colors), hits);
    }

    /// Core top-down range query over raw query coordinates, generic
    /// over the result collector (see [`RangeSink`]).
    pub fn range_query_coords_into<S: RangeSink>(
        &self,
        q: &[f64],
        r: f64,
        colors: Option<&ColorState>,
        hits: &mut S,
    ) {
        // The root has no pivot, so no query-to-pivot distance is known
        // on entry.
        self.search_subtree(self.root(), q, r, None, colors, hits);
    }

    /// Object-only top-down range query around an indexed object: same
    /// hit set as [`MTree::range_query_obj`], minus the distances —
    /// which lets the scan accept provably-inside entries and wholly
    /// covered subtrees without computing their distances.
    pub fn range_query_objs(&self, center: ObjId, r: f64) -> Vec<ObjId> {
        let mut out = Vec::new();
        self.range_query_objs_into(center, r, &mut out);
        out
    }

    /// [`MTree::range_query_objs`] into a reusable scratch buffer
    /// (cleared first).
    pub fn range_query_objs_into(&self, center: ObjId, r: f64, out: &mut Vec<ObjId>) {
        out.clear();
        self.range_query_coords_into(self.data().row(center), r, None, out);
    }

    /// Object-only colour-pruned range query (see
    /// [`MTree::range_query_obj_pruned`]).
    pub fn range_query_objs_pruned_into(
        &self,
        center: ObjId,
        r: f64,
        colors: &ColorState,
        out: &mut Vec<ObjId>,
    ) {
        out.clear();
        self.range_query_coords_into(self.data().row(center), r, Some(colors), out);
    }

    /// Object-only bottom-up range query (see
    /// [`MTree::range_query_bottom_up`]).
    pub fn range_query_objs_bottom_up_into(
        &self,
        center: ObjId,
        r: f64,
        colors: Option<&ColorState>,
        stop_at_grey: bool,
        out: &mut Vec<ObjId>,
    ) {
        out.clear();
        self.bottom_up_generic(center, r, colors, stop_at_grey, out);
    }

    /// Bottom-up range query around the indexed object `center`.
    ///
    /// Starts at the leaf holding `center`, then climbs ancestor by
    /// ancestor, searching every sibling subtree whose ball intersects the
    /// query ball. Visits the same objects as the top-down query.
    ///
    /// * `colors` + grey subtrees are skipped when `colors` is `Some`.
    /// * `stop_at_grey` aborts the climb at the first grey ancestor (the
    ///   Fast-C rule); this can miss neighbours whose leaves are only
    ///   reachable through that ancestor.
    pub fn range_query_bottom_up(
        &self,
        center: ObjId,
        r: f64,
        colors: Option<&ColorState>,
        stop_at_grey: bool,
    ) -> Vec<RangeHit> {
        let mut hits = Vec::new();
        self.range_query_bottom_up_into(center, r, colors, stop_at_grey, &mut hits);
        hits
    }

    /// [`MTree::range_query_bottom_up`] into a reusable scratch buffer
    /// (cleared first).
    pub fn range_query_bottom_up_into(
        &self,
        center: ObjId,
        r: f64,
        colors: Option<&ColorState>,
        stop_at_grey: bool,
        hits: &mut Vec<RangeHit>,
    ) {
        hits.clear();
        self.bottom_up_generic(center, r, colors, stop_at_grey, hits);
    }

    /// Shared bottom-up climb, generic over the result collector.
    fn bottom_up_generic<S: RangeSink>(
        &self,
        center: ObjId,
        r: f64,
        colors: Option<&ColorState>,
        stop_at_grey: bool,
        hits: &mut S,
    ) {
        let q = self.data().row(center);
        let leaf = self.leaf_of(center);
        self.touch();
        // d(center, leaf pivot) is already cached in center's own leaf
        // entry — no distance computation needed to seed the lemma.
        let d_leaf_pivot = if self.config().parent_pruning && self.node(leaf).pivot.is_some() {
            self.node(leaf)
                .leaf_entries()
                .iter()
                .find(|e| e.object == center)
                .map(|e| e.dist_to_pivot)
        } else {
            None
        };
        self.scan_leaf_uncounted(leaf, q, r, d_leaf_pivot, hits);
        let mut prev = leaf;
        let mut cur = self.node(leaf).parent;
        while let Some(p) = cur {
            // The grey mark lives in the in-memory pruning metadata, so
            // (as with grey children in the top-down search) consulting it
            // does not charge a node access.
            if stop_at_grey {
                if let Some(c) = colors {
                    if c.node_is_grey(p) {
                        break;
                    }
                }
            }
            self.touch();
            // Distance from the query to this ancestor's pivot enables
            // the parent-distance lemma over its children.
            let d_q_pivot = match self.node(p).pivot {
                Some(pp) if self.config().parent_pruning => Some(self.dist_q(pp, q)),
                _ => None,
            };
            for &child in self.node(p).children() {
                if child == prev {
                    continue;
                }
                if let Some(c) = colors {
                    if c.node_is_grey(child) {
                        continue;
                    }
                }
                self.descend_if_intersecting(child, q, r, d_q_pivot, colors, hits);
            }
            prev = p;
            cur = self.node(p).parent;
        }
    }

    /// Node accesses needed to locate the indexed object `id` by an
    /// exact-match point query (descends every subtree whose ball contains
    /// the point). Used by the fat-factor computation; the returned count
    /// is also added to the tree's global counter.
    pub fn point_query_accesses(&self, id: ObjId) -> u64 {
        let before = self.node_accesses();
        let q = self.data().row(id);
        let parent_pruning = self.config().parent_pruning;
        // Stack entries carry the known query-to-pivot distance of the
        // node, enabling the parent-distance lemma (with r = 0).
        let mut stack: Vec<(NodeId, Option<f64>)> = vec![(self.root(), None)];
        let mut found = false;
        while let Some((node, d_q_pivot)) = stack.pop() {
            self.touch();
            match &self.node(node).kind {
                NodeKind::Leaf(entries) => {
                    if entries.iter().any(|e| e.object == id) {
                        found = true;
                    }
                }
                NodeKind::Internal(children) => {
                    for &child in children {
                        let c = self.node(child);
                        let pivot = c.pivot_id();
                        if parent_pruning {
                            if let Some(dq) = d_q_pivot {
                                if (dq - c.dist_to_parent).abs() > c.radius {
                                    continue;
                                }
                            }
                        }
                        let d = self.dist_q(pivot, q);
                        if d <= c.radius {
                            stack.push((child, Some(d)));
                        }
                    }
                }
            }
        }
        debug_assert!(found, "indexed object must be locatable");
        self.node_accesses() - before
    }

    /// Tests whether `child`'s covering ball intersects the query ball
    /// and recurses into it if so. `d_q_parent_pivot` is the known
    /// distance from the query to the pivot of `child`'s parent (`None`
    /// at the root, whose pivot does not exist, or with parent pruning
    /// disabled); it drives the parent-distance lemma. Reading the
    /// routing data stored in the parent does not charge an access for
    /// `child` itself.
    #[inline]
    fn descend_if_intersecting<S: RangeSink>(
        &self,
        child: NodeId,
        q: &[f64],
        r: f64,
        d_q_parent_pivot: Option<f64>,
        colors: Option<&ColorState>,
        hits: &mut S,
    ) {
        let c = self.node(child);
        let Some(pivot) = c.pivot else {
            // Only the root lacks a pivot, and the root is never a child.
            self.search_subtree(child, q, r, None, colors, hits);
            return;
        };
        if let Some(dq) = d_q_parent_pivot {
            // Parent-distance lemma: d(q, pivot) ≥ |d(q, p) − d(pivot, p)|.
            if (dq - c.dist_to_parent).abs() > r + c.radius {
                return;
            }
        }
        let d = self.dist_q(pivot, q);
        if !S::NEEDS_DIST && self.config().parent_pruning && d + c.radius <= r {
            // Inclusion: the whole child ball lies inside the query ball,
            // so every object below is a hit — enumerate them with zero
            // further distance computations.
            self.collect_subtree(child, d + c.radius, colors, hits);
        } else if d <= r + c.radius {
            self.search_subtree(child, q, r, Some(d), colors, hits);
        }
    }

    /// Deposits every (non-grey-pruned) object of `node`'s subtree into
    /// the sink without computing distances; `bound` is an upper bound on
    /// their distance to the query. Charges the same node accesses the
    /// ordinary search would (every page is still read).
    fn collect_subtree<S: RangeSink>(
        &self,
        node: NodeId,
        bound: f64,
        colors: Option<&ColorState>,
        hits: &mut S,
    ) {
        self.touch();
        match &self.node(node).kind {
            NodeKind::Leaf(entries) => {
                for e in entries {
                    hits.accept(e.object, bound);
                }
            }
            NodeKind::Internal(children) => {
                for &child in children {
                    if let Some(c) = colors {
                        if c.node_is_grey(child) {
                            continue;
                        }
                    }
                    self.collect_subtree(child, bound, colors, hits);
                }
            }
        }
    }

    /// Recursive top-down search of one subtree. `d_q_pivot` is the known
    /// distance from the query to this node's pivot, if any.
    fn search_subtree<S: RangeSink>(
        &self,
        node: NodeId,
        q: &[f64],
        r: f64,
        d_q_pivot: Option<f64>,
        colors: Option<&ColorState>,
        hits: &mut S,
    ) {
        self.touch();
        let lemma_dist = if self.config().parent_pruning {
            d_q_pivot
        } else {
            None
        };
        match &self.node(node).kind {
            NodeKind::Leaf(_) => {
                // Leaf already counted; scan runs on the same page.
                self.scan_leaf_uncounted(node, q, r, lemma_dist, hits);
            }
            NodeKind::Internal(children) => {
                for &child in children {
                    if let Some(c) = colors {
                        if c.node_is_grey(child) {
                            continue;
                        }
                    }
                    self.descend_if_intersecting(child, q, r, lemma_dist, colors, hits);
                }
            }
        }
    }

    /// Scans one leaf without charging an access. `d_q_pivot` (the known
    /// distance from the query to this leaf's pivot) lets the
    /// parent-distance lemma discard entries whose cached pivot distance
    /// proves them outside the ball; the leaf's vantage object provides a
    /// second, independent annulus bound for one extra distance per
    /// scanned leaf. Both filters skip the entry's own distance
    /// computation, never a true hit.
    fn scan_leaf_uncounted<S: RangeSink>(
        &self,
        leaf: NodeId,
        q: &[f64],
        r: f64,
        d_q_pivot: Option<f64>,
        hits: &mut S,
    ) {
        let node = self.node(leaf);
        let entries = node.leaf_entries();
        // The vantage bounds cost one distance each per scanned leaf;
        // they are computed lazily — only once an entry survives the
        // pivot bound — and only for leaves big enough to amortise them.
        let use_vantages = d_q_pivot.is_some() && entries.len() > 4;
        let mut d_q_vantage: Option<f64> = None;
        let mut d_q_vantage2: Option<f64> = None;
        for e in entries {
            if let Some(dq) = d_q_pivot {
                // Exclusion: the entry provably lies outside the ball.
                if (dq - e.dist_to_pivot).abs() > r {
                    continue;
                }
                // Inclusion (object-only collectors): the entry provably
                // lies inside the ball — accept it distance-free.
                if !S::NEEDS_DIST && dq + e.dist_to_pivot <= r {
                    hits.accept(e.object, dq + e.dist_to_pivot);
                    continue;
                }
            }
            if use_vantages {
                if let Some(v) = node.vantage {
                    let dv = *d_q_vantage.get_or_insert_with(|| self.dist_q(v, q));
                    if (dv - e.dist_to_vantage).abs() > r {
                        continue;
                    }
                    if !S::NEEDS_DIST && dv + e.dist_to_vantage <= r {
                        hits.accept(e.object, dv + e.dist_to_vantage);
                        continue;
                    }
                }
                if let Some(v2) = node.vantage2 {
                    let dv2 = *d_q_vantage2.get_or_insert_with(|| self.dist_q(v2, q));
                    if (dv2 - e.dist_to_vantage2).abs() > r {
                        continue;
                    }
                    if !S::NEEDS_DIST && dv2 + e.dist_to_vantage2 <= r {
                        hits.accept(e.object, dv2 + e.dist_to_vantage2);
                        continue;
                    }
                }
            }
            let d = self.dist_q(e.object, q);
            if d <= r {
                hits.accept(e.object, d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{Color, ColorState};
    use crate::tree::MTreeConfig;
    use disc_metric::{neighbors, Dataset, Metric};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn random_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        Dataset::new("random", Metric::Euclidean, pts)
    }

    /// Random data under any of the four metrics; Hamming gets
    /// categorical codes so ties and exact matches actually occur.
    fn random_data_metric(n: usize, seed: u64, metric: Metric) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| {
                if metric == Metric::Hamming {
                    Point::categorical(&[
                        rng.random_range(0..4u32),
                        rng.random_range(0..4u32),
                        rng.random_range(0..4u32),
                        rng.random_range(0..4u32),
                    ])
                } else {
                    Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0))
                }
            })
            .collect();
        Dataset::new("random", metric, pts)
    }

    fn sorted_ids(hits: &[RangeHit]) -> Vec<ObjId> {
        let mut ids: Vec<ObjId> = hits.iter().map(|h| h.object).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let data = random_data(250, 10);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        for center in [0usize, 17, 120, 249] {
            for r in [0.05, 0.1, 0.3] {
                let got = sorted_ids(&tree.range_query_obj(center, r));
                let mut want = neighbors::closed_neighbors(&data, center, r);
                want.sort_unstable();
                assert_eq!(got, want, "center {center} r {r}");
            }
        }
    }

    #[test]
    fn range_query_includes_center_itself() {
        let data = random_data(50, 11);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        let hits = tree.range_query_obj(25, 0.2);
        assert!(hits.iter().any(|h| h.object == 25 && h.dist == 0.0));
    }

    #[test]
    fn bottom_up_equals_top_down() {
        let data = random_data(300, 12);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        for center in [3usize, 99, 250] {
            for r in [0.02, 0.15, 0.5] {
                let td = sorted_ids(&tree.range_query_obj(center, r));
                let bu = sorted_ids(&tree.range_query_bottom_up(center, r, None, false));
                assert_eq!(td, bu, "center {center} r {r}");
            }
        }
    }

    #[test]
    fn queries_charge_node_accesses() {
        let data = random_data(200, 13);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        tree.reset_node_accesses();
        let _ = tree.range_query_obj(0, 0.1);
        let td = tree.reset_node_accesses();
        assert!(td >= 2, "root plus at least one leaf, got {td}");
        let _ = tree.range_query_bottom_up(0, 0.1, None, false);
        let bu = tree.reset_node_accesses();
        assert!(bu >= 2);
    }

    #[test]
    fn queries_charge_distance_computations() {
        let data = random_data(200, 13);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        assert!(tree.distance_computations() > 0, "build computes distances");
        tree.reset_distance_computations();
        let hits = tree.range_query_obj(0, 0.1);
        let dc = tree.reset_distance_computations();
        assert!(
            dc as usize >= hits.len(),
            "every hit needs at least its own distance: {dc} < {}",
            hits.len()
        );
    }

    #[test]
    fn parent_pruning_preserves_results_and_saves_distances() {
        let data = random_data(400, 21);
        let pruned_tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        let plain_tree = MTree::build(
            &data,
            MTreeConfig::with_capacity(6).with_parent_pruning(false),
        );
        // The pivot bound is free; the vantage bounds cost up to two
        // extra distances per scanned leaf, so individual non-selective
        // queries can tie or slightly lose — the sweep total must win.
        let (mut total_with, mut total_without) = (0u64, 0u64);
        for center in [0usize, 57, 200, 399] {
            for r in [0.01, 0.05, 0.2, 0.6] {
                pruned_tree.reset_distance_computations();
                let with = sorted_ids(&pruned_tree.range_query_obj(center, r));
                total_with += pruned_tree.reset_distance_computations();
                plain_tree.reset_distance_computations();
                let without = sorted_ids(&plain_tree.range_query_obj(center, r));
                total_without += plain_tree.reset_distance_computations();
                assert_eq!(with, without, "center {center} r {r}");
            }
        }
        assert!(
            total_with < total_without,
            "pruning must save distances over the sweep: {total_with} vs {total_without}"
        );
    }

    #[test]
    fn object_queries_match_hit_queries() {
        // The object-only collector takes inclusion shortcuts (accepting
        // entries and whole subtrees without computing distances); the
        // returned object sets must be identical to the distance-carrying
        // queries', and the shortcuts must actually save computations.
        let data = random_data(400, 23);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        let colors = ColorState::new(&tree);
        let mut objs: Vec<ObjId> = Vec::new();
        let mut saved = false;
        for center in [0usize, 99, 250, 399] {
            for r in [0.0, 0.05, 0.2, 0.5, 1.5] {
                tree.reset_distance_computations();
                let hits = sorted_ids(&tree.range_query_obj(center, r));
                let hit_dc = tree.reset_distance_computations();
                tree.range_query_objs_into(center, r, &mut objs);
                let obj_dc = tree.reset_distance_computations();
                let mut got = objs.clone();
                got.sort_unstable();
                assert_eq!(got, hits, "top-down center {center} r {r}");
                assert!(obj_dc <= hit_dc, "object query may only be cheaper");
                saved |= obj_dc < hit_dc;

                tree.range_query_objs_pruned_into(center, r, &colors, &mut objs);
                let mut got = objs.clone();
                got.sort_unstable();
                assert_eq!(
                    got,
                    sorted_ids(&tree.range_query_obj_pruned(center, r, &colors)),
                    "pruned center {center} r {r}"
                );

                tree.range_query_objs_bottom_up_into(center, r, None, false, &mut objs);
                let mut got = objs.clone();
                got.sort_unstable();
                assert_eq!(
                    got,
                    sorted_ids(&tree.range_query_bottom_up(center, r, None, false)),
                    "bottom-up center {center} r {r}"
                );
            }
        }
        assert!(saved, "inclusion shortcuts never saved a distance");
    }

    #[test]
    fn scratch_buffer_queries_match_allocating_queries() {
        let data = random_data(300, 22);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(7));
        let colors = ColorState::new(&tree);
        let mut scratch = Vec::new();
        for center in [5usize, 150, 299] {
            for r in [0.05, 0.25] {
                tree.range_query_obj_into(center, r, &mut scratch);
                assert_eq!(scratch, tree.range_query_obj(center, r));
                tree.range_query_obj_pruned_into(center, r, &colors, &mut scratch);
                assert_eq!(scratch, tree.range_query_obj_pruned(center, r, &colors));
                tree.range_query_bottom_up_into(center, r, None, false, &mut scratch);
                assert_eq!(scratch, tree.range_query_bottom_up(center, r, None, false));
            }
        }
    }

    #[test]
    fn pruned_query_skips_grey_subtrees() {
        let data = random_data(400, 14);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        let mut colors = ColorState::new(&tree);
        // Make the left half of the space grey.
        for id in data.ids() {
            if data.point(id).coord(0) < 0.5 {
                colors.set_color(&tree, id, Color::Grey);
            }
        }
        tree.reset_node_accesses();
        let full = tree.range_query_obj(200, 0.4).len();
        let full_cost = tree.reset_node_accesses();
        let pruned = tree.range_query_obj_pruned(200, 0.4, &colors).len();
        let pruned_cost = tree.reset_node_accesses();
        // Pruning may only drop objects that live in all-grey subtrees.
        assert!(pruned <= full);
        assert!(pruned_cost <= full_cost, "{pruned_cost} > {full_cost}");
    }

    #[test]
    fn pruned_query_returns_all_white_objects() {
        let data = random_data(300, 15);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        let mut colors = ColorState::new(&tree);
        let mut rng = StdRng::seed_from_u64(3);
        for id in data.ids() {
            if rng.random_range(0.0..1.0) < 0.6 {
                colors.set_color(&tree, id, Color::Grey);
            }
        }
        for center in [10usize, 150, 299] {
            let r = 0.25;
            let pruned: Vec<ObjId> = tree
                .range_query_obj_pruned(center, r, &colors)
                .iter()
                .map(|h| h.object)
                .collect();
            let mut expected_white: Vec<ObjId> = neighbors::closed_neighbors(&data, center, r)
                .into_iter()
                .filter(|&o| colors.color(o) == Color::White)
                .collect();
            expected_white.retain(|o| !pruned.contains(o));
            assert!(
                expected_white.is_empty(),
                "white neighbours missed by pruned query: {expected_white:?}"
            );
        }
    }

    #[test]
    fn stop_at_grey_never_returns_more_than_full_query() {
        let data = random_data(300, 16);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        let mut colors = ColorState::new(&tree);
        for id in 0..150 {
            colors.set_color(&tree, id, Color::Grey);
        }
        tree.reset_node_accesses();
        let full = tree.range_query_bottom_up(200, 0.3, Some(&colors), false);
        let full_cost = tree.reset_node_accesses();
        let fast = tree.range_query_bottom_up(200, 0.3, Some(&colors), true);
        let fast_cost = tree.reset_node_accesses();
        assert!(fast.len() <= full.len());
        assert!(fast_cost <= full_cost);
    }

    #[test]
    fn point_query_finds_every_object() {
        let data = random_data(150, 17);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        for id in data.ids() {
            let cost = tree.point_query_accesses(id);
            assert!(cost as usize >= tree.height(), "cost below tree height");
        }
    }

    #[test]
    fn point_query_agrees_with_unpruned_tree() {
        let data = random_data(220, 18);
        let pruned = MTree::build(&data, MTreeConfig::with_capacity(5));
        let plain = MTree::build(
            &data,
            MTreeConfig::with_capacity(5).with_parent_pruning(false),
        );
        for id in data.ids() {
            // The lemma can only drop subtrees that cannot contain the
            // point, so the (debug-asserted) search still finds it and
            // never costs more accesses.
            assert!(pruned.point_query_accesses(id) <= plain.point_query_accesses(id));
        }
    }

    const ALL_METRICS: [Metric; 4] = [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Hamming,
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Range queries agree with a linear scan for arbitrary data,
        /// radii and node capacities.
        #[test]
        fn range_query_is_exact(seed in 0u64..1000, r in 0.0..0.6f64, cap in 2usize..12) {
            let data = random_data(120, seed);
            let tree = MTree::build(&data, MTreeConfig::with_capacity(cap));
            let center = (seed as usize) % data.len();
            let got = sorted_ids(&tree.range_query_obj(center, r));
            let mut want = neighbors::closed_neighbors(&data, center, r);
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// Bottom-up and top-down agree for arbitrary parameters.
        #[test]
        fn bottom_up_is_exact(seed in 0u64..1000, r in 0.0..0.6f64, cap in 2usize..12) {
            let data = random_data(100, seed);
            let tree = MTree::build(&data, MTreeConfig::with_capacity(cap));
            let center = (seed as usize) % data.len();
            let td = sorted_ids(&tree.range_query_obj(center, r));
            let bu = sorted_ids(&tree.range_query_bottom_up(center, r, None, false));
            prop_assert_eq!(td, bu);
        }

        /// Every query variant — top-down with and without the
        /// parent-distance lemma, fully-white colour-pruned, and
        /// bottom-up — returns exactly the brute-force linear-scan hit
        /// set, on all four metrics, with radii spanning empty to full
        /// neighbourhoods (`frac` scales the metric's maximum range).
        #[test]
        fn all_variants_match_linear_scan_on_every_metric(
            seed in 0u64..500,
            frac in 0.0..1.05f64,
            cap in 2usize..10,
            metric_idx in 0usize..4,
        ) {
            let metric = ALL_METRICS[metric_idx];
            let data = random_data_metric(90, seed, metric);
            let r = frac * metric.max_range(data.dim());
            let r = if metric.is_discrete() { r.floor() } else { r };
            let lemma = MTree::build(&data, MTreeConfig::with_capacity(cap));
            let plain = MTree::build(
                &data,
                MTreeConfig::with_capacity(cap).with_parent_pruning(false),
            );
            let all_white = ColorState::new(&lemma);
            let center = (seed as usize) % data.len();
            let mut want = neighbors::closed_neighbors(&data, center, r);
            want.sort_unstable();
            prop_assert_eq!(
                &sorted_ids(&lemma.range_query_obj(center, r)), &want,
                "top-down + lemma, {:?}", metric
            );
            prop_assert_eq!(
                &sorted_ids(&plain.range_query_obj(center, r)), &want,
                "top-down no lemma, {:?}", metric
            );
            prop_assert_eq!(
                &sorted_ids(&lemma.range_query_obj_pruned(center, r, &all_white)), &want,
                "colour-pruned (all white), {:?}", metric
            );
            prop_assert_eq!(
                &sorted_ids(&lemma.range_query_bottom_up(center, r, None, false)), &want,
                "bottom-up + lemma, {:?}", metric
            );
            prop_assert_eq!(
                &sorted_ids(&plain.range_query_bottom_up(center, r, None, false)), &want,
                "bottom-up no lemma, {:?}", metric
            );
            let mut objs = lemma.range_query_objs(center, r);
            objs.sort_unstable();
            prop_assert_eq!(&objs, &want, "object-only + lemma, {:?}", metric);
        }
    }
}
