//! Range and point queries over the M-tree, with node-access accounting
//! and the paper's colour-based pruning.
//!
//! * [`MTree::range_query`] — top-down `Q(q, r)`: every object within
//!   distance `r` of `q`.
//! * [`MTree::range_query_pruned`] — same, but skips *grey* subtrees (the
//!   Pruning Rule of Section 5: a subtree with no white objects cannot
//!   contribute anything a colouring pass still needs).
//! * [`MTree::range_query_bottom_up`] — starts at the leaf holding the
//!   query object and climbs towards the root, exploring intersecting
//!   sibling subtrees on the way. With `stop_at_grey`, the climb aborts at
//!   the first grey ancestor — the Fast-C behaviour, which may miss
//!   neighbours in distant leaves (by design).
//! * [`MTree::point_query_accesses`] — exact-match search used by the
//!   fat-factor computation.

use disc_metric::{ObjId, Point};

use crate::color::ColorState;
use crate::node::{NodeId, NodeKind};
use crate::tree::MTree;

/// One range-query result: an object and its distance from the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeHit {
    /// The object found within the query ball.
    pub object: ObjId,
    /// Its distance from the query point.
    pub dist: f64,
}

impl MTree<'_> {
    /// Top-down range query: all objects within distance `r` of `q`,
    /// including the query object itself if it is indexed. Results are in
    /// tree order (deterministic for a given tree).
    pub fn range_query(&self, q: &Point, r: f64) -> Vec<RangeHit> {
        let mut hits = Vec::new();
        self.search_subtree(self.root(), q, r, None, &mut hits);
        hits
    }

    /// Top-down range query around an indexed object.
    pub fn range_query_obj(&self, center: ObjId, r: f64) -> Vec<RangeHit> {
        self.range_query(self.data().point(center), r)
    }

    /// Top-down range query that skips grey subtrees (no white objects).
    /// Objects inside visited leaves are returned regardless of their own
    /// colour; only whole-subtree pruning applies, exactly as in the
    /// paper's Pruning Rule.
    pub fn range_query_pruned(&self, q: &Point, r: f64, colors: &ColorState) -> Vec<RangeHit> {
        let mut hits = Vec::new();
        self.search_subtree(self.root(), q, r, Some(colors), &mut hits);
        hits
    }

    /// Pruned top-down range query around an indexed object.
    pub fn range_query_obj_pruned(
        &self,
        center: ObjId,
        r: f64,
        colors: &ColorState,
    ) -> Vec<RangeHit> {
        self.range_query_pruned(self.data().point(center), r, colors)
    }

    /// Bottom-up range query around the indexed object `center`.
    ///
    /// Starts at the leaf holding `center`, then climbs ancestor by
    /// ancestor, searching every sibling subtree whose ball intersects the
    /// query ball. Visits the same objects as the top-down query.
    ///
    /// * `colors` + grey subtrees are skipped when `colors` is `Some`.
    /// * `stop_at_grey` aborts the climb at the first grey ancestor (the
    ///   Fast-C rule); this can miss neighbours whose leaves are only
    ///   reachable through that ancestor.
    pub fn range_query_bottom_up(
        &self,
        center: ObjId,
        r: f64,
        colors: Option<&ColorState>,
        stop_at_grey: bool,
    ) -> Vec<RangeHit> {
        let q = self.data().point(center);
        let mut hits = Vec::new();
        let leaf = self.leaf_of(center);
        self.touch();
        self.scan_leaf(leaf, q, r, &mut hits);
        let mut prev = leaf;
        let mut cur = self.node(leaf).parent;
        while let Some(p) = cur {
            // The grey mark lives in the in-memory pruning metadata, so
            // (as with grey children in the top-down search) consulting it
            // does not charge a node access.
            if stop_at_grey {
                if let Some(c) = colors {
                    if c.node_is_grey(p) {
                        break;
                    }
                }
            }
            self.touch();
            for &child in self.node(p).children() {
                if child == prev {
                    continue;
                }
                if let Some(c) = colors {
                    if c.node_is_grey(child) {
                        continue;
                    }
                }
                if self.ball_intersects(child, q, r) {
                    self.search_subtree(child, q, r, colors, &mut hits);
                }
            }
            prev = p;
            cur = self.node(p).parent;
        }
        hits
    }

    /// Node accesses needed to locate the indexed object `id` by an
    /// exact-match point query (descends every subtree whose ball contains
    /// the point). Used by the fat-factor computation; the returned count
    /// is also added to the tree's global counter.
    pub fn point_query_accesses(&self, id: ObjId) -> u64 {
        let before = self.node_accesses();
        let q = self.data().point(id);
        let mut stack = vec![self.root()];
        let mut found = false;
        while let Some(node) = stack.pop() {
            self.touch();
            match &self.node(node).kind {
                NodeKind::Leaf(entries) => {
                    if entries.iter().any(|e| e.object == id) {
                        found = true;
                    }
                }
                NodeKind::Internal(children) => {
                    for &child in children {
                        let c = self.node(child);
                        let pivot = c.pivot.expect("children have pivots");
                        if self.data().dist_to(pivot, q) <= c.radius {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        debug_assert!(found, "indexed object must be locatable");
        self.node_accesses() - before
    }

    /// Whether the covering ball of `node` intersects the query ball
    /// `(q, r)`. This reads routing data stored in the parent, so it does
    /// not charge an access for `node` itself.
    #[inline]
    fn ball_intersects(&self, node: NodeId, q: &Point, r: f64) -> bool {
        let n = self.node(node);
        match n.pivot {
            Some(p) => self.data().dist_to(p, q) <= r + n.radius,
            None => true,
        }
    }

    /// Recursive top-down search of one subtree.
    fn search_subtree(
        &self,
        node: NodeId,
        q: &Point,
        r: f64,
        colors: Option<&ColorState>,
        hits: &mut Vec<RangeHit>,
    ) {
        self.touch();
        match &self.node(node).kind {
            NodeKind::Leaf(_) => {
                // Leaf already counted; scan runs on the same page.
                self.scan_leaf_uncounted(node, q, r, hits);
            }
            NodeKind::Internal(children) => {
                for &child in children {
                    if let Some(c) = colors {
                        if c.node_is_grey(child) {
                            continue;
                        }
                    }
                    if self.ball_intersects(child, q, r) {
                        self.search_subtree(child, q, r, colors, hits);
                    }
                }
            }
        }
    }

    /// Scans one leaf, charging an access.
    fn scan_leaf(&self, leaf: NodeId, q: &Point, r: f64, hits: &mut Vec<RangeHit>) {
        self.scan_leaf_uncounted(leaf, q, r, hits);
    }

    fn scan_leaf_uncounted(&self, leaf: NodeId, q: &Point, r: f64, hits: &mut Vec<RangeHit>) {
        for e in self.node(leaf).leaf_entries() {
            let d = self.data().dist_to(e.object, q);
            if d <= r {
                hits.push(RangeHit {
                    object: e.object,
                    dist: d,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{Color, ColorState};
    use crate::tree::MTreeConfig;
    use disc_metric::{neighbors, Dataset, Metric};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn random_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        Dataset::new("random", Metric::Euclidean, pts)
    }

    fn sorted_ids(hits: &[RangeHit]) -> Vec<ObjId> {
        let mut ids: Vec<ObjId> = hits.iter().map(|h| h.object).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let data = random_data(250, 10);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        for center in [0usize, 17, 120, 249] {
            for r in [0.05, 0.1, 0.3] {
                let got = sorted_ids(&tree.range_query_obj(center, r));
                let mut want = neighbors::closed_neighbors(&data, center, r);
                want.sort_unstable();
                assert_eq!(got, want, "center {center} r {r}");
            }
        }
    }

    #[test]
    fn range_query_includes_center_itself() {
        let data = random_data(50, 11);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        let hits = tree.range_query_obj(25, 0.2);
        assert!(hits.iter().any(|h| h.object == 25 && h.dist == 0.0));
    }

    #[test]
    fn bottom_up_equals_top_down() {
        let data = random_data(300, 12);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        for center in [3usize, 99, 250] {
            for r in [0.02, 0.15, 0.5] {
                let td = sorted_ids(&tree.range_query_obj(center, r));
                let bu = sorted_ids(&tree.range_query_bottom_up(center, r, None, false));
                assert_eq!(td, bu, "center {center} r {r}");
            }
        }
    }

    #[test]
    fn queries_charge_node_accesses() {
        let data = random_data(200, 13);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        tree.reset_node_accesses();
        let _ = tree.range_query_obj(0, 0.1);
        let td = tree.reset_node_accesses();
        assert!(td >= 2, "root plus at least one leaf, got {td}");
        let _ = tree.range_query_bottom_up(0, 0.1, None, false);
        let bu = tree.reset_node_accesses();
        assert!(bu >= 2);
    }

    #[test]
    fn pruned_query_skips_grey_subtrees() {
        let data = random_data(400, 14);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        let mut colors = ColorState::new(&tree);
        // Make the left half of the space grey.
        for id in data.ids() {
            if data.point(id).coord(0) < 0.5 {
                colors.set_color(&tree, id, Color::Grey);
            }
        }
        tree.reset_node_accesses();
        let full = tree.range_query_obj(200, 0.4).len();
        let full_cost = tree.reset_node_accesses();
        let pruned = tree
            .range_query_obj_pruned(200, 0.4, &colors)
            .len();
        let pruned_cost = tree.reset_node_accesses();
        // Pruning may only drop objects that live in all-grey subtrees.
        assert!(pruned <= full);
        assert!(pruned_cost <= full_cost, "{pruned_cost} > {full_cost}");
    }

    #[test]
    fn pruned_query_returns_all_white_objects() {
        let data = random_data(300, 15);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        let mut colors = ColorState::new(&tree);
        let mut rng = StdRng::seed_from_u64(3);
        for id in data.ids() {
            if rng.random_range(0.0..1.0) < 0.6 {
                colors.set_color(&tree, id, Color::Grey);
            }
        }
        for center in [10usize, 150, 299] {
            let r = 0.25;
            let pruned: Vec<ObjId> = tree
                .range_query_obj_pruned(center, r, &colors)
                .iter()
                .map(|h| h.object)
                .collect();
            let mut expected_white: Vec<ObjId> = neighbors::closed_neighbors(&data, center, r)
                .into_iter()
                .filter(|&o| colors.color(o) == Color::White)
                .collect();
            expected_white.retain(|o| !pruned.contains(o));
            assert!(
                expected_white.is_empty(),
                "white neighbours missed by pruned query: {expected_white:?}"
            );
        }
    }

    #[test]
    fn stop_at_grey_never_returns_more_than_full_query() {
        let data = random_data(300, 16);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        let mut colors = ColorState::new(&tree);
        for id in 0..150 {
            colors.set_color(&tree, id, Color::Grey);
        }
        tree.reset_node_accesses();
        let full = tree.range_query_bottom_up(200, 0.3, Some(&colors), false);
        let full_cost = tree.reset_node_accesses();
        let fast = tree.range_query_bottom_up(200, 0.3, Some(&colors), true);
        let fast_cost = tree.reset_node_accesses();
        assert!(fast.len() <= full.len());
        assert!(fast_cost <= full_cost);
    }

    #[test]
    fn point_query_finds_every_object() {
        let data = random_data(150, 17);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        for id in data.ids() {
            let cost = tree.point_query_accesses(id);
            assert!(cost as usize >= tree.height(), "cost below tree height");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Range queries agree with a linear scan for arbitrary data,
        /// radii and node capacities.
        #[test]
        fn range_query_is_exact(seed in 0u64..1000, r in 0.0..0.6f64, cap in 2usize..12) {
            let data = random_data(120, seed);
            let tree = MTree::build(&data, MTreeConfig::with_capacity(cap));
            let center = (seed as usize) % data.len();
            let got = sorted_ids(&tree.range_query_obj(center, r));
            let mut want = neighbors::closed_neighbors(&data, center, r);
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// Bottom-up and top-down agree for arbitrary parameters.
        #[test]
        fn bottom_up_is_exact(seed in 0u64..1000, r in 0.0..0.6f64, cap in 2usize..12) {
            let data = random_data(100, seed);
            let tree = MTree::build(&data, MTreeConfig::with_capacity(cap));
            let center = (seed as usize) % data.len();
            let td = sorted_ids(&tree.range_query_obj(center, r));
            let bu = sorted_ids(&tree.range_query_bottom_up(center, r, None, false));
            prop_assert_eq!(td, bu);
        }
    }
}
