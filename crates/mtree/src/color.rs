//! Colour state shared between the DisC heuristics and the M-tree.
//!
//! The paper's algorithms colour objects **white** (unprocessed), **grey**
//! (covered by a selected object), **black** (selected / diverse) and, in
//! the first pass of zooming-out, **red** (previously black, pending
//! re-examination).
//!
//! The Pruning Rule (Section 5) lifts colours to nodes: *"A leaf node that
//! contains no white objects is coloured grey. When all its children become
//! grey, an internal node is coloured grey."* We represent this with a
//! per-node count of white objects in the subtree, maintained
//! incrementally on every colour change — a node is grey exactly when its
//! count reaches zero.

use disc_metric::ObjId;

use crate::node::NodeId;
use crate::tree::MTree;

/// Colour of an object during a DisC computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Color {
    /// Not yet covered by any selected object.
    White,
    /// Covered by a selected object, not itself selected.
    Grey,
    /// Selected into the diverse subset.
    Black,
    /// Previously black; awaiting re-examination during zooming-out.
    Red,
}

/// Object colours plus per-node white counts for the Pruning Rule.
#[derive(Clone, Debug)]
pub struct ColorState {
    colors: Vec<Color>,
    /// Number of white objects in each node's subtree.
    node_white: Vec<u32>,
    /// Total number of white objects.
    total_white: usize,
}

impl ColorState {
    /// All objects start white; node counts reflect subtree sizes.
    pub fn new(tree: &MTree<'_>) -> Self {
        let n = tree.len();
        let mut node_white = vec![0u32; tree.node_count()];
        for id in 0..n {
            let mut node = Some(tree.leaf_of(id));
            while let Some(nid) = node {
                node_white[nid] += 1;
                node = tree.node(nid).parent;
            }
        }
        Self {
            colors: vec![Color::White; n],
            node_white,
            total_white: n,
        }
    }

    /// Current colour of `object`.
    #[inline]
    pub fn color(&self, object: ObjId) -> Color {
        self.colors[object]
    }

    /// Whether `object` is white.
    #[inline]
    pub fn is_white(&self, object: ObjId) -> bool {
        self.colors[object] == Color::White
    }

    /// Number of white objects remaining.
    pub fn white_count(&self) -> usize {
        self.total_white
    }

    /// Whether any white object remains.
    pub fn any_white(&self) -> bool {
        self.total_white > 0
    }

    /// Whether the subtree rooted at `node` holds no white object (the
    /// node is *grey* in the paper's sense).
    #[inline]
    pub fn node_is_grey(&self, node: NodeId) -> bool {
        self.node_white[node] == 0
    }

    /// White objects in the subtree rooted at `node`.
    pub fn node_white_count(&self, node: NodeId) -> u32 {
        self.node_white[node]
    }

    /// Recolours `object`, maintaining the per-node white counts.
    ///
    /// Colour bookkeeping is metadata maintenance on nodes already touched
    /// by the triggering query, so it does not charge node accesses.
    pub fn set_color(&mut self, tree: &MTree<'_>, object: ObjId, new: Color) {
        let old = self.colors[object];
        if old == new {
            return;
        }
        self.colors[object] = new;
        let was_white = old == Color::White;
        let is_white = new == Color::White;
        if was_white != is_white {
            let delta: i64 = if is_white { 1 } else { -1 };
            self.total_white = (self.total_white as i64 + delta) as usize;
            let mut node = Some(tree.leaf_of(object));
            while let Some(nid) = node {
                let c = &mut self.node_white[nid];
                *c = (*c as i64 + delta) as u32;
                node = tree.node(nid).parent;
            }
        }
    }

    /// Ids of all objects with the given colour, in id order.
    pub fn objects_with(&self, color: Color) -> Vec<ObjId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == color)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of objects with the given colour.
    pub fn count(&self, color: Color) -> usize {
        self.colors.iter().filter(|&&c| c == color).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MTreeConfig;
    use disc_metric::{Dataset, Metric, Point};
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn data(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(21);
        Dataset::new(
            "d",
            Metric::Euclidean,
            (0..n)
                .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                .collect(),
        )
    }

    #[test]
    fn starts_all_white() {
        let d = data(60);
        let tree = MTree::build(&d, MTreeConfig::with_capacity(4));
        let colors = ColorState::new(&tree);
        assert_eq!(colors.white_count(), 60);
        assert!(colors.any_white());
        assert!(!colors.node_is_grey(tree.root()));
        assert_eq!(colors.count(Color::White), 60);
        assert_eq!(colors.objects_with(Color::Black), Vec::<ObjId>::new());
    }

    #[test]
    fn recolouring_updates_counts() {
        let d = data(40);
        let tree = MTree::build(&d, MTreeConfig::with_capacity(4));
        let mut colors = ColorState::new(&tree);
        colors.set_color(&tree, 0, Color::Black);
        colors.set_color(&tree, 1, Color::Grey);
        assert_eq!(colors.white_count(), 38);
        assert_eq!(colors.color(0), Color::Black);
        assert_eq!(colors.color(1), Color::Grey);
        // Grey -> Black keeps the white count unchanged.
        colors.set_color(&tree, 1, Color::Black);
        assert_eq!(colors.white_count(), 38);
        // Back to white restores it.
        colors.set_color(&tree, 1, Color::White);
        assert_eq!(colors.white_count(), 39);
    }

    #[test]
    fn same_colour_is_a_no_op() {
        let d = data(10);
        let tree = MTree::build(&d, MTreeConfig::with_capacity(4));
        let mut colors = ColorState::new(&tree);
        colors.set_color(&tree, 5, Color::White);
        assert_eq!(colors.white_count(), 10);
    }

    #[test]
    fn node_becomes_grey_when_subtree_has_no_white() {
        let d = data(80);
        let tree = MTree::build(&d, MTreeConfig::with_capacity(4));
        let mut colors = ColorState::new(&tree);
        // Grey out one whole leaf.
        let leaf = tree.leaf_of(0);
        let members: Vec<ObjId> = tree
            .node(leaf)
            .leaf_entries()
            .iter()
            .map(|e| e.object)
            .collect();
        for &o in &members {
            colors.set_color(&tree, o, Color::Grey);
        }
        assert!(colors.node_is_grey(leaf));
        assert!(!colors.node_is_grey(tree.root()));
        // Greying everything makes the root grey.
        for id in d.ids() {
            colors.set_color(&tree, id, Color::Grey);
        }
        assert!(colors.node_is_grey(tree.root()));
        assert!(!colors.any_white());
    }

    #[test]
    fn node_white_counts_are_consistent_with_leaves() {
        let d = data(100);
        let tree = MTree::build(&d, MTreeConfig::with_capacity(6));
        let mut colors = ColorState::new(&tree);
        let mut rng = StdRng::seed_from_u64(5);
        for id in d.ids() {
            if rng.random_range(0.0..1.0) < 0.5 {
                colors.set_color(&tree, id, Color::Grey);
            }
        }
        // Root count equals the global white count.
        assert_eq!(
            colors.node_white_count(tree.root()) as usize,
            colors.white_count()
        );
        // Each leaf count equals its white members.
        for leaf in tree.leaves() {
            let expect = tree
                .node(leaf)
                .leaf_entries()
                .iter()
                .filter(|e| colors.is_white(e.object))
                .count() as u32;
            assert_eq!(colors.node_white_count(leaf), expect);
        }
    }

    #[test]
    fn red_counts_as_non_white() {
        let d = data(20);
        let tree = MTree::build(&d, MTreeConfig::with_capacity(4));
        let mut colors = ColorState::new(&tree);
        colors.set_color(&tree, 3, Color::Red);
        assert_eq!(colors.white_count(), 19);
        assert_eq!(colors.objects_with(Color::Red), vec![3]);
    }
}
