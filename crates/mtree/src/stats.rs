//! Tree statistics, most importantly the **fat-factor** of
//! Traina et al. used by the paper's Figure 10 experiment:
//!
//! ```text
//! f(T) = (Z - n·h) / n · 1 / (m - h)
//! ```
//!
//! where `Z` is the total number of node accesses required to answer a
//! point query for every indexed object, `n` the number of objects, `h`
//! the height of the tree and `m` its node count. An overlap-free tree
//! answers each point query along a single root-to-leaf path (`Z = n·h`,
//! `f = 0`); the worst tree visits every node for every query (`f = 1`).

use crate::tree::MTree;

/// Summary statistics of a built M-tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeStats {
    /// Number of indexed objects (`n`).
    pub objects: usize,
    /// Number of nodes (`m`).
    pub nodes: usize,
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Tree height in levels (`h`).
    pub height: usize,
    /// Total accesses over point queries for all objects (`Z`).
    pub point_query_accesses: u64,
    /// The fat-factor `f(T) ∈ [0, 1]`.
    pub fat_factor: f64,
    /// Mean leaf fill (entries / capacity).
    pub avg_leaf_fill: f64,
}

impl MTree<'_> {
    /// Computes tree statistics, including the fat-factor. Runs one point
    /// query per object; the access cost of doing so is charged to the
    /// tree's counter (callers typically reset afterwards).
    pub fn stats(&self) -> TreeStats {
        let n = self.len();
        let m = self.node_count();
        let h = self.height();
        let z: u64 = self
            .data()
            .ids()
            .map(|id| self.point_query_accesses(id))
            .sum();
        let denom = n as f64 * (m as f64 - h as f64);
        let fat_factor = if denom > 0.0 {
            ((z as f64 - (n * h) as f64) / denom).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let leaves = self.leaves().count();
        let fill: f64 = self
            .leaves()
            .map(|l| self.node(l).len() as f64 / self.config().capacity as f64)
            .sum::<f64>()
            / leaves.max(1) as f64;
        TreeStats {
            objects: n,
            nodes: m,
            leaves,
            height: h,
            point_query_accesses: z,
            fat_factor,
            avg_leaf_fill: fill,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitPolicy;
    use crate::tree::MTreeConfig;
    use disc_metric::{Dataset, Metric, Point};
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn uniform(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new(
            "u",
            Metric::Euclidean,
            (0..n)
                .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                .collect(),
        )
    }

    #[test]
    fn fat_factor_in_unit_interval() {
        let data = uniform(400, 30);
        for (name, policy) in SplitPolicy::figure10_policies() {
            let tree = MTree::build(
                &data,
                MTreeConfig {
                    capacity: 10,
                    split_policy: policy,
                    seed: 4,
                    ..MTreeConfig::default()
                },
            );
            let s = tree.stats();
            assert!(
                (0.0..=1.0).contains(&s.fat_factor),
                "{name}: fat factor {} out of range",
                s.fat_factor
            );
            assert_eq!(s.objects, 400);
            assert!(s.leaves > 1);
            assert!(s.height >= 2);
            assert!(s.avg_leaf_fill > 0.0 && s.avg_leaf_fill <= 1.0);
        }
    }

    #[test]
    fn min_overlap_beats_random_on_uniform_data() {
        let data = uniform(600, 31);
        let f = |policy| {
            MTree::build(
                &data,
                MTreeConfig {
                    capacity: 10,
                    split_policy: policy,
                    seed: 9,
                    ..MTreeConfig::default()
                },
            )
            .stats()
            .fat_factor
        };
        let min_overlap = f(SplitPolicy::MIN_OVERLAP);
        let random = f(SplitPolicy::RANDOM);
        assert!(
            min_overlap < random,
            "expected MinOverlap ({min_overlap:.3}) < Random ({random:.3})"
        );
    }

    #[test]
    fn single_leaf_tree_has_zero_fat_factor() {
        let data = uniform(10, 32);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(50));
        let s = tree.stats();
        assert_eq!(s.nodes, 1);
        assert_eq!(s.fat_factor, 0.0);
        assert_eq!(s.point_query_accesses, 10);
    }
}
