//! Exact minimum independent dominating set by branch and bound.
//!
//! The problem is NP-hard (Garey & Johnson; hard even on unit-disk graphs,
//! Clark et al.), so this solver targets the small instances used by tests
//! to validate the heuristics' approximation behaviour (Theorem 1 and
//! Theorem 2 of the paper). It enumerates maximal independent sets with a
//! standard scheme: repeatedly pick the lowest-id uncovered vertex `v` and
//! branch on every non-blocked dominator in `N⁺[v]` — `v` itself is always
//! a candidate, so no branch dead-ends — pruning with a covering lower
//! bound.

use disc_metric::ObjId;

use crate::graph::UnitDiskGraph;
use crate::reference::greedy_disc_ref;
use crate::sets::is_independent_dominating;

/// Computes a minimum independent dominating set of `g` (equivalently, a
/// minimum r-DisC diverse subset of the underlying objects).
///
/// Runtime is exponential in the worst case; keep instances small
/// (≲ 60 vertices at moderate densities).
pub fn minimum_independent_dominating_set(g: &UnitDiskGraph) -> Vec<ObjId> {
    if g.is_empty() {
        return Vec::new();
    }
    // Seed the bound with the deterministic greedy solution.
    let mut best = greedy_disc_ref(g);
    debug_assert!(is_independent_dominating(g, &best));

    let mut state = State {
        g,
        chosen: Vec::new(),
        // cover_count[v]: how many chosen vertices dominate v.
        cover_count: vec![0u32; g.len()],
        // block_count[v]: how many chosen vertices are adjacent to v
        // (v cannot be chosen while > 0).
        block_count: vec![0u32; g.len()],
        uncovered: g.len(),
        best_len: best.len(),
        best: &mut best,
    };
    state.search();
    best
}

struct State<'a> {
    g: &'a UnitDiskGraph,
    chosen: Vec<ObjId>,
    cover_count: Vec<u32>,
    block_count: Vec<u32>,
    uncovered: usize,
    best_len: usize,
    best: &'a mut Vec<ObjId>,
}

impl State<'_> {
    fn search(&mut self) {
        if self.uncovered == 0 {
            if self.chosen.len() < self.best_len {
                self.best_len = self.chosen.len();
                *self.best = self.chosen.clone();
                self.best.sort_unstable();
            }
            return;
        }
        // Lower bound: each further chosen vertex covers at most Δ+1
        // uncovered vertices.
        let max_cover = self.g.max_degree() + 1;
        let lb = self.chosen.len() + self.uncovered.div_ceil(max_cover);
        if lb >= self.best_len {
            return;
        }
        // Branch on the lowest-id uncovered vertex.
        let v = match (0..self.g.len()).find(|&u| self.cover_count[u] == 0) {
            Some(u) => u,
            None => unreachable!("uncovered > 0 implies an uncovered vertex"),
        };
        // Candidates: v and its neighbours, skipping blocked ones. v itself
        // is never blocked (otherwise it would be covered).
        let mut candidates: Vec<ObjId> = Vec::with_capacity(self.g.degree(v) + 1);
        candidates.push(v);
        candidates.extend(
            self.g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| self.block_count[u] == 0),
        );
        for u in candidates {
            self.choose(u);
            self.search();
            self.unchoose(u);
        }
    }

    fn choose(&mut self, u: ObjId) {
        self.chosen.push(u);
        if self.cover_count[u] == 0 {
            self.uncovered -= 1;
        }
        self.cover_count[u] += 1;
        for &w in self.g.neighbors(u) {
            if self.cover_count[w] == 0 {
                self.uncovered -= 1;
            }
            self.cover_count[w] += 1;
            self.block_count[w] += 1;
        }
    }

    fn unchoose(&mut self, u: ObjId) {
        let popped = self.chosen.pop();
        debug_assert_eq!(popped, Some(u));
        self.cover_count[u] -= 1;
        if self.cover_count[u] == 0 {
            self.uncovered += 1;
        }
        for &w in self.g.neighbors(u) {
            self.cover_count[w] -= 1;
            if self.cover_count[w] == 0 {
                self.uncovered += 1;
            }
            self.block_count[w] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::{is_independent, is_independent_dominating};
    use disc_metric::{Dataset, Metric, Point};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn hexagon() -> Dataset {
        let pts: Vec<Point> = (0..6)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / 6.0;
                Point::new2(a.cos(), a.sin())
            })
            .collect();
        Dataset::new("hexagon", Metric::Euclidean, pts)
    }

    #[test]
    fn hexagon_minimum_is_two() {
        let data = hexagon();
        let g = UnitDiskGraph::build(&data, 1.01);
        let s = minimum_independent_dominating_set(&g);
        assert_eq!(s.len(), 2, "opposite vertices dominate a 6-cycle: {s:?}");
        assert!(is_independent_dominating(&g, &s));
    }

    #[test]
    fn path_graph_minimum() {
        // A path of 7 vertices spaced 1 apart: minimum IDS has size 3
        // (e.g. {1, 4, 6}).
        let data = Dataset::new(
            "path7",
            Metric::Euclidean,
            (0..7).map(|i| Point::new2(i as f64, 0.0)).collect(),
        );
        let g = UnitDiskGraph::build(&data, 1.0);
        let s = minimum_independent_dominating_set(&g);
        assert_eq!(s.len(), 3, "{s:?}");
        assert!(is_independent_dominating(&g, &s));
    }

    #[test]
    fn complete_graph_minimum_is_one() {
        let data = hexagon();
        let g = UnitDiskGraph::build(&data, 10.0);
        let s = minimum_independent_dominating_set(&g);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_graph_needs_every_vertex() {
        let data = hexagon();
        let g = UnitDiskGraph::build(&data, 0.0);
        let s = minimum_independent_dominating_set(&g);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn figure4_star_example() {
        // The paper's Figure 4: minimum dominating set of size 2 exists
        // but the minimum INDEPENDENT dominating set has size 3. Build the
        // depicted graph: v2 adjacent to v1, v3, v5; v5 adjacent to v4,
        // v6, v2 — a "double star" whose centres are adjacent.
        // Realise it geometrically on a line with two hubs.
        //   v1(0)  v2(1)  v3(2): hub v2 at x=1
        //   v4(3)  v5(4)  v6(5): hub v5 at x=2.0
        // Coordinates: v1=(0.2,0), v2=(1,0), v3=(1.2,0.9),
        //              v5=(2.0,0), v4=(2.8,0.3), v6=(2.2,-0.9)
        let data = Dataset::new(
            "figure4",
            Metric::Euclidean,
            vec![
                Point::new2(0.2, 0.0),  // v1
                Point::new2(1.0, 0.0),  // v2
                Point::new2(1.2, 0.9),  // v3
                Point::new2(2.8, 0.3),  // v4
                Point::new2(2.0, 0.0),  // v5
                Point::new2(2.2, -0.9), // v6
            ],
        );
        let g = UnitDiskGraph::build(&data, 1.0);
        // Check the intended topology: {v2, v5} dominates everything.
        assert!(crate::sets::is_dominating(&g, &[1, 4]));
        assert!(
            g.adjacent(1, 4),
            "hubs are adjacent, so {{v2,v5}} is not independent"
        );
        let s = minimum_independent_dominating_set(&g);
        assert_eq!(s.len(), 3, "paper's example needs 3: {s:?}");
        assert!(is_independent_dominating(&g, &s));
    }

    #[test]
    fn exact_never_larger_than_greedy() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let pts = (0..24)
                .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                .collect();
            let data = Dataset::new("rnd", Metric::Euclidean, pts);
            let g = UnitDiskGraph::build(&data, 0.25);
            let exact = minimum_independent_dominating_set(&g);
            let greedy = greedy_disc_ref(&g);
            assert!(exact.len() <= greedy.len());
            assert!(is_independent_dominating(&g, &exact));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        /// The exact solution is a valid independent dominating set and is
        /// minimal among a sample of random maximal independent sets.
        #[test]
        fn exact_solution_valid_and_minimum(seed in 0u64..5_000, r in 0.1..0.5f64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts = (0..18)
                .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                .collect();
            let data = Dataset::new("prop", Metric::Euclidean, pts);
            let g = UnitDiskGraph::build(&data, r);
            let exact = minimum_independent_dominating_set(&g);
            prop_assert!(is_independent_dominating(&g, &exact));
            prop_assert!(is_independent(&g, &exact));

            // Build random maximal independent sets; none may be smaller.
            for s in 0..20u64 {
                let mut order: Vec<usize> = (0..g.len()).collect();
                // Cheap deterministic shuffle.
                let mut rr = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(s));
                for i in (1..order.len()).rev() {
                    let j = rr.random_range(0..=i);
                    order.swap(i, j);
                }
                let mis = crate::reference::basic_disc_ref(&g, &order);
                prop_assert!(mis.len() >= exact.len());
            }
        }
    }
}
