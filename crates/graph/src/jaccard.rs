//! Jaccard distance between solutions.
//!
//! The zooming experiments (Figures 13 and 16) compare an adapted solution
//! `S^{r'}` against the previously shown solution `S^r` via
//! `J(A, B) = 1 − |A ∩ B| / |A ∪ B|`: the smaller the distance, the more
//! of the already-seen result the user keeps after zooming.

use std::collections::HashSet;

use disc_metric::ObjId;

/// Jaccard distance between two object sets. Both empty → 0.
pub fn jaccard_distance(a: &[ObjId], b: &[ObjId]) -> f64 {
    let sa: HashSet<ObjId> = a.iter().copied().collect();
    let sb: HashSet<ObjId> = b.iter().copied().collect();
    let union = sa.union(&sb).count();
    if union == 0 {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    1.0 - inter as f64 / union as f64
}

/// Jaccard *similarity* (`1 − distance`), for callers that report overlap.
pub fn jaccard_similarity(a: &[ObjId], b: &[ObjId]) -> f64 {
    1.0 - jaccard_distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_sets_have_zero_distance() {
        assert_eq!(jaccard_distance(&[1, 2, 3], &[3, 2, 1]), 0.0);
    }

    #[test]
    fn disjoint_sets_have_distance_one() {
        assert_eq!(jaccard_distance(&[1, 2], &[3, 4]), 1.0);
    }

    #[test]
    fn both_empty_is_zero() {
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
    }

    #[test]
    fn half_overlap() {
        // |A ∩ B| = 1, |A ∪ B| = 3.
        let d = jaccard_distance(&[1, 2], &[2, 3]);
        assert!((d - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_are_ignored() {
        assert_eq!(jaccard_distance(&[1, 1, 2], &[2, 1]), 0.0);
    }

    #[test]
    fn similarity_complements_distance() {
        let (a, b) = ([1, 2, 3, 4], [3, 4, 5]);
        assert!((jaccard_similarity(&a, &b) + jaccard_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn distance_is_a_metric_on_sets(
            a in prop::collection::hash_set(0usize..40, 0..20),
            b in prop::collection::hash_set(0usize..40, 0..20),
            c in prop::collection::hash_set(0usize..40, 0..20),
        ) {
            let av: Vec<usize> = a.iter().copied().collect();
            let bv: Vec<usize> = b.iter().copied().collect();
            let cv: Vec<usize> = c.iter().copied().collect();
            let dab = jaccard_distance(&av, &bv);
            let dba = jaccard_distance(&bv, &av);
            let dac = jaccard_distance(&av, &cv);
            let dcb = jaccard_distance(&cv, &bv);
            prop_assert!((0.0..=1.0).contains(&dab));
            prop_assert!((dab - dba).abs() < 1e-12);
            prop_assert_eq!(jaccard_distance(&av, &av), 0.0);
            // The Jaccard distance satisfies the triangle inequality.
            prop_assert!(dab <= dac + dcb + 1e-9);
        }
    }
}
