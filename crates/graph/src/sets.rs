//! The two conditions of Definition 1 as graph predicates.
//!
//! * *dissimilarity* ⇔ **independence**: no two selected vertices are
//!   adjacent;
//! * *coverage* ⇔ **dominance**: every vertex is selected or adjacent to a
//!   selected vertex.
//!
//! Lemma 1 (an independent set is maximal iff it is dominating) and
//! Observation 2 connect these to maximal independent sets; the unit tests
//! exercise both directions on the paper's Figure 4 example.

use disc_metric::ObjId;

use crate::graph::UnitDiskGraph;

/// Whether `set` is an independent set of `g` (the dissimilarity condition:
/// all pairs more than `r` apart).
pub fn is_independent(g: &UnitDiskGraph, set: &[ObjId]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if u == v || g.adjacent(u, v) {
                return false;
            }
        }
    }
    true
}

/// Whether `set` is a dominating set of `g` (the coverage condition: every
/// object has a selected object in its closed neighbourhood).
pub fn is_dominating(g: &UnitDiskGraph, set: &[ObjId]) -> bool {
    let mut selected = vec![false; g.len()];
    for &s in set {
        selected[s] = true;
    }
    g.vertices()
        .all(|v| selected[v] || g.neighbors(v).iter().any(|&u| selected[u]))
}

/// Whether `set` is an independent dominating set — i.e. an r-DisC diverse
/// subset of the underlying objects (Observation 1).
pub fn is_independent_dominating(g: &UnitDiskGraph, set: &[ObjId]) -> bool {
    is_independent(g, set) && is_dominating(g, set)
}

/// Whether an independent `set` is *maximal*: adding any other vertex
/// breaks independence. By Lemma 1 this is equivalent to
/// [`is_independent_dominating`] for independent sets; both are provided so
/// tests can check the equivalence.
pub fn is_maximal_independent(g: &UnitDiskGraph, set: &[ObjId]) -> bool {
    if !is_independent(g, set) {
        return false;
    }
    let mut selected = vec![false; g.len()];
    for &s in set {
        selected[s] = true;
    }
    // Every non-member must conflict with some member.
    g.vertices()
        .filter(|&v| !selected[v])
        .all(|v| g.neighbors(v).iter().any(|&u| selected[u]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::{Dataset, Metric, Point};

    /// The Figure 4 graph of the paper: a 6-cycle v1..v6 (ids 0..5) where
    /// {v2, v5} = {1, 4} is a minimum dominating set (not independent is
    /// false here — in a 6-cycle {1,4} IS independent; the paper's figure
    /// has chords). We replicate the paper's structure: a hexagon with
    /// centre distances tuned so v2 and v5 each cover their two ring
    /// neighbours, and v2–v5 are NOT adjacent, but {v2,v5} leaves v1..v6
    /// covered while the minimum INDEPENDENT dominating set needs 3
    /// vertices {v2, v4, v6}.
    fn figure4() -> (Dataset, UnitDiskGraph) {
        // A 6-cycle: consecutive vertices at distance 1, all others
        // farther.
        let pts: Vec<Point> = (0..6)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / 6.0;
                Point::new2(a.cos(), a.sin())
            })
            .collect();
        let data = Dataset::new("figure4", Metric::Euclidean, pts);
        let g = UnitDiskGraph::build(&data, 1.01);
        (data, g)
    }

    #[test]
    fn cycle_adjacency() {
        let (_, g) = figure4();
        for v in 0..6 {
            assert_eq!(g.degree(v), 2, "vertex {v}");
            assert!(g.adjacent(v, (v + 1) % 6));
        }
    }

    #[test]
    fn independence_predicate() {
        let (_, g) = figure4();
        assert!(is_independent(&g, &[0, 2, 4]));
        assert!(is_independent(&g, &[1, 3, 5]));
        assert!(!is_independent(&g, &[0, 1]));
        assert!(is_independent(&g, &[]));
        assert!(is_independent(&g, &[3]));
        // Duplicate members are rejected.
        assert!(!is_independent(&g, &[2, 2]));
    }

    #[test]
    fn domination_predicate() {
        let (_, g) = figure4();
        assert!(is_dominating(&g, &[0, 2, 4]));
        assert!(is_dominating(&g, &[0, 3])); // opposite corners dominate a 6-cycle
        assert!(!is_dominating(&g, &[0]));
        assert!(!is_dominating(&g, &[]));
    }

    #[test]
    fn observation3_dominating_set_smaller_than_independent_dominating() {
        // A star with spokes: centre 0 plus leaves; plus one far vertex
        // pair. Simplest demonstration: path v1-v2-v3-v4-v5-v6 as in the
        // paper's Figure 4 text: minimum dominating {v2, v5} has size 2,
        // minimum independent dominating {v2, v4, v6} has size 3... on a
        // 6-path {1, 4} is independent AND dominating, so use the paper's
        // actual 6-cycle-with-chords shape instead: wheel-like. Here we
        // verify the general predicate behaviour on the hexagon: {0, 3}
        // dominates and is independent, {0, 1} neither.
        let (_, g) = figure4();
        assert!(is_independent_dominating(&g, &[0, 3]));
        assert!(!is_independent_dominating(&g, &[0, 1]));
    }

    #[test]
    fn lemma1_maximal_iff_dominating() {
        let (_, g) = figure4();
        // Exhaustively enumerate independent sets and check the
        // equivalence of Lemma 1.
        for mask in 0u32..(1 << 6) {
            let set: Vec<usize> = (0..6).filter(|&v| mask & (1 << v) != 0).collect();
            if !is_independent(&g, &set) {
                continue;
            }
            assert_eq!(
                is_maximal_independent(&g, &set),
                is_dominating(&g, &set),
                "Lemma 1 violated for {set:?}"
            );
        }
    }
}
