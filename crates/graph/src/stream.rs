//! Streaming catalog: a dataset and its stratified graph mutating in
//! lock-step under inserts and deletes, with external-id bookkeeping.
//!
//! The build pipeline is batch — index the dataset, self-join once at
//! `r_max`, persist — and before this module any catalog churn meant a
//! full rebuild. [`StreamingCatalog`] keeps the pair live:
//!
//! * **insert** — one counted range scan over the current points finds
//!   the new point's `r_max`-neighborhood (every distance charged to
//!   [`StreamingCatalog::distance_computations`], exactly `n` per
//!   insert), then [`StratifiedDiskGraph::insert_object`] splices the
//!   neighborhood into the `(distance, id)`-sorted CSR rows and
//!   [`disc_metric::Dataset::push_point_external`] appends the
//!   coordinates. The new object takes the next never-used external id.
//! * **delete** — addressed by *external* id; the internal id space
//!   compacts (later ids shift down by one) and the external id joins
//!   the tombstone set, never to be reused.
//!
//! The scan is the same neighborhood one M-tree range query at `r_max`
//! returns (pinned by a test against [`disc_mtree::MTree::range_query`]);
//! it is run index-free because an `MTree` borrows its dataset, and a
//! catalog that owns a mutating dataset cannot also hold a long-lived
//! borrow of it. At `n` distances per insert the scan is still a ~10×
//! win over a rebuild, whose self-join must re-derive *every* edge.
//!
//! External ids are the stable names: solutions, snapshots and the serve
//! wire format all speak them, so a catalog that has churned still
//! produces answers comparable with one built from scratch on the same
//! surviving objects.

use disc_metric::{Dataset, DatasetError, ObjId};

use crate::error::GraphError;
use crate::stratified::StratifiedDiskGraph;

/// Why a streaming catalog refused construction or a mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamError {
    /// The graph layer rejected the mutation.
    Graph(GraphError),
    /// The dataset layer rejected the mutation.
    Dataset(DatasetError),
    /// A delete addressed an external id that is not live (tombstoned
    /// or never assigned).
    UnknownExternalId {
        /// The unmapped external id.
        id: ObjId,
    },
    /// Dataset and graph disagree on object count or id numbering.
    Inconsistent {
        /// What disagreed.
        what: &'static str,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Graph(e) => write!(f, "graph: {e}"),
            Self::Dataset(e) => write!(f, "dataset: {e}"),
            Self::UnknownExternalId { id } => {
                write!(
                    f,
                    "external id {id} is not live (tombstoned or never assigned)"
                )
            }
            Self::Inconsistent { what } => {
                write!(f, "dataset and graph disagree on {what}")
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Graph(e) => Some(e),
            Self::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for StreamError {
    fn from(e: GraphError) -> Self {
        Self::Graph(e)
    }
}

impl From<DatasetError> for StreamError {
    fn from(e: DatasetError) -> Self {
        Self::Dataset(e)
    }
}

/// What an insert did: the new object's ids and its `r_max`-neighborhood
/// in **external** ids (stable across later mutations), sorted by
/// `(distance, external id)`.
#[derive(Clone, Debug, PartialEq)]
pub struct InsertReceipt {
    /// Internal id assigned (always the current largest).
    pub internal: ObjId,
    /// External id assigned (the catalog's next never-used id).
    pub external: ObjId,
    /// `(external id, exact distance)` of every pre-existing object
    /// within `r_max` of the new point.
    pub neighbors: Vec<(ObjId, f64)>,
}

/// What a delete did: the removed object's external id and the
/// `r_max`-neighborhood it left behind, in **external** ids.
#[derive(Clone, Debug, PartialEq)]
pub struct RemoveReceipt {
    /// External id removed (now a tombstone).
    pub external: ObjId,
    /// `(external id, exact distance)` of every surviving object that
    /// was within `r_max` of the removed one.
    pub neighbors: Vec<(ObjId, f64)>,
}

/// A dataset and its stratified graph kept consistent under streaming
/// inserts and deletes. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct StreamingCatalog {
    data: Dataset,
    graph: StratifiedDiskGraph,
    /// The next external id an insert will assign; strictly above every
    /// id ever used, so external ids are never recycled.
    next_external: ObjId,
    /// External ids that were deleted, sorted ascending. Disjoint from
    /// the live set, all below `next_external`.
    tombstones: Vec<ObjId>,
    /// Exact count of distance computations performed by this catalog's
    /// insert scans (the build's own distances are charged to the
    /// M-tree counter, as ever).
    distance_computations: u64,
}

impl StreamingCatalog {
    /// Wraps a freshly built pair. The tombstone set starts as the holes
    /// in the external numbering (none for a batch build, whose ids are
    /// dense), and `next_external` one past the largest id in use.
    pub fn try_new(data: Dataset, graph: StratifiedDiskGraph) -> Result<Self, StreamError> {
        let (next_external, tombstones) = match data.permutation() {
            Some(p) => {
                let next = p.max_external() + 1;
                let holes = (0..next).filter(|&e| !p.contains_external(e)).collect();
                (next, holes)
            }
            None => (data.len(), Vec::new()),
        };
        Self::from_parts(data, graph, next_external, tombstones)
    }

    /// Reassembles a catalog from persisted parts (the snapshot v3 load
    /// path), re-validating the streaming invariants fail-closed:
    /// dataset and graph agree on count and numbering, every live
    /// external id is below `next_external`, and the tombstones are
    /// sorted, unique, below `next_external` and disjoint from the live
    /// set.
    pub fn from_parts(
        data: Dataset,
        graph: StratifiedDiskGraph,
        next_external: ObjId,
        tombstones: Vec<ObjId>,
    ) -> Result<Self, StreamError> {
        if data.len() != graph.len() {
            return Err(StreamError::Inconsistent {
                what: "object count",
            });
        }
        let perms_agree = match (data.permutation(), graph.permutation()) {
            (None, None) => true,
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        if !perms_agree {
            return Err(StreamError::Inconsistent {
                what: "id numbering",
            });
        }
        let max_live = match data.permutation() {
            Some(p) => p.max_external(),
            None => data.len() - 1,
        };
        if next_external <= max_live {
            return Err(StreamError::Inconsistent {
                what: "next external id (live ids reach past it)",
            });
        }
        let mut live_and_dead = 0usize;
        for (k, &t) in tombstones.iter().enumerate() {
            if k > 0 && tombstones[k - 1] >= t {
                return Err(StreamError::Inconsistent {
                    what: "tombstone order (must be strictly ascending)",
                });
            }
            if t >= next_external {
                return Err(StreamError::Inconsistent {
                    what: "tombstone range (at or past next external id)",
                });
            }
            let live = match data.permutation() {
                Some(p) => p.contains_external(t),
                None => t < data.len(),
            };
            if live {
                return Err(StreamError::Inconsistent {
                    what: "tombstone liveness (a live id is tombstoned)",
                });
            }
            live_and_dead += 1;
        }
        // Every id below next_external is live or tombstoned — no id is
        // silently unaccounted for.
        if data.len() + live_and_dead != next_external {
            return Err(StreamError::Inconsistent {
                what: "id accounting (live + tombstoned != assigned)",
            });
        }
        Ok(Self {
            data,
            graph,
            next_external,
            tombstones,
            distance_computations: 0,
        })
    }

    /// Inserts one point, assigning it the next never-used external id.
    /// Exactly `len()` distance computations (the neighborhood scan; see
    /// the [module docs](self) for why it is index-free).
    pub fn insert(&mut self, coords: &[f64]) -> Result<InsertReceipt, StreamError> {
        if coords.len() != self.data.dim() {
            return Err(StreamError::Dataset(DatasetError::MixedDim {
                id: self.data.len(),
                expected: self.data.dim(),
                found: coords.len(),
            }));
        }
        if let Some((d, &value)) = coords.iter().enumerate().find(|(_, c)| !c.is_finite()) {
            return Err(StreamError::Dataset(DatasetError::NonFinite {
                id: self.data.len(),
                dim: d,
                value,
            }));
        }
        let n = self.data.len();
        let r_max = self.graph.radius();
        let mut neighbors = Vec::new();
        for i in 0..n {
            let d = self.data.dist_to_coords(i, coords);
            if d <= r_max {
                neighbors.push((i, d));
            }
        }
        self.distance_computations += n as u64;
        let external = self.next_external;
        let internal = self.graph.insert_object(external, &neighbors)?;
        match self.data.push_point_external(coords, external) {
            Ok(i) => debug_assert_eq!(i, internal),
            // The graph accepted the same external id and the coords
            // were validated above.
            Err(_) => unreachable!("dataset push cannot fail after graph insert"),
        }
        self.next_external += 1;
        let mut ext_neighbors: Vec<(ObjId, f64)> = neighbors
            .into_iter()
            .map(|(i, d)| (self.data.external_id(i), d))
            .collect();
        ext_neighbors.sort_unstable_by_key(|&(id, d)| (d.to_bits(), id));
        Ok(InsertReceipt {
            internal,
            external,
            neighbors: ext_neighbors,
        })
    }

    /// Deletes the object with external id `external`, tombstoning the
    /// id. Zero distance computations. The receipt lists the surviving
    /// `r_max`-neighborhood the object left behind.
    pub fn remove_external(&mut self, external: ObjId) -> Result<RemoveReceipt, StreamError> {
        let internal = self
            .internal_of(external)
            .ok_or(StreamError::UnknownExternalId { id: external })?;
        let neighbors: Vec<(ObjId, f64)> = self
            .graph
            .neighbors(internal)
            .iter()
            .zip(self.graph.dists(internal))
            .map(|(&u, &d)| (self.graph.external_id(u), d))
            .collect();
        let removed = self.graph.remove_object(internal)?;
        debug_assert_eq!(removed, external);
        match self.data.remove_point(internal) {
            Ok(e) => debug_assert_eq!(e, external),
            // The graph removal just succeeded on the same id space.
            Err(_) => unreachable!("dataset removal cannot fail after graph removal"),
        }
        let at = self.tombstones.partition_point(|&t| t < external);
        self.tombstones.insert(at, external);
        Ok(RemoveReceipt {
            external,
            neighbors,
        })
    }

    /// The current points (internal numbering, permutation attached).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The current stratified graph over [`StreamingCatalog::data`].
    pub fn graph(&self) -> &StratifiedDiskGraph {
        &self.graph
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the catalog holds no objects (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The build radius `r_max` of the underlying graph.
    pub fn r_max(&self) -> f64 {
        self.graph.radius()
    }

    /// The external id the next insert will assign.
    pub fn next_external(&self) -> ObjId {
        self.next_external
    }

    /// Deleted external ids, sorted ascending.
    pub fn tombstones(&self) -> &[ObjId] {
        &self.tombstones
    }

    /// Exact count of distances computed by this catalog's insert scans.
    pub fn distance_computations(&self) -> u64 {
        self.distance_computations
    }

    /// Internal id of a live external id, or `None` when tombstoned or
    /// never assigned.
    pub fn internal_of(&self, external: ObjId) -> Option<ObjId> {
        match self.data.permutation() {
            Some(p) => p.internal_checked(external),
            None => (external < self.data.len()).then_some(external),
        }
    }

    /// External id of internal object `internal`.
    pub fn external_of(&self, internal: ObjId) -> ObjId {
        self.data.external_id(internal)
    }

    /// The live external ids in internal order.
    pub fn live_externals(&self) -> Vec<ObjId> {
        (0..self.data.len())
            .map(|i| self.data.external_id(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::{Metric, Point};
    use disc_mtree::{MTree, MTreeConfig};
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn random_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        Dataset::new("stream", Metric::Euclidean, pts)
    }

    fn catalog(n: usize, seed: u64, r_max: f64) -> StreamingCatalog {
        let data = random_data(n, seed);
        let graph = StratifiedDiskGraph::build(&data, r_max);
        StreamingCatalog::try_new(data, graph).expect("fresh pair is consistent")
    }

    #[test]
    fn insert_scan_matches_one_mtree_range_query() {
        // The catalog's index-free neighborhood scan returns exactly the
        // hit set of one M-tree range query at r_max — the framing the
        // streaming design is specified in.
        let r_max = 0.3;
        let mut cat = catalog(200, 80, r_max);
        let mut rng = StdRng::seed_from_u64(81);
        for _ in 0..5 {
            let q = Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            let tree_data = cat.data().clone();
            let tree = MTree::build(&tree_data, MTreeConfig::default());
            let mut hits: Vec<(ObjId, f64)> = tree
                .range_query(&q, r_max)
                .into_iter()
                .map(|h| (tree_data.external_id(h.object), h.dist))
                .collect();
            hits.sort_unstable_by_key(|&(id, d)| (d.to_bits(), id));
            let receipt = cat.insert(q.coords()).expect("insert succeeds");
            assert_eq!(receipt.neighbors, hits);
        }
    }

    #[test]
    fn interleaved_mutations_equal_a_from_scratch_catalog() {
        let r_max = 0.35;
        let mut cat = catalog(60, 82, r_max);
        let mut rng = StdRng::seed_from_u64(83);
        let mut scans = 0u64;
        for _ in 0..50 {
            if rng.random_range(0..3) == 0 && cat.len() > 1 {
                let live = cat.live_externals();
                let target = live[rng.random_range(0..live.len())];
                let receipt = cat.remove_external(target).expect("live id");
                assert_eq!(receipt.external, target);
            } else {
                scans += cat.len() as u64;
                let q = [rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)];
                cat.insert(&q).expect("insert succeeds");
            }
        }
        assert_eq!(cat.distance_computations(), scans, "exact accounting");
        // The mutated graph equals a from-scratch build on the surviving
        // points.
        let fresh = StratifiedDiskGraph::build(cat.data(), r_max);
        assert_eq!(cat.graph().offsets(), fresh.offsets());
        assert_eq!(cat.graph().neighbors_flat(), fresh.neighbors_flat());
        assert_eq!(cat.graph().dists_flat(), fresh.dists_flat());
        // Id accounting: live + tombstoned covers exactly the assigned
        // prefix of the external id space.
        assert_eq!(
            cat.len() + cat.tombstones().len(),
            cat.next_external(),
            "no id unaccounted for"
        );
        // The parts round-trip through the snapshot-style constructor.
        let rebuilt = StreamingCatalog::from_parts(
            cat.data().clone(),
            cat.graph().clone(),
            cat.next_external(),
            cat.tombstones().to_vec(),
        )
        .expect("parts re-validate");
        assert_eq!(rebuilt.live_externals(), cat.live_externals());
    }

    #[test]
    fn tombstoned_ids_are_never_reused() {
        let mut cat = catalog(10, 84, 0.5);
        cat.remove_external(9).expect("live id");
        let receipt = cat.insert(&[0.5, 0.5]).expect("insert succeeds");
        assert_eq!(receipt.external, 10, "id 9 is retired, not recycled");
        assert_eq!(
            cat.remove_external(9).unwrap_err(),
            StreamError::UnknownExternalId { id: 9 }
        );
        assert_eq!(cat.tombstones(), &[9]);
    }

    #[test]
    fn from_parts_rejects_inconsistent_state() {
        let cat = catalog(10, 85, 0.5);
        let data = cat.data().clone();
        let graph = cat.graph().clone();
        // Tombstone colliding with a live id.
        assert!(matches!(
            StreamingCatalog::from_parts(data.clone(), graph.clone(), 11, vec![3]),
            Err(StreamError::Inconsistent { .. })
        ));
        // next_external not covering the live ids.
        assert!(matches!(
            StreamingCatalog::from_parts(data.clone(), graph.clone(), 5, vec![]),
            Err(StreamError::Inconsistent { .. })
        ));
        // Unaccounted id below next_external.
        assert!(matches!(
            StreamingCatalog::from_parts(data.clone(), graph.clone(), 12, vec![10]),
            Err(StreamError::Inconsistent { .. })
        ));
        // Unsorted tombstones.
        assert!(matches!(
            StreamingCatalog::from_parts(data.clone(), graph.clone(), 13, vec![11, 10]),
            Err(StreamError::Inconsistent { .. })
        ));
        // The consistent shape is accepted.
        assert!(StreamingCatalog::from_parts(data, graph, 12, vec![10, 11]).is_ok());
    }
}
