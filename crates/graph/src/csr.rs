//! Shared CSR assembly: the serial and sharded counting sorts behind
//! both [`crate::UnitDiskGraph`] (plain id rows) and
//! [`crate::StratifiedDiskGraph`] (distance-annotated rows).
//!
//! Two row layouts share the determinism-critical shard-range,
//! degree-count and prefix-sum logic ([`degree_offsets`],
//! [`shard_plan`]):
//!
//! * **plain rows** ([`assemble`] / [`assemble_sharded`], generic over
//!   [`RowEntry`]) — the entry is the opposite endpoint id, rows sort
//!   by id;
//! * **distance rows** ([`assemble_dist`] / [`assemble_dist_sharded`])
//!   — each directed entry is written straight into the two *final*
//!   aligned arrays (`dists`, `neighbors`), never materialising an
//!   intermediate `(f64, id)` array-of-structs (the former split pass
//!   was a fifth of the stratified assembly's wall clock); rows sort by
//!   `(distance, id)`.
//!
//! Determinism contract: the per-row order must be **total** (rows
//! never repeat an id, so the id — after the payload key, if any —
//! suffices). Offsets are pure degree counts and every row is sorted by
//! that total order, so the assembled arrays are a pure function of the
//! edge *set* — serial and sharded assembly are byte-identical for
//! every shard count (pinned by the graph tests and the workspace
//! concurrency tier).
//!
//! ## Radix-sorted distance rows
//!
//! The `(distance, id)` rows are sorted by an MSD **radix sort on the
//! order-preserving bit image of the f64** rather than a comparison
//! sort: `to_bits`, with the sign bit flipped for non-negatives and all
//! bits flipped for negatives, maps the `f64::total_cmp` order
//! (−NaN < … < −0.0 < +0.0 < … < +NaN) onto plain `u64` order, so the
//! composite integer `(key, id)` sorts in *exactly* the
//! `(total_cmp(dist), id)` order the previous comparison sort produced
//! — no float comparator anywhere. The sort is engineered around the
//! row value distribution: an OR/AND scan finds the **highest byte that
//! actually varies** (on a narrow build radius the sign/exponent bytes
//! are constant and the low mantissa bytes almost never decide an
//! order), one counting pass partitions on it, and buckets recurse
//! until they are small enough for a branch-light integer sort. Unit
//! tests pin order-identity against the comparison sort on duplicate
//! distances, ±0.0, subnormals and all-equal rows.
//!
//! In the sharded assembly the row sort runs as its own parallel phase
//! after the fill ([`sort_dist_rows_sharded`]): rows are cut into
//! contiguous ranges balanced by entry count (not by the fill's vertex
//! ranges), so sort work distributes evenly even when degrees are
//! skewed. Per-row sorts are independent, so the phase split changes no
//! byte of output.

use disc_metric::cancel::{CancelToken, Cancelled};
use disc_metric::ObjId;

/// Work items between cancellation checkpoints in the assembly loops:
/// one relaxed atomic load per this many edges/rows keeps the poll cost
/// unmeasurable while bounding post-cancel latency to microseconds.
const CANCEL_CHUNK: usize = 4_096;

/// Raw distance-annotated CSR arrays: `(offsets, dists, neighbors)`.
pub(crate) type DistCsr = (Vec<usize>, Vec<f64>, Vec<ObjId>);

/// A directed row entry derived from an undirected edge.
pub(crate) trait RowEntry: Copy + Default + Send + Sync {
    /// The undirected input edge type.
    type Edge: Copy + Send + Sync;
    /// Endpoints of an edge.
    fn ends(e: &Self::Edge) -> (ObjId, ObjId);
    /// The entry stored in one endpoint's row; `other` is the opposite
    /// endpoint.
    fn entry(e: &Self::Edge, other: ObjId) -> Self;
    /// Total order of entries within a row (see the module docs).
    fn cmp_row(a: &Self, b: &Self) -> std::cmp::Ordering;
}

/// Plain adjacency rows: the entry is the opposite endpoint, rows are
/// sorted by id.
impl RowEntry for ObjId {
    type Edge = (ObjId, ObjId);

    #[inline]
    fn ends(e: &Self::Edge) -> (ObjId, ObjId) {
        (e.0, e.1)
    }

    #[inline]
    fn entry(_e: &Self::Edge, other: ObjId) -> Self {
        other
    }

    #[inline]
    fn cmp_row(a: &Self, b: &Self) -> std::cmp::Ordering {
        a.cmp(b)
    }
}

/// A distance-annotated undirected edge, as the self-join emits it.
pub(crate) type DistEdge = (ObjId, ObjId, f64);

/// Degree counts turned into the `n + 1` CSR row boundaries — the one
/// offsets definition every assembly path shares.
fn degree_offsets<E>(n: usize, edges: &[E], ends: impl Fn(&E) -> (ObjId, ObjId)) -> Vec<usize> {
    let mut offsets = vec![0usize; n + 1];
    for e in edges {
        let (i, j) = ends(e);
        debug_assert!(i != j, "self-loop ({i}, {j})");
        offsets[i + 1] += 1;
        offsets[j + 1] += 1;
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    offsets
}

/// The sharding plan every parallel assembly path shares: resolves the
/// shard count (`0` = one per core, honouring the serial fallback for
/// small inputs by returning `None`), buckets edges by owning shard
/// (input order preserved; an edge crossing two shards lands in both
/// buckets) and fixes the vertex ranges.
struct ShardPlan<E> {
    shards: usize,
    span: usize,
    buckets: Vec<Vec<E>>,
}

impl<E: Copy> ShardPlan<E> {
    fn new(
        n: usize,
        edges: &[E],
        shards: usize,
        ends: impl Fn(&E) -> (ObjId, ObjId),
    ) -> Option<Self> {
        let shards = if shards == 0 {
            // Below this size the serial assembly beats spawn + join.
            const MIN_PARALLEL_EDGES: usize = 4_096;
            let auto = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            if auto <= 1 || edges.len() < MIN_PARALLEL_EDGES {
                return None;
            }
            auto
        } else {
            shards
        };
        let shards = shards.clamp(1, n.max(1));
        // Vertex ranges: shard s owns [s * span, min((s + 1) * span, n)).
        let span = n.div_ceil(shards).max(1);
        let mut buckets: Vec<Vec<E>> = vec![Vec::new(); shards];
        for e in edges {
            let (i, j) = ends(e);
            debug_assert!(i != j, "self-loop ({i}, {j})");
            let si = (i / span).min(shards - 1);
            let sj = (j / span).min(shards - 1);
            buckets[si].push(*e);
            if sj != si {
                buckets[sj].push(*e);
            }
        }
        Some(Self {
            shards,
            span,
            buckets,
        })
    }

    fn range(&self, s: usize, n: usize) -> std::ops::Range<usize> {
        (s * self.span).min(n)..((s + 1) * self.span).min(n)
    }

    /// Phase 1 of every sharded assembly: per-shard degree counts with
    /// a local exclusive prefix sum, combined into the global offsets
    /// array (identical to [`degree_offsets`]' output).
    fn offsets(
        &self,
        n: usize,
        ends: impl Fn(&E) -> (ObjId, ObjId) + Sync + Send + Copy,
    ) -> Vec<usize>
    where
        E: Send + Sync,
    {
        let locals: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards)
                .map(|s| {
                    let r = self.range(s, n);
                    let bucket = &self.buckets[s];
                    scope.spawn(move || {
                        let mut counts = vec![0usize; r.len() + 1];
                        for e in bucket {
                            let (i, j) = ends(e);
                            if r.contains(&i) {
                                counts[i - r.start + 1] += 1;
                            }
                            if r.contains(&j) {
                                counts[j - r.start + 1] += 1;
                            }
                        }
                        for k in 0..r.len() {
                            counts[k + 1] += counts[k];
                        }
                        counts
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(counts) => counts,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut offsets = vec![0usize; n + 1];
        let mut base = 0usize;
        for (s, local) in locals.iter().enumerate() {
            let r = self.range(s, n);
            for (k, v) in r.clone().enumerate() {
                offsets[v] = base + local[k];
            }
            base += local[r.len()];
        }
        offsets[n] = base;
        offsets
    }
}

/// Serial counting-sort assembly for plain rows: degree counts, prefix
/// sum, fill, per-row sort. Returns `(offsets, entries)` with `n + 1`
/// offsets.
pub(crate) fn assemble<T: RowEntry>(n: usize, edges: &[T::Edge]) -> (Vec<usize>, Vec<T>) {
    let offsets = degree_offsets(n, edges, T::ends);
    let mut entries = vec![T::default(); offsets[n]];
    let mut cursor = offsets.clone();
    for e in edges {
        let (i, j) = T::ends(e);
        entries[cursor[i]] = T::entry(e, j);
        cursor[i] += 1;
        entries[cursor[j]] = T::entry(e, i);
        cursor[j] += 1;
    }
    for v in 0..n {
        sort_row::<T>(&mut entries[offsets[v]..offsets[v + 1]], v);
    }
    (offsets, entries)
}

/// [`assemble`] as a parallel counting sort over `std::thread::scope`
/// workers: shards own contiguous vertex ranges, count degrees and
/// prefix-sum locally, then fill and sort disjoint slices of the entry
/// array. Byte-identical output to [`assemble`] for every shard count.
///
/// `shards == 0` picks one shard per available core and falls back to
/// the serial assembly when that is 1 or the input is small; an
/// explicit shard count is honoured exactly (the concurrency tests
/// force 1, 2, 3 and 8).
pub(crate) fn assemble_sharded<T: RowEntry>(
    n: usize,
    edges: &[T::Edge],
    shards: usize,
) -> (Vec<usize>, Vec<T>) {
    let Some(plan) = ShardPlan::new(n, edges, shards, T::ends) else {
        return assemble(n, edges);
    };
    let offsets = plan.offsets(n, T::ends);

    // Phase 2: each shard fills and sorts its disjoint slice of the
    // entry array (slices handed out via split_at_mut).
    let mut entries = vec![T::default(); offsets[n]];
    std::thread::scope(|scope| {
        let offsets = &offsets;
        let mut rest: &mut [T] = &mut entries;
        for (s, bucket) in plan.buckets.iter().enumerate() {
            let r = plan.range(s, n);
            let shard_len = offsets[r.end] - offsets[r.start];
            let (mine, tail) = rest.split_at_mut(shard_len);
            rest = tail;
            scope.spawn(move || {
                let shard_base = offsets[r.start];
                let mut cursor: Vec<usize> =
                    offsets[r.clone()].iter().map(|&o| o - shard_base).collect();
                for e in bucket {
                    let (i, j) = T::ends(e);
                    if r.contains(&i) {
                        mine[cursor[i - r.start]] = T::entry(e, j);
                        cursor[i - r.start] += 1;
                    }
                    if r.contains(&j) {
                        mine[cursor[j - r.start]] = T::entry(e, i);
                        cursor[j - r.start] += 1;
                    }
                }
                for v in r.clone() {
                    sort_row::<T>(
                        &mut mine[offsets[v] - shard_base..offsets[v + 1] - shard_base],
                        v,
                    );
                }
            });
        }
    });
    (offsets, entries)
}

/// Sorts one plain row by the entry total order and (debug) rejects
/// duplicate edges, which would surface as adjacent equal entries.
fn sort_row<T: RowEntry>(row: &mut [T], v: ObjId) {
    row.sort_unstable_by(T::cmp_row);
    debug_assert!(
        row.windows(2)
            .all(|w| T::cmp_row(&w[0], &w[1]) != std::cmp::Ordering::Equal),
        "duplicate edge incident to vertex {v}"
    );
}

// ---------------------------------------------------------------------
// Distance-annotated rows
// ---------------------------------------------------------------------

/// Serial assembly of distance-annotated rows, straight into the two
/// aligned output arrays: returns `(offsets, dists, neighbors)` with
/// each row sorted by `(total_cmp(dist), id)`.
pub(crate) fn assemble_dist(n: usize, edges: &[DistEdge]) -> (Vec<usize>, Vec<f64>, Vec<ObjId>) {
    let Ok(out) = assemble_dist_serial_core(n, edges, None) else {
        unreachable!("cancellation is impossible without a token")
    };
    out
}

/// [`assemble_dist`] with cooperative cancellation: the fill and sort
/// loops poll the token every [`CANCEL_CHUNK`] work items. On
/// `Err(Cancelled)` the partially assembled arrays are dropped — no
/// partial CSR escapes.
fn assemble_dist_serial_core(
    n: usize,
    edges: &[DistEdge],
    cancel: Option<&CancelToken>,
) -> Result<DistCsr, Cancelled> {
    if let Some(c) = cancel {
        c.checkpoint()?;
    }
    let offsets = degree_offsets(n, edges, |e| (e.0, e.1));
    let total = offsets[n];
    let mut dists = vec![0.0f64; total];
    let mut neighbors = vec![0 as ObjId; total];
    let mut cursor = offsets.clone();
    for (t, &(i, j, d)) in edges.iter().enumerate() {
        if t % CANCEL_CHUNK == 0 {
            if let Some(c) = cancel {
                c.checkpoint()?;
            }
        }
        let ci = cursor[i];
        dists[ci] = d;
        neighbors[ci] = j;
        cursor[i] = ci + 1;
        let cj = cursor[j];
        dists[cj] = d;
        neighbors[cj] = i;
        cursor[j] = cj + 1;
    }
    let mut scratch = DistSortScratch::default();
    for v in 0..n {
        if v % CANCEL_CHUNK == 0 {
            if let Some(c) = cancel {
                c.checkpoint()?;
            }
        }
        let row = offsets[v]..offsets[v + 1];
        sort_dist_row(
            &mut dists[row.clone()],
            &mut neighbors[row],
            &mut scratch,
            v,
        );
    }
    Ok((offsets, dists, neighbors))
}

/// [`assemble_dist`] as a parallel counting sort: same shard plan as
/// [`assemble_sharded`], filling and sorting disjoint slices of *both*
/// output arrays. Byte-identical to the serial assembly for every shard
/// count.
pub(crate) fn assemble_dist_sharded(
    n: usize,
    edges: &[DistEdge],
    shards: usize,
) -> (Vec<usize>, Vec<f64>, Vec<ObjId>) {
    let Ok(out) = assemble_dist_checked(n, edges, shards, None) else {
        unreachable!("cancellation is impossible without a token")
    };
    out
}

/// The cancellable assembly entry point behind
/// [`crate::StratifiedDiskGraph`]'s checked builders: sharded (or
/// serial, per the shard plan) distance-row assembly that polls the
/// token every [`CANCEL_CHUNK`] work items per worker. On
/// `Err(Cancelled)` every partially filled slice is dropped with the
/// arrays — callers never observe a partial CSR.
pub(crate) fn assemble_dist_checked(
    n: usize,
    edges: &[DistEdge],
    shards: usize,
    cancel: Option<&CancelToken>,
) -> Result<DistCsr, Cancelled> {
    let ends = |e: &DistEdge| (e.0, e.1);
    let Some(plan) = ShardPlan::new(n, edges, shards, ends) else {
        return assemble_dist_serial_core(n, edges, cancel);
    };
    if let Some(c) = cancel {
        c.checkpoint()?;
    }
    let offsets = plan.offsets(n, ends);

    let total = offsets[n];
    let mut dists = vec![0.0f64; total];
    let mut neighbors = vec![0 as ObjId; total];
    let aborted = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let offsets = &offsets;
        let aborted = &aborted;
        let mut rest_d: &mut [f64] = &mut dists;
        let mut rest_n: &mut [ObjId] = &mut neighbors;
        for (s, bucket) in plan.buckets.iter().enumerate() {
            let r = plan.range(s, n);
            let shard_len = offsets[r.end] - offsets[r.start];
            let (mine_d, tail_d) = rest_d.split_at_mut(shard_len);
            rest_d = tail_d;
            let (mine_n, tail_n) = rest_n.split_at_mut(shard_len);
            rest_n = tail_n;
            scope.spawn(move || {
                let shard_base = offsets[r.start];
                let mut cursor: Vec<usize> =
                    offsets[r.clone()].iter().map(|&o| o - shard_base).collect();
                for (t, &(i, j, d)) in bucket.iter().enumerate() {
                    if t % CANCEL_CHUNK == 0 {
                        if let Some(c) = cancel {
                            if c.checkpoint().is_err() {
                                aborted.store(true, std::sync::atomic::Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                    if r.contains(&i) {
                        let c = cursor[i - r.start];
                        mine_d[c] = d;
                        mine_n[c] = j;
                        cursor[i - r.start] = c + 1;
                    }
                    if r.contains(&j) {
                        let c = cursor[j - r.start];
                        mine_d[c] = d;
                        mine_n[c] = i;
                        cursor[j - r.start] = c + 1;
                    }
                }
            });
        }
    });
    if aborted.load(std::sync::atomic::Ordering::Relaxed) {
        return Err(Cancelled);
    }
    sort_dist_rows_sharded(&offsets, &mut dists, &mut neighbors, plan.shards, cancel)?;
    Ok((offsets, dists, neighbors))
}

/// Multi-source distance-row assembly for the sharded build: assembles
/// one CSR from several per-task edge slices (intra-shard self-joins
/// plus boundary cross-joins) **without concatenating them** — the
/// degree count and fill walk the slices in place, then the row sort
/// runs as the same entry-balanced parallel phase the single-source
/// assembly uses.
///
/// Because offsets are pure degree counts and every row is sorted by
/// the total `(dist_order_key, id)` order, the output is byte-identical
/// to [`assemble_dist`] over any concatenation of the slices — and
/// therefore to the unsharded build whenever the slices union to the
/// same edge set. `workers == 0` sizes the sort phase to the available
/// cores.
///
/// On `Err(Cancelled)` the partially assembled arrays are dropped — no
/// partial CSR escapes.
pub(crate) fn assemble_dist_multi_checked(
    n: usize,
    slices: &[&[DistEdge]],
    workers: usize,
    cancel: Option<&CancelToken>,
) -> Result<(DistCsr, AssemblyTimings), Cancelled> {
    if let Some(c) = cancel {
        c.checkpoint()?;
    }
    let merge_start = std::time::Instant::now();
    let mut offsets = vec![0usize; n + 1];
    for slice in slices {
        for &(i, j, _) in *slice {
            debug_assert!(i != j, "self-loop ({i}, {j})");
            offsets[i + 1] += 1;
            offsets[j + 1] += 1;
        }
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    let total = offsets[n];
    let mut dists = vec![0.0f64; total];
    let mut neighbors = vec![0 as ObjId; total];
    let mut cursor = offsets.clone();
    for slice in slices {
        for (t, &(i, j, d)) in slice.iter().enumerate() {
            if t % CANCEL_CHUNK == 0 {
                if let Some(c) = cancel {
                    c.checkpoint()?;
                }
            }
            let ci = cursor[i];
            dists[ci] = d;
            neighbors[ci] = j;
            cursor[i] = ci + 1;
            let cj = cursor[j];
            dists[cj] = d;
            neighbors[cj] = i;
            cursor[j] = cj + 1;
        }
    }
    let workers = if workers == 0 {
        if total < 4_096 {
            1
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    } else {
        workers
    };
    let merge = merge_start.elapsed();
    let sort_start = std::time::Instant::now();
    sort_dist_rows_sharded(&offsets, &mut dists, &mut neighbors, workers.max(1), cancel)?;
    let timings = AssemblyTimings {
        merge,
        sort: sort_start.elapsed(),
    };
    Ok(((offsets, dists, neighbors), timings))
}

/// Wall-clock split of the multi-source assembly: the degree-count +
/// fill merge walk vs the parallel row-sort phase.
pub(crate) struct AssemblyTimings {
    pub merge: std::time::Duration,
    pub sort: std::time::Duration,
}

/// The sort half of the sharded distance-row assembly, decoupled from
/// the fill: rows are partitioned into contiguous ranges balanced by
/// **entry count** (one binary search on `offsets` per cut) rather than
/// inheriting the fill's vertex-range shards, so a worker owning a few
/// heavy rows sorts as much data as one owning many light rows. Each
/// worker sorts a disjoint slice of both arrays with its own scratch;
/// per-row sorts are independent, so the output is byte-identical to
/// sorting serially (and to the former fused fill-and-sort).
fn sort_dist_rows_sharded(
    offsets: &[usize],
    dists: &mut [f64],
    neighbors: &mut [ObjId],
    workers: usize,
    cancel: Option<&CancelToken>,
) -> Result<(), Cancelled> {
    let n = offsets.len() - 1;
    let total = offsets[n];
    // Row cut before each worker's even share of the entries; cuts are
    // row indices, non-decreasing, so ranges partition 0..n exactly.
    let mut cuts = Vec::with_capacity(workers + 1);
    cuts.push(0usize);
    for w in 1..workers {
        let target = total * w / workers;
        cuts.push(offsets.partition_point(|&o| o < target).min(n));
    }
    cuts.push(n);

    let aborted = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let aborted = &aborted;
        let mut rest_d: &mut [f64] = dists;
        let mut rest_n: &mut [ObjId] = neighbors;
        for w in 0..workers {
            let (lo, hi) = (cuts[w], cuts[w + 1]);
            let len = offsets[hi] - offsets[lo];
            let (mine_d, tail_d) = rest_d.split_at_mut(len);
            rest_d = tail_d;
            let (mine_n, tail_n) = rest_n.split_at_mut(len);
            rest_n = tail_n;
            scope.spawn(move || {
                let base = offsets[lo];
                let mut scratch = DistSortScratch::default();
                for (t, v) in (lo..hi).enumerate() {
                    if t % CANCEL_CHUNK == 0 {
                        if let Some(c) = cancel {
                            if c.checkpoint().is_err() {
                                aborted.store(true, std::sync::atomic::Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                    let row = offsets[v] - base..offsets[v + 1] - base;
                    sort_dist_row(&mut mine_d[row.clone()], &mut mine_n[row], &mut scratch, v);
                }
            });
        }
    });
    if aborted.load(std::sync::atomic::Ordering::Relaxed) {
        return Err(Cancelled);
    }
    Ok(())
}

/// Reusable scatter buffers for [`sort_dist_row`], one per assembly
/// worker, reused across the rows it sorts.
#[derive(Default)]
struct DistSortScratch {
    spare_d: Vec<f64>,
    spare_i: Vec<ObjId>,
}

/// Maps an `f64` onto a `u64` whose unsigned order equals
/// [`f64::total_cmp`]'s: flip the sign bit of non-negatives, all bits
/// of negatives.
#[inline]
pub(crate) fn dist_order_key(d: f64) -> u64 {
    let b = d.to_bits();
    b ^ (((b as i64 >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Partitions at or below this length sort by insertion on the bit
/// image — the counting pass only pays off on larger slices. Either
/// path produces the identical `(total_cmp(dist), id)` order.
const RADIX_MIN: usize = 48;

/// Sorts one `(distance, id)` row — stored as two aligned slices —
/// into `(total_cmp(dist), id)` order via [`msd_radix`]. Debug builds
/// reject duplicate edges, which would surface as equal (key, id)
/// pairs.
fn sort_dist_row(ds: &mut [f64], ids: &mut [ObjId], scratch: &mut DistSortScratch, v: ObjId) {
    debug_assert_eq!(ds.len(), ids.len());
    let n = ds.len();
    if n < 2 {
        return;
    }
    if n <= RADIX_MIN {
        insertion(ds, ids);
    } else {
        let DistSortScratch { spare_d, spare_i } = scratch;
        spare_d.resize(n.max(spare_d.len()), 0.0);
        spare_i.resize(n.max(spare_i.len()), 0);
        msd_radix(ds, ids, &mut spare_d[..n], &mut spare_i[..n]);
    }
    let _ = v;
    debug_assert!(
        ds.windows(2)
            .zip(ids.windows(2))
            .all(|(d, i)| (dist_order_key(d[0]), i[0]) < (dist_order_key(d[1]), i[1])),
        "duplicate edge incident to vertex {v}"
    );
}

/// Insertion sort of the aligned row slices under the
/// `(dist_order_key, id)` order — the leaf sort of the MSD partitions.
/// Buckets average a handful of elements, so a branch-light inline loop
/// beats any dispatchy alternative at this size (the key recompute is
/// three ALU ops).
#[inline]
fn insertion(ds: &mut [f64], ids: &mut [ObjId]) {
    for i in 1..ds.len() {
        let (d, id) = (ds[i], ids[i]);
        let key = (dist_order_key(d), id);
        let mut j = i;
        while j > 0 && (dist_order_key(ds[j - 1]), ids[j - 1]) > key {
            ds[j] = ds[j - 1];
            ids[j] = ids[j - 1];
            j -= 1;
        }
        ds[j] = d;
        ids[j] = id;
    }
}

/// In-place MSD radix sort of the aligned `(dist, id)` row slices under
/// the composite `(dist_order_key, id)` order. An OR/AND scan finds the
/// highest byte that varies across the slice (constant prefixes — the
/// sign/exponent bytes of a narrow build radius, the high id bytes of
/// any realistic graph — cost nothing), one counting pass partitions
/// both arrays on it through the spare slices, and each bucket recurses
/// until the insertion cutoff. Stability is irrelevant: `(key, id)`
/// pairs are unique (rows never repeat an id).
fn msd_radix(ds: &mut [f64], ids: &mut [ObjId], sd: &mut [f64], si: &mut [ObjId]) {
    let n = ds.len();
    if n <= RADIX_MIN {
        insertion(ds, ids);
        return;
    }
    let (mut or_k, mut and_k) = (0u64, !0u64);
    let (mut or_i, mut and_i) = (0usize, !0usize);
    for t in 0..n {
        let k = dist_order_key(ds[t]);
        or_k |= k;
        and_k &= k;
        or_i |= ids[t];
        and_i &= ids[t];
    }
    let (vary_k, vary_i) = (or_k ^ and_k, (or_i ^ and_i) as u64);
    let (use_key, shift) = if vary_k != 0 {
        (true, 8 * ((63 - vary_k.leading_zeros() as usize) / 8))
    } else if vary_i != 0 {
        (false, 8 * ((63 - vary_i.leading_zeros() as usize) / 8))
    } else {
        return; // fully identical pairs — unreachable for valid rows
    };

    let mut hist = [0u32; 256];
    if use_key {
        for t in 0..n {
            hist[((dist_order_key(ds[t]) >> shift) & 0xFF) as usize] += 1;
        }
    } else {
        for t in 0..n {
            hist[((ids[t] as u64 >> shift) & 0xFF) as usize] += 1;
        }
    }
    let mut offs = [0u32; 256];
    let mut sum = 0u32;
    for (o, &c) in offs.iter_mut().zip(hist.iter()) {
        *o = sum;
        sum += c;
    }

    // Scatter both arrays through the spares, copy back, recurse per
    // bucket (the spares slice along with the buckets, so recursion
    // needs no extra allocation).
    let mut cur = offs;
    for t in 0..n {
        let digit = if use_key {
            (dist_order_key(ds[t]) >> shift) & 0xFF
        } else {
            (ids[t] as u64 >> shift) & 0xFF
        } as usize;
        let slot = cur[digit] as usize;
        cur[digit] += 1;
        sd[slot] = ds[t];
        si[slot] = ids[t];
    }
    ds.copy_from_slice(sd);
    ids.copy_from_slice(si);

    for d in 0..256 {
        let lo = offs[d] as usize;
        let hi = lo + hist[d] as usize;
        if hi - lo > 1 {
            msd_radix(
                &mut ds[lo..hi],
                &mut ids[lo..hi],
                &mut sd[lo..hi],
                &mut si[lo..hi],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The previous comparison sort, kept as the order reference the
    /// radix sort must reproduce exactly.
    fn reference_sort(mut row: Vec<(f64, ObjId)>) -> Vec<(f64, ObjId)> {
        row.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        row
    }

    /// The production row sort, driven through the split-array layout.
    fn radix(row: &[(f64, ObjId)]) -> Vec<(f64, ObjId)> {
        let mut ds: Vec<f64> = row.iter().map(|e| e.0).collect();
        let mut ids: Vec<ObjId> = row.iter().map(|e| e.1).collect();
        let mut scratch = DistSortScratch::default();
        sort_dist_row(&mut ds, &mut ids, &mut scratch, 0);
        ds.into_iter().zip(ids).collect()
    }

    fn assert_order_identical(row: Vec<(f64, ObjId)>) {
        let want = reference_sort(row.clone());
        let got = radix(&row);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0.to_bits(), w.0.to_bits(), "distance bits diverged");
            assert_eq!(g.1, w.1, "id order diverged");
        }
        // Long variant: replicate the row past the comparison cutoff
        // (fresh ids keep the (dist, id) pairs unique) so the radix
        // path itself is exercised.
        if row.len() <= RADIX_MIN && !row.is_empty() {
            let long: Vec<(f64, ObjId)> = (0..=RADIX_MIN)
                .flat_map(|rep| row.iter().map(move |&(d, id)| (d, id + rep * 1_000_003)))
                .collect();
            let want = reference_sort(long.clone());
            let got = radix(&long);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0.to_bits(), w.0.to_bits());
                assert_eq!(g.1, w.1);
            }
        }
    }

    #[test]
    fn key_mapping_matches_total_cmp() {
        let values = [
            f64::NEG_INFINITY,
            -1.0e300,
            -1.0,
            -5e-324,
            -0.0,
            0.0,
            5e-324,
            f64::MIN_POSITIVE,
            0.5,
            1.0,
            1.0e300,
            f64::INFINITY,
        ];
        for (i, &a) in values.iter().enumerate() {
            assert_eq!(
                dist_order_key(a),
                dist_order_key(a),
                "key is a pure function"
            );
            for &b in &values[i + 1..] {
                assert!(
                    dist_order_key(a) < dist_order_key(b),
                    "key order broke total_cmp for {a} < {b}"
                );
            }
        }
        // NaNs too: total_cmp puts +NaN above +inf, -NaN below -inf.
        assert!(dist_order_key(f64::NAN) > dist_order_key(f64::INFINITY));
        assert!(dist_order_key(-f64::NAN) < dist_order_key(f64::NEG_INFINITY));
        // The key is injective on bit patterns (XOR with a
        // sign-derived mask), so distinct bits — e.g. ±0.0 — keep
        // distinct, ordered keys.
        assert!(dist_order_key(-0.0) < dist_order_key(0.0));
    }

    #[test]
    fn radix_order_on_duplicate_distances() {
        // Many ties: ids must break them exactly as the comparison
        // sort's `.then(id.cmp)` did.
        let row: Vec<(f64, ObjId)> = (0..200)
            .map(|i| ((i % 5) as f64 * 0.125, (997 * i + 13) % 1000))
            .collect();
        assert_order_identical(row);
    }

    #[test]
    fn radix_order_on_signed_zeros_and_subnormals() {
        let row = vec![
            (0.0, 3),
            (-0.0, 7),
            (5e-324, 1),
            (-5e-324, 2),
            (f64::MIN_POSITIVE, 0),
            (0.0, 1),
            (-0.0, 0),
            (2.2250738585072014e-308, 9),
        ];
        assert_order_identical(row);
    }

    #[test]
    fn radix_order_on_all_equal_rows() {
        // One distance value for the whole row: no key byte varies, so
        // the id bytes carry the entire order.
        let mut seen = std::collections::HashSet::new();
        let row: Vec<(f64, ObjId)> = (0..150usize)
            .map(|i| (0.25, (i.wrapping_mul(2_654_435_761) >> 7) % 100_000))
            .filter(|&(_, id)| seen.insert(id))
            .collect();
        assert!(row.len() > RADIX_MIN);
        assert_order_identical(row);
    }

    #[test]
    fn radix_order_on_random_mixed_rows() {
        // Long mixed-magnitude rows (normal, subnormal, huge, ±0) hit
        // deep recursion and every digit position across seeds.
        for seed in 0..8u64 {
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let row: Vec<(f64, ObjId)> = (0..300)
                .map(|i| {
                    let v = match next() % 5 {
                        0 => (next() % 1_000_000) as f64 * 1e-9,
                        1 => f64::from_bits(next() % 0x10_0000), // subnormals
                        2 => (next() % 1_000) as f64 * 1e290,
                        3 => 0.0,
                        _ => -0.0,
                    };
                    (v, i)
                })
                .collect();
            assert_order_identical(row);
        }
    }

    #[test]
    fn radix_handles_degenerate_lengths() {
        assert_order_identical(vec![]);
        assert_order_identical(vec![(0.5, 0)]);
        assert_order_identical(vec![(0.5, 1), (0.5, 0)]);
    }

    #[test]
    fn dist_assembly_serial_equals_sharded() {
        // Deterministic pseudo-random multigraph-free edge set.
        let n = 120;
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut seen = std::collections::HashSet::new();
        let mut edges: Vec<DistEdge> = Vec::new();
        for _ in 0..800 {
            let a = (next() % n as u64) as usize;
            let b = (next() % n as u64) as usize;
            if a == b {
                continue;
            }
            let (a, b) = (a.min(b), a.max(b));
            if seen.insert((a, b)) {
                edges.push((a, b, (next() % 1_000) as f64 * 1e-3));
            }
        }
        let serial = assemble_dist(n, &edges);
        for shards in [0, 1, 2, 3, 8, 200] {
            let sharded = assemble_dist_sharded(n, &edges, shards);
            assert_eq!(serial.0, sharded.0, "offsets, shards={shards}");
            assert_eq!(
                serial.1.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                sharded.1.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                "dists, shards={shards}"
            );
            assert_eq!(serial.2, sharded.2, "neighbors, shards={shards}");
        }

        // Multi-source assembly over arbitrary splits of the same edge
        // set (including empty slices) is byte-identical to the
        // single-source serial assembly — the contract the sharded
        // build's byte-identity gate rests on.
        for cut in [0, 1, edges.len() / 3, edges.len()] {
            let (a, b) = edges.split_at(cut);
            let empty: &[DistEdge] = &[];
            for workers in [1, 3] {
                let Ok((multi, _)) = assemble_dist_multi_checked(n, &[a, empty, b], workers, None)
                else {
                    unreachable!("cancellation is impossible without a token")
                };
                assert_eq!(serial.0, multi.0, "offsets, cut={cut}");
                assert_eq!(
                    serial.1.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                    multi.1.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                    "dists, cut={cut}"
                );
                assert_eq!(serial.2, multi.2, "neighbors, cut={cut}");
            }
        }
    }
}
