//! Shared CSR assembly: the serial and sharded counting sorts behind
//! both [`crate::UnitDiskGraph`] (plain id rows) and
//! [`crate::StratifiedDiskGraph`] (`(distance, id)` rows), generic over
//! the per-row entry so the determinism-critical shard-range, prefix-sum
//! and fill logic exists exactly once.
//!
//! Determinism contract: [`RowEntry::cmp_row`] must be a **total order**
//! over the entries of one row (rows never repeat an id, so comparing
//! the id — possibly after a payload key — suffices). Offsets are pure
//! degree counts and every row is sorted by that total order, so the
//! assembled arrays are a pure function of the edge *set* — serial and
//! sharded assembly are byte-identical for every shard count (pinned by
//! the graph tests and the workspace concurrency tier).

use disc_metric::ObjId;

/// A directed row entry derived from an undirected edge.
pub(crate) trait RowEntry: Copy + Default + Send + Sync {
    /// The undirected input edge type.
    type Edge: Copy + Send + Sync;
    /// Endpoints of an edge.
    fn ends(e: &Self::Edge) -> (ObjId, ObjId);
    /// The entry stored in one endpoint's row; `other` is the opposite
    /// endpoint.
    fn entry(e: &Self::Edge, other: ObjId) -> Self;
    /// Total order of entries within a row (see the module docs).
    fn cmp_row(a: &Self, b: &Self) -> std::cmp::Ordering;
}

/// Plain adjacency rows: the entry is the opposite endpoint, rows are
/// sorted by id.
impl RowEntry for ObjId {
    type Edge = (ObjId, ObjId);

    #[inline]
    fn ends(e: &Self::Edge) -> (ObjId, ObjId) {
        (e.0, e.1)
    }

    #[inline]
    fn entry(_e: &Self::Edge, other: ObjId) -> Self {
        other
    }

    #[inline]
    fn cmp_row(a: &Self, b: &Self) -> std::cmp::Ordering {
        a.cmp(b)
    }
}

/// Distance-annotated rows: the entry carries the exact edge distance
/// first, so rows sort by `(distance, id)` and every radius is a prefix.
impl RowEntry for (f64, ObjId) {
    type Edge = (ObjId, ObjId, f64);

    #[inline]
    fn ends(e: &Self::Edge) -> (ObjId, ObjId) {
        (e.0, e.1)
    }

    #[inline]
    fn entry(e: &Self::Edge, other: ObjId) -> Self {
        (e.2, other)
    }

    #[inline]
    fn cmp_row(a: &Self, b: &Self) -> std::cmp::Ordering {
        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
    }
}

/// Serial counting-sort assembly: degree counts, prefix sum, fill,
/// per-row sort. Returns `(offsets, entries)` with `n + 1` offsets.
pub(crate) fn assemble<T: RowEntry>(n: usize, edges: &[T::Edge]) -> (Vec<usize>, Vec<T>) {
    let mut offsets = vec![0usize; n + 1];
    for e in edges {
        let (i, j) = T::ends(e);
        debug_assert!(i != j, "self-loop ({i}, {j})");
        offsets[i + 1] += 1;
        offsets[j + 1] += 1;
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    let mut entries = vec![T::default(); offsets[n]];
    let mut cursor = offsets.clone();
    for e in edges {
        let (i, j) = T::ends(e);
        entries[cursor[i]] = T::entry(e, j);
        cursor[i] += 1;
        entries[cursor[j]] = T::entry(e, i);
        cursor[j] += 1;
    }
    for v in 0..n {
        sort_row::<T>(&mut entries[offsets[v]..offsets[v + 1]], v);
    }
    (offsets, entries)
}

/// [`assemble`] as a parallel counting sort over `std::thread::scope`
/// workers: shards own contiguous vertex ranges, count degrees and
/// prefix-sum locally, then fill and sort disjoint slices of the entry
/// array (an edge crossing two shards lands in both shards' buckets).
/// Byte-identical output to [`assemble`] for every shard count.
///
/// `shards == 0` picks one shard per available core and falls back to
/// the serial assembly when that is 1 or the input is small; an
/// explicit shard count is honoured exactly (the concurrency tests
/// force 1, 2, 3 and 8).
pub(crate) fn assemble_sharded<T: RowEntry>(
    n: usize,
    edges: &[T::Edge],
    shards: usize,
) -> (Vec<usize>, Vec<T>) {
    let shards = if shards == 0 {
        // Below this size the serial assembly beats spawn + join.
        const MIN_PARALLEL_EDGES: usize = 4_096;
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if auto <= 1 || edges.len() < MIN_PARALLEL_EDGES {
            return assemble(n, edges);
        }
        auto
    } else {
        shards
    };
    let shards = shards.clamp(1, n.max(1));
    // Vertex ranges: shard s owns [s * span, min((s + 1) * span, n)).
    let span = n.div_ceil(shards).max(1);
    let range = |s: usize| (s * span).min(n)..((s + 1) * span).min(n);

    // Bucket edges by owning shard once, preserving input order, so the
    // counting and fill phases each scan O(|E|) total instead of
    // O(shards × |E|).
    let mut buckets: Vec<Vec<T::Edge>> = vec![Vec::new(); shards];
    for e in edges {
        let (i, j) = T::ends(e);
        debug_assert!(i != j, "self-loop ({i}, {j})");
        let si = (i / span).min(shards - 1);
        let sj = (j / span).min(shards - 1);
        buckets[si].push(*e);
        if sj != si {
            buckets[sj].push(*e);
        }
    }

    // Phase 1: per-shard degree counts with a local exclusive prefix
    // sum (index k holds the sum of degrees of the range's first k
    // vertices; the final extra slot holds the shard total).
    let locals: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                let r = range(s);
                let bucket = &buckets[s];
                scope.spawn(move || {
                    let mut counts = vec![0usize; r.len() + 1];
                    for e in bucket {
                        let (i, j) = T::ends(e);
                        if r.contains(&i) {
                            counts[i - r.start + 1] += 1;
                        }
                        if r.contains(&j) {
                            counts[j - r.start + 1] += 1;
                        }
                    }
                    for k in 0..r.len() {
                        counts[k + 1] += counts[k];
                    }
                    counts
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("degree-count shard panicked"))
            .collect()
    });

    // Combine: exclusive scan of the shard totals gives each shard's
    // base offset; local prefix sums shift by the base.
    let mut offsets = vec![0usize; n + 1];
    let mut base = 0usize;
    for (s, local) in locals.iter().enumerate() {
        let r = range(s);
        for (k, v) in r.clone().enumerate() {
            offsets[v] = base + local[k];
        }
        base += local[r.len()];
    }
    offsets[n] = base;

    // Phase 2: each shard fills and sorts its disjoint slice of the
    // entry array (slices handed out via split_at_mut).
    let mut entries = vec![T::default(); base];
    std::thread::scope(|scope| {
        let offsets = &offsets;
        let mut rest: &mut [T] = &mut entries;
        for (s, bucket) in buckets.iter().enumerate() {
            let r = range(s);
            let shard_len = offsets[r.end] - offsets[r.start];
            let (mine, tail) = rest.split_at_mut(shard_len);
            rest = tail;
            scope.spawn(move || {
                let shard_base = offsets[r.start];
                let mut cursor: Vec<usize> =
                    offsets[r.clone()].iter().map(|&o| o - shard_base).collect();
                for e in bucket {
                    let (i, j) = T::ends(e);
                    if r.contains(&i) {
                        mine[cursor[i - r.start]] = T::entry(e, j);
                        cursor[i - r.start] += 1;
                    }
                    if r.contains(&j) {
                        mine[cursor[j - r.start]] = T::entry(e, i);
                        cursor[j - r.start] += 1;
                    }
                }
                for v in r.clone() {
                    sort_row::<T>(
                        &mut mine[offsets[v] - shard_base..offsets[v + 1] - shard_base],
                        v,
                    );
                }
            });
        }
    });
    (offsets, entries)
}

/// Sorts one row by the entry total order and (debug) rejects duplicate
/// edges, which would surface as adjacent equal entries.
fn sort_row<T: RowEntry>(row: &mut [T], v: ObjId) {
    row.sort_unstable_by(T::cmp_row);
    debug_assert!(
        row.windows(2)
            .all(|w| T::cmp_row(&w[0], &w[1]) != std::cmp::Ordering::Equal),
        "duplicate edge incident to vertex {v}"
    );
}
