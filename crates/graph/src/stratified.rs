//! Radius-stratified unit-disk graph: one distance-annotated self-join
//! at the largest radius of interest, zero-cost subgraphs at every
//! smaller radius.
//!
//! [`UnitDiskGraph`] materialises `G_{P,r}` for **one** radius; the
//! adaptive-radius algorithms (zooming, Sections 3 and 5.2 of the paper;
//! multiple radii per object, Section 8) consult neighbourhoods at
//! *several* radii in one run, which previously forced them back onto
//! tree-backed range queries ("each radius would need its own graph").
//! The stratified graph removes that constraint: it stores the edge set
//! of `G_{P,r_max}` with every edge's **exact distance**, and orders each
//! CSR adjacency row by that distance — so for any `r' ≤ r_max` the
//! induced subgraph `G_{P,r'}` is a per-row *prefix*, located by one
//! binary search per row and no distance computations at all.
//!
//! ## Memory layout
//!
//! Three flat arrays (CSR):
//!
//! * `offsets` — `n + 1` row boundaries;
//! * `neighbors` — concatenated adjacency rows (each undirected edge
//!   appears twice, once per endpoint), each row sorted by
//!   **(distance, id)** ascending;
//! * `dists` — the exact edge distance aligned index-for-index with
//!   `neighbors` (`dists[k]` is the distance to `neighbors[k]`).
//!
//! Sorting by the `(distance, id)` pair — a total order, since a row
//! never repeats an id — makes the array contents a pure function of the
//! edge *set*, so serial and sharded assembly are byte-identical, and
//! duplicate distance values (ties) have a canonical ordering. The sort
//! itself never compares floats: `f64::to_bits`, sign-flipped so
//! unsigned integer order coincides with `f64::total_cmp`, feeds an MSD
//! radix sort that partitions straight on the bytes that actually vary
//! (see [`crate::csr`]'s module docs for the trick and its pins) and
//! writes the `dists` / `neighbors` arrays directly — no intermediate
//! `(f64, id)` rows, no comparator.
//!
//! Cost relative to the plain [`UnitDiskGraph`]: `dists` adds 8 bytes
//! per directed edge on top of the 8-byte neighbor id. An `f32` ranking
//! key (+4 bytes) was considered and rejected: the radius cutoffs must
//! reproduce the *exact* `d ≤ r'` predicate of Definition 1 (the
//! graph-resident runners are pinned byte-identical to tree-backed
//! ones), and rounding a distance up through an `f32` could move an edge
//! across a cutoff that lies between the two representations. The
//! annotated self-join also computes more distances than the plain one
//! — its inclusion shortcuts must fill exact values — but the overhead
//! is *bounded by the edge count* (only inclusion-qualified pairs, all
//! of them edges, pay the extra distance) and is evaluated through the
//! M-tree's batched SoA leaf sweeps (see
//! [`disc_mtree::MTree::range_self_join_dist`]); the
//! `zoom_graph_vs_tree` binary gates the bound. Both costs are the
//! price of answering *every* radius from one build.
//!
//! ## When to prefer it
//!
//! * a **single** radius, consumed whole → [`UnitDiskGraph::from_mtree`]
//!   (cheaper build, half the edge memory);
//! * **several** radii below a known maximum — a zoom-in/zoom-out sweep,
//!   multi-radius relevance weighting, or interactive radius tuning →
//!   [`StratifiedDiskGraph::from_mtree`] once, then
//!   [`StratifiedDiskGraph::view`] / [`StratifiedDiskGraph::row_within`]
//!   per radius at zero additional distance computations.

use std::sync::Arc;

use disc_metric::cancel::CancelToken;
use disc_metric::{Dataset, IdPermutation, ObjId};
use disc_mtree::{DistEdge, MTree, SelfJoinConfig};

use crate::error::GraphError;
use crate::graph::UnitDiskGraph;

/// Distance-annotated CSR adjacency over the objects of a dataset at a
/// maximum radius `r_max`, rows sorted by `(distance, id)` so every
/// `r' ≤ r_max` is a per-row prefix. See the [module docs](self).
///
/// Vertex ids are the dataset's *internal* ids (see `disc_metric::ids`);
/// a graph built from a renumbered dataset carries the dataset's
/// [`IdPermutation`] so boundary layers can translate back to external
/// numbering via [`StratifiedDiskGraph::external_id`].
#[derive(Clone, Debug, PartialEq)]
pub struct StratifiedDiskGraph {
    /// The build radius `r_max`; prefix views exist for every `r'` up to
    /// and including it.
    radius: f64,
    /// Row boundaries: `n + 1` entries, `offsets[0] == 0`.
    offsets: Vec<usize>,
    /// Concatenated adjacency rows, each sorted by `(dist, id)`.
    neighbors: Vec<ObjId>,
    /// Exact edge distances, aligned with `neighbors`.
    dists: Vec<f64>,
    /// Internal↔external id bijection of the dataset the graph was
    /// built over; `None` = identity.
    perm: Option<Arc<IdPermutation>>,
}

impl StratifiedDiskGraph {
    /// Materialises the stratified graph with one distance-annotated
    /// M-tree self-join at `r_max` (distance computations are charged to
    /// the tree's counter; the selection/zooming consumers then run at
    /// zero additional distance computations for every radius
    /// `≤ r_max`). With the `parallel` feature enabled both the
    /// self-join traversal and the CSR assembly run multi-threaded — the
    /// graph is byte-identical either way, distance annotations
    /// included.
    pub fn from_mtree(tree: &MTree<'_>, r_max: f64) -> Self {
        let edges = tree.range_self_join_dist(r_max);
        Self::from_dist_edges_auto(tree.len(), r_max, &edges)
            .with_permutation(tree.data().permutation().cloned())
    }

    /// The fail-closed counterpart of
    /// [`StratifiedDiskGraph::from_mtree`]: typed radius validation
    /// instead of panics, and an optional [`CancelToken`] polled
    /// throughout both build phases (self-join traversal and CSR
    /// assembly). On [`GraphError::Cancelled`] no partial graph escapes
    /// and the tree's counters account exactly for the work performed.
    ///
    /// `config.threads` drives both the traversal worker count and the
    /// assembly shard count (`0` = auto). The built graph is
    /// byte-identical to [`StratifiedDiskGraph::from_mtree`]'s for every
    /// thread count.
    pub fn from_mtree_checked(
        tree: &MTree<'_>,
        r_max: f64,
        config: SelfJoinConfig,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, GraphError> {
        let edges = tree.range_self_join_dist_checked(r_max, config, cancel)?;
        Ok(
            Self::from_dist_edges_checked(tree.len(), r_max, &edges, config.threads, cancel)?
                .with_permutation(tree.data().permutation().cloned()),
        )
    }

    /// Checked, cancellable CSR assembly from a distance-annotated edge
    /// list (the assembly half of
    /// [`StratifiedDiskGraph::from_mtree_checked`]). `shards == 0`
    /// picks one shard per core with the usual serial fallback.
    pub fn from_dist_edges_checked(
        n: usize,
        r_max: f64,
        edges: &[DistEdge],
        shards: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, GraphError> {
        if r_max.is_nan() || r_max < 0.0 {
            return Err(GraphError::InvalidRadius(r_max));
        }
        debug_validate_distances(r_max, edges);
        let (offsets, dists, neighbors) =
            crate::csr::assemble_dist_checked(n, edges, shards, cancel)?;
        Ok(Self {
            radius: r_max,
            offsets,
            neighbors,
            dists,
            perm: None,
        })
    }

    /// Multi-source counterpart of
    /// [`StratifiedDiskGraph::from_dist_edges_checked`] for the sharded
    /// build: assembles one graph from several per-task edge slices
    /// (intra-shard self-joins plus boundary cross-joins) without ever
    /// concatenating them into one allocation. Offsets are pure degree
    /// counts and rows sort by the total `(distance, id)` order, so the
    /// result is byte-identical to the single-source assembly over any
    /// interleaving of the slices — the property the sharded build's
    /// snapshot-identity gate rests on. `workers` drives the parallel
    /// row-sort phase (`0` = auto). The returned [`AssemblyBreakdown`]
    /// separates the merge (degree count + fill over the slices) from
    /// the row-sort phase for the scale bench's per-phase report.
    pub fn from_dist_edge_slices_checked(
        n: usize,
        r_max: f64,
        slices: &[&[DistEdge]],
        workers: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<(Self, AssemblyBreakdown), GraphError> {
        if r_max.is_nan() || r_max < 0.0 {
            return Err(GraphError::InvalidRadius(r_max));
        }
        for slice in slices {
            debug_validate_distances(r_max, slice);
        }
        let ((offsets, dists, neighbors), timings) =
            crate::csr::assemble_dist_multi_checked(n, slices, workers, cancel)?;
        let graph = Self {
            radius: r_max,
            offsets,
            neighbors,
            dists,
            perm: None,
        };
        let breakdown = AssemblyBreakdown {
            merge_ms: timings.merge.as_secs_f64() * 1e3,
            sort_ms: timings.sort.as_secs_f64() * 1e3,
        };
        Ok((graph, breakdown))
    }

    /// Reassembles a graph from its raw CSR arrays — the load path of a
    /// persisted snapshot (`disc-store`), where the arrays come from
    /// disk rather than from this crate's own assembly. Every
    /// structural invariant the query paths rely on is re-validated
    /// fail-closed, with the first violation named by a typed
    /// [`GraphError`]:
    ///
    /// * `offsets` non-empty, starting at 0, non-decreasing, with
    ///   `offsets[n]` equal to both array lengths;
    /// * every neighbor id in range and never the row's own vertex;
    /// * every row strictly `(total_cmp(dist), id)`-sorted (the cutoff
    ///   binary searches are only correct on sorted rows);
    /// * every distance within `[0, r_max]` and never NaN.
    ///
    /// The arrays are stored as given — a graph that round-trips
    /// through `from_csr_parts` is byte-identical to the original.
    pub fn from_csr_parts(
        radius: f64,
        offsets: Vec<usize>,
        neighbors: Vec<ObjId>,
        dists: Vec<f64>,
    ) -> Result<Self, GraphError> {
        if radius.is_nan() || radius < 0.0 {
            return Err(GraphError::InvalidRadius(radius));
        }
        let Some((&first, _)) = offsets.split_first() else {
            return Err(GraphError::EmptyOffsets);
        };
        if first != 0 {
            return Err(GraphError::OffsetsStart { found: first });
        }
        let n = offsets.len() - 1;
        for v in 0..n {
            if offsets[v + 1] < offsets[v] {
                return Err(GraphError::OffsetsNotMonotone { row: v });
            }
        }
        let expected = offsets[n];
        if neighbors.len() != expected || dists.len() != expected {
            return Err(GraphError::ArrayLengthMismatch {
                expected,
                neighbors: neighbors.len(),
                dists: dists.len(),
            });
        }
        for v in 0..n {
            let mut prev: Option<(u64, ObjId)> = None;
            for k in offsets[v]..offsets[v + 1] {
                let id = neighbors[k];
                let d = dists[k];
                if id >= n {
                    return Err(GraphError::NeighborOutOfRange {
                        row: v,
                        index: k,
                        id,
                    });
                }
                if id == v {
                    return Err(GraphError::SelfLoop { row: v, index: k });
                }
                if d.is_nan() || d < 0.0 || d > radius {
                    return Err(GraphError::DistanceOutOfRange {
                        row: v,
                        index: k,
                        value: d,
                    });
                }
                let key = (crate::csr::dist_order_key(d), id);
                if let Some(p) = prev {
                    if key <= p {
                        return Err(GraphError::RowNotSorted { row: v, index: k });
                    }
                }
                prev = Some(key);
            }
        }
        Ok(Self {
            radius,
            offsets,
            neighbors,
            dists,
            perm: None,
        })
    }

    /// The assembly half of [`StratifiedDiskGraph::from_mtree`]: picks
    /// the sharded (auto shard count) or serial CSR path exactly as the
    /// production build does — sharded when the `parallel` feature is
    /// on, serial otherwise. Exposed so benchmarks timing the build
    /// phases separately measure the same pipeline `from_mtree` runs.
    pub fn from_dist_edges_auto(n: usize, r_max: f64, edges: &[DistEdge]) -> Self {
        #[cfg(feature = "parallel")]
        {
            Self::from_dist_edges_sharded(n, r_max, edges, 0)
        }
        #[cfg(not(feature = "parallel"))]
        {
            Self::from_dist_edges(n, r_max, edges)
        }
    }

    /// Materialises the stratified graph by examining all pairs (O(n²);
    /// the validation reference the property tests compare against).
    pub fn build(data: &Dataset, r_max: f64) -> Self {
        assert!(r_max >= 0.0, "radius must be non-negative");
        let n = data.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = data.dist(i, j);
                if d <= r_max {
                    edges.push((i, j, d));
                }
            }
        }
        Self::from_dist_edges(n, r_max, &edges).with_permutation(data.permutation().cloned())
    }

    /// Assembles the stratified CSR from a distance-annotated undirected
    /// edge list over `n` vertices. Edges may be in any order and
    /// orientation; each unordered pair must appear at most once, with
    /// its exact distance `≤ r_max`; self-loops are rejected (debug).
    pub fn from_dist_edges(n: usize, r_max: f64, edges: &[DistEdge]) -> Self {
        assert!(r_max >= 0.0, "radius must be non-negative");
        debug_validate_distances(r_max, edges);
        let (offsets, dists, neighbors) = crate::csr::assemble_dist(n, edges);
        Self {
            radius: r_max,
            offsets,
            neighbors,
            dists,
            perm: None,
        }
    }

    /// [`StratifiedDiskGraph::from_dist_edges`] as a parallel counting
    /// sort over `std::thread::scope` workers — the same shard plan as
    /// [`UnitDiskGraph::from_edges_sharded`], writing the `dists` /
    /// `neighbors` arrays directly. Byte-identical `offsets` /
    /// `neighbors` / `dists` for every shard count: offsets are pure
    /// degree counts, and each row's `(distance, id)` sort key is a
    /// total order (ids are unique within a row), so row content is
    /// independent of fill order.
    ///
    /// `shards == 0` picks one shard per available core and falls back
    /// to the serial assembly when that is 1 or the input is small; an
    /// explicit shard count is honoured exactly (the concurrency tests
    /// force 1, 2, 3 and 8).
    pub fn from_dist_edges_sharded(
        n: usize,
        r_max: f64,
        edges: &[DistEdge],
        shards: usize,
    ) -> Self {
        assert!(r_max >= 0.0, "radius must be non-negative");
        debug_validate_distances(r_max, edges);
        let (offsets, dists, neighbors) = crate::csr::assemble_dist_sharded(n, edges, shards);
        Self {
            radius: r_max,
            offsets,
            neighbors,
            dists,
            perm: None,
        }
    }

    /// Attaches (or clears) the internal↔external id bijection — the
    /// seam for producers assembling from raw edges or snapshot arrays,
    /// where no dataset is at hand. An identity permutation normalizes
    /// to `None`.
    ///
    /// # Panics
    ///
    /// Panics when the permutation's length disagrees with the vertex
    /// count.
    pub fn with_permutation(mut self, perm: Option<Arc<IdPermutation>>) -> Self {
        if let Some(p) = &perm {
            assert_eq!(p.len(), self.len(), "permutation must cover every vertex");
        }
        self.perm = perm.filter(|p| !p.is_identity());
        self
    }

    /// The bijection from vertex (internal) ids back to the caller's
    /// external numbering; `None` when they coincide.
    pub fn permutation(&self) -> Option<&Arc<IdPermutation>> {
        self.perm.as_ref()
    }

    /// External id of vertex `v` (identity without a permutation).
    #[inline]
    pub fn external_id(&self, v: ObjId) -> ObjId {
        match &self.perm {
            Some(p) => p.external(v),
            None => v,
        }
    }

    /// Vertex (internal) id of `external` (identity without a
    /// permutation).
    #[inline]
    pub fn internal_id(&self, external: ObjId) -> ObjId {
        match &self.perm {
            Some(p) => p.internal(external),
            None => external,
        }
    }

    /// The maximum radius the graph was built for (`r_max`).
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Number of undirected edges at `r_max`.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Full adjacency row of `v` at `r_max`, sorted by `(dist, id)`.
    #[inline]
    pub fn neighbors(&self, v: ObjId) -> &[ObjId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Edge distances aligned with [`StratifiedDiskGraph::neighbors`].
    #[inline]
    pub fn dists(&self, v: ObjId) -> &[f64] {
        &self.dists[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v` at `r_max`.
    #[inline]
    pub fn degree(&self, v: ObjId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Length of `v`'s adjacency prefix at radius `r` (the number of
    /// neighbours within `r`): one binary search on the distance-sorted
    /// row, zero distance computations.
    ///
    /// # Panics
    ///
    /// Panics when `r` is NaN or negative — a NaN would silently return
    /// an empty prefix (every `d <= NaN` comparison is false), serving
    /// wrong neighbourhoods instead of failing.
    #[inline]
    pub fn cutoff(&self, v: ObjId, r: f64) -> usize {
        assert!(r >= 0.0, "cutoff radius must be non-negative, got {r}");
        self.dists(v).partition_point(|&d| d <= r)
    }

    /// Adjacency prefix of `v` at radius `r ≤ r_max`: the ids and exact
    /// distances of every neighbour within `r`, sorted by `(dist, id)`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is NaN or negative (see
    /// [`StratifiedDiskGraph::cutoff`]).
    #[inline]
    pub fn row_within(&self, v: ObjId, r: f64) -> (&[ObjId], &[f64]) {
        assert!(r >= 0.0, "cutoff radius must be non-negative, got {r}");
        let lo = self.offsets[v];
        let row_d = &self.dists[lo..self.offsets[v + 1]];
        let k = row_d.partition_point(|&d| d <= r);
        (&self.neighbors[lo..lo + k], &row_d[..k])
    }

    /// Iterator form of [`StratifiedDiskGraph::row_within`].
    #[inline]
    pub fn neighbors_within(&self, v: ObjId, r: f64) -> impl Iterator<Item = (ObjId, f64)> + '_ {
        let (ids, ds) = self.row_within(v, r);
        ids.iter().copied().zip(ds.iter().copied())
    }

    /// The induced subgraph `G_{P,r'}` as a prefix view: per-vertex row
    /// ends located once (one binary search per vertex), then every
    /// adjacency read is a slice — no distance computations, no copying.
    ///
    /// # Panics
    ///
    /// Panics when `r'` is negative or exceeds the build radius (edges
    /// beyond `r_max` were never materialised).
    pub fn view(&self, r: f64) -> StratifiedView<'_> {
        assert!(
            (0.0..=self.radius).contains(&r),
            "view radius {r} outside [0, {}]",
            self.radius
        );
        let ends = (0..self.len())
            .map(|v| self.offsets[v] + self.cutoff(v, r))
            .collect();
        StratifiedView {
            graph: self,
            radius: r,
            ends,
        }
    }

    /// Fallible counterpart of [`StratifiedDiskGraph::view`]: rejects a
    /// NaN/negative radius or one beyond the build radius with a typed
    /// [`GraphError`] instead of panicking.
    pub fn try_view(&self, r: f64) -> Result<StratifiedView<'_>, GraphError> {
        if r.is_nan() || r < 0.0 {
            return Err(GraphError::InvalidRadius(r));
        }
        if r > self.radius {
            return Err(GraphError::RadiusExceedsBuild {
                r,
                r_max: self.radius,
            });
        }
        Ok(self.view(r))
    }

    // ------------------------------------------------------------------
    // Streaming mutation (insert/delete with external-id tracking)
    // ------------------------------------------------------------------

    /// Inserts one vertex with the given `r_max`-neighborhood, assigning
    /// it internal id `n` (the largest) and external id `external`. The
    /// neighbor list is exactly what one M-tree range query at `r_max`
    /// returns for the new point: every existing vertex within the build
    /// radius, with its exact distance. Each affected CSR row receives a
    /// positional splice — the new id is larger than every existing one,
    /// so `(dist, id)` order puts it immediately after the row's equal-
    /// distance entries, located by one binary search per row; the new
    /// row is the sorted neighbor list itself. The splice is **in
    /// place**: the arrays grow by `2·degree` once and a single backward
    /// memmove pass opens every gap — the arrays are never rebuilt or
    /// reallocated beyond amortised capacity growth. **Zero** distance
    /// computations happen here: the caller's range query (charged to
    /// the tree's counter) already paid for every distance it hands in.
    ///
    /// Returns the new internal id. The spliced arrays satisfy every
    /// invariant [`StratifiedDiskGraph::from_csr_parts`] checks.
    pub fn insert_object(
        &mut self,
        external: ObjId,
        neighbors: &[(ObjId, f64)],
    ) -> Result<ObjId, GraphError> {
        let n = self.len();
        let mut adj: Vec<Option<f64>> = vec![None; n];
        for (index, &(u, d)) in neighbors.iter().enumerate() {
            if u >= n {
                return Err(GraphError::NeighborOutOfRange {
                    row: n,
                    index,
                    id: u,
                });
            }
            if d.is_nan() || d < 0.0 || d > self.radius {
                return Err(GraphError::DistanceOutOfRange {
                    row: n,
                    index,
                    value: d,
                });
            }
            if adj[u].is_some() {
                return Err(GraphError::DuplicateNeighbor { id: u });
            }
            adj[u] = Some(d);
        }
        let taken = match &self.perm {
            Some(p) => p.contains_external(external),
            None => external < n,
        };
        if taken {
            return Err(GraphError::DuplicateExternalId { id: external });
        }
        let next_perm = match (&self.perm, external == n) {
            (None, true) => None,
            (None, false) => {
                let mut ext: Vec<ObjId> = (0..n).collect();
                ext.push(external);
                match IdPermutation::try_new_sparse(ext) {
                    Ok(p) => Some(Arc::new(p)),
                    Err(_) => unreachable!("identity + fresh external id has no duplicates"),
                }
            }
            (Some(p), _) => match p.appended(external) {
                Ok(p) => Some(Arc::new(p)),
                Err(_) => unreachable!("collision was checked above"),
            },
        };

        // Splice points in OLD array coordinates, naturally ascending
        // (rows are visited in id order). All existing ids are < n, so
        // each row's splice point is right after its `dist <= d` prefix
        // (equal distances sort before the larger new id).
        let mut splices: Vec<(usize, f64)> = Vec::with_capacity(neighbors.len());
        for (v, spliced) in adj.iter().enumerate() {
            if let Some(d) = *spliced {
                let lo = self.offsets[v];
                let row_d = &self.dists[lo..self.offsets[v + 1]];
                let key = crate::csr::dist_order_key(d);
                let k = row_d.partition_point(|&x| crate::csr::dist_order_key(x) <= key);
                splices.push((lo + k, d));
            }
        }

        // In-place splice: grow the arrays once, then one backward
        // memmove pass shifts each inter-splice segment right by the
        // number of new entries before it and drops the new entry into
        // the gap — no fresh allocation, no per-row rebuild. The old
        // element at index i lands at i + |{splices ≤ i}|; splice t's
        // new entry lands at `pos_t + t`.
        let deg = splices.len();
        let old_len = self.neighbors.len();
        self.neighbors.resize(old_len + 2 * deg, 0);
        self.dists.resize(old_len + 2 * deg, 0.0);
        let mut seg_end = old_len;
        for (t, &(pos, d)) in splices.iter().enumerate().rev() {
            self.neighbors.copy_within(pos..seg_end, pos + t + 1);
            self.dists.copy_within(pos..seg_end, pos + t + 1);
            self.neighbors[pos + t] = n;
            self.dists[pos + t] = d;
            seg_end = pos;
        }
        let mut row: Vec<(u64, ObjId, f64)> = neighbors
            .iter()
            .map(|&(u, d)| (crate::csr::dist_order_key(d), u, d))
            .collect();
        row.sort_unstable_by_key(|&(key, u, _)| (key, u));
        for (slot, &(_, u, d)) in row.iter().enumerate() {
            self.neighbors[old_len + deg + slot] = u;
            self.dists[old_len + deg + slot] = d;
        }
        let mut added = 0;
        for (v, spliced) in adj.iter().enumerate() {
            added += spliced.is_some() as usize;
            self.offsets[v + 1] += added;
        }
        self.offsets.push(old_len + 2 * deg);

        self.perm = next_perm;
        Ok(n)
    }

    /// Removes vertex `v`, compacting the id space: internal ids above
    /// `v` shift down by one (a strictly monotone map, so every row's
    /// `(dist, id)` order survives the renumbering untouched), and `v`'s
    /// external id becomes unmapped. Returns the removed external id.
    ///
    /// The CSR is symmetric, so **the victim's own row is its reverse
    /// index**: each neighbor `u` stores the edge under the *same* `f64`
    /// distance, and one binary search on `u`'s `(distance, id)`-sorted
    /// row locates the exact slot to unlink — `O(degree · log degree)`
    /// slot discovery instead of scanning every stratum row. The arrays
    /// then compact in place with one `copy_within` sweep over the gaps
    /// (plus a branch-light id-decrement pass and an `O(n)` offsets
    /// rebuild), never reallocating — the former filtering rebuild
    /// (kept as [`StratifiedDiskGraph::remove_object_rescan`], the
    /// streaming bench's baseline) rewrote all three arrays entry by
    /// entry. Zero distance computations either way.
    pub fn remove_object(&mut self, v: ObjId) -> Result<ObjId, GraphError> {
        let n = self.len();
        if v >= n {
            return Err(GraphError::VertexOutOfRange { id: v, len: n });
        }
        if n == 1 {
            return Err(GraphError::LastVertex);
        }
        let external = self.external_id(v);
        let next_perm = match &self.perm {
            Some(p) => match p.removed(v) {
                Some(q) => (!q.is_identity()).then(|| Arc::new(q)),
                None => unreachable!("length and range were checked above"),
            },
            None if v == n - 1 => None,
            None => {
                let ext: Vec<ObjId> = (0..n).filter(|&i| i != v).collect();
                match IdPermutation::try_new_sparse(ext) {
                    Ok(p) => Some(Arc::new(p)),
                    Err(_) => unreachable!("identity minus one entry has no duplicates"),
                }
            }
        };

        // Dead slots: the victim's whole row plus, per neighbor, the
        // mirrored entry found by binary search under the composite
        // `(dist_order_key, id)` row order.
        let (vlo, vhi) = (self.offsets[v], self.offsets[v + 1]);
        let mut dead: Vec<usize> = (vlo..vhi).collect();
        for k in vlo..vhi {
            let u = self.neighbors[k];
            let key = (crate::csr::dist_order_key(self.dists[k]), v);
            let (lo, hi) = (self.offsets[u], self.offsets[u + 1]);
            let (mut a, mut b) = (lo, hi);
            while a < b {
                let m = (a + b) / 2;
                if (crate::csr::dist_order_key(self.dists[m]), self.neighbors[m]) < key {
                    a = m + 1;
                } else {
                    b = m;
                }
            }
            debug_assert!(
                a < hi
                    && self.neighbors[a] == v
                    && self.dists[a].to_bits() == self.dists[k].to_bits(),
                "mirrored slot for edge ({u}, {v}) missing — asymmetric CSR"
            );
            dead.push(a);
        }
        dead.sort_unstable();

        // One fused sweep does both array rewrites: compact the gaps
        // the dead slots leave AND apply the id shift (strictly
        // monotone — `w > v` becomes `w − 1` — so row order is
        // untouched). Entries below the first dead slot only need the
        // shift; everything above reads once, decrements branchlessly,
        // and writes to its compacted slot.
        let first = dead.first().copied().unwrap_or(self.neighbors.len());
        for w in &mut self.neighbors[..first] {
            *w -= (*w > v) as ObjId;
        }
        let total = self.neighbors.len();
        let mut write = first;
        for (t, &slot) in dead.iter().enumerate() {
            let next = dead.get(t + 1).copied().unwrap_or(total);
            // Two simple sweeps per gap instead of one interleaved
            // loop: a pure memmove for the distances and a branchless
            // shifted-decrement loop for the ids, each of which the
            // compiler vectorises; the fused form ran ~25% slower.
            self.dists.copy_within(slot + 1..next, write);
            for src in slot + 1..next {
                let w = self.neighbors[src];
                self.neighbors[write] = w - (w > v) as ObjId;
                write += 1;
            }
        }
        self.neighbors.truncate(write);
        self.dists.truncate(write);
        // Offsets rebuild: each surviving row ends where it used to,
        // minus the dead slots at or below that boundary (one merged
        // monotone walk over the sorted dead list).
        let mut new_off = Vec::with_capacity(n);
        new_off.push(0);
        let mut cnt = 0usize;
        for u in 0..n {
            let hi = self.offsets[u + 1];
            while cnt < dead.len() && dead[cnt] < hi {
                cnt += 1;
            }
            if u != v {
                new_off.push(hi - cnt);
            }
        }

        self.offsets = new_off;
        self.perm = next_perm;
        Ok(external)
    }

    /// The pre-reverse-index implementation of
    /// [`StratifiedDiskGraph::remove_object`]: rebuilds all three CSR
    /// arrays with a per-entry filter pass over every stratum row. Kept
    /// (hidden) as the baseline the streaming bench gates the in-place
    /// unlink against; behaviour is identical, byte for byte.
    #[doc(hidden)]
    pub fn remove_object_rescan(&mut self, v: ObjId) -> Result<ObjId, GraphError> {
        let n = self.len();
        if v >= n {
            return Err(GraphError::VertexOutOfRange { id: v, len: n });
        }
        if n == 1 {
            return Err(GraphError::LastVertex);
        }
        let external = self.external_id(v);
        let next_perm = match &self.perm {
            Some(p) => match p.removed(v) {
                Some(q) => (!q.is_identity()).then(|| Arc::new(q)),
                None => unreachable!("length and range were checked above"),
            },
            None if v == n - 1 => None,
            None => {
                let ext: Vec<ObjId> = (0..n).filter(|&i| i != v).collect();
                match IdPermutation::try_new_sparse(ext) {
                    Ok(p) => Some(Arc::new(p)),
                    Err(_) => unreachable!("identity minus one entry has no duplicates"),
                }
            }
        };

        let mut new_off = Vec::with_capacity(n);
        let mut new_nb = Vec::with_capacity(self.neighbors.len());
        let mut new_ds = Vec::with_capacity(self.dists.len());
        new_off.push(0);
        for u in 0..n {
            if u == v {
                continue;
            }
            for k in self.offsets[u]..self.offsets[u + 1] {
                let w = self.neighbors[k];
                if w == v {
                    continue;
                }
                new_nb.push(if w > v { w - 1 } else { w });
                new_ds.push(self.dists[k]);
            }
            new_off.push(new_nb.len());
        }

        self.offsets = new_off;
        self.neighbors = new_nb;
        self.dists = new_ds;
        self.perm = next_perm;
        Ok(external)
    }

    /// The raw CSR row-boundary array (`n + 1` entries, first is 0).
    /// Exposed so the concurrency tests can pin byte-equality of
    /// serially and shardedly assembled graphs.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated adjacency array (see
    /// [`StratifiedDiskGraph::offsets`]).
    pub fn neighbors_flat(&self) -> &[ObjId] {
        &self.neighbors
    }

    /// The raw concatenated distance array, aligned with
    /// [`StratifiedDiskGraph::neighbors_flat`].
    pub fn dists_flat(&self) -> &[f64] {
        &self.dists
    }

    /// Vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = ObjId> + '_ {
        0..self.len()
    }
}

/// Wall-clock split of the multi-source CSR assembly
/// ([`StratifiedDiskGraph::from_dist_edge_slices_checked`]): the merge
/// walk (degree count + fill over the edge slices) vs the parallel
/// row-sort phase. Consumed by the sharded build's per-phase stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct AssemblyBreakdown {
    /// Degree count and fill over the input slices, in milliseconds.
    pub merge_ms: f64,
    /// Entry-balanced parallel row sort, in milliseconds.
    pub sort_ms: f64,
}

/// Debug-only input validation: every annotated distance must be a
/// real distance within the build radius (release builds trust the
/// self-join).
fn debug_validate_distances(r_max: f64, edges: &[DistEdge]) {
    let _ = (r_max, edges);
    #[cfg(debug_assertions)]
    for &(i, j, d) in edges {
        debug_assert!(
            (0.0..=r_max).contains(&d),
            "edge ({i}, {j}) distance {d} out of range"
        );
    }
}

/// A zero-cost subgraph `G_{P,r'}` of a [`StratifiedDiskGraph`]: every
/// adjacency row is the prefix of the stratified row whose distances are
/// `≤ r'`. Created by [`StratifiedDiskGraph::view`].
#[derive(Clone, Debug)]
pub struct StratifiedView<'g> {
    graph: &'g StratifiedDiskGraph,
    radius: f64,
    /// Absolute end index of each vertex's prefix in the flat arrays.
    ends: Vec<usize>,
}

impl StratifiedView<'_> {
    /// The view radius `r'`.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of vertices (same as the underlying graph).
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the view has no vertices.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Neighbours of `v` within `r'`, sorted by `(dist, id)`.
    #[inline]
    pub fn neighbors(&self, v: ObjId) -> &[ObjId] {
        &self.graph.neighbors[self.graph.offsets[v]..self.ends[v]]
    }

    /// Edge distances aligned with [`StratifiedView::neighbors`].
    #[inline]
    pub fn dists(&self, v: ObjId) -> &[f64] {
        &self.graph.dists[self.graph.offsets[v]..self.ends[v]]
    }

    /// Degree of `v` within `r'`.
    #[inline]
    pub fn degree(&self, v: ObjId) -> usize {
        self.ends[v] - self.graph.offsets[v]
    }

    /// Number of undirected edges within `r'`.
    pub fn edge_count(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).sum::<usize>() / 2
    }

    /// Materialises the view as a plain [`UnitDiskGraph`] (rows
    /// re-sorted by id). Pure array work — **zero** distance
    /// computations — so a graph-resident pipeline can hand any radius
    /// `r' ≤ r_max` to consumers expecting the id-sorted CSR (e.g.
    /// `disc_core`'s `greedy_disc_graph`) without touching the index
    /// again.
    pub fn to_unit_disk_graph(&self) -> UnitDiskGraph {
        let mut edges = Vec::with_capacity(self.edge_count());
        for v in 0..self.len() {
            for &u in self.neighbors(v) {
                if v < u {
                    edges.push((v, u));
                }
            }
        }
        UnitDiskGraph::from_edges(self.len(), self.radius, &edges)
            .with_permutation(self.graph.perm.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::{Metric, Point};
    use disc_mtree::{MTreeConfig, SelfJoinConfig};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn random_data_metric(n: usize, seed: u64, metric: Metric) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| {
                if metric == Metric::Hamming {
                    Point::categorical(&[
                        rng.random_range(0..4u32),
                        rng.random_range(0..4u32),
                        rng.random_range(0..4u32),
                        rng.random_range(0..4u32),
                    ])
                } else {
                    Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0))
                }
            })
            .collect();
        Dataset::new("random", metric, pts)
    }

    /// Prefix views at every radius of the sweep equal the plain graph
    /// built directly at that radius.
    fn assert_views_match(data: &Dataset, g: &StratifiedDiskGraph, radii: &[f64]) {
        for &r in radii {
            let direct = UnitDiskGraph::build(data, r);
            let view = g.view(r);
            assert_eq!(
                view.to_unit_disk_graph(),
                direct,
                "r'={r} (r_max={})",
                g.radius()
            );
            for v in g.vertices() {
                assert_eq!(view.degree(v), direct.degree(v), "degree of {v} at r'={r}");
            }
        }
    }

    #[test]
    fn rows_are_distance_sorted_with_exact_distances() {
        let data = random_data_metric(150, 60, Metric::Euclidean);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        let g = StratifiedDiskGraph::from_mtree(&tree, 0.3);
        for v in g.vertices() {
            let (ids, ds) = (g.neighbors(v), g.dists(v));
            for (k, (&u, &d)) in ids.iter().zip(ds).enumerate() {
                assert_eq!(d.to_bits(), data.dist(v, u).to_bits(), "({v}, {u})");
                if k > 0 {
                    assert!(
                        (ds[k - 1], ids[k - 1]) < (d, u),
                        "row {v} not (dist, id)-sorted at {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn view_at_r_max_is_the_whole_graph() {
        let data = random_data_metric(120, 61, Metric::Euclidean);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
        let r_max = 0.25;
        let g = StratifiedDiskGraph::from_mtree(&tree, r_max);
        let view = g.view(r_max);
        assert_eq!(view.edge_count(), g.edge_count());
        assert_eq!(
            view.to_unit_disk_graph(),
            UnitDiskGraph::build(&data, r_max)
        );
        for v in g.vertices() {
            assert_eq!(view.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn view_at_zero_keeps_only_zero_distance_edges() {
        // Distinct points: empty graph at r' = 0; coincident points keep
        // their zero-distance edges.
        let data = Dataset::new(
            "mixed",
            Metric::Euclidean,
            vec![
                Point::new2(0.1, 0.1),
                Point::new2(0.1, 0.1),
                Point::new2(0.9, 0.9),
            ],
        );
        let tree = MTree::build(&data, MTreeConfig::with_capacity(2));
        let g = StratifiedDiskGraph::from_mtree(&tree, 2.0);
        let view = g.view(0.0);
        assert_eq!(view.neighbors(0), &[1]);
        assert_eq!(view.neighbors(1), &[0]);
        assert!(view.neighbors(2).is_empty());
        assert_eq!(view.to_unit_disk_graph(), UnitDiskGraph::build(&data, 0.0));
    }

    #[test]
    fn cutoffs_between_duplicate_distance_values() {
        // Collinear points spaced 0.1 apart: each vertex sees many
        // duplicated distances (0.1, 0.2, ...). Cutoffs exactly *at* a
        // duplicated value include the whole tie group; cutoffs between
        // two values include exactly the smaller groups.
        let pts: Vec<Point> = (0..9).map(|i| Point::new2(i as f64 * 0.1, 0.0)).collect();
        let data = Dataset::new("line", Metric::Euclidean, pts);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(3));
        let g = StratifiedDiskGraph::from_mtree(&tree, 1.0);
        // Mid-vertex 4 has two neighbours at each of distances ~0.1..0.4.
        let ds = g.dists(4);
        assert_eq!(ds.len(), 8);
        for r in [0.05, 0.1, 0.15, 0.2, 0.25, 0.30000000000000004, 0.35] {
            let want = ds.iter().filter(|&&d| d <= r).count();
            assert_eq!(g.cutoff(4, r), want, "r={r}");
        }
        assert_views_match(&data, &g, &[0.05, 0.15, 0.25, 0.35, 1.0]);
    }

    #[test]
    fn all_duplicate_points_stratify_to_complete_prefixes() {
        let n = 20;
        let data = Dataset::new(
            "all-dups",
            Metric::Euclidean,
            vec![Point::new2(0.4, 0.6); n],
        );
        let tree = MTree::build(&data, MTreeConfig::with_capacity(3));
        let g = StratifiedDiskGraph::from_mtree(&tree, 0.5);
        assert_eq!(g.edge_count(), n * (n - 1) / 2);
        // Every prefix — including r' = 0 — is the complete graph.
        for r in [0.0, 0.25, 0.5] {
            let view = g.view(r);
            for v in g.vertices() {
                assert_eq!(view.degree(v), n - 1, "r'={r}");
            }
        }
        assert_views_match(&data, &g, &[0.0, 0.5]);
    }

    #[test]
    fn degenerate_sizes_zero_and_one() {
        let empty = StratifiedDiskGraph::from_dist_edges(0, 0.5, &[]);
        assert!(empty.is_empty());
        assert_eq!(empty.offsets(), &[0]);
        assert_eq!(empty.view(0.5).edge_count(), 0);
        for shards in [1, 2, 3, 8] {
            assert_eq!(
                StratifiedDiskGraph::from_dist_edges_sharded(0, 0.5, &[], shards),
                empty
            );
        }

        let one_pt = Dataset::new("one", Metric::Euclidean, vec![Point::new2(0.5, 0.5)]);
        let tree = MTree::build(&one_pt, MTreeConfig::default());
        let one = StratifiedDiskGraph::from_mtree(&tree, 10.0);
        assert_eq!(one.len(), 1);
        assert!(one.neighbors(0).is_empty());
        assert_eq!(one.view(1.0).degree(0), 0);
    }

    #[test]
    fn sharded_assembly_is_byte_identical_to_serial() {
        let data = random_data_metric(250, 62, Metric::Euclidean);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        for r in [0.0, 0.05, 0.2, 2.0] {
            let edges = tree.range_self_join_dist_serial(r);
            let serial = StratifiedDiskGraph::from_dist_edges(data.len(), r, &edges);
            for shards in [1, 2, 3, 8] {
                let sharded =
                    StratifiedDiskGraph::from_dist_edges_sharded(data.len(), r, &edges, shards);
                assert_eq!(sharded.offsets(), serial.offsets(), "shards={shards} r={r}");
                assert_eq!(
                    sharded.neighbors_flat(),
                    serial.neighbors_flat(),
                    "shards={shards} r={r}"
                );
                assert_eq!(
                    sharded.dists_flat(),
                    serial.dists_flat(),
                    "shards={shards} r={r}"
                );
            }
            assert_eq!(
                StratifiedDiskGraph::from_dist_edges_sharded(
                    data.len(),
                    r,
                    &edges,
                    data.len() + 50
                ),
                serial
            );
        }
    }

    #[test]
    fn from_dist_edges_any_orientation_and_order() {
        let g =
            StratifiedDiskGraph::from_dist_edges(4, 1.0, &[(2, 0, 0.7), (3, 2, 0.2), (0, 1, 0.5)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.dists(0), &[0.5, 0.7]);
        assert_eq!(g.neighbors(2), &[3, 0]); // distance-sorted, not id-sorted
        assert_eq!(g.dists(2), &[0.2, 0.7]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.view(0.5).neighbors(0), &[1]);
        assert_eq!(g.view(0.2).neighbors(2), &[3]);
    }

    #[test]
    #[should_panic(expected = "view radius")]
    fn view_beyond_r_max_is_rejected() {
        let g = StratifiedDiskGraph::from_dist_edges(2, 0.5, &[(0, 1, 0.3)]);
        let _ = g.view(0.6);
    }

    const ALL_METRICS: [Metric; 4] = [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Hamming,
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Prefix views of the stratified graph equal plain graphs built
        /// directly at the view radius, on all four metrics, for
        /// arbitrary build radii, view fractions and thread/shard counts.
        #[test]
        fn prefix_views_match_direct_builds_on_every_metric(
            seed in 0u64..500,
            frac_max in 0.05..1.05f64,
            frac_view in 0.0..1.0f64,
            cap in 2usize..10,
            threads in 1usize..9,
            metric_idx in 0usize..4,
        ) {
            let metric = ALL_METRICS[metric_idx];
            let data = random_data_metric(80, seed, metric);
            let r_max = frac_max * metric.max_range(data.dim());
            let r_max = if metric.is_discrete() { r_max.floor() } else { r_max };
            let r_view = frac_view * r_max;
            let r_view = if metric.is_discrete() { r_view.floor() } else { r_view };

            let tree = MTree::build(&data, MTreeConfig::with_capacity(cap));
            let edges = tree.range_self_join_dist_with(
                r_max,
                SelfJoinConfig::with_threads(threads),
            );
            let g = StratifiedDiskGraph::from_dist_edges_sharded(
                data.len(), r_max, &edges, threads,
            );
            prop_assert_eq!(
                &g,
                &StratifiedDiskGraph::build(&data, r_max),
                "{:?} r_max={}", metric, r_max
            );
            prop_assert_eq!(
                g.view(r_view).to_unit_disk_graph(),
                UnitDiskGraph::build(&data, r_view),
                "{:?} r'={} r_max={}", metric, r_view, r_max
            );
        }
    }

    // ------------------------------------------------------------------
    // Checked builds, raw-parts reconstruction and radius validation
    // ------------------------------------------------------------------

    #[test]
    fn checked_build_is_byte_identical_to_plain_build() {
        let data = random_data_metric(250, 5, Metric::Euclidean);
        let tree = MTree::build(&data, MTreeConfig::default());
        let plain = StratifiedDiskGraph::from_mtree(&tree, 0.3);
        for threads in [1, 3] {
            let checked = StratifiedDiskGraph::from_mtree_checked(
                &tree,
                0.3,
                SelfJoinConfig::with_threads(threads),
                None,
            )
            .expect("uncancelled build succeeds");
            assert_eq!(checked.offsets(), plain.offsets());
            assert_eq!(checked.neighbors_flat(), plain.neighbors_flat());
            assert_eq!(
                checked
                    .dists_flat()
                    .iter()
                    .map(|d| d.to_bits())
                    .collect::<Vec<_>>(),
                plain
                    .dists_flat()
                    .iter()
                    .map(|d| d.to_bits())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn checked_build_rejects_bad_radii_with_typed_errors() {
        let data = random_data_metric(60, 6, Metric::Euclidean);
        let tree = MTree::build(&data, MTreeConfig::default());
        for r in [f64::NAN, -1.0] {
            let err = StratifiedDiskGraph::from_mtree_checked(
                &tree,
                r,
                SelfJoinConfig::with_threads(1),
                None,
            )
            .unwrap_err();
            assert!(matches!(err, GraphError::InvalidRadius(_)), "r={r}: {err}");
            let err =
                StratifiedDiskGraph::from_dist_edges_checked(10, r, &[], 1, None).unwrap_err();
            assert!(matches!(err, GraphError::InvalidRadius(_)), "r={r}: {err}");
        }
    }

    #[test]
    fn checked_build_cancels_cleanly() {
        let data = random_data_metric(300, 7, Metric::Euclidean);
        let tree = MTree::build(&data, MTreeConfig::default());
        let full = StratifiedDiskGraph::from_mtree(&tree, 0.3);
        let token = CancelToken::new();
        token.cancel();
        let err = StratifiedDiskGraph::from_mtree_checked(
            &tree,
            0.3,
            SelfJoinConfig::with_threads(2),
            Some(&token),
        )
        .unwrap_err();
        assert_eq!(err, GraphError::Cancelled);
        // Retry without the token reproduces the build byte for byte.
        let retry = StratifiedDiskGraph::from_mtree_checked(
            &tree,
            0.3,
            SelfJoinConfig::with_threads(2),
            None,
        )
        .expect("retry succeeds");
        assert_eq!(retry, full);
    }

    #[test]
    fn assembly_cancellation_drops_the_partial_csr() {
        let data = random_data_metric(200, 8, Metric::Euclidean);
        let tree = MTree::build(&data, MTreeConfig::default());
        let edges = tree.range_self_join_dist(0.4);
        assert!(!edges.is_empty());
        let token = CancelToken::new();
        token.cancel();
        for shards in [1, 3] {
            let err = StratifiedDiskGraph::from_dist_edges_checked(
                200,
                0.4,
                &edges,
                shards,
                Some(&token),
            )
            .unwrap_err();
            assert_eq!(err, GraphError::Cancelled);
        }
        // The same call without a token matches the plain assembly.
        let plain = StratifiedDiskGraph::from_dist_edges(200, 0.4, &edges);
        let checked = StratifiedDiskGraph::from_dist_edges_checked(200, 0.4, &edges, 3, None)
            .expect("uncancelled assembly succeeds");
        assert_eq!(checked, plain);
    }

    #[test]
    fn from_csr_parts_round_trips_a_built_graph() {
        for metric in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Hamming,
        ] {
            let r_max = if metric == Metric::Hamming { 2.0 } else { 0.3 };
            let data = random_data_metric(120, 9, metric);
            let tree = MTree::build(&data, MTreeConfig::default());
            let g = StratifiedDiskGraph::from_mtree(&tree, r_max);
            let rebuilt = StratifiedDiskGraph::from_csr_parts(
                g.radius(),
                g.offsets().to_vec(),
                g.neighbors_flat().to_vec(),
                g.dists_flat().to_vec(),
            )
            .expect("valid parts reconstruct");
            assert_eq!(rebuilt, g, "{metric:?}");
        }
    }

    #[test]
    fn from_csr_parts_rejects_every_structural_violation() {
        // Hand-built valid graph: 3 vertices, edges (0,1,d=0.1), (1,2,d=0.2).
        let offsets = vec![0usize, 1, 3, 4];
        let neighbors = vec![1usize, 0, 2, 1];
        let dists = vec![0.1, 0.1, 0.2, 0.2];
        assert!(StratifiedDiskGraph::from_csr_parts(
            0.5,
            offsets.clone(),
            neighbors.clone(),
            dists.clone()
        )
        .is_ok());

        type Case = (GraphError, f64, Vec<usize>, Vec<usize>, Vec<f64>);
        let cases: Vec<Case> = vec![
            (
                GraphError::InvalidRadius(f64::NAN),
                f64::NAN,
                offsets.clone(),
                neighbors.clone(),
                dists.clone(),
            ),
            (
                GraphError::EmptyOffsets,
                0.5,
                vec![],
                neighbors.clone(),
                dists.clone(),
            ),
            (
                GraphError::OffsetsStart { found: 1 },
                0.5,
                vec![1, 1, 3, 4],
                neighbors.clone(),
                dists.clone(),
            ),
            (
                GraphError::OffsetsNotMonotone { row: 1 },
                0.5,
                vec![0, 3, 1, 4],
                neighbors.clone(),
                dists.clone(),
            ),
            (
                GraphError::ArrayLengthMismatch {
                    expected: 4,
                    neighbors: 3,
                    dists: 4,
                },
                0.5,
                offsets.clone(),
                vec![1, 0, 2],
                dists.clone(),
            ),
            (
                GraphError::NeighborOutOfRange {
                    row: 0,
                    index: 0,
                    id: 9,
                },
                0.5,
                offsets.clone(),
                vec![9, 0, 2, 1],
                dists.clone(),
            ),
            (
                GraphError::SelfLoop { row: 1, index: 1 },
                0.5,
                offsets.clone(),
                vec![1, 1, 2, 1],
                dists.clone(),
            ),
            (
                GraphError::DistanceOutOfRange {
                    row: 0,
                    index: 0,
                    value: 0.9,
                },
                0.5,
                offsets.clone(),
                neighbors.clone(),
                vec![0.9, 0.1, 0.2, 0.2],
            ),
            (
                // Row 1 holds entries at flat 1..3; swapping them breaks
                // the (dist, id) order at flat index 2.
                GraphError::RowNotSorted { row: 1, index: 2 },
                0.5,
                offsets.clone(),
                vec![1, 2, 0, 1],
                vec![0.1, 0.2, 0.1, 0.2],
            ),
        ];
        for (want, r, o, nb, ds) in cases {
            let got = StratifiedDiskGraph::from_csr_parts(r, o, nb, ds).unwrap_err();
            match (&got, &want) {
                // NaN != NaN under PartialEq; compare variants only.
                (GraphError::InvalidRadius(a), GraphError::InvalidRadius(_)) => {
                    assert!(a.is_nan())
                }
                _ => assert_eq!(got, want),
            }
        }
    }

    // ------------------------------------------------------------------
    // Streaming mutation
    // ------------------------------------------------------------------

    /// Brute-force neighbor list of `q` at `r` (what an M-tree range
    /// query returns), in arbitrary order.
    fn neighbors_of(data: &Dataset, q: &[f64], r: f64) -> Vec<(ObjId, f64)> {
        data.ids()
            .filter_map(|i| {
                let d = data.dist_to_coords(i, q);
                (d <= r).then_some((i, d))
            })
            .collect()
    }

    #[test]
    fn insert_object_matches_a_from_scratch_build() {
        let r_max = 0.35;
        let mut data = random_data_metric(80, 70, Metric::Euclidean);
        let mut g = StratifiedDiskGraph::build(&data, r_max);
        let mut rng = StdRng::seed_from_u64(71);
        for step in 0..12 {
            let q = [rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)];
            let nb = neighbors_of(&data, &q, r_max);
            let external = data.len() + step; // dense appends keep identity
            let internal = g.insert_object(external, &nb).expect("fresh id");
            assert_eq!(internal, data.len());
            data.push_point_external(&q, external).expect("fresh id");
            let fresh = StratifiedDiskGraph::build(&data, r_max);
            assert_eq!(g, fresh, "step {step}");
            // The mutated arrays still satisfy every from_csr_parts check.
            StratifiedDiskGraph::from_csr_parts(
                g.radius(),
                g.offsets().to_vec(),
                g.neighbors_flat().to_vec(),
                g.dists_flat().to_vec(),
            )
            .expect("row-sort invariant holds after insert");
        }
    }

    #[test]
    fn remove_object_matches_a_from_scratch_build() {
        let r_max = 0.35;
        let mut data = random_data_metric(60, 72, Metric::Euclidean);
        let mut g = StratifiedDiskGraph::build(&data, r_max);
        let mut rng = StdRng::seed_from_u64(73);
        for step in 0..12 {
            let v = rng.random_range(0..data.len());
            let ext_graph = g.remove_object(v).expect("in range");
            let ext_data = data.remove_point(v).expect("in range");
            assert_eq!(ext_graph, ext_data, "step {step}");
            let fresh = StratifiedDiskGraph::build(&data, r_max).with_permutation(None);
            // Compare structure; the permutation is tracked separately.
            assert_eq!(g.offsets(), fresh.offsets(), "step {step}");
            assert_eq!(g.neighbors_flat(), fresh.neighbors_flat(), "step {step}");
            assert_eq!(g.dists_flat(), fresh.dists_flat(), "step {step}");
            // Graph and dataset agree on the surviving external ids.
            for v in g.vertices() {
                assert_eq!(g.external_id(v), data.external_id(v), "step {step}");
            }
            StratifiedDiskGraph::from_csr_parts(
                g.radius(),
                g.offsets().to_vec(),
                g.neighbors_flat().to_vec(),
                g.dists_flat().to_vec(),
            )
            .expect("row-sort invariant holds after remove");
        }
    }

    #[test]
    fn remove_object_unlink_is_byte_identical_to_rescan() {
        for metric in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Hamming,
        ] {
            let r_max = if metric == Metric::Hamming { 2.0 } else { 0.3 };
            let data = random_data_metric(80, 76, metric);
            let mut fast = StratifiedDiskGraph::build(&data, r_max);
            let mut slow = fast.clone();
            let mut rng = StdRng::seed_from_u64(77);
            for step in 0..20 {
                let v = rng.random_range(0..fast.len());
                assert_eq!(
                    fast.remove_object(v).expect("in range"),
                    slow.remove_object_rescan(v).expect("in range"),
                    "{metric:?} step {step}"
                );
                assert_eq!(fast.offsets(), slow.offsets(), "{metric:?} step {step}");
                assert_eq!(
                    fast.neighbors_flat(),
                    slow.neighbors_flat(),
                    "{metric:?} step {step}"
                );
                let bits = |g: &StratifiedDiskGraph| {
                    g.dists_flat()
                        .iter()
                        .map(|d| d.to_bits())
                        .collect::<Vec<_>>()
                };
                assert_eq!(bits(&fast), bits(&slow), "{metric:?} step {step}");
            }
        }
    }

    #[test]
    fn multi_slice_assembly_matches_single_source() {
        let data = random_data_metric(150, 78, Metric::Euclidean);
        let config = MTreeConfig::default();
        let tree = MTree::build(&data, config);
        let edges = tree.range_self_join_dist(0.25);
        let single = StratifiedDiskGraph::from_dist_edges(data.len(), 0.25, &edges);
        for cut in [0, 1, edges.len() / 2, edges.len()] {
            let (a, b) = edges.split_at(cut);
            let empty: &[disc_mtree::DistEdge] = &[];
            let (multi, _) = StratifiedDiskGraph::from_dist_edge_slices_checked(
                data.len(),
                0.25,
                &[a, empty, b],
                1,
                None,
            )
            .expect("valid radius");
            assert_eq!(single, multi, "cut={cut}");
        }
    }

    #[test]
    fn interleaved_inserts_and_removes_track_external_ids() {
        let r_max = 0.4;
        let mut data = random_data_metric(30, 74, Metric::Manhattan);
        let mut g = StratifiedDiskGraph::build(&data, r_max);
        let mut rng = StdRng::seed_from_u64(75);
        let mut next_external = data.len();
        for _ in 0..40 {
            if rng.random_range(0..3) == 0 && data.len() > 1 {
                let v = rng.random_range(0..data.len());
                assert_eq!(
                    g.remove_object(v).expect("in range"),
                    data.remove_point(v).expect("in range")
                );
            } else {
                let q = [rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)];
                let nb = neighbors_of(&data, &q, r_max);
                let i = g.insert_object(next_external, &nb).expect("fresh id");
                assert_eq!(
                    data.push_point_external(&q, next_external)
                        .expect("fresh id"),
                    i
                );
                next_external += 1;
            }
        }
        let fresh = StratifiedDiskGraph::build(&data, r_max);
        assert_eq!(g.offsets(), fresh.offsets());
        assert_eq!(g.neighbors_flat(), fresh.neighbors_flat());
        assert_eq!(g.dists_flat(), fresh.dists_flat());
        for v in g.vertices() {
            assert_eq!(g.external_id(v), data.external_id(v));
            assert_eq!(g.internal_id(g.external_id(v)), v);
        }
    }

    #[test]
    fn mutation_rejects_malformed_input_with_typed_errors() {
        let mut g = StratifiedDiskGraph::from_dist_edges(3, 0.5, &[(0, 1, 0.1), (1, 2, 0.2)]);
        assert_eq!(
            g.insert_object(3, &[(9, 0.1)]).unwrap_err(),
            GraphError::NeighborOutOfRange {
                row: 3,
                index: 0,
                id: 9
            }
        );
        assert!(matches!(
            g.insert_object(3, &[(0, 0.9)]).unwrap_err(),
            GraphError::DistanceOutOfRange { value: v, .. } if v == 0.9
        ));
        assert_eq!(
            g.insert_object(3, &[(0, 0.1), (0, 0.2)]).unwrap_err(),
            GraphError::DuplicateNeighbor { id: 0 }
        );
        assert_eq!(
            g.insert_object(1, &[]).unwrap_err(),
            GraphError::DuplicateExternalId { id: 1 }
        );
        assert_eq!(
            g.remove_object(7).unwrap_err(),
            GraphError::VertexOutOfRange { id: 7, len: 3 }
        );
        let mut one = StratifiedDiskGraph::from_dist_edges(1, 0.5, &[]);
        assert_eq!(one.remove_object(0).unwrap_err(), GraphError::LastVertex);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn cutoff_panics_on_nan_radius() {
        let data = random_data_metric(10, 1, Metric::Euclidean);
        let g = StratifiedDiskGraph::build(&data, 0.5);
        let _ = g.cutoff(0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn row_within_panics_on_negative_radius() {
        let data = random_data_metric(10, 1, Metric::Euclidean);
        let g = StratifiedDiskGraph::build(&data, 0.5);
        let _ = g.row_within(0, -0.1);
    }

    #[test]
    fn try_view_rejects_bad_radii_with_typed_errors() {
        let data = random_data_metric(30, 2, Metric::Euclidean);
        let g = StratifiedDiskGraph::build(&data, 0.5);
        assert!(matches!(
            g.try_view(f64::NAN).unwrap_err(),
            GraphError::InvalidRadius(_)
        ));
        assert!(matches!(
            g.try_view(-0.2).unwrap_err(),
            GraphError::InvalidRadius(_)
        ));
        assert_eq!(
            g.try_view(0.6).unwrap_err(),
            GraphError::RadiusExceedsBuild { r: 0.6, r_max: 0.5 }
        );
        let v = g.try_view(0.25).expect("in-range radius");
        assert_eq!(v.radius(), 0.25);
    }
}
