//! The graph representation `G_{P,r}` of Section 2.2: one vertex per
//! object, an edge whenever two objects are within distance `r`.
//!
//! ## Layout
//!
//! Adjacency is stored in **CSR** (compressed sparse row) form: one flat
//! `neighbors` array plus an `offsets` array with `n + 1` entries, so
//! `neighbors[offsets[v]..offsets[v + 1]]` is `N_r(v)` sorted by id.
//! Compared to the previous `Vec<Vec<ObjId>>` this is one allocation
//! instead of `n`, keeps every neighbourhood contiguous for the
//! selection loops' linear scans, and halves pointer-chasing during the
//! graph-resident heuristics in `disc-core`.
//!
//! ## Construction, and when to prefer which pipeline
//!
//! * [`UnitDiskGraph::from_mtree`] — bulk-materialises the graph with
//!   one M-tree [`range_self_join`](disc_mtree::MTree::range_self_join)
//!   traversal. This is the production path: node-pair pruning computes
//!   far fewer than `n(n−1)/2` distances, and once the CSR is resident
//!   the selection heuristics run with **zero** further index queries.
//!   Prefer it whenever the edge list fits in memory (≈16 bytes per
//!   edge transiently, 8 bytes per directed edge resident) and the
//!   whole graph will be consumed — i.e. a full Greedy-DisC / Greedy-C
//!   run. Prefer the tree-backed runners instead when memory is tight or
//!   when only a few selections are needed (zooming a small
//!   neighbourhood). When the radius *changes between selections* —
//!   zoom-in/zoom-out sweeps, per-object radii — use the
//!   radius-stratified sibling [`crate::StratifiedDiskGraph`], which
//!   answers every radius below its build radius from one
//!   distance-annotated self-join.
//!   With the `parallel` feature enabled, both the self-join traversal
//!   (see `disc-mtree`) and the CSR assembly below run multi-threaded,
//!   producing a byte-identical graph.
//! * [`UnitDiskGraph::build`] — the O(n²) all-pairs scan, kept as the
//!   validation reference the property tests compare against.
//! * [`UnitDiskGraph::build_parallel`] — the same scan sharded across
//!   threads with `std::thread::scope` (behind the `parallel` feature);
//!   byte-identical output, useful on multi-core hosts when no M-tree
//!   exists yet.
//! * [`UnitDiskGraph::from_edges`] — serial CSR assembly from any edge
//!   list (the self-join's output format), public so other producers
//!   can feed the same consumers.
//! * [`UnitDiskGraph::from_edges_sharded`] — the same assembly as a
//!   parallel counting sort: shards own contiguous vertex ranges,
//!   count degrees and prefix-sum locally, then fill and sort disjoint
//!   slices of the `neighbors` array. Byte-identical `offsets` /
//!   `neighbors` for every shard count, because the offsets are pure
//!   degree counts and each adjacency row is sorted (and duplicate
//!   free), so its final content is independent of fill order.

use std::sync::Arc;

use disc_metric::{Dataset, IdPermutation, ObjId};
use disc_mtree::MTree;

/// Undirected graph over the objects of a dataset, with an edge `(i, j)`
/// iff `dist(i, j) ≤ r` and `i ≠ j`. Stored as CSR; adjacency rows are
/// sorted by id.
///
/// Vertex ids are the dataset's *internal* ids (see `disc_metric::ids`);
/// a graph built from a renumbered dataset carries the dataset's
/// [`IdPermutation`] so boundary layers can translate back to external
/// numbering via [`UnitDiskGraph::external_id`].
#[derive(Clone, Debug, PartialEq)]
pub struct UnitDiskGraph {
    radius: f64,
    /// Row boundaries: `n + 1` entries, `offsets[0] == 0`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency rows (each undirected edge appears
    /// twice, once per endpoint).
    neighbors: Vec<ObjId>,
    /// Internal↔external id bijection of the dataset the graph was
    /// built over; `None` = identity.
    perm: Option<Arc<IdPermutation>>,
}

impl UnitDiskGraph {
    /// Materialises `G_{P,r}` by examining all pairs (O(n²); the
    /// validation reference — see the module docs for the bulk path).
    pub fn build(data: &Dataset, radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        let n = data.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if data.dist(i, j) <= radius {
                    edges.push((i, j));
                }
            }
        }
        Self::from_edges(n, radius, &edges).with_permutation(data.permutation().cloned())
    }

    /// Materialises `G_{P,r}` with one M-tree range self-join (the bulk
    /// production path; distance computations are charged to the tree's
    /// counter). With the `parallel` feature enabled both the self-join
    /// traversal and the CSR assembly run multi-threaded — the graph is
    /// byte-identical either way.
    pub fn from_mtree(tree: &MTree<'_>, radius: f64) -> Self {
        let edges = tree.range_self_join(radius);
        #[cfg(feature = "parallel")]
        let g = Self::from_edges_sharded(tree.len(), radius, &edges, 0);
        #[cfg(not(feature = "parallel"))]
        let g = Self::from_edges(tree.len(), radius, &edges);
        g.with_permutation(tree.data().permutation().cloned())
    }

    /// Assembles the CSR from an undirected edge list over `n` vertices.
    /// Edges may be in any order and orientation; each unordered pair
    /// must appear at most once, and self-loops are rejected (debug).
    pub fn from_edges(n: usize, radius: f64, edges: &[(ObjId, ObjId)]) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        let (offsets, neighbors) = crate::csr::assemble::<ObjId>(n, edges);
        Self {
            radius,
            offsets,
            neighbors,
            perm: None,
        }
    }

    /// [`UnitDiskGraph::from_edges`] as a parallel counting sort over
    /// `std::thread::scope` workers (the shared assembly in the crate's
    /// private `csr` module, also behind the stratified variant): shards
    /// own contiguous vertex ranges, count degrees and prefix-sum
    /// locally, then fill and sort disjoint slices of the `neighbors`
    /// array. The resulting `offsets` / `neighbors` are
    /// **byte-identical** to the serial assembly for every shard count:
    /// offsets are pure degree counts, and every adjacency row is
    /// sorted and duplicate-free, so its content does not depend on
    /// fill order.
    ///
    /// `shards == 0` picks one shard per available core and falls back
    /// to the serial assembly when that is 1 or the input is small; an
    /// explicit shard count is honoured exactly (the concurrency tests
    /// force 1, 2, 3 and 8).
    pub fn from_edges_sharded(
        n: usize,
        radius: f64,
        edges: &[(ObjId, ObjId)],
        shards: usize,
    ) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        let (offsets, neighbors) = crate::csr::assemble_sharded::<ObjId>(n, edges, shards);
        Self {
            radius,
            offsets,
            neighbors,
            perm: None,
        }
    }

    /// The O(n²) scan sharded over `std::thread::scope` threads: each
    /// thread scans the upper-triangle pairs of a strided row subset
    /// (stride balances the shrinking rows), producing per-thread edge
    /// lists merged by [`UnitDiskGraph::from_edges`] — the same total
    /// distance work as the serial scan and byte-identical output to
    /// [`UnitDiskGraph::build`].
    #[cfg(feature = "parallel")]
    pub fn build_parallel(data: &Dataset, radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        let n = data.len();
        // Below this size thread spawn/join dominates the scan.
        const MIN_PARALLEL: usize = 512;
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if threads <= 1 || n < MIN_PARALLEL {
            return Self::build(data, radius);
        }
        let edges: Vec<(ObjId, ObjId)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    s.spawn(move || {
                        let mut edges = Vec::new();
                        let mut i = t;
                        while i < n {
                            for j in (i + 1)..n {
                                if data.dist(i, j) <= radius {
                                    edges.push((i, j));
                                }
                            }
                            i += threads;
                        }
                        edges
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(edges) => edges,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        Self::from_edges(n, radius, &edges).with_permutation(data.permutation().cloned())
    }

    /// Attaches (or clears) the internal↔external id bijection — the
    /// seam for producers assembling from raw edges or snapshot arrays,
    /// where no dataset is at hand. An identity permutation normalizes
    /// to `None`.
    ///
    /// # Panics
    ///
    /// Panics when the permutation's length disagrees with the vertex
    /// count.
    pub fn with_permutation(mut self, perm: Option<Arc<IdPermutation>>) -> Self {
        if let Some(p) = &perm {
            assert_eq!(p.len(), self.len(), "permutation must cover every vertex");
        }
        self.perm = perm.filter(|p| !p.is_identity());
        self
    }

    /// The bijection from vertex (internal) ids back to the caller's
    /// external numbering; `None` when they coincide.
    pub fn permutation(&self) -> Option<&Arc<IdPermutation>> {
        self.perm.as_ref()
    }

    /// External id of vertex `v` (identity without a permutation).
    #[inline]
    pub fn external_id(&self, v: ObjId) -> ObjId {
        match &self.perm {
            Some(p) => p.external(v),
            None => v,
        }
    }

    /// Vertex (internal) id of `external` (identity without a
    /// permutation).
    #[inline]
    pub fn internal_id(&self, external: ObjId) -> ObjId {
        match &self.perm {
            Some(p) => p.internal(external),
            None => external,
        }
    }

    /// The radius the graph was built for.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Neighbours of `v` (the open neighbourhood `N_r(v)`), sorted by id.
    #[inline]
    pub fn neighbors(&self, v: ObjId) -> &[ObjId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The raw CSR row-boundary array (`n + 1` entries, first is 0).
    /// Exposed so the concurrency tests can pin byte-equality of
    /// serially and shardedly assembled graphs.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated adjacency array (each undirected edge twice;
    /// see [`UnitDiskGraph::offsets`]).
    pub fn neighbors_flat(&self) -> &[ObjId] {
        &self.neighbors
    }

    /// Degree of `v` (`|N_r(v)|`).
    #[inline]
    pub fn degree(&self, v: ObjId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree `Δ`, the Theorem 2 parameter.
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Whether `u` and `v` are adjacent (binary search on the sorted
    /// adjacency row).
    pub fn adjacent(&self, u: ObjId, v: ObjId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = ObjId> + '_ {
        0..self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::{Metric, Point};
    use disc_mtree::MTreeConfig;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    /// The Figure 3 configuration of the paper: seven objects forming the
    /// depicted graph (v1..v7 as ids 0..6). Edges: (v1,v2), (v2,v3),
    /// (v3,v4), (v4,v5), (v5,v6), (v5,v7), (v6,v7).
    pub(crate) fn figure3() -> Dataset {
        // Coordinates engineered so that exactly the listed pairs are
        // within distance 1.0.
        Dataset::new(
            "figure3",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),  // v1
                Point::new2(0.9, 0.0),  // v2
                Point::new2(1.8, 0.0),  // v3
                Point::new2(2.7, 0.0),  // v4
                Point::new2(3.6, 0.0),  // v5
                Point::new2(4.2, 0.6),  // v6
                Point::new2(4.2, -0.3), // v7
            ],
        )
    }

    /// Random data under any of the four metrics; Hamming gets
    /// categorical codes so ties and exact matches actually occur.
    fn random_data_metric(n: usize, seed: u64, metric: Metric) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| {
                if metric == Metric::Hamming {
                    Point::categorical(&[
                        rng.random_range(0..4u32),
                        rng.random_range(0..4u32),
                        rng.random_range(0..4u32),
                        rng.random_range(0..4u32),
                    ])
                } else {
                    Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0))
                }
            })
            .collect();
        Dataset::new("random", metric, pts)
    }

    #[test]
    fn figure3_edges() {
        let g = UnitDiskGraph::build(&figure3(), 1.0);
        assert_eq!(g.len(), 7);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(3), &[2, 4]);
        assert_eq!(g.neighbors(4), &[3, 5, 6]);
        assert_eq!(g.neighbors(5), &[4, 6]);
        assert_eq!(g.neighbors(6), &[4, 5]);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = UnitDiskGraph::build(&figure3(), 1.0);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(g.adjacent(u, v), g.adjacent(v, u));
            }
        }
    }

    #[test]
    fn zero_radius_yields_no_edges_for_distinct_points() {
        let g = UnitDiskGraph::build(&figure3(), 0.0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn large_radius_yields_complete_graph() {
        let data = figure3();
        let g = UnitDiskGraph::build(&data, 100.0);
        for v in g.vertices() {
            assert_eq!(g.degree(v), data.len() - 1);
        }
    }

    #[test]
    fn radius_accessor() {
        let g = UnitDiskGraph::build(&figure3(), 0.5);
        assert_eq!(g.radius(), 0.5);
        assert!(!g.is_empty());
    }

    #[test]
    fn from_edges_any_orientation_and_order() {
        // Unsorted, mixed-orientation edge list assembles the same CSR.
        let g = UnitDiskGraph::from_edges(4, 1.0, &[(2, 0), (3, 2), (0, 1)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0, 3]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn from_edges_isolated_vertices_and_empty_graph() {
        let g = UnitDiskGraph::from_edges(3, 0.5, &[]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.neighbors(1).is_empty());
        let empty = UnitDiskGraph::from_edges(0, 0.5, &[]);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

    #[test]
    fn sharded_assembly_is_byte_identical_to_serial() {
        let data = random_data_metric(300, 11, Metric::Euclidean);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        for r in [0.0, 0.05, 0.2, 2.0] {
            let edges = tree.range_self_join_serial(r);
            let serial = UnitDiskGraph::from_edges(data.len(), r, &edges);
            for shards in SHARD_COUNTS {
                let sharded = UnitDiskGraph::from_edges_sharded(data.len(), r, &edges, shards);
                assert_eq!(sharded.offsets(), serial.offsets(), "shards={shards} r={r}");
                assert_eq!(
                    sharded.neighbors_flat(),
                    serial.neighbors_flat(),
                    "shards={shards} r={r}"
                );
            }
            // More shards than vertices clamps without panicking.
            assert_eq!(
                UnitDiskGraph::from_edges_sharded(data.len(), r, &edges, data.len() + 50),
                serial
            );
        }
    }

    #[test]
    fn sharded_assembly_degenerate_inputs() {
        for shards in SHARD_COUNTS {
            // No vertices at all.
            let empty = UnitDiskGraph::from_edges_sharded(0, 0.5, &[], shards);
            assert!(empty.is_empty());
            assert_eq!(empty.offsets(), &[0]);
            // A single vertex (no possible edge).
            let one = UnitDiskGraph::from_edges_sharded(1, 0.5, &[], shards);
            assert_eq!(one.len(), 1);
            assert!(one.neighbors(0).is_empty());
            // Isolated vertices, mixed-orientation edge list.
            let g = UnitDiskGraph::from_edges_sharded(4, 1.0, &[(2, 0), (3, 2), (0, 1)], shards);
            assert_eq!(
                g,
                UnitDiskGraph::from_edges(4, 1.0, &[(2, 0), (3, 2), (0, 1)])
            );
        }
    }

    #[test]
    fn all_duplicate_points_build_complete_graph_at_radius_zero() {
        // Degenerate dataset: every point identical, so at r = 0 the
        // graph is complete. All three construction pipelines agree.
        let n = 24;
        let data = Dataset::new(
            "all-dups",
            Metric::Euclidean,
            vec![Point::new2(0.4, 0.6); n],
        );
        let reference = UnitDiskGraph::build(&data, 0.0);
        for v in reference.vertices() {
            assert_eq!(reference.degree(v), n - 1);
        }
        let tree = MTree::build(&data, MTreeConfig::with_capacity(3));
        assert_eq!(UnitDiskGraph::from_mtree(&tree, 0.0), reference);
        let edges = tree.range_self_join_serial(0.0);
        for shards in SHARD_COUNTS {
            assert_eq!(
                UnitDiskGraph::from_edges_sharded(n, 0.0, &edges, shards),
                reference
            );
        }
    }

    #[test]
    fn radius_at_least_diameter_matches_reference_complete_graph() {
        let data = random_data_metric(60, 12, Metric::Euclidean);
        // Unit-square diameter is √2 < 2.0: complete graph.
        let reference = UnitDiskGraph::build(&data, 2.0);
        for v in reference.vertices() {
            assert_eq!(reference.degree(v), data.len() - 1);
        }
        let tree = MTree::build(&data, MTreeConfig::with_capacity(5));
        assert_eq!(UnitDiskGraph::from_mtree(&tree, 2.0), reference);
        let edges = tree.range_self_join_serial(2.0);
        for shards in SHARD_COUNTS {
            assert_eq!(
                UnitDiskGraph::from_edges_sharded(data.len(), 2.0, &edges, shards),
                reference
            );
        }
    }

    #[test]
    fn from_mtree_matches_scan_on_figure3() {
        let data = figure3();
        let tree = MTree::build(&data, MTreeConfig::with_capacity(3));
        for r in [0.0, 0.5, 1.0, 2.0] {
            assert_eq!(
                UnitDiskGraph::from_mtree(&tree, r),
                UnitDiskGraph::build(&data, r),
                "r={r}"
            );
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_build_matches_serial() {
        let data = random_data_metric(700, 9, Metric::Euclidean);
        for r in [0.02, 0.1, 0.4] {
            assert_eq!(
                UnitDiskGraph::build_parallel(&data, r),
                UnitDiskGraph::build(&data, r),
                "r={r}"
            );
        }
    }

    const ALL_METRICS: [Metric; 4] = [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Hamming,
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The self-join-built CSR graph equals the O(n²) reference graph
        /// on all four metrics across random radii and tree capacities
        /// (mirror of the mtree crate's
        /// `all_variants_match_linear_scan_on_every_metric`).
        #[test]
        fn self_join_graph_matches_reference_on_every_metric(
            seed in 0u64..500,
            frac in 0.0..1.05f64,
            cap in 2usize..10,
            metric_idx in 0usize..4,
        ) {
            let metric = ALL_METRICS[metric_idx];
            let data = random_data_metric(90, seed, metric);
            let r = frac * metric.max_range(data.dim());
            let r = if metric.is_discrete() { r.floor() } else { r };
            let tree = MTree::build(&data, MTreeConfig::with_capacity(cap));
            let from_join = UnitDiskGraph::from_mtree(&tree, r);
            let reference = UnitDiskGraph::build(&data, r);
            prop_assert_eq!(&from_join, &reference, "{:?} r={}", metric, r);
            let plain = MTree::build(
                &data,
                MTreeConfig::with_capacity(cap).with_parent_pruning(false),
            );
            prop_assert_eq!(
                &UnitDiskGraph::from_mtree(&plain, r),
                &reference,
                "no lemma, {:?} r={}",
                metric,
                r
            );
        }
    }
}
