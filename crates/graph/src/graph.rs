//! The graph representation `G_{P,r}` of Section 2.2: one vertex per
//! object, an edge whenever two objects are within distance `r`.

use disc_metric::{Dataset, ObjId};

/// Undirected graph over the objects of a dataset, with an edge `(i, j)`
/// iff `dist(i, j) ≤ r` and `i ≠ j`. Adjacency lists are sorted by id.
#[derive(Clone, Debug)]
pub struct UnitDiskGraph {
    radius: f64,
    adj: Vec<Vec<ObjId>>,
}

impl UnitDiskGraph {
    /// Materialises `G_{P,r}` by examining all pairs (O(n²); intended for
    /// validation workloads and moderate result sizes).
    pub fn build(data: &Dataset, radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        let n = data.len();
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if data.dist(i, j) <= radius {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        Self { radius, adj }
    }

    /// The radius the graph was built for.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbours of `v` (the open neighbourhood `N_r(v)`), sorted by id.
    pub fn neighbors(&self, v: ObjId) -> &[ObjId] {
        &self.adj[v]
    }

    /// Degree of `v` (`|N_r(v)|`).
    pub fn degree(&self, v: ObjId) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree `Δ`, the Theorem 2 parameter.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether `u` and `v` are adjacent (binary search on the sorted
    /// adjacency list).
    pub fn adjacent(&self, u: ObjId, v: ObjId) -> bool {
        self.adj[u].binary_search(&v).is_ok()
    }

    /// Vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = ObjId> + '_ {
        0..self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::{Metric, Point};

    /// The Figure 3 configuration of the paper: seven objects forming the
    /// depicted graph (v1..v7 as ids 0..6). Edges: (v1,v2), (v2,v3),
    /// (v3,v4), (v4,v5), (v5,v6), (v5,v7), (v6,v7).
    pub(crate) fn figure3() -> Dataset {
        // Coordinates engineered so that exactly the listed pairs are
        // within distance 1.0.
        Dataset::new(
            "figure3",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),  // v1
                Point::new2(0.9, 0.0),  // v2
                Point::new2(1.8, 0.0),  // v3
                Point::new2(2.7, 0.0),  // v4
                Point::new2(3.6, 0.0),  // v5
                Point::new2(4.2, 0.6),  // v6
                Point::new2(4.2, -0.3), // v7
            ],
        )
    }

    #[test]
    fn figure3_edges() {
        let g = UnitDiskGraph::build(&figure3(), 1.0);
        assert_eq!(g.len(), 7);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(3), &[2, 4]);
        assert_eq!(g.neighbors(4), &[3, 5, 6]);
        assert_eq!(g.neighbors(5), &[4, 6]);
        assert_eq!(g.neighbors(6), &[4, 5]);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = UnitDiskGraph::build(&figure3(), 1.0);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(g.adjacent(u, v), g.adjacent(v, u));
            }
        }
    }

    #[test]
    fn zero_radius_yields_no_edges_for_distinct_points() {
        let g = UnitDiskGraph::build(&figure3(), 0.0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn large_radius_yields_complete_graph() {
        let data = figure3();
        let g = UnitDiskGraph::build(&data, 100.0);
        for v in g.vertices() {
            assert_eq!(g.degree(v), data.len() - 1);
        }
    }

    #[test]
    fn radius_accessor() {
        let g = UnitDiskGraph::build(&figure3(), 0.5);
        assert_eq!(g.radius(), 0.5);
        assert!(!g.is_empty());
    }
}
