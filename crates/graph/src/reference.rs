//! Index-free reference implementations of the paper's heuristics.
//!
//! These operate directly on the materialised [`UnitDiskGraph`] and use
//! the same deterministic tie-breaking as the M-tree implementations in
//! `disc-core` (largest white neighbourhood first, smallest id on ties),
//! so the integration tests can assert *identical* solutions between the
//! two implementations — a strong cross-validation of the much more
//! intricate index-based code.

use disc_metric::ObjId;

use crate::graph::UnitDiskGraph;

#[derive(Clone, Copy, PartialEq, Eq)]
enum C {
    White,
    Grey,
    Black,
}

/// Basic-DisC (Section 2.3): process objects in the given order; every
/// still-white object is selected and its neighbours greyed. The result is
/// a maximal independent set, hence an r-DisC diverse subset (Lemma 1).
pub fn basic_disc_ref(g: &UnitDiskGraph, order: &[ObjId]) -> Vec<ObjId> {
    assert_eq!(order.len(), g.len(), "order must cover every vertex");
    let mut color = vec![C::White; g.len()];
    let mut solution = Vec::new();
    for &v in order {
        if color[v] == C::White {
            color[v] = C::Black;
            solution.push(v);
            for &u in g.neighbors(v) {
                if color[u] == C::White {
                    color[u] = C::Grey;
                }
            }
        }
    }
    solution
}

/// Greedy-DisC (Algorithm 1): repeatedly select the white object with the
/// largest number of white neighbours (ties to the smallest id), colour it
/// black and its white neighbours grey.
pub fn greedy_disc_ref(g: &UnitDiskGraph) -> Vec<ObjId> {
    let n = g.len();
    let mut color = vec![C::White; n];
    // |N^W_r(v)| for every v; exact maintenance.
    let mut white_nb: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut remaining_white = n;
    let mut solution = Vec::new();
    while remaining_white > 0 {
        // Select the white object with the largest white neighbourhood.
        let pick = match (0..n)
            .filter(|&v| color[v] == C::White)
            .max_by(|&a, &b| white_nb[a].cmp(&white_nb[b]).then(b.cmp(&a)))
        {
            Some(v) => v,
            None => unreachable!("remaining_white > 0 implies a white object"),
        };
        color[pick] = C::Black;
        remaining_white -= 1;
        for &u in g.neighbors(pick) {
            if color[u] == C::White {
                white_nb[u] -= 1; // pick is no longer white
            }
        }
        // Grey the white neighbours, updating their neighbours' counts.
        let newly_grey: Vec<ObjId> = g
            .neighbors(pick)
            .iter()
            .copied()
            .filter(|&u| color[u] == C::White)
            .collect();
        for &u in &newly_grey {
            color[u] = C::Grey;
            remaining_white -= 1;
            for &w in g.neighbors(u) {
                if color[w] == C::White {
                    white_nb[w] -= 1;
                }
            }
        }
        solution.push(pick);
    }
    solution
}

/// Greedy-C (Section 2.3): like Greedy-DisC but the candidate pool also
/// contains grey objects, so the selection maximises the number of newly
/// covered objects even when the best candidate is already covered. The
/// result is an r-C diverse subset (covering, not necessarily
/// independent).
///
/// Selection key: white neighbours, plus one if the candidate itself is
/// still white (selecting a white object also covers the object itself —
/// without this term the greedy loop could stall on isolated white
/// objects).
pub fn greedy_c_ref(g: &UnitDiskGraph) -> Vec<ObjId> {
    let n = g.len();
    let mut color = vec![C::White; n];
    let mut white_nb: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut remaining_white = n;
    let mut solution = Vec::new();
    while remaining_white > 0 {
        let gain = |v: usize, color: &[C], white_nb: &[usize]| {
            white_nb[v] + usize::from(color[v] == C::White)
        };
        let pick = match (0..n).filter(|&v| color[v] != C::Black).max_by(|&a, &b| {
            gain(a, &color, &white_nb)
                .cmp(&gain(b, &color, &white_nb))
                .then(b.cmp(&a))
        }) {
            Some(v) => v,
            None => unreachable!("white objects remain, so candidates exist"),
        };
        if color[pick] == C::White {
            remaining_white -= 1;
            // Grey objects remain candidates in Greedy-C, so their counts
            // must be maintained too (unlike Greedy-DisC).
            for &u in g.neighbors(pick) {
                white_nb[u] = white_nb[u].saturating_sub(usize::from(color[u] != C::Black));
            }
        }
        color[pick] = C::Black;
        let newly_grey: Vec<ObjId> = g
            .neighbors(pick)
            .iter()
            .copied()
            .filter(|&u| color[u] == C::White)
            .collect();
        for &u in &newly_grey {
            color[u] = C::Grey;
            remaining_white -= 1;
        }
        for &u in &newly_grey {
            for &w in g.neighbors(u) {
                if color[w] != C::Black {
                    white_nb[w] -= 1;
                }
            }
        }
        solution.push(pick);
    }
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::{is_dominating, is_independent, is_independent_dominating};
    use disc_metric::{Dataset, Metric, Point};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn random_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::new(
            "rnd",
            Metric::Euclidean,
            (0..n)
                .map(|_| Point::new2(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                .collect(),
        )
    }

    #[test]
    fn basic_disc_produces_independent_dominating_set() {
        let data = random_data(80, 1);
        let g = UnitDiskGraph::build(&data, 0.2);
        let order: Vec<usize> = (0..80).collect();
        let s = basic_disc_ref(&g, &order);
        assert!(is_independent_dominating(&g, &s));
    }

    #[test]
    fn basic_disc_respects_order() {
        let data = random_data(50, 2);
        let g = UnitDiskGraph::build(&data, 0.15);
        let forward: Vec<usize> = (0..50).collect();
        let backward: Vec<usize> = (0..50).rev().collect();
        let a = basic_disc_ref(&g, &forward);
        let b = basic_disc_ref(&g, &backward);
        // First element of each must be the first of its order.
        assert_eq!(a[0], 0);
        assert_eq!(b[0], 49);
    }

    #[test]
    fn greedy_disc_first_pick_has_max_degree() {
        let data = random_data(60, 3);
        let g = UnitDiskGraph::build(&data, 0.25);
        let s = greedy_disc_ref(&g);
        let max_deg = g.max_degree();
        assert_eq!(g.degree(s[0]), max_deg);
        assert!(is_independent_dominating(&g, &s));
    }

    #[test]
    fn greedy_ties_break_to_smallest_id() {
        // Two isolated vertices: both degree 0; greedy must pick id 0
        // first.
        let data = Dataset::new(
            "iso",
            Metric::Euclidean,
            vec![Point::new2(0.0, 0.0), Point::new2(1.0, 1.0)],
        );
        let g = UnitDiskGraph::build(&data, 0.1);
        let s = greedy_disc_ref(&g);
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn greedy_c_covers_everything() {
        let data = random_data(70, 4);
        let g = UnitDiskGraph::build(&data, 0.2);
        let s = greedy_c_ref(&g);
        assert!(is_dominating(&g, &s));
    }

    #[test]
    fn greedy_c_terminates_on_isolated_vertices() {
        let data = Dataset::new(
            "iso3",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),
                Point::new2(5.0, 0.0),
                Point::new2(0.0, 5.0),
            ],
        );
        let g = UnitDiskGraph::build(&data, 0.5);
        let s = greedy_c_ref(&g);
        assert_eq!(s.len(), 3);
        assert!(is_dominating(&g, &s));
    }

    #[test]
    fn greedy_c_can_beat_independence_constrained_greedy() {
        // Figure 4 shape (double star with adjacent hubs): Greedy-C may
        // select the second hub even though it is grey, reaching coverage
        // with 2 objects where DisC needs 3.
        let data = Dataset::new(
            "fig4",
            Metric::Euclidean,
            vec![
                Point::new2(0.2, 0.0),
                Point::new2(1.0, 0.0),
                Point::new2(1.2, 0.9),
                Point::new2(2.8, 0.3),
                Point::new2(2.0, 0.0),
                Point::new2(2.2, -0.9),
            ],
        );
        let g = UnitDiskGraph::build(&data, 1.0);
        let c = greedy_c_ref(&g);
        let d = greedy_disc_ref(&g);
        assert!(is_dominating(&g, &c));
        assert!(is_independent_dominating(&g, &d));
        assert!(c.len() <= d.len(), "C {c:?} vs DisC {d:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Every heuristic returns a covering set; the DisC ones are also
        /// independent; and Theorem 1 holds relative to Basic-DisC in any
        /// order (both are maximal independent sets, so each is at most
        /// B times the other's size).
        #[test]
        fn heuristics_valid_on_random_inputs(seed in 0u64..5_000, r in 0.05..0.6f64, n in 5usize..60) {
            let data = random_data(n, seed);
            let g = UnitDiskGraph::build(&data, r);
            let order: Vec<usize> = (0..n).collect();

            let basic = basic_disc_ref(&g, &order);
            prop_assert!(is_independent_dominating(&g, &basic));

            let greedy = greedy_disc_ref(&g);
            prop_assert!(is_independent_dominating(&g, &greedy));
            prop_assert!(is_independent(&g, &greedy));

            let cover = greedy_c_ref(&g);
            prop_assert!(is_dominating(&g, &cover));

            // Theorem 1 with B = 5 (Euclidean, d = 2) between the two
            // maximal independent sets.
            prop_assert!(basic.len() <= 5 * greedy.len());
            prop_assert!(greedy.len() <= 5 * basic.len());
        }
    }
}
