//! Unit-disk graph substrate for DisC diversity.
//!
//! Section 2.2 of the paper formalises the Minimum r-DisC Diverse Subset
//! Problem as the **Minimum Independent Dominating Set** problem on the
//! graph `G_{P,r}` that connects two objects iff they are within distance
//! `r` (a unit-disk graph under the Euclidean metric). This crate builds
//! that graph view and provides:
//!
//! * [`UnitDiskGraph`] — CSR adjacency materialised either by an O(n²)
//!   scan over a [`disc_metric::Dataset`] (validation reference) or in
//!   bulk from one M-tree range self-join
//!   ([`UnitDiskGraph::from_mtree`]) — see [`graph`] for when to prefer
//!   the graph-resident pipeline over tree-backed execution,
//! * [`StratifiedDiskGraph`] — the radius-stratified variant: one
//!   distance-annotated self-join at the largest radius of interest,
//!   with per-row `(distance, id)`-sorted adjacency so the induced
//!   subgraph at any smaller radius is a zero-cost prefix view
//!   ([`StratifiedDiskGraph::view`]) — the substrate of the
//!   graph-resident zooming and multi-radius runners in `disc-core`,
//! * [`sets`] — the coverage/dominance and dissimilarity/independence
//!   predicates of Definition 1,
//! * [`exact`] — an exact branch-and-bound solver for the minimum
//!   independent dominating set, tractable for the small instances tests
//!   use to validate the Theorem 1/2 approximation bounds,
//! * [`mod@reference`] — index-free reference implementations of Basic-DisC,
//!   Greedy-DisC and Greedy-C with the same deterministic tie-breaking as
//!   the M-tree implementations in `disc-core`, used for cross-validation,
//! * [`jaccard`] — the Jaccard distance between solutions, the similarity
//!   measure of the zooming experiments (Figures 13 and 16).

mod csr;
pub mod error;
pub mod exact;
pub mod graph;
pub mod jaccard;
pub mod reference;
pub mod sets;
pub mod stratified;
pub mod stream;

pub use error::GraphError;
pub use exact::minimum_independent_dominating_set;
pub use graph::UnitDiskGraph;
pub use jaccard::jaccard_distance;
pub use sets::{is_dominating, is_independent, is_independent_dominating};
pub use stratified::{AssemblyBreakdown, StratifiedDiskGraph, StratifiedView};
pub use stream::{InsertReceipt, RemoveReceipt, StreamError, StreamingCatalog};
