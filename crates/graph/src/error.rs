//! Typed errors for the fallible graph entry points: checked builds,
//! raw-parts reconstruction (the load path of `disc-store`) and radius
//! validation.

use std::fmt;

use disc_metric::cancel::Cancelled;
use disc_mtree::JoinError;

/// Why a checked graph operation refused to run, stopped early, or
/// rejected its input. Reconstruction from untrusted raw CSR arrays
/// ([`crate::StratifiedDiskGraph::from_csr_parts`]) validates every
/// structural invariant the query paths rely on and names the first
/// violation precisely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphError {
    /// A radius argument was NaN or negative.
    InvalidRadius(f64),
    /// A view/cutoff radius exceeded the build radius `r_max` — edges
    /// beyond it were never materialised, so answering would silently
    /// drop neighbours.
    RadiusExceedsBuild {
        /// The requested radius.
        r: f64,
        /// The radius the graph was built for.
        r_max: f64,
    },
    /// The supplied [`disc_metric::CancelToken`] fired before the build
    /// completed.
    Cancelled,
    /// The offsets array was empty (a valid CSR has `n + 1 ≥ 1` row
    /// boundaries).
    EmptyOffsets,
    /// The first row boundary was not 0.
    OffsetsStart {
        /// The value found at `offsets[0]`.
        found: usize,
    },
    /// Row boundaries must be non-decreasing; row `row`'s end precedes
    /// its start.
    OffsetsNotMonotone {
        /// First row whose boundaries decrease.
        row: usize,
    },
    /// `neighbors`/`dists` length disagrees with the final offset.
    ArrayLengthMismatch {
        /// Directed entry count promised by `offsets[n]`.
        expected: usize,
        /// Length of the neighbors array.
        neighbors: usize,
        /// Length of the dists array.
        dists: usize,
    },
    /// A neighbor id references a vertex outside `0..n`.
    NeighborOutOfRange {
        /// Row holding the bad entry.
        row: usize,
        /// Flat index of the bad entry.
        index: usize,
        /// The out-of-range id.
        id: usize,
    },
    /// A row lists its own vertex as a neighbor.
    SelfLoop {
        /// Row holding the loop.
        row: usize,
        /// Flat index of the loop entry.
        index: usize,
    },
    /// A row is not strictly sorted by `(total_cmp(dist), id)` — the
    /// order every prefix query (cutoff binary search) relies on.
    RowNotSorted {
        /// First row that breaks the order.
        row: usize,
        /// Flat index of the out-of-order entry.
        index: usize,
    },
    /// An edge distance is NaN, negative, or exceeds the build radius.
    DistanceOutOfRange {
        /// Row holding the bad entry.
        row: usize,
        /// Flat index of the bad entry.
        index: usize,
        /// The offending distance.
        value: f64,
    },
    /// A streaming mutation addressed a vertex outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        id: usize,
        /// Current vertex count.
        len: usize,
    },
    /// A streaming insert listed the same neighbor twice.
    DuplicateNeighbor {
        /// The repeated neighbor id.
        id: usize,
    },
    /// A streaming insert reused an external id that is already mapped.
    DuplicateExternalId {
        /// The colliding external id.
        id: usize,
    },
    /// A streaming delete would empty the graph (the id bijection cannot
    /// represent zero vertices, and a dataset is never empty either).
    LastVertex,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRadius(r) => {
                write!(f, "radius must be finite and non-negative, got {r}")
            }
            Self::RadiusExceedsBuild { r, r_max } => write!(
                f,
                "radius {r} exceeds the build radius {r_max}; edges beyond r_max were never materialised"
            ),
            Self::Cancelled => f.write_str("graph build cancelled before completion"),
            Self::EmptyOffsets => f.write_str("CSR offsets array is empty"),
            Self::OffsetsStart { found } => {
                write!(f, "CSR offsets must start at 0, found {found}")
            }
            Self::OffsetsNotMonotone { row } => {
                write!(f, "CSR offsets decrease at row {row}")
            }
            Self::ArrayLengthMismatch {
                expected,
                neighbors,
                dists,
            } => write!(
                f,
                "CSR arrays disagree: offsets promise {expected} entries, neighbors has {neighbors}, dists has {dists}"
            ),
            Self::NeighborOutOfRange { row, index, id } => {
                write!(f, "row {row} entry {index}: neighbor id {id} out of range")
            }
            Self::SelfLoop { row, index } => {
                write!(f, "row {row} entry {index}: self-loop")
            }
            Self::RowNotSorted { row, index } => write!(
                f,
                "row {row} entry {index}: row not strictly (distance, id)-sorted"
            ),
            Self::DistanceOutOfRange { row, index, value } => write!(
                f,
                "row {row} entry {index}: distance {value} outside [0, r_max]"
            ),
            Self::VertexOutOfRange { id, len } => {
                write!(f, "vertex id {id} is outside 0..{len}")
            }
            Self::DuplicateNeighbor { id } => {
                write!(f, "neighbor id {id} listed more than once")
            }
            Self::DuplicateExternalId { id } => {
                write!(f, "external id {id} is already mapped to a live vertex")
            }
            Self::LastVertex => f.write_str("cannot remove the last remaining vertex"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<Cancelled> for GraphError {
    fn from(_: Cancelled) -> Self {
        Self::Cancelled
    }
}

impl From<JoinError> for GraphError {
    fn from(e: JoinError) -> Self {
        match e {
            JoinError::InvalidRadius(r) => Self::InvalidRadius(r),
            JoinError::Cancelled => Self::Cancelled,
        }
    }
}
