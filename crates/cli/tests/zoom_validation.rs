//! Pins `disc zoom` radius-chain validation (stable exit code 2).
//!
//! A sweep is only meaningful over strictly descending radii — the
//! zoom-in chain refines the solution at radius r into the solution at
//! r' < r. Non-descending or duplicate chains, and radii outside
//! `(0, r_max]`, used to slip through to the solvers; they are now a
//! typed [`disc_cli::CliError::Usage`] before any solve starts.

use disc_cli::error::EXIT_USAGE;
use disc_graph::StratifiedDiskGraph;

const R_MAX: f64 = 0.3;

fn snapshot_file(tag: &str) -> std::path::PathBuf {
    let data = disc_datasets::synthetic::clustered(200, 2, 4, 7);
    let graph = StratifiedDiskGraph::build(&data, R_MAX);
    let dir = std::env::temp_dir().join("disc-cli-zoom-validation");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}-{}.snap", std::process::id()));
    disc_store::write_snapshot(&path, &data, &graph).expect("write snapshot");
    path
}

fn run_zoom(snapshot: &std::path::Path, radii_flag: &str, radii: &str) -> Result<(), i32> {
    let argv: Vec<String> = [
        "zoom",
        "--snapshot",
        &snapshot.display().to_string(),
        radii_flag,
        radii,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    disc_cli::run(&argv).map_err(|e| e.exit_code())
}

#[test]
fn non_descending_or_duplicate_radius_chains_are_usage_errors() {
    let path = snapshot_file("chains");

    // Ascending chain.
    assert_eq!(
        run_zoom(&path, "--radii", "0.05,0.1,0.2"),
        Err(EXIT_USAGE),
        "ascending chain must be rejected"
    );
    // One non-descending step inside an otherwise-descending chain.
    assert_eq!(
        run_zoom(&path, "--radii", "0.2,0.05,0.1"),
        Err(EXIT_USAGE),
        "a single ascending step must be rejected"
    );
    // Duplicate radii.
    assert_eq!(
        run_zoom(&path, "--radii", "0.2,0.1,0.1"),
        Err(EXIT_USAGE),
        "duplicate radii must be rejected"
    );
    // Out-of-range radii are the same typed family, before any solve.
    assert_eq!(
        run_zoom(&path, "--radius", "0"),
        Err(EXIT_USAGE),
        "zero radius must be rejected"
    );
    assert_eq!(
        run_zoom(&path, "--radius", "0.6"),
        Err(EXIT_USAGE),
        "radius beyond r_max must be rejected"
    );
    assert_eq!(
        run_zoom(&path, "--radii", "0.2,0.1,-0.05"),
        Err(EXIT_USAGE),
        "negative radius must be rejected"
    );

    // Valid invocations still run: a single radius and a strictly
    // descending chain.
    assert_eq!(run_zoom(&path, "--radius", "0.1"), Ok(()));
    assert_eq!(run_zoom(&path, "--radii", "0.2,0.1,0.05"), Ok(()));

    let _ = std::fs::remove_file(&path);
}
