//! Serve-under-fault acceptance suite.
//!
//! Pins the hardened serving contract end to end:
//!
//! - a fault-injected snapshot is rejected at startup with the owning
//!   section named (exit-code family 3), never opened partially;
//! - deadline-expired requests come back `cancelled` with exact
//!   counters and no partial state (the cache stays clean);
//! - one panicking request does not take down the pool — requests
//!   after the panic are served;
//! - saturation sheds with a typed overload reply, or serves degraded
//!   from cache when the radius was answered before;
//! - served solutions are byte-identical to the in-process
//!   graph-resident runners at every radius, including through the
//!   stdin/stdout line protocol.

use std::io::Cursor;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use disc_cli::error::CliError;
use disc_cli::serve::{parse_line, run_lines, LineCmd, ServeConfig, Server, Sink};
use disc_cli::state::ServeState;
use disc_cli::worker::{solution_hash, Op, Outcome, Reply, Request};
use disc_core::{greedy_disc_graph, greedy_zoom_in_graph};
use disc_graph::StratifiedDiskGraph;
use disc_store::fault::{corrupt, Fault};
use disc_store::SectionId;

const R_MAX: f64 = 0.3;

fn dataset() -> disc_metric::Dataset {
    disc_datasets::synthetic::clustered(400, 2, 4, 7)
}

/// Writes a small clean snapshot to a fresh temp path.
fn snapshot_file(tag: &str) -> std::path::PathBuf {
    let data = dataset();
    let graph = StratifiedDiskGraph::build(&data, R_MAX);
    let dir = std::env::temp_dir().join("disc-cli-serve-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}-{}.snap", std::process::id()));
    disc_store::write_snapshot(&path, &data, &graph).expect("write snapshot");
    path
}

fn open(tag: &str) -> Arc<ServeState> {
    let path = snapshot_file(tag);
    let state = ServeState::open(&path).expect("clean snapshot opens");
    let _ = std::fs::remove_file(&path);
    state
}

/// A sink that collects replies and lets tests wait for a count.
#[derive(Default)]
struct Collect {
    replies: Mutex<Vec<(u64, &'static str, String)>>,
    arrived: Condvar,
}

impl Collect {
    fn wait_for(&self, n: usize, timeout: Duration) -> Vec<(u64, &'static str, String)> {
        let deadline = Instant::now() + timeout;
        let mut replies = self.replies.lock().expect("collect lock");
        while replies.len() < n {
            let left = deadline.saturating_duration_since(Instant::now());
            assert!(!left.is_zero(), "timed out waiting for {n} replies");
            let (guard, _) = self
                .arrived
                .wait_timeout(replies, left)
                .expect("collect wait");
            replies = guard;
        }
        replies.clone()
    }
}

fn status_of(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Zoomed {
            cached, degraded, ..
        } => format!("ok cached={cached} degraded={degraded}"),
        Outcome::Swept { .. } => "ok".into(),
        Outcome::Slept { .. } => "ok".into(),
        Outcome::Inserted { invalidated, .. } => format!("inserted invalidated={invalidated}"),
        Outcome::Deleted { invalidated, .. } => format!("deleted invalidated={invalidated}"),
        Outcome::Cancelled => "cancelled".into(),
        Outcome::Panicked => "panicked".into(),
        Outcome::Shed { .. } => "shed".into(),
        Outcome::Failed { error } => format!("error: {error}"),
    }
}

impl Sink for Collect {
    fn deliver(&self, reply: &Reply) {
        self.replies.lock().expect("collect lock").push((
            reply.id,
            reply.op,
            status_of(&reply.outcome),
        ));
        self.arrived.notify_all();
    }

    fn info(&self, _line: &str) {}
}

fn zoom(id: u64, radius: f64) -> Request {
    Request {
        id,
        op: Op::Zoom { radius },
        deadline: None,
    }
}

fn sleep_req(id: u64, ms: u64) -> Request {
    Request {
        id,
        op: Op::Sleep { ms },
        deadline: None,
    }
}

// ------------------------------------------------------------------
// Startup: fault-injected snapshots are typed rejections.
// ------------------------------------------------------------------

#[test]
fn corrupted_snapshot_rejected_at_startup_naming_the_section() {
    let path = snapshot_file("startup-reject");
    let bytes = std::fs::read(&path).expect("read snapshot back");
    // Coords payload starts at byte 328 in the v2 layout.
    let bad = corrupt(
        &bytes,
        Fault::BitFlip {
            offset: 360,
            bit: 4,
        },
    );
    let bad_path = path.with_extension("corrupt.snap");
    std::fs::write(&bad_path, &bad).expect("write corrupted copy");

    let err = match ServeState::open(&bad_path) {
        Err(e) => e,
        Ok(_) => unreachable!("corrupted snapshot must not open"),
    };
    assert_eq!(err.exit_code(), 3, "corrupt snapshot is exit-code 3");
    match &err {
        CliError::Store(disc_store::StoreError::ChecksumMismatch { section, .. }) => {
            assert_eq!(*section, SectionId::Coords)
        }
        other => unreachable!("expected coords checksum mismatch, got {other:?}"),
    }
    assert!(
        err.to_string().contains("coords"),
        "message must name the owning section: {err}"
    );

    // Truncation and version skew are equally typed at startup.
    let cut = corrupt(&bytes, Fault::TruncateAt(bytes.len() - 8));
    std::fs::write(&bad_path, &cut).expect("write truncated copy");
    let err = ServeState::open(&bad_path)
        .err()
        .expect("truncated rejected");
    assert_eq!(err.exit_code(), 3);

    let skew = corrupt(&bytes, Fault::VersionSkew(9));
    std::fs::write(&bad_path, &skew).expect("write skewed copy");
    let err = ServeState::open(&bad_path).err().expect("skew rejected");
    assert_eq!(err.exit_code(), 3);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&bad_path);
}

// ------------------------------------------------------------------
// Parity: served solutions == in-process graph-resident runners.
// ------------------------------------------------------------------

#[test]
fn served_solutions_are_byte_identical_to_in_process_runners() {
    let state = open("parity");
    let sink = Arc::new(Collect::default());
    let server = Server::start(
        Arc::clone(&state),
        ServeConfig {
            workers: 3,
            queue: 16,
            cache: 16,
        },
        Arc::<Collect>::clone(&sink) as Arc<dyn Sink>,
    );

    // In-process references, exactly the functions serving uses: a
    // standalone zoom at r is the full greedy runner at r; a sweep is
    // full greedy at the top radius then the zoom-in chain.
    let radii = [0.3, 0.15, 0.075];
    let cat = state.catalog();
    let standalone: Vec<_> = radii
        .iter()
        .map(|&r| greedy_disc_graph(&cat.graph().view(r).to_unit_disk_graph()))
        .collect();
    let top = standalone[0].clone();
    let mid = greedy_zoom_in_graph(cat.graph(), &top, radii[1]).result;
    let low = greedy_zoom_in_graph(cat.graph(), &mid, radii[2]).result;
    drop(cat);
    let chain = [&top, &mid, &low];

    for (i, &r) in radii.iter().enumerate() {
        server.submit(zoom(i as u64, r));
    }
    // A sweep must reproduce the identical chain in one request.
    server.submit(Request {
        id: 99,
        op: Op::Sweep {
            radii: radii.to_vec(),
        },
        deadline: None,
    });
    assert!(server.drain(Duration::from_secs(30)), "pool drains");

    // Compare through the solver API (the sink only carries statuses;
    // solutions are checked against a direct worker call).
    for (i, (&r, want)) in radii.iter().zip(&standalone).enumerate() {
        let got = disc_cli::worker::solve_zoom(&state, r, None).expect("solve");
        assert_eq!(got.solution, want.solution, "radius {r} (index {i})");
        assert_eq!(got.hash, solution_hash(&want.solution));
    }
    let sweep = disc_cli::worker::solve_sweep(&state, &radii, None).expect("sweep");
    for (step, want) in sweep.iter().zip(chain) {
        assert_eq!(step.solution, want.solution);
    }

    let snap = server.shutdown();
    assert_eq!(snap.submitted, 4);
    assert_eq!(snap.admitted, 4);
    assert_eq!(snap.completed, 4);
    assert_eq!(
        snap.shed + snap.degraded + snap.cancelled + snap.panicked + snap.failed,
        0
    );
    assert!(snap.is_consistent(), "{snap:?}");
    // The zoom at 0.3 ran before the sweep cached anything or after —
    // either way every reply was an ok.
    let replies = sink.wait_for(4, Duration::from_secs(1));
    assert!(replies.iter().all(|(_, _, s)| s.starts_with("ok")));
}

// ------------------------------------------------------------------
// Deadlines: expiry in queue and mid-scan, counters exact, no
// partial state.
// ------------------------------------------------------------------

#[test]
fn expired_deadlines_cancel_cleanly_with_exact_counters() {
    let state = open("deadline");
    let sink = Arc::new(Collect::default());
    let server = Server::start(
        Arc::clone(&state),
        ServeConfig {
            workers: 1,
            queue: 8,
            cache: 8,
        },
        Arc::<Collect>::clone(&sink) as Arc<dyn Sink>,
    );

    // Occupy the single worker long enough that the deadlined request
    // expires while queued.
    server.submit(sleep_req(1, 120));
    server.submit(Request {
        id: 2,
        op: Op::Zoom { radius: 0.1 },
        deadline: Some(Instant::now() + Duration::from_millis(10)),
    });
    // A mid-scan expiry: the sleep op polls its token every millisecond.
    server.submit(Request {
        id: 3,
        op: Op::Sleep { ms: 10_000 },
        deadline: Some(Instant::now() + Duration::from_millis(180)),
    });
    assert!(server.drain(Duration::from_secs(30)), "pool drains");

    let replies = sink.wait_for(3, Duration::from_secs(1));
    let status = |id: u64| {
        replies
            .iter()
            .find(|(rid, _, _)| *rid == id)
            .map(|(_, _, s)| s.clone())
            .expect("reply present")
    };
    assert_eq!(status(1), "ok");
    assert_eq!(status(2), "cancelled", "queue-expired request");
    assert_eq!(status(3), "cancelled", "mid-scan-expired request");

    let snap = server.shutdown();
    assert_eq!(snap.submitted, 3);
    assert_eq!(snap.admitted, 3);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.cancelled, 2);
    assert_eq!(snap.failed + snap.panicked + snap.shed + snap.degraded, 0);
    assert!(snap.is_consistent(), "{snap:?}");

    // No partial state: the cancelled zoom must not have populated the
    // cache — a fresh zoom at the same radius is computed, not cached.
    let fresh = disc_cli::worker::solve_zoom(&state, 0.1, None).expect("solve");
    let reference = greedy_disc_graph(&state.catalog().graph().view(0.1).to_unit_disk_graph());
    assert_eq!(fresh.solution, reference.solution);
}

// ------------------------------------------------------------------
// Panic isolation: the pool survives and keeps serving.
// ------------------------------------------------------------------

#[test]
fn panicking_request_does_not_kill_the_pool() {
    let state = open("panic");
    let sink = Arc::new(Collect::default());
    let server = Server::start(
        Arc::clone(&state),
        ServeConfig {
            workers: 1,
            queue: 8,
            cache: 8,
        },
        Arc::<Collect>::clone(&sink) as Arc<dyn Sink>,
    );

    server.submit(Request {
        id: 1,
        op: Op::Panic,
        deadline: None,
    });
    // Served-after-panic: the same single worker must answer this.
    server.submit(zoom(2, 0.1));
    assert!(server.drain(Duration::from_secs(30)), "pool drains");

    let replies = sink.wait_for(2, Duration::from_secs(1));
    assert_eq!(replies[0].2, "panicked");
    assert!(
        replies[1].2.starts_with("ok"),
        "served after panic: {replies:?}"
    );

    let snap = server.shutdown();
    assert_eq!(snap.panicked, 1);
    assert_eq!(snap.completed, 1);
    assert!(snap.is_consistent(), "{snap:?}");
}

// ------------------------------------------------------------------
// Saturation: typed shed, degraded cache service.
// ------------------------------------------------------------------

#[test]
fn saturation_sheds_typed_and_serves_degraded_from_cache() {
    let state = open("saturate");
    let sink = Arc::new(Collect::default());
    let server = Server::start(
        Arc::clone(&state),
        ServeConfig {
            workers: 1,
            queue: 1,
            cache: 8,
        },
        Arc::<Collect>::clone(&sink) as Arc<dyn Sink>,
    );

    // Warm the cache while the pool is idle.
    server.submit(zoom(1, 0.1));
    assert!(server.drain(Duration::from_secs(30)), "warm-up drains");

    // Saturate: one sleep occupies the worker, one fills the queue.
    server.submit(sleep_req(2, 250));
    std::thread::sleep(Duration::from_millis(50)); // worker picked up #2
    server.submit(sleep_req(3, 1));

    // Queue now full: a cached radius is served degraded...
    server.submit(zoom(4, 0.1));
    // ...an uncached radius is shed with the typed overload reply.
    server.submit(zoom(5, 0.2));

    // Degraded and shed replies are delivered synchronously by submit.
    let replies = sink.wait_for(3, Duration::from_secs(1));
    let status = |id: u64| {
        replies
            .iter()
            .find(|(rid, _, _)| *rid == id)
            .map(|(_, _, s)| s.clone())
            .expect("reply present")
    };
    assert_eq!(status(4), "ok cached=true degraded=true");
    assert_eq!(status(5), "shed");

    assert!(server.drain(Duration::from_secs(30)), "pool drains");
    let snap = server.shutdown();
    assert_eq!(snap.submitted, 5);
    assert_eq!(snap.admitted, 3);
    assert_eq!(snap.degraded, 1);
    assert_eq!(snap.shed, 1);
    assert_eq!(snap.completed, 3);
    assert!(snap.cache_hits >= 1);
    assert!(snap.is_consistent(), "{snap:?}");

    // The typed error behind the wire reply carries the capacity.
    let overload = CliError::Overloaded { capacity: 1 };
    assert_eq!(overload.exit_code(), 9);
}

// ------------------------------------------------------------------
// Line protocol end to end.
// ------------------------------------------------------------------

#[test]
fn line_protocol_round_trips_and_matches_runner_hashes() {
    let state = open("protocol");
    let cat = state.catalog();
    let reference = greedy_disc_graph(&cat.graph().view(0.1).to_unit_disk_graph());
    let want_hash = format!("{:#018x}", solution_hash(&reference.solution));
    // The sweep's 0.1 step continues the chain from 0.2 — a different
    // solution (and hash) than the standalone zoom at 0.1.
    let sweep_top = greedy_disc_graph(&cat.graph().view(0.2).to_unit_disk_graph());
    let sweep_step = greedy_zoom_in_graph(cat.graph(), &sweep_top, 0.1).result;
    let sweep_hash = format!("{:#018x}", solution_hash(&sweep_step.solution));
    drop(cat);

    // One worker keeps execution strictly FIFO, so the mutations run
    // after the zoom/sweep solves and cannot perturb their hashes.
    let input = Cursor::new(
        "id=1 zoom r=0.1\n\
         id=2 sweep radii=0.2,0.1\n\
         this is not a command\n\
         id=3 panic\n\
         id=4 insert coords=0.5,0.5\n\
         id=5 delete ext=0\n\
         stats\n\
         quit\n",
    );
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::new(disc_cli::serve::JsonSink::new(Arc::clone(&out)));
    let snap = run_lines(
        state,
        ServeConfig {
            workers: 1,
            queue: 8,
            cache: 8,
        },
        input,
        sink,
    )
    .expect("serve loop runs");

    assert_eq!(snap.submitted, 5);
    assert_eq!(snap.completed, 4);
    assert_eq!(snap.panicked, 1);
    assert!(snap.is_consistent(), "{snap:?}");

    let text = String::from_utf8(out.lock().expect("out lock").clone()).expect("utf8");
    assert!(text.contains("\"op\":\"ready\""), "{text}");
    assert!(
        text.contains(&want_hash),
        "zoom hash must match in-process: {text}"
    );
    assert!(
        text.contains(&sweep_hash),
        "sweep chain hash must match in-process: {text}"
    );
    assert!(text.contains("\"status\":\"panicked\""), "{text}");
    assert!(
        text.contains("\"op\":\"insert\",\"status\":\"ok\",\"external\":400"),
        "insert takes the next external id: {text}"
    );
    assert!(
        text.contains("\"op\":\"delete\",\"status\":\"ok\",\"external\":0"),
        "delete echoes the tombstoned id: {text}"
    );
    assert!(
        text.contains("\"op\":\"parse\""),
        "malformed line reported: {text}"
    );
    assert!(text.contains("\"op\":\"stats\""), "{text}");

    // parse_line grammar corners.
    assert!(matches!(parse_line("stats"), Ok(LineCmd::Stats)));
    assert!(matches!(parse_line("quit"), Ok(LineCmd::Quit)));
    assert!(parse_line("id=1 zoom").is_err(), "zoom needs r=");
    assert!(parse_line("zoom r=0.1").is_err(), "id required");
    assert!(parse_line("id=1 warp r=0.1").is_err(), "unknown op");
    assert!(parse_line("id=1 insert").is_err(), "insert needs coords=");
    assert!(parse_line("id=1 delete").is_err(), "delete needs ext=");
    assert!(parse_line("id=1 delete ext=zap").is_err(), "ext is a u64");
    assert!(
        matches!(
            parse_line("id=1 insert coords=0.5,0.5"),
            Ok(LineCmd::Request(Request {
                op: Op::Insert { .. },
                ..
            }))
        ),
        "insert parses"
    );
    assert!(
        matches!(
            parse_line("id=1 delete ext=7"),
            Ok(LineCmd::Request(Request {
                op: Op::Delete { external: 7 },
                ..
            }))
        ),
        "delete parses"
    );
}

// ------------------------------------------------------------------
// Born-expired deadlines: clean shed through `cancelled` at submit.
// ------------------------------------------------------------------

#[test]
fn born_expired_requests_never_reach_a_worker_or_the_cache() {
    let state = open("born-expired");
    let sink = Arc::new(Collect::default());
    let server = Server::start(
        Arc::clone(&state),
        ServeConfig {
            workers: 1,
            queue: 1,
            cache: 8,
        },
        Arc::<Collect>::clone(&sink) as Arc<dyn Sink>,
    );

    // Occupy the single worker and fill the single queue slot, so a
    // request that consumed a slot here would have to be shed.
    server.submit(sleep_req(1, 200));
    std::thread::sleep(Duration::from_millis(50)); // worker picked up #1
    server.submit(sleep_req(2, 1));

    // Born expired (0 ms budget): answered `cancelled` synchronously at
    // submit — no queue slot, no worker, no cache write.
    server.submit(Request {
        id: 3,
        op: Op::Zoom { radius: 0.1 },
        deadline: Some(Instant::now()),
    });
    let replies = sink.wait_for(1, Duration::from_secs(1));
    let born = replies
        .iter()
        .find(|(rid, _, _)| *rid == 3)
        .expect("synchronous reply");
    assert_eq!(born.2, "cancelled");

    assert!(server.drain(Duration::from_secs(30)), "pool drains");

    // The per-radius LRU stays unpolluted: a later zoom at the same
    // radius is computed, not served from cache.
    server.submit(zoom(4, 0.1));
    assert!(server.drain(Duration::from_secs(30)), "follow-up drains");
    let replies = sink.wait_for(4, Duration::from_secs(1));
    let status = |id: u64| {
        replies
            .iter()
            .find(|(rid, _, _)| *rid == id)
            .map(|(_, _, s)| s.clone())
            .expect("reply present")
    };
    assert_eq!(status(4), "ok cached=false degraded=false");

    let snap = server.shutdown();
    assert_eq!(snap.submitted, 4);
    assert_eq!(snap.admitted, 4);
    assert_eq!(snap.completed, 3);
    assert_eq!(snap.cancelled, 1);
    // shed == 0 proves the born-expired request consumed no queue slot:
    // the queue was full the moment it arrived.
    assert_eq!(snap.shed + snap.degraded + snap.failed + snap.panicked, 0);
    assert_eq!(snap.cache_hits, 0, "the cancelled zoom touched no cache");
    assert!(snap.is_consistent(), "{snap:?}");
}

// ------------------------------------------------------------------
// Streaming mutations: only the affected radii leave the cache.
// ------------------------------------------------------------------

#[test]
fn mutations_invalidate_only_the_affected_radii() {
    let state = open("mutate");
    let sink = Arc::new(Collect::default());
    let server = Server::start(
        Arc::clone(&state),
        ServeConfig {
            workers: 1,
            queue: 8,
            cache: 8,
        },
        Arc::<Collect>::clone(&sink) as Arc<dyn Sink>,
    );

    // Warm the cache at one radius, then pick a selected (black) and a
    // merely-covered (grey) object plus the black's coordinates.
    let r = 0.12;
    server.submit(zoom(1, r));
    assert!(server.drain(Duration::from_secs(30)), "warm-up drains");
    let solution = disc_cli::worker::solve_zoom(&state, r, None)
        .expect("solve")
        .solution
        .clone();
    let black = solution[0];
    let (grey, black_coords) = {
        let cat = state.catalog();
        let grey = cat
            .live_externals()
            .into_iter()
            .find(|e| !solution.contains(e))
            .expect("some live object is unselected");
        let v = cat.internal_of(black).expect("selected object is live");
        let dim = cat.data().dim();
        let coords = cat.data().flat_coords()[v * dim..(v + 1) * dim].to_vec();
        (grey, coords)
    };

    // FIFO through the single worker: each mutation lands before the
    // zoom probing the cache behind it.
    server.submit(Request {
        id: 2,
        op: Op::Insert {
            coords: black_coords,
        },
        deadline: None,
    });
    server.submit(zoom(3, r));
    server.submit(Request {
        id: 4,
        op: Op::Delete { external: grey },
        deadline: None,
    });
    server.submit(zoom(5, r));
    server.submit(Request {
        id: 6,
        op: Op::Delete { external: black },
        deadline: None,
    });
    server.submit(zoom(7, r));
    server.submit(Request {
        id: 8,
        op: Op::Delete {
            external: 1_000_000,
        },
        deadline: None,
    });
    assert!(server.drain(Duration::from_secs(30)), "pool drains");

    let replies = sink.wait_for(8, Duration::from_secs(1));
    let status = |id: u64| {
        replies
            .iter()
            .find(|(rid, _, _)| *rid == id)
            .map(|(_, _, s)| s.clone())
            .expect("reply present")
    };
    // A duplicate of a selected object is covered at distance zero:
    // the cached cover stays valid.
    assert_eq!(status(2), "inserted invalidated=0");
    assert_eq!(status(3), "ok cached=true degraded=false");
    // Deleting a grey removes a covered object; nothing breaks.
    assert_eq!(status(4), "deleted invalidated=0");
    assert_eq!(status(5), "ok cached=true degraded=false");
    // Deleting the black breaks every cover that selected it.
    assert_eq!(status(6), "deleted invalidated=1");
    assert_eq!(status(7), "ok cached=false degraded=false");
    // An unknown external id is a typed failure reply, not a panic.
    assert!(status(8).starts_with("error:"), "{replies:?}");

    let snap = server.shutdown();
    assert_eq!(snap.submitted, 8);
    assert_eq!(snap.admitted, 8);
    assert_eq!(snap.completed, 7);
    assert_eq!(snap.failed, 1);
    assert!(snap.is_consistent(), "{snap:?}");

    // The post-mutation answer is byte-identical to a fresh in-process
    // solve over the mutated catalog.
    let fresh = disc_cli::worker::solve_zoom(&state, r, None).expect("solve");
    let reference = greedy_disc_graph(&state.catalog().graph().view(r).to_unit_disk_graph());
    assert_eq!(fresh.solution, reference.solution);
}

// ------------------------------------------------------------------
// Graph-level request errors are typed failures, not panics.
// ------------------------------------------------------------------

#[test]
fn out_of_range_radius_is_a_typed_failure() {
    let state = open("bad-radius");
    let err = match disc_cli::worker::solve_zoom(&state, R_MAX * 2.0, None) {
        Err(e) => e,
        Ok(_) => unreachable!("radius beyond r_max must fail"),
    };
    assert_eq!(err.exit_code(), 5, "graph error family: {err}");

    // And through the pool it becomes a status=error reply.
    let sink = Arc::new(Collect::default());
    let server = Server::start(
        state,
        ServeConfig::default(),
        Arc::<Collect>::clone(&sink) as Arc<dyn Sink>,
    );
    server.submit(zoom(1, R_MAX * 2.0));
    assert!(server.drain(Duration::from_secs(30)));
    let replies = sink.wait_for(1, Duration::from_secs(1));
    assert!(replies[0].2.starts_with("error:"), "{replies:?}");
    let snap = server.shutdown();
    assert_eq!(snap.failed, 1);
    assert!(snap.is_consistent());
}

// ------------------------------------------------------------------
// Streaming mutations surface their repair drift in the counters.
// ------------------------------------------------------------------

#[test]
fn mutation_drift_accumulates_into_the_stats_counter() {
    use disc_metric::{Dataset, Metric, Point};

    // Three isolated points at r_max = 1.0: the maintained cover
    // selects every object, so each mutation's drift is hand-checkable.
    let data = Dataset::new(
        "drift-test",
        Metric::Euclidean,
        vec![
            Point::new2(0.0, 0.0),
            Point::new2(10.0, 0.0),
            Point::new2(20.0, 0.0),
        ],
    );
    let graph = StratifiedDiskGraph::build(&data, 1.0);
    let catalog = disc_graph::StreamingCatalog::try_new(data, graph).expect("fresh pair");
    let state = ServeState::from_catalog(catalog);

    let sink = Arc::new(Collect::default());
    let server = Server::start(
        Arc::clone(&state),
        ServeConfig {
            workers: 1,
            queue: 16,
            cache: 4,
        },
        Arc::<Collect>::clone(&sink) as Arc<dyn Sink>,
    );

    let insert = |id: u64, x: f64, y: f64| Request {
        id,
        op: Op::Insert { coords: vec![x, y] },
        deadline: None,
    };
    // external 3 — first mutation bootstraps the tracker from the
    // post-insert catalog: no prior selection to drift from.
    server.submit(insert(1, 30.0, 0.0));
    // external 4 — isolated, promoted to a new black: drift 1.
    server.submit(insert(2, 40.0, 0.0));
    // external 5 — covered by 4's black at distance 0.1: drift 0.
    server.submit(insert(3, 40.1, 0.0));
    // Deleting the black at (40, 0) unselects it and re-promotes its
    // orphaned neighbour 5: drift 2.
    server.submit(Request {
        id: 4,
        op: Op::Delete { external: 4 },
        deadline: None,
    });
    assert!(server.drain(Duration::from_secs(30)), "pool drains");
    let snap = server.shutdown();
    assert_eq!(snap.completed, 4);
    assert_eq!(snap.drift, 3, "{snap:?}");
    assert!(snap.is_consistent(), "{snap:?}");
    assert!(
        disc_cli::serve::render_stats(&snap).contains("\"drift\":3"),
        "the stats line carries the cumulative drift"
    );
}
