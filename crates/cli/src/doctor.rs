//! `disc doctor`: render a [`SnapshotReport`] for a human holding a
//! damaged file.
//!
//! The triage itself lives in [`disc_store::inspect`] — same layout
//! knowledge as the loader, no fail-fast, verdict pinned to
//! [`disc_store::load`]. This module only formats: one line per
//! checksummed region using the store's canonical section names
//! (`header`, `section table`, `meta`, `coords`, `offsets`,
//! `neighbors`, `dists`, `name`), the header diagnosis, and a final
//! `verdict:` line a script can grep.

use disc_store::{SectionCheck, SnapshotReport, ENDIAN_MARKER, STREAM_VERSION, VERSION};

fn render_check(check: &SectionCheck) -> String {
    let status = match check.computed {
        Some(computed) if computed == check.stored => "ok".to_string(),
        Some(computed) => format!(
            "MISMATCH (stored {:#018x}, computed {computed:#018x})",
            check.stored
        ),
        None => "MISSING (extends past end of file)".to_string(),
    };
    format!(
        "  {:<14} offset {:>8}  len {:>10}  {status}",
        check.section.to_string(),
        check.offset,
        check.len
    )
}

/// Renders the full doctor report. The last line is always
/// `verdict: clean` or `verdict: REJECTED: <reason>` — what a serving
/// process does with this exact file.
pub fn render(label: &str, report: &SnapshotReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("snapshot: {label} ({} bytes)\n", report.have));
    out.push_str(&format!(
        "magic:    {}\n",
        if report.magic_ok {
            "ok"
        } else {
            "BAD (not a DisC snapshot)"
        }
    ));
    match report.version {
        Some(v) if v == VERSION => out.push_str(&format!("version:  {v} (supported)\n")),
        Some(v) if v == STREAM_VERSION => {
            out.push_str(&format!("version:  {v} (supported, streaming)\n"))
        }
        Some(v) => out.push_str(&format!(
            "version:  {v} (UNSUPPORTED, this build reads {VERSION} and {STREAM_VERSION})\n"
        )),
        None => out.push_str("version:  unreadable (header missing)\n"),
    }
    match report.endian {
        Some(m) if m == ENDIAN_MARKER => out.push_str("endian:   ok\n"),
        Some(m) => out.push_str(&format!("endian:   MISMATCH (marker reads {m:#010x})\n")),
        None => out.push_str("endian:   unreadable (header missing)\n"),
    }
    match (report.declared_len, report.truncated_to) {
        (Some(declared), Some(_)) => out.push_str(&format!(
            "length:   TRUNCATED (file declares {declared} bytes, only {} present)\n",
            report.have
        )),
        (Some(declared), None) => {
            out.push_str(&format!("length:   {declared} declared, all present\n"))
        }
        (None, _) => out.push_str("length:   unreadable (header missing)\n"),
    }
    if report.checks.is_empty() {
        out.push_str("checks:   none possible (buffer too short)\n");
    } else {
        out.push_str("checks:\n");
        for check in &report.checks {
            out.push_str(&render_check(check));
            out.push('\n');
        }
    }
    match &report.verdict {
        Ok(()) => out.push_str("verdict: clean\n"),
        Err(e) => out.push_str(&format!("verdict: REJECTED: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_graph::StratifiedDiskGraph;
    use disc_metric::{Dataset, Metric, Point};
    use disc_store::fault::{corrupt, Fault};
    use disc_store::{inspect, AlignedBytes};

    fn snapshot() -> Vec<u8> {
        let data = Dataset::new(
            "doctor-test",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),
                Point::new2(0.3, 0.0),
                Point::new2(0.0, 0.4),
                Point::new2(2.0, 2.0),
            ],
        );
        let graph = StratifiedDiskGraph::build(&data, 1.0);
        match disc_store::encode(&data, &graph) {
            Ok(b) => b,
            Err(e) => unreachable!("valid inputs encode: {e}"),
        }
    }

    #[test]
    fn clean_report_says_clean_and_lists_every_section() {
        let bytes = AlignedBytes::copy_from(&snapshot());
        let text = render("test.snap", &inspect(bytes.as_bytes()));
        assert!(text.contains("verdict: clean"));
        for name in [
            "header",
            "section table",
            "meta",
            "coords",
            "offsets",
            "neighbors",
            "dists",
            "name",
        ] {
            assert!(
                text.contains(name),
                "missing section line for {name}: {text}"
            );
        }
        assert!(!text.contains("MISMATCH"));
    }

    #[test]
    fn coords_corruption_names_coords_in_both_check_and_verdict() {
        // Coords payload starts at 296 (table ends 248, meta is 48).
        let bad = corrupt(
            &snapshot(),
            Fault::BitFlip {
                offset: 300,
                bit: 1,
            },
        );
        let bytes = AlignedBytes::copy_from(&bad);
        let text = render("bad.snap", &inspect(bytes.as_bytes()));
        assert!(text.contains("coords"));
        assert!(text.contains("MISMATCH"));
        assert!(text.contains("verdict: REJECTED:"));
        assert!(!text.contains("verdict: clean"));
    }

    #[test]
    fn truncated_file_reports_truncation_and_missing_region() {
        let full = snapshot();
        let cut = corrupt(&full, Fault::TruncateAt(full.len() - 8));
        let bytes = AlignedBytes::copy_from(&cut);
        let text = render("cut.snap", &inspect(bytes.as_bytes()));
        assert!(text.contains("TRUNCATED"));
        assert!(text.contains("MISSING"));
        assert!(text.contains("verdict: REJECTED:"));
    }
}
