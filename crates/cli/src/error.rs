//! The one error type every `disc` verb funnels into, and the stable
//! process exit codes scripts are allowed to depend on.
//!
//! Every failure in the workspace already carries a typed error
//! ([`StoreError`], [`GraphError`], [`DatasetError`], [`JoinError`],
//! [`Cancelled`]); this module maps each family onto a distinct exit
//! code so a supervisor can tell "the snapshot is damaged" (restore
//! from backup) apart from "the operator typed a bad flag" (fix the
//! invocation) apart from "the pool is saturated" (back off and retry)
//! without parsing stderr.

use std::fmt;

use disc_graph::{GraphError, StreamError};
use disc_metric::{Cancelled, DatasetError};
use disc_mtree::JoinError;
use disc_store::StoreError;

/// Exit code for a clean run.
pub const EXIT_OK: i32 = 0;
/// Exit code for a usage error (unknown verb, bad flag, bad value).
pub const EXIT_USAGE: i32 = 2;
/// Exit code for a rejected snapshot (any [`StoreError`]).
pub const EXIT_CORRUPT: i32 = 3;
/// Exit code for an I/O failure (missing file, permission, short write).
pub const EXIT_IO: i32 = 4;
/// Exit code for a graph-layer error (bad radius, CSR mismatch).
pub const EXIT_GRAPH: i32 = 5;
/// Exit code for invalid dataset inputs.
pub const EXIT_DATASET: i32 = 6;
/// Exit code for a self-join error during a build.
pub const EXIT_JOIN: i32 = 7;
/// Exit code for a request cancelled by its deadline.
pub const EXIT_CANCELLED: i32 = 8;
/// Exit code for an admission-queue shed under saturation.
pub const EXIT_OVERLOADED: i32 = 9;

/// Error of any `disc` verb; each variant owns one exit code.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was wrong; the message says how.
    Usage(String),
    /// The snapshot failed validation — fail closed, exit 3.
    Store(StoreError),
    /// Reading or writing a file failed.
    Io(std::io::Error),
    /// A graph operation rejected its inputs.
    Graph(GraphError),
    /// Generated or decoded points do not form a valid dataset.
    Dataset(DatasetError),
    /// The self-join rejected its inputs during a build.
    Join(JoinError),
    /// A deadline fired before the work completed.
    Cancelled,
    /// The admission queue was full and the request was shed.
    Overloaded {
        /// Capacity of the queue that shed the request.
        capacity: usize,
    },
}

impl CliError {
    /// The stable process exit code for this error family.
    pub fn exit_code(&self) -> i32 {
        match self {
            Self::Usage(_) => EXIT_USAGE,
            Self::Store(_) => EXIT_CORRUPT,
            Self::Io(_) => EXIT_IO,
            Self::Graph(GraphError::Cancelled) => EXIT_CANCELLED,
            Self::Graph(_) => EXIT_GRAPH,
            Self::Dataset(_) => EXIT_DATASET,
            Self::Join(_) => EXIT_JOIN,
            Self::Cancelled => EXIT_CANCELLED,
            Self::Overloaded { .. } => EXIT_OVERLOADED,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => write!(f, "usage error: {msg}"),
            Self::Store(e) => write!(f, "snapshot rejected: {e}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Graph(e) => write!(f, "graph error: {e}"),
            Self::Dataset(e) => write!(f, "dataset error: {e}"),
            Self::Join(e) => write!(f, "self-join error: {e}"),
            Self::Cancelled => f.write_str("cancelled: deadline expired before completion"),
            Self::Overloaded { capacity } => {
                write!(f, "overloaded: admission queue full ({capacity} slots)")
            }
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Store(e) => Some(e),
            Self::Io(e) => Some(e),
            Self::Graph(e) => Some(e),
            Self::Dataset(e) => Some(e),
            Self::Join(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<GraphError> for CliError {
    fn from(e: GraphError) -> Self {
        Self::Graph(e)
    }
}

impl From<DatasetError> for CliError {
    fn from(e: DatasetError) -> Self {
        Self::Dataset(e)
    }
}

impl From<Cancelled> for CliError {
    fn from(_: Cancelled) -> Self {
        Self::Cancelled
    }
}

impl From<JoinError> for CliError {
    fn from(e: JoinError) -> Self {
        Self::Join(e)
    }
}

impl From<StreamError> for CliError {
    /// Streaming-mutation failures fold into the existing exit-code
    /// families: the graph/dataset layers keep their codes, a delete of
    /// an id that is not live is the operator's mistake (usage, exit
    /// 2), and a dataset/graph disagreement means the persisted state
    /// itself is unusable (the corrupt-snapshot family, exit 3).
    fn from(e: StreamError) -> Self {
        match e {
            StreamError::Graph(e) => Self::Graph(e),
            StreamError::Dataset(e) => Self::Dataset(e),
            StreamError::UnknownExternalId { id } => Self::Usage(format!(
                "external id {id} is not live (tombstoned or never assigned)"
            )),
            StreamError::Inconsistent { what } => {
                Self::Store(StoreError::BadLayout { detail: what })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_store::SectionId;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let errors: Vec<CliError> = vec![
            CliError::Usage("bad flag".into()),
            CliError::Store(StoreError::BadMagic { found: [0; 8] }),
            CliError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
            CliError::Graph(GraphError::InvalidRadius(-1.0)),
            CliError::Dataset(DatasetError::Empty),
            CliError::Join(JoinError::InvalidRadius(-1.0)),
            CliError::Cancelled,
            CliError::Overloaded { capacity: 4 },
        ];
        let codes: Vec<i32> = errors.iter().map(CliError::exit_code).collect();
        assert_eq!(codes, vec![2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn graph_cancellation_maps_to_the_cancelled_code() {
        assert_eq!(
            CliError::Graph(GraphError::Cancelled).exit_code(),
            EXIT_CANCELLED
        );
    }

    #[test]
    fn stream_errors_fold_into_existing_families() {
        assert_eq!(
            CliError::from(StreamError::UnknownExternalId { id: 7 }).exit_code(),
            EXIT_USAGE
        );
        assert_eq!(
            CliError::from(StreamError::Inconsistent {
                what: "object count"
            })
            .exit_code(),
            EXIT_CORRUPT
        );
        assert_eq!(
            CliError::from(StreamError::Graph(GraphError::InvalidRadius(-1.0))).exit_code(),
            EXIT_GRAPH
        );
        assert_eq!(
            CliError::from(StreamError::Dataset(DatasetError::Empty)).exit_code(),
            EXIT_DATASET
        );
    }

    #[test]
    fn every_corrupt_snapshot_family_exits_three() {
        for e in [
            StoreError::BadMagic { found: [0; 8] },
            StoreError::Truncated {
                needed: 100,
                have: 10,
            },
            StoreError::ChecksumMismatch {
                section: SectionId::Coords,
                stored: 1,
                computed: 2,
            },
        ] {
            assert_eq!(CliError::from(e).exit_code(), EXIT_CORRUPT);
        }
    }
}
