//! Bounded admission queue between the request front-end and the
//! worker pool.
//!
//! The queue is the server's only buffer: when it is full, new work is
//! **shed immediately** with a typed [`Rejected`] instead of queueing
//! without bound (memory growth) or blocking the front-end (head-of-line
//! stall on the reader thread). The rejected value is handed back to the
//! caller so the degraded path can still serve it from cache.
//!
//! Plain `Mutex` + `Condvar`; no external dependencies. Poisoned locks
//! are recovered with `into_inner` — the queue's invariants hold at
//! every await point, and a panicking worker is an isolated event the
//! server is explicitly designed to survive.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Outcome of a failed [`Bounded::try_push`]: the queue was at
/// capacity (or closed) and the item was not enqueued.
#[derive(Debug)]
pub struct Rejected<T> {
    /// The item that was not admitted, returned for degraded handling.
    pub item: T,
    /// Capacity of the queue that shed it.
    pub capacity: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: non-blocking producers, blocking
/// consumers, explicit close for shutdown.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items at a time.
    /// `capacity` must be at least 1.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue needs at least one slot");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admits `item` if a slot is free; sheds it otherwise. Never
    /// blocks. Pushing to a closed queue is also a shed — shutdown must
    /// not accept work it will never run.
    pub fn try_push(&self, item: T) -> Result<(), Rejected<T>> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(Rejected {
                item,
                capacity: self.capacity,
            });
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed and
    /// drained; `None` means "no more work, ever" — the worker exits.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: queued items still drain, new pushes shed,
    /// idle consumers wake up and exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (for observability; racy by nature).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_exactly_past_capacity() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let rejected = match q.try_push(3) {
            Err(r) => r,
            Ok(()) => unreachable!("third push must shed"),
        };
        assert_eq!(rejected.item, 3);
        assert_eq!(rejected.capacity, 2);
        // Draining one slot readmits.
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_wakes_consumers() {
        let q = Arc::new(Bounded::new(4));
        assert!(q.try_push(10).is_ok());
        q.close();
        // Queued work still drains after close...
        assert_eq!(q.pop(), Some(10));
        // ...then consumers see end-of-work, and producers shed.
        assert_eq!(q.pop(), None);
        assert!(q.try_push(11).is_err());
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(Bounded::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(q.try_push(7).is_ok());
        match consumer.join() {
            Ok(got) => assert_eq!(got, Some(7)),
            Err(p) => std::panic::resume_unwind(p),
        }
    }
}
