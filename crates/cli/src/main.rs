//! The `disc` binary: parse, dispatch, map the error family to its
//! stable exit code.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match disc_cli::run(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("disc: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
