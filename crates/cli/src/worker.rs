//! Request execution: deadline enforcement, panic isolation, and the
//! actual calls into the graph-resident DisC runners.
//!
//! Everything here is **index-free**: a snapshot persists the dataset
//! and the stratified disk graph but not the M-tree, so serving uses
//! exactly the graph-resident selection runners
//! ([`disc_core::greedy_disc_graph_checked`] for one radius,
//! [`disc_core::greedy_zoom_in_graph_checked`] chains for sweeps). The
//! parity guarantee — a served solution is byte-identical to the same
//! runner called in-process — holds by construction, because these are
//! the same functions, and the `*_checked` runners are pinned
//! byte-identical to their plain twins when the token never fires.
//!
//! Two diagnostic ops ride along: `sleep` (occupies a worker, polling
//! its token — the saturation and deadline tests are built from it) and
//! `panic` (panics on purpose — the isolation test). Both are part of
//! the wire protocol so operators can probe a live pool.
//!
//! The streaming verbs `insert` and `delete` mutate the catalog under
//! the write lock and invalidate **only the affected radii** in the
//! [`SolutionCache`]: an entry survives an insert when one of its
//! selected objects covers the new point at the entry's radius (the
//! point joins the covered set, the cached cover stays valid), and
//! survives a delete when the removed object was not selected (a
//! covered object leaving cannot break independence or domination).
//! Surviving entries are valid DisC covers of the mutated catalog;
//! they are byte-identical to a fresh solve only until a mutation
//! touches their neighborhood — the same bounded-drift contract
//! [`disc_core::RepairableSolution`] documents.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use disc_core::{
    greedy_disc_graph_checked, greedy_zoom_in_graph_checked, DiscResult, RepairableSolution,
};
use disc_graph::{InsertReceipt, RemoveReceipt, StreamingCatalog};
use disc_metric::{CancelToken, ObjId};
use disc_store::fnv1a_64;

use crate::cache::{CachedSolution, SolutionCache};
use crate::error::CliError;
use crate::state::ServeState;

/// What a request asks for.
#[derive(Debug, Clone)]
pub enum Op {
    /// One DisC solution at `radius` (graph-resident greedy).
    Zoom {
        /// Query radius, `0 < radius ≤ r_max`.
        radius: f64,
    },
    /// A descending chain of radii: full greedy at the first, then
    /// greedy zoom-in for each subsequent radius.
    Sweep {
        /// Strictly descending radii, all in `(0, r_max]`.
        radii: Vec<f64>,
    },
    /// Diagnostic: hold a worker for `ms` milliseconds, honouring the
    /// deadline token while doing so.
    Sleep {
        /// How long to occupy the worker.
        ms: u64,
    },
    /// Diagnostic: panic inside the worker. The pool must survive.
    Panic,
    /// Streaming mutation: insert one point into the live catalog. The
    /// new object takes the next never-used external id.
    Insert {
        /// Coordinates, `dim` values in dataset axis order.
        coords: Vec<f64>,
    },
    /// Streaming mutation: remove the object with this external id.
    Delete {
        /// External id to remove; tombstoned forever afterwards.
        external: ObjId,
    },
}

/// One admitted unit of work.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id echoed back in the reply.
    pub id: u64,
    /// What to do.
    pub op: Op,
    /// Absolute deadline; expired requests return `cancelled` without
    /// running, running requests observe it through a [`CancelToken`].
    pub deadline: Option<Instant>,
}

impl Request {
    /// Wire name of the op, echoed in every reply.
    pub fn op_name(&self) -> &'static str {
        match self.op {
            Op::Zoom { .. } => "zoom",
            Op::Sweep { .. } => "sweep",
            Op::Sleep { .. } => "sleep",
            Op::Panic => "panic",
            Op::Insert { .. } => "insert",
            Op::Delete { .. } => "delete",
        }
    }
}

/// How a request ended.
#[derive(Debug)]
pub enum Outcome {
    /// A zoom solved (or served from cache).
    Zoomed {
        /// The per-radius solution.
        value: Arc<CachedSolution>,
        /// Whether it came from the solution cache.
        cached: bool,
        /// Whether it was served on the degraded path (admission
        /// rejected, answered from cache instead of shed).
        degraded: bool,
    },
    /// A sweep solved every step.
    Swept {
        /// One solution per requested radius, in request order.
        steps: Vec<Arc<CachedSolution>>,
    },
    /// A sleep ran to completion.
    Slept {
        /// The requested duration.
        ms: u64,
    },
    /// An insert was applied to the live catalog.
    Inserted {
        /// External id assigned to the new object.
        external: ObjId,
        /// Neighbors within `r_max` the insert spliced in.
        neighbors: usize,
        /// Live object count after the mutation.
        n: usize,
        /// Cache entries dropped because the new point broke their
        /// cover (no selected object within the entry's radius).
        invalidated: usize,
        /// Selection churn this mutation caused in the maintained
        /// `r_max` cover: `newly_selected + unselected` from the
        /// [`disc_core::RepairableSolution`] repair (0 when the repair
        /// left the selected set untouched, and for the bootstrap
        /// mutation itself).
        drift: usize,
    },
    /// A delete was applied to the live catalog.
    Deleted {
        /// The removed (now tombstoned) external id.
        external: ObjId,
        /// Surviving neighbors the object had within `r_max`.
        neighbors: usize,
        /// Live object count after the mutation.
        n: usize,
        /// Cache entries dropped because they had selected the removed
        /// object.
        invalidated: usize,
        /// Selection churn in the maintained `r_max` cover (see
        /// [`Outcome::Inserted::drift`]); deleting a selected object
        /// counts 1 plus every neighbour the repair promoted.
        drift: usize,
    },
    /// The deadline fired before completion; no partial state escaped.
    Cancelled,
    /// The worker caught a panic from this request; the pool lives on.
    Panicked,
    /// The admission queue was full and no cached answer existed.
    Shed {
        /// Queue capacity at the time of the shed.
        capacity: usize,
    },
    /// The request was invalid or failed; the message says why.
    Failed {
        /// Rendered error.
        error: String,
    },
}

/// A finished request: id and op echoed, outcome attached.
#[derive(Debug)]
pub struct Reply {
    /// Id from the request.
    pub id: u64,
    /// Wire name of the op.
    pub op: &'static str,
    /// How it ended.
    pub outcome: Outcome,
}

/// FNV-1a 64 over the solution ids as little-endian `u64`s — the wire
/// hash that lets a script pin a served solution against an in-process
/// run without shipping the id list.
pub fn solution_hash(solution: &[ObjId]) -> u64 {
    let mut bytes = Vec::with_capacity(solution.len() * 8);
    for &id in solution {
        bytes.extend_from_slice(&(id as u64).to_le_bytes());
    }
    fnv1a_64(&bytes)
}

fn cacheable(result: DiscResult) -> Arc<CachedSolution> {
    let hash = solution_hash(&result.solution);
    Arc::new(CachedSolution {
        radius: result.radius,
        solution: result.solution,
        hash,
    })
}

/// One DisC solution at `radius`, via the graph-resident greedy runner.
/// Holds the catalog read lock for the duration of the solve.
pub fn solve_zoom(
    state: &ServeState,
    radius: f64,
    cancel: Option<&CancelToken>,
) -> Result<Arc<CachedSolution>, CliError> {
    let catalog = state.catalog();
    let view = catalog.graph().try_view(radius)?;
    let unit = view.to_unit_disk_graph();
    let result = greedy_disc_graph_checked(&unit, cancel)?;
    Ok(cacheable(result))
}

/// Validates a sweep's radii: non-empty, finite, strictly descending,
/// all within `(0, r_max]`.
pub fn validate_radii(radii: &[f64], r_max: f64) -> Result<(), CliError> {
    if radii.is_empty() {
        return Err(CliError::Usage("sweep needs at least one radius".into()));
    }
    for &r in radii {
        if !r.is_finite() || r <= 0.0 || r > r_max {
            return Err(CliError::Usage(format!(
                "radius {r} outside the serveable range (0, {r_max}]"
            )));
        }
    }
    for window in radii.windows(2) {
        if window[1] >= window[0] {
            return Err(CliError::Usage(format!(
                "sweep radii must be strictly descending, got {} then {}",
                window[0], window[1]
            )));
        }
    }
    Ok(())
}

/// A descending radius sweep: full greedy at the first radius, then a
/// greedy zoom-in chain — each step is byte-identical to calling the
/// same runners in-process. One catalog read lock spans the whole
/// chain, so every step of a sweep sees the same catalog state even
/// while mutations are queued.
pub fn solve_sweep(
    state: &ServeState,
    radii: &[f64],
    cancel: Option<&CancelToken>,
) -> Result<Vec<Arc<CachedSolution>>, CliError> {
    validate_radii(radii, state.r_max)?;
    let catalog = state.catalog();
    let mut steps = Vec::with_capacity(radii.len());
    let view = catalog.graph().try_view(radii[0])?;
    let unit = view.to_unit_disk_graph();
    let mut prev = greedy_disc_graph_checked(&unit, cancel)?;
    steps.push(cacheable(prev.clone()));
    for &r in &radii[1..] {
        prev = greedy_zoom_in_graph_checked(catalog.graph(), &prev, r, cancel)?.result;
        steps.push(cacheable(prev.clone()));
    }
    Ok(steps)
}

/// Sleeps `ms` milliseconds in 1 ms slices, polling the token between
/// slices so a deadline interrupts promptly.
fn run_sleep(ms: u64, cancel: Option<&CancelToken>) -> Result<(), CliError> {
    for _ in 0..ms {
        if let Some(token) = cancel {
            token.checkpoint()?;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if let Some(token) = cancel {
        token.checkpoint()?;
    }
    Ok(())
}

/// Bootstraps the maintained `r_max` cover from a fresh greedy solve
/// over the catalog's *current* object set (so the mutation that
/// triggered the bootstrap contributes no drift — there was no prior
/// selection to drift from).
fn bootstrap_tracker(catalog: &StreamingCatalog, r_max: f64) -> Option<RepairableSolution> {
    let view = catalog.graph().try_view(r_max).ok()?;
    let unit = view.to_unit_disk_graph();
    let result = greedy_disc_graph_checked(&unit, None).ok()?;
    RepairableSolution::from_result(catalog, &result).ok()
}

/// Folds one mutation receipt into the maintained `r_max` cover and
/// returns the selection churn (`newly_selected + unselected`). Called
/// with the catalog write guard held, so tracker and catalog move in
/// lock-step. A repair rejection means tracker and catalog fell out of
/// step (only reachable after a contained panic between the two
/// updates): the tracker is dropped so the next mutation
/// re-bootstraps, and the mutation itself stands.
fn track_mutation(
    state: &ServeState,
    catalog: &StreamingCatalog,
    receipt: TrackReceipt<'_>,
) -> usize {
    let mut tracker = state.tracker();
    match tracker.as_mut() {
        Some(rs) => {
            let report = match receipt {
                TrackReceipt::Insert(r) => rs.repair_insert(r),
                TrackReceipt::Remove(r) => rs.repair_remove(catalog, r),
            };
            match report {
                Ok(report) => report.newly_selected + report.unselected,
                Err(_) => {
                    *tracker = None;
                    0
                }
            }
        }
        None => {
            *tracker = bootstrap_tracker(catalog, state.r_max);
            0
        }
    }
}

/// Which streaming receipt a mutation produced.
enum TrackReceipt<'a> {
    /// An insert's receipt.
    Insert(&'a InsertReceipt),
    /// A delete's receipt (catalog already mutated).
    Remove(&'a RemoveReceipt),
}

fn run_op(
    state: &ServeState,
    cache: &SolutionCache,
    op: &Op,
    cancel: Option<&CancelToken>,
) -> Result<Outcome, CliError> {
    match op {
        Op::Zoom { radius } => {
            if let Some(hit) = cache.get(*radius) {
                return Ok(Outcome::Zoomed {
                    value: hit,
                    cached: true,
                    degraded: false,
                });
            }
            // Observe the mutation generation before the catalog read
            // lock: if an insert/delete lands while this solve runs,
            // `put_if_current` rejects the (now pre-mutation) solution
            // instead of caching a stale cover.
            let generation = cache.generation();
            let value = solve_zoom(state, *radius, cancel)?;
            cache.put_if_current(generation, Arc::clone(&value));
            Ok(Outcome::Zoomed {
                value,
                cached: false,
                degraded: false,
            })
        }
        // Sweep steps are deliberately NOT cached: a step at radius r
        // continues the chain from the radius above it, so its solution
        // differs from a standalone zoom at r — caching it would let a
        // later `zoom r=…` serve the wrong answer. The cache holds only
        // standalone zoom solutions.
        Op::Sweep { radii } => Ok(Outcome::Swept {
            steps: solve_sweep(state, radii, cancel)?,
        }),
        Op::Sleep { ms } => {
            run_sleep(*ms, cancel)?;
            Ok(Outcome::Slept { ms: *ms })
        }
        Op::Panic => panic!("injected panic (diagnostic op)"),
        Op::Insert { coords } => {
            let mut catalog = state.catalog_mut();
            let receipt = catalog.insert(coords)?;
            let n = catalog.len();
            let drift = track_mutation(state, &catalog, TrackReceipt::Insert(&receipt));
            // Invalidate while still holding the write lock, so no
            // reader can observe the mutated catalog next to a stale
            // cache. An entry at radius r stays valid iff some selected
            // object covers the new point within r.
            let invalidated = cache.invalidate_if(|cached| {
                !receipt
                    .neighbors
                    .iter()
                    .any(|&(b, d)| d <= cached.radius && cached.solution.contains(&b))
            });
            drop(catalog);
            Ok(Outcome::Inserted {
                external: receipt.external,
                neighbors: receipt.neighbors.len(),
                n,
                invalidated,
                drift,
            })
        }
        Op::Delete { external } => {
            let mut catalog = state.catalog_mut();
            let receipt = catalog.remove_external(*external)?;
            let n = catalog.len();
            let drift = track_mutation(state, &catalog, TrackReceipt::Remove(&receipt));
            // A cover survives a delete iff the removed object was
            // merely covered (grey): losing a selected object breaks
            // domination for its neighborhood.
            let invalidated = cache.invalidate_if(|cached| cached.solution.contains(external));
            drop(catalog);
            Ok(Outcome::Deleted {
                external: receipt.external,
                neighbors: receipt.neighbors.len(),
                n,
                invalidated,
                drift,
            })
        }
    }
}

/// Runs one request to a reply: deadline pre-check, token construction,
/// panic containment. Never panics itself; a panicking op becomes
/// [`Outcome::Panicked`] and the calling worker keeps serving.
pub fn execute(state: &ServeState, cache: &SolutionCache, req: &Request) -> Reply {
    let id = req.id;
    let op_name = req.op_name();
    // A request whose deadline already passed is answered `cancelled`
    // without touching the graph: queue wait counts against the
    // deadline, exactly like time spent scanning would.
    let token = match req.deadline {
        Some(deadline) => {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Reply {
                    id,
                    op: op_name,
                    outcome: Outcome::Cancelled,
                };
            }
            Some(CancelToken::with_deadline(remaining))
        }
        None => None,
    };
    let outcome = match std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_op(state, cache, &req.op, token.as_ref())
    })) {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(e)) if e.exit_code() == crate::error::EXIT_CANCELLED => Outcome::Cancelled,
        Ok(Err(e)) => Outcome::Failed {
            error: e.to_string(),
        },
        Err(_panic) => Outcome::Panicked,
    };
    Reply {
        id,
        op: op_name,
        outcome,
    }
}
