//! Hand-rolled command-line parsing for the `disc` binary.
//!
//! No external argument-parsing dependency: four verbs, `--flag value`
//! pairs, every mistake a [`CliError::Usage`] (exit code 2) whose
//! message names the offending flag.

use std::path::PathBuf;

use crate::error::CliError;

/// The `disc --help` text.
pub const USAGE: &str = "\
disc — DisC diversity snapshots: build, query, serve, triage

USAGE:
    disc build  --out <path> [--n <int>] [--dim <int>] [--clusters <int>]
                [--seed <int>] [--radius <float>] [--uniform]
                [--shards <int>]
    disc zoom   --snapshot <path> (--radius <float> | --radii <r1,r2,...>)
                [--deadline-ms <int>]
    disc serve  --snapshot <path> [--workers <int>] [--queue <int>]
                [--cache <int>]
    disc doctor --snapshot <path>

EXIT CODES:
    0 ok   2 usage   3 corrupt snapshot   4 i/o   5 graph
    6 dataset   7 self-join   8 deadline cancelled   9 overloaded
";

/// `disc build`: generate a dataset, build the graph, write a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildArgs {
    /// Snapshot output path.
    pub out: PathBuf,
    /// Number of points.
    pub n: usize,
    /// Dimensions per point.
    pub dim: usize,
    /// Cluster count for the clustered generator.
    pub clusters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Graph materialisation radius (`r_max`).
    pub radius: f64,
    /// Use the uniform generator instead of the clustered one.
    pub uniform: bool,
    /// Spatial shard count for the sharded build pipeline; the snapshot
    /// is byte-identical at every count (1 = one shard, still the
    /// sharded pipeline).
    pub shards: usize,
}

/// `disc zoom`: one-shot solve against a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoomArgs {
    /// Snapshot to open.
    pub snapshot: PathBuf,
    /// Radii to solve, strictly descending when more than one.
    pub radii: Vec<f64>,
    /// Optional deadline for the whole solve.
    pub deadline_ms: Option<u64>,
}

/// `disc serve`: the worker pool over stdin/stdout.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Snapshot to open.
    pub snapshot: PathBuf,
    /// Worker threads.
    pub workers: usize,
    /// Admission queue slots.
    pub queue: usize,
    /// Per-radius cache capacity.
    pub cache: usize,
}

/// `disc doctor`: triage a possibly-damaged snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DoctorArgs {
    /// Snapshot to inspect.
    pub snapshot: PathBuf,
}

/// A fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `disc build`
    Build(BuildArgs),
    /// `disc zoom`
    Zoom(ZoomArgs),
    /// `disc serve`
    Serve(ServeArgs),
    /// `disc doctor`
    Doctor(DoctorArgs),
    /// `disc help` / `--help`
    Help,
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Splits `args` into `--flag value` pairs (plus bare `--uniform`),
/// rejecting anything else.
struct Flags<'a> {
    pairs: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String], bare: &[&str]) -> Result<Self, CliError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if !flag.starts_with("--") {
                return Err(usage(format!("expected a --flag, got {flag:?}")));
            }
            if bare.contains(&flag) {
                pairs.push((flag, None));
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| usage(format!("{flag} needs a value")))?;
            pairs.push((flag, Some(value.as_str())));
            i += 2;
        }
        Ok(Self { pairs })
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), CliError> {
        for (flag, _) in &self.pairs {
            if !known.contains(flag) {
                return Err(usage(format!("unknown flag {flag}")));
            }
        }
        Ok(())
    }

    fn value(&self, flag: &str) -> Option<&'a str> {
        self.pairs
            .iter()
            .rev()
            .find(|(f, _)| *f == flag)
            .and_then(|(_, v)| *v)
    }

    fn present(&self, flag: &str) -> bool {
        self.pairs.iter().any(|(f, _)| *f == flag)
    }

    fn required(&self, flag: &str) -> Result<&'a str, CliError> {
        self.value(flag)
            .ok_or_else(|| usage(format!("{flag} is required")))
    }
}

fn parse_usize(flag: &str, value: &str) -> Result<usize, CliError> {
    value.parse().map_err(|_| {
        usage(format!(
            "{flag} must be a non-negative integer, got {value:?}"
        ))
    })
}

fn parse_u64(flag: &str, value: &str) -> Result<u64, CliError> {
    value.parse().map_err(|_| {
        usage(format!(
            "{flag} must be a non-negative integer, got {value:?}"
        ))
    })
}

fn parse_f64(flag: &str, value: &str) -> Result<f64, CliError> {
    let parsed: f64 = value
        .parse()
        .map_err(|_| usage(format!("{flag} must be a number, got {value:?}")))?;
    if !parsed.is_finite() {
        return Err(usage(format!("{flag} must be finite, got {value:?}")));
    }
    Ok(parsed)
}

/// Parses the argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let verb = match args.first() {
        None => return Ok(Command::Help),
        Some(v) => v.as_str(),
    };
    let rest = &args[1..];
    match verb {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "build" => {
            let flags = Flags::parse(rest, &["--uniform"])?;
            flags.reject_unknown(&[
                "--out",
                "--n",
                "--dim",
                "--clusters",
                "--seed",
                "--radius",
                "--uniform",
                "--shards",
            ])?;
            Ok(Command::Build(BuildArgs {
                out: PathBuf::from(flags.required("--out")?),
                n: match flags.value("--n") {
                    Some(v) => parse_usize("--n", v)?,
                    None => 2000,
                },
                dim: match flags.value("--dim") {
                    Some(v) => parse_usize("--dim", v)?,
                    None => 2,
                },
                clusters: match flags.value("--clusters") {
                    Some(v) => parse_usize("--clusters", v)?,
                    None => 5,
                },
                seed: match flags.value("--seed") {
                    Some(v) => parse_u64("--seed", v)?,
                    None => 42,
                },
                radius: match flags.value("--radius") {
                    Some(v) => parse_f64("--radius", v)?,
                    None => 0.1,
                },
                uniform: flags.present("--uniform"),
                shards: match flags.value("--shards") {
                    Some(v) => {
                        let shards = parse_usize("--shards", v)?;
                        if shards == 0 {
                            return Err(usage("--shards must be at least 1"));
                        }
                        shards
                    }
                    None => 1,
                },
            }))
        }
        "zoom" => {
            let flags = Flags::parse(rest, &[])?;
            flags.reject_unknown(&["--snapshot", "--radius", "--radii", "--deadline-ms"])?;
            let radii = match (flags.value("--radius"), flags.value("--radii")) {
                (Some(_), Some(_)) => {
                    return Err(usage("--radius and --radii are mutually exclusive"))
                }
                (Some(r), None) => vec![parse_f64("--radius", r)?],
                (None, Some(list)) => list
                    .split(',')
                    .map(|part| parse_f64("--radii", part))
                    .collect::<Result<Vec<f64>, CliError>>()?,
                (None, None) => return Err(usage("zoom needs --radius or --radii")),
            };
            Ok(Command::Zoom(ZoomArgs {
                snapshot: PathBuf::from(flags.required("--snapshot")?),
                radii,
                deadline_ms: match flags.value("--deadline-ms") {
                    Some(v) => Some(parse_u64("--deadline-ms", v)?),
                    None => None,
                },
            }))
        }
        "serve" => {
            let flags = Flags::parse(rest, &[])?;
            flags.reject_unknown(&["--snapshot", "--workers", "--queue", "--cache"])?;
            Ok(Command::Serve(ServeArgs {
                snapshot: PathBuf::from(flags.required("--snapshot")?),
                workers: match flags.value("--workers") {
                    Some(v) => parse_usize("--workers", v)?.max(1),
                    None => 4,
                },
                queue: match flags.value("--queue") {
                    Some(v) => parse_usize("--queue", v)?.max(1),
                    None => 16,
                },
                cache: match flags.value("--cache") {
                    Some(v) => parse_usize("--cache", v)?,
                    None => 16,
                },
            }))
        }
        "doctor" => {
            let flags = Flags::parse(rest, &[])?;
            flags.reject_unknown(&["--snapshot"])?;
            Ok(Command::Doctor(DoctorArgs {
                snapshot: PathBuf::from(flags.required("--snapshot")?),
            }))
        }
        other => Err(usage(format!(
            "unknown verb {other:?}; verbs are build, zoom, serve, doctor"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn zoom_parses_radius_list_and_deadline() {
        let cmd = match parse(&argv(&[
            "zoom",
            "--snapshot",
            "x.snap",
            "--radii",
            "0.2,0.1,0.05",
            "--deadline-ms",
            "250",
        ])) {
            Ok(c) => c,
            Err(e) => unreachable!("must parse: {e}"),
        };
        assert_eq!(
            cmd,
            Command::Zoom(ZoomArgs {
                snapshot: PathBuf::from("x.snap"),
                radii: vec![0.2, 0.1, 0.05],
                deadline_ms: Some(250),
            })
        );
    }

    #[test]
    fn build_defaults_fill_in() {
        let cmd = match parse(&argv(&["build", "--out", "a.snap"])) {
            Ok(c) => c,
            Err(e) => unreachable!("must parse: {e}"),
        };
        match cmd {
            Command::Build(b) => {
                assert_eq!(b.n, 2000);
                assert_eq!(b.dim, 2);
                assert_eq!(b.clusters, 5);
                assert!(!b.uniform);
            }
            other => unreachable!("expected build, got {other:?}"),
        }
    }

    #[test]
    fn usage_errors_exit_two() {
        for bad in [
            argv(&["frobnicate"]),
            argv(&["zoom", "--snapshot", "x.snap"]),
            argv(&["zoom", "--snapshot", "x.snap", "--radius", "nope"]),
            argv(&["serve"]),
            argv(&["doctor", "--mystery", "x"]),
            argv(&["build", "--out"]),
        ] {
            let err = match parse(&bad) {
                Err(e) => e,
                Ok(c) => unreachable!("{bad:?} must not parse, got {c:?}"),
            };
            assert_eq!(err.exit_code(), crate::error::EXIT_USAGE, "{bad:?}");
        }
    }

    #[test]
    fn no_args_is_help_not_an_error() {
        assert!(matches!(parse(&[]), Ok(Command::Help)));
    }
}
