//! Small per-radius solution cache behind the degraded serving mode.
//!
//! A DisC solution is a pure function of (snapshot, radius), so a
//! cached solution is never stale while the process serves one
//! snapshot. The cache exists for one reason: when the admission queue
//! is saturated, a zoom at a radius the pool has already answered can
//! still be served — degraded in freshness of *latency statistics*,
//! never in correctness — instead of being shed.
//!
//! Fixed capacity, least-recently-used eviction, keyed by the exact
//! radius bit pattern (serving `zoom r=0.05` twice is the common case;
//! nearby-but-different radii are different answers and must not
//! alias) — except that `-0.0` keys as `0.0`, because the two compare
//! equal and select identical solutions, so letting their bit patterns
//! diverge would cache the same answer twice under different keys.

use std::sync::{Arc, Mutex, MutexGuard};

use disc_metric::ObjId;

/// The cache key of a radius: the bit pattern, with the `0.0 == -0.0`
/// tie collapsed so equal radii can never occupy two slots.
fn radius_key(radius: f64) -> u64 {
    if radius == 0.0 { 0.0f64 } else { radius }.to_bits()
}

/// One cached per-radius answer, shared by `Arc` so a degraded hit
/// never copies the solution under the submit lock.
#[derive(Debug)]
pub struct CachedSolution {
    /// Radius the solution was computed for.
    pub radius: f64,
    /// Selected objects in selection order.
    pub solution: Vec<ObjId>,
    /// FNV-1a 64 over the solution ids (little-endian), the wire hash.
    pub hash: u64,
}

struct Entry {
    key: u64,
    value: Arc<CachedSolution>,
}

/// Fixed-capacity LRU map from radius bits to a shared solution.
pub struct SolutionCache {
    // Recency-ordered: last entry is the most recently used. Linear
    // scan is exact and fast at the intended capacity (tens).
    entries: Mutex<Vec<Entry>>,
    capacity: usize,
}

impl SolutionCache {
    /// A cache holding at most `capacity` radii; zero disables caching.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The cached solution for exactly `radius`, refreshing its
    /// recency.
    pub fn get(&self, radius: f64) -> Option<Arc<CachedSolution>> {
        let key = radius_key(radius);
        let mut entries = self.lock();
        let pos = entries.iter().position(|e| e.key == key)?;
        let entry = entries.remove(pos);
        let value = Arc::clone(&entry.value);
        entries.push(entry);
        Some(value)
    }

    /// Inserts (or refreshes) the solution for `radius`, evicting the
    /// least recently used entry when full.
    pub fn put(&self, value: Arc<CachedSolution>) {
        if self.capacity == 0 {
            return;
        }
        let key = radius_key(value.radius);
        let mut entries = self.lock();
        if let Some(pos) = entries.iter().position(|e| e.key == key) {
            entries.remove(pos);
        } else if entries.len() >= self.capacity {
            entries.remove(0);
        }
        entries.push(Entry { key, value });
    }

    /// Number of cached radii.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(radius: f64) -> Arc<CachedSolution> {
        Arc::new(CachedSolution {
            radius,
            solution: vec![1, 2, 3],
            hash: 42,
        })
    }

    #[test]
    fn lru_evicts_the_coldest_radius() {
        let cache = SolutionCache::new(2);
        cache.put(entry(0.1));
        cache.put(entry(0.2));
        // Touch 0.1 so 0.2 is the eviction victim.
        assert!(cache.get(0.1).is_some());
        cache.put(entry(0.3));
        assert!(cache.get(0.2).is_none());
        assert!(cache.get(0.1).is_some());
        assert!(cache.get(0.3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn radii_key_by_exact_bits() {
        let cache = SolutionCache::new(4);
        cache.put(entry(0.1));
        assert!(cache.get(0.1 + f64::EPSILON).is_none());
        assert!(cache.get(0.1).is_some());
    }

    #[test]
    fn negative_zero_aliases_to_positive_zero() {
        // 0.0 and -0.0 are equal radii selecting identical solutions;
        // their differing bit patterns must map to one cache slot.
        let cache = SolutionCache::new(4);
        cache.put(entry(-0.0));
        assert!(cache.get(0.0).is_some(), "put(-0.0) must hit get(0.0)");
        cache.put(entry(0.0));
        assert!(cache.get(-0.0).is_some(), "put(0.0) must hit get(-0.0)");
        assert_eq!(cache.len(), 1, "equal radii must share one slot");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = SolutionCache::new(0);
        cache.put(entry(0.1));
        assert!(cache.get(0.1).is_none());
        assert!(cache.is_empty());
    }
}
