//! Small per-radius solution cache behind the degraded serving mode.
//!
//! A DisC solution is a pure function of (catalog state, radius), so a
//! cached solution is exact for as long as the catalog it was computed
//! against stays unmutated. The cache exists for one reason: when the
//! admission queue is saturated, a zoom at a radius the pool has
//! already answered can still be served — degraded in freshness of
//! *latency statistics*, never in cover validity — instead of being
//! shed.
//!
//! Fixed capacity, least-recently-used eviction, keyed by the exact
//! radius bit pattern (serving `zoom r=0.05` twice is the common case;
//! nearby-but-different radii are different answers and must not
//! alias) — except that `-0.0` keys as `0.0`, because the two compare
//! equal and select identical solutions, so letting their bit patterns
//! diverge would cache the same answer twice under different keys.
//!
//! # Mutations and the generation counter
//!
//! `insert`/`delete` requests mutate the catalog underneath the cache.
//! Two staleness channels exist and both are closed here:
//!
//! * **resident entries** — the mutating worker calls
//!   [`SolutionCache::invalidate_if`] (while it still holds the catalog
//!   write lock) to drop exactly the radii whose cached cover the
//!   mutation broke;
//! * **in-flight solves** — a zoom computed against the pre-mutation
//!   catalog must not be inserted afterwards. Every mutation advances a
//!   monotonic *generation*; solvers capture
//!   [`SolutionCache::generation`] before taking the catalog read lock
//!   and publish through [`SolutionCache::put_if_current`], which drops
//!   the value when any mutation intervened. Conservative (a still-valid
//!   solution may be discarded), never unsound (a stale one can never
//!   enter).

use std::sync::{Arc, Mutex, MutexGuard};

use disc_metric::ObjId;

/// The cache key of a radius: the bit pattern, with the `0.0 == -0.0`
/// tie collapsed so equal radii can never occupy two slots.
fn radius_key(radius: f64) -> u64 {
    if radius == 0.0 { 0.0f64 } else { radius }.to_bits()
}

/// One cached per-radius answer, shared by `Arc` so a degraded hit
/// never copies the solution under the submit lock.
#[derive(Debug)]
pub struct CachedSolution {
    /// Radius the solution was computed for.
    pub radius: f64,
    /// Selected objects (external ids) in selection order.
    pub solution: Vec<ObjId>,
    /// FNV-1a 64 over the solution ids (little-endian), the wire hash.
    pub hash: u64,
}

struct Entry {
    key: u64,
    value: Arc<CachedSolution>,
}

/// Everything the one mutex guards: the recency-ordered entries plus
/// the mutation generation, so an invalidation and its generation bump
/// are observed atomically.
struct Inner {
    // Recency-ordered: last entry is the most recently used. Linear
    // scan is exact and fast at the intended capacity (tens).
    entries: Vec<Entry>,
    generation: u64,
}

/// Fixed-capacity LRU map from radius bits to a shared solution.
pub struct SolutionCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl SolutionCache {
    /// A cache holding at most `capacity` radii; zero disables caching.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: Vec::with_capacity(capacity),
                generation: 0,
            }),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The cached solution for exactly `radius`, refreshing its
    /// recency.
    pub fn get(&self, radius: f64) -> Option<Arc<CachedSolution>> {
        let key = radius_key(radius);
        let mut inner = self.lock();
        let pos = inner.entries.iter().position(|e| e.key == key)?;
        let entry = inner.entries.remove(pos);
        let value = Arc::clone(&entry.value);
        inner.entries.push(entry);
        Some(value)
    }

    /// The current mutation generation. Capture it *before* taking the
    /// catalog read lock, and hand it back to
    /// [`SolutionCache::put_if_current`].
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Inserts (or refreshes) the solution for its radius, evicting the
    /// least recently used entry when full.
    pub fn put(&self, value: Arc<CachedSolution>) {
        self.lock_and_put(value);
    }

    /// [`SolutionCache::put`], but only if no mutation has advanced the
    /// generation past `observed` since the solve began. Returns
    /// whether the value was kept.
    pub fn put_if_current(&self, observed: u64, value: Arc<CachedSolution>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut inner = self.lock();
        if inner.generation != observed {
            return false;
        }
        Self::insert_locked(&mut inner, self.capacity, value);
        true
    }

    fn lock_and_put(&self, value: Arc<CachedSolution>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        Self::insert_locked(&mut inner, self.capacity, value);
    }

    fn insert_locked(inner: &mut Inner, capacity: usize, value: Arc<CachedSolution>) {
        let key = radius_key(value.radius);
        if let Some(pos) = inner.entries.iter().position(|e| e.key == key) {
            inner.entries.remove(pos);
        } else if inner.entries.len() >= capacity {
            inner.entries.remove(0);
        }
        inner.entries.push(Entry { key, value });
    }

    /// Drops every entry `stale` flags and advances the generation —
    /// one atomic step, called by a mutating worker while it still
    /// holds the catalog write lock. Returns how many entries were
    /// dropped. The generation advances even when nothing matched,
    /// because in-flight solves against the pre-mutation catalog are
    /// stale regardless of what was resident.
    pub fn invalidate_if(&self, stale: impl Fn(&CachedSolution) -> bool) -> usize {
        let mut inner = self.lock();
        inner.generation += 1;
        let before = inner.entries.len();
        inner.entries.retain(|e| !stale(&e.value));
        before - inner.entries.len()
    }

    /// Number of cached radii.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(radius: f64) -> Arc<CachedSolution> {
        Arc::new(CachedSolution {
            radius,
            solution: vec![1, 2, 3],
            hash: 42,
        })
    }

    #[test]
    fn lru_evicts_the_coldest_radius() {
        let cache = SolutionCache::new(2);
        cache.put(entry(0.1));
        cache.put(entry(0.2));
        // Touch 0.1 so 0.2 is the eviction victim.
        assert!(cache.get(0.1).is_some());
        cache.put(entry(0.3));
        assert!(cache.get(0.2).is_none());
        assert!(cache.get(0.1).is_some());
        assert!(cache.get(0.3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn radii_key_by_exact_bits() {
        let cache = SolutionCache::new(4);
        cache.put(entry(0.1));
        assert!(cache.get(0.1 + f64::EPSILON).is_none());
        assert!(cache.get(0.1).is_some());
    }

    #[test]
    fn negative_zero_aliases_to_positive_zero() {
        // 0.0 and -0.0 are equal radii selecting identical solutions;
        // their differing bit patterns must map to one cache slot.
        let cache = SolutionCache::new(4);
        cache.put(entry(-0.0));
        assert!(cache.get(0.0).is_some(), "put(-0.0) must hit get(0.0)");
        cache.put(entry(0.0));
        assert!(cache.get(-0.0).is_some(), "put(0.0) must hit get(-0.0)");
        assert_eq!(cache.len(), 1, "equal radii must share one slot");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = SolutionCache::new(0);
        cache.put(entry(0.1));
        assert!(cache.get(0.1).is_none());
        assert!(cache.is_empty());
        assert!(!cache.put_if_current(cache.generation(), entry(0.1)));
    }

    #[test]
    fn invalidate_if_drops_exactly_the_flagged_radii() {
        let cache = SolutionCache::new(4);
        cache.put(entry(0.1));
        cache.put(entry(0.2));
        cache.put(entry(0.3));
        let dropped = cache.invalidate_if(|c| c.radius > 0.15);
        assert_eq!(dropped, 2);
        assert!(cache.get(0.1).is_some());
        assert!(cache.get(0.2).is_none());
        assert!(cache.get(0.3).is_none());
    }

    #[test]
    fn stale_generation_puts_are_rejected() {
        let cache = SolutionCache::new(4);
        let observed = cache.generation();
        assert!(cache.put_if_current(observed, entry(0.1)));
        // A mutation intervenes: the old observation no longer admits.
        let dropped = cache.invalidate_if(|_| false);
        assert_eq!(dropped, 0, "nothing was flagged");
        assert!(
            !cache.put_if_current(observed, entry(0.2)),
            "a solve that began before the mutation must not publish"
        );
        assert!(cache.get(0.2).is_none());
        // A fresh observation admits again.
        assert!(cache.put_if_current(cache.generation(), entry(0.2)));
        assert!(cache.get(0.2).is_some());
    }
}
