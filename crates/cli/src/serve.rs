//! The serving core: a fixed worker pool behind a bounded admission
//! queue, exact counters, and the line protocol `disc serve` speaks.
//!
//! # Lifecycle
//!
//! [`Server::start`] takes the already-validated [`ServeState`] and
//! spawns `workers` threads, each looping `pop → execute → count →
//! deliver`. [`Server::submit`] never blocks: a request either enters
//! the queue, is served **degraded** from the per-radius cache (zoom at
//! a cached radius while saturated), or is **shed** with a typed
//! overload reply. [`Server::shutdown`] closes the queue, drains what
//! was admitted, joins every worker, and returns the final counter
//! snapshot.
//!
//! # Counter identities
//!
//! The counters are exact, not sampled. After `shutdown` (all admitted
//! work drained) they satisfy:
//!
//! ```text
//! submitted == admitted + degraded + shed
//! admitted  == completed + cancelled + panicked + failed
//! ```
//!
//! Deadline-expired requests land in `cancelled` whether they were born
//! expired at submit, expired in the queue, or expired mid-scan; a
//! panicking request lands in `panicked` and kills nothing else.
//!
//! The streaming verbs `insert` and `delete` ride the same queue:
//! mutations are admitted like any other request (never served
//! degraded), take the catalog write lock inside a worker, and
//! invalidate only the cache radii whose cover they broke.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::admission::Bounded;
use crate::cache::SolutionCache;
use crate::error::CliError;
use crate::state::ServeState;
use crate::worker::{execute, Op, Outcome, Reply, Request};

/// Pool sizing for one serving process.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads (each runs one request at a time).
    pub workers: usize,
    /// Admission queue slots; a full queue sheds.
    pub queue: usize,
    /// Per-radius solution cache capacity (0 disables the degraded
    /// path).
    pub cache: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue: 16,
            cache: 16,
        }
    }
}

/// Exact request accounting; every field is a monotonic event count.
#[derive(Debug, Default)]
pub struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
    cache_hits: AtomicU64,
    drift: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct CounterSnapshot {
    pub submitted: u64,
    pub admitted: u64,
    pub shed: u64,
    pub degraded: u64,
    pub completed: u64,
    pub cancelled: u64,
    pub failed: u64,
    pub panicked: u64,
    pub cache_hits: u64,
    /// Cumulative selection churn of the maintained `r_max` cover
    /// across every streaming mutation: Σ per-mutation
    /// `newly_selected + unselected` from
    /// [`disc_core::RepairableSolution`] repairs. Not a request count —
    /// excluded from the bookkeeping identities.
    pub drift: u64,
}

impl Counters {
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter at once.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            drift: self.drift.load(Ordering::Relaxed),
        }
    }

    fn record(&self, outcome: &Outcome) {
        match outcome {
            Outcome::Zoomed { cached, .. } => {
                Self::bump(&self.completed);
                if *cached {
                    Self::bump(&self.cache_hits);
                }
            }
            Outcome::Swept { .. } | Outcome::Slept { .. } => Self::bump(&self.completed),
            Outcome::Inserted { drift, .. } | Outcome::Deleted { drift, .. } => {
                Self::bump(&self.completed);
                self.drift.fetch_add(*drift as u64, Ordering::Relaxed);
            }
            Outcome::Cancelled => Self::bump(&self.cancelled),
            Outcome::Panicked => Self::bump(&self.panicked),
            Outcome::Failed { .. } => Self::bump(&self.failed),
            Outcome::Shed { .. } => Self::bump(&self.shed),
        }
    }
}

impl CounterSnapshot {
    /// The post-drain bookkeeping identities (see module docs); exact
    /// only once all admitted work has finished.
    pub fn is_consistent(&self) -> bool {
        self.submitted == self.admitted + self.degraded + self.shed
            && self.admitted == self.completed + self.cancelled + self.panicked + self.failed
    }
}

/// Where finished replies go. Implementations must tolerate delivery
/// from multiple worker threads at once.
pub trait Sink: Send + Sync {
    /// A finished request.
    fn deliver(&self, reply: &Reply);
    /// Out-of-band server information (ready banner, stats lines).
    fn info(&self, line: &str);
}

/// Renders one reply as a single JSON line.
pub fn render_reply(reply: &Reply) -> String {
    let head = format!("{{\"id\":{},\"op\":\"{}\"", reply.id, reply.op);
    match &reply.outcome {
        Outcome::Zoomed {
            value,
            cached,
            degraded,
        } => format!(
            "{head},\"status\":\"ok\",\"radius\":{},\"size\":{},\"hash\":\"{:#018x}\",\"cached\":{cached},\"degraded\":{degraded}}}",
            value.radius,
            value.solution.len(),
            value.hash,
        ),
        Outcome::Swept { steps } => {
            let rendered: Vec<String> = steps
                .iter()
                .map(|s| {
                    format!(
                        "{{\"radius\":{},\"size\":{},\"hash\":\"{:#018x}\"}}",
                        s.radius,
                        s.solution.len(),
                        s.hash
                    )
                })
                .collect();
            format!(
                "{head},\"status\":\"ok\",\"steps\":[{}]}}",
                rendered.join(",")
            )
        }
        Outcome::Slept { ms } => format!("{head},\"status\":\"ok\",\"slept_ms\":{ms}}}"),
        Outcome::Inserted {
            external,
            neighbors,
            n,
            invalidated,
            drift,
        }
        | Outcome::Deleted {
            external,
            neighbors,
            n,
            invalidated,
            drift,
        } => format!(
            "{head},\"status\":\"ok\",\"external\":{external},\"neighbors\":{neighbors},\"n\":{n},\"invalidated\":{invalidated},\"drift\":{drift}}}"
        ),
        Outcome::Cancelled => format!("{head},\"status\":\"cancelled\"}}"),
        Outcome::Panicked => format!("{head},\"status\":\"panicked\"}}"),
        Outcome::Shed { capacity } => {
            format!("{head},\"status\":\"shed\",\"queue_capacity\":{capacity}}}")
        }
        Outcome::Failed { error } => {
            format!("{head},\"status\":\"error\",\"error\":\"{}\"}}", escape(error))
        }
    }
}

/// Renders a counter snapshot as a single JSON line.
pub fn render_stats(snap: &CounterSnapshot) -> String {
    format!(
        "{{\"op\":\"stats\",\"submitted\":{},\"admitted\":{},\"shed\":{},\"degraded\":{},\"completed\":{},\"cancelled\":{},\"failed\":{},\"panicked\":{},\"cache_hits\":{},\"drift\":{}}}",
        snap.submitted,
        snap.admitted,
        snap.shed,
        snap.degraded,
        snap.completed,
        snap.cancelled,
        snap.failed,
        snap.panicked,
        snap.cache_hits,
        snap.drift,
    )
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// A [`Sink`] writing JSON lines to any shared writer.
pub struct JsonSink<W: Write + Send> {
    writer: Arc<Mutex<W>>,
}

impl<W: Write + Send> JsonSink<W> {
    /// Wraps a shared writer.
    pub fn new(writer: Arc<Mutex<W>>) -> Self {
        Self { writer }
    }

    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        // A broken pipe at shutdown is not worth panicking over.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

impl<W: Write + Send> Sink for JsonSink<W> {
    fn deliver(&self, reply: &Reply) {
        self.write_line(&render_reply(reply));
    }

    fn info(&self, line: &str) {
        self.write_line(line);
    }
}

/// The running pool. Dropping without [`Server::shutdown`] leaks the
/// worker threads' join handles but not the process — prefer an
/// explicit shutdown.
pub struct Server {
    state: Arc<ServeState>,
    queue: Arc<Bounded<Request>>,
    counters: Arc<Counters>,
    cache: Arc<SolutionCache>,
    sink: Arc<dyn Sink>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker pool over already-validated state.
    pub fn start(state: Arc<ServeState>, config: ServeConfig, sink: Arc<dyn Sink>) -> Self {
        let queue = Arc::new(Bounded::new(config.queue.max(1)));
        let counters = Arc::new(Counters::default());
        let cache = Arc::new(SolutionCache::new(config.cache));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let cache = Arc::clone(&cache);
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    while let Some(req) = queue.pop() {
                        // `execute` contains the catch_unwind: a
                        // panicking request becomes a `panicked` reply
                        // and this loop keeps going.
                        let reply = execute(&state, &cache, &req);
                        counters.record(&reply.outcome);
                        sink.deliver(&reply);
                    }
                })
            })
            .collect();
        Self {
            state,
            queue,
            counters,
            cache,
            sink,
            workers,
        }
    }

    /// The shared serving state.
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// Current counter values.
    pub fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Submits one request; never blocks. Admission, degraded service,
    /// and shedding are all decided here:
    ///
    /// 1. deadline already expired → cancelled reply now, no queue slot;
    /// 2. queue slot free → admitted, a worker will reply;
    /// 3. queue full, zoom at a cached radius → degraded reply now;
    /// 4. otherwise → typed shed reply now.
    pub fn submit(&self, req: Request) {
        Counters::bump(&self.counters.submitted);
        // A request born expired (0 ms deadline) sheds cleanly through
        // the `cancelled` counter without consuming a queue slot,
        // reaching a worker, or touching the per-radius cache.
        if let Some(deadline) = req.deadline {
            if deadline.saturating_duration_since(Instant::now()).is_zero() {
                Counters::bump(&self.counters.admitted);
                Counters::bump(&self.counters.cancelled);
                self.sink.deliver(&Reply {
                    id: req.id,
                    op: req.op_name(),
                    outcome: Outcome::Cancelled,
                });
                return;
            }
        }
        match self.queue.try_push(req) {
            Ok(()) => Counters::bump(&self.counters.admitted),
            Err(rejected) => {
                let req = rejected.item;
                if let Op::Zoom { radius } = req.op {
                    if let Some(hit) = self.cache.get(radius) {
                        Counters::bump(&self.counters.degraded);
                        Counters::bump(&self.counters.cache_hits);
                        self.sink.deliver(&Reply {
                            id: req.id,
                            op: "zoom",
                            outcome: Outcome::Zoomed {
                                value: hit,
                                cached: true,
                                degraded: true,
                            },
                        });
                        return;
                    }
                }
                Counters::bump(&self.counters.shed);
                self.sink.deliver(&Reply {
                    id: req.id,
                    op: req.op_name(),
                    outcome: Outcome::Shed {
                        capacity: rejected.capacity,
                    },
                });
            }
        }
    }

    /// Blocks until every already-admitted request has been replied to
    /// (bounded by `timeout`). New submissions during the wait push the
    /// goalpost; use it from the single front-end thread.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let snap = self.counters.snapshot();
            let settled = snap.completed + snap.cancelled + snap.panicked + snap.failed;
            if settled >= snap.admitted && self.queue.is_empty() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Closes the queue, drains admitted work, joins every worker, and
    /// returns the final counters.
    pub fn shutdown(self) -> CounterSnapshot {
        self.queue.close();
        for handle in self.workers {
            if let Err(panic) = handle.join() {
                // Workers contain request panics; a panic escaping the
                // loop itself is a server bug worth surfacing loudly.
                std::panic::resume_unwind(panic);
            }
        }
        self.counters.snapshot()
    }
}

/// One parsed protocol line.
#[derive(Debug)]
pub enum LineCmd {
    /// A request to submit.
    Request(Request),
    /// Emit a counter snapshot.
    Stats,
    /// Drain and exit.
    Quit,
}

fn parse_kv(token: &str) -> Result<(&str, &str), String> {
    token
        .split_once('=')
        .ok_or_else(|| format!("expected key=value, got {token:?}"))
}

fn parse_u64(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("{key} must be a non-negative integer, got {value:?}"))
}

fn parse_f64(key: &str, value: &str) -> Result<f64, String> {
    value
        .parse()
        .map_err(|_| format!("{key} must be a number, got {value:?}"))
}

/// Parses one line of the serve protocol.
///
/// Grammar (whitespace-separated):
///
/// ```text
/// stats
/// quit
/// id=<u64> zoom   r=<f64>           [deadline_ms=<u64>]
/// id=<u64> sweep  radii=<f64,...>   [deadline_ms=<u64>]
/// id=<u64> sleep  ms=<u64>          [deadline_ms=<u64>]
/// id=<u64> panic
/// id=<u64> insert coords=<f64,...>  [deadline_ms=<u64>]
/// id=<u64> delete ext=<u64>         [deadline_ms=<u64>]
/// ```
pub fn parse_line(line: &str) -> Result<LineCmd, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    match tokens.as_slice() {
        [] => Err("empty line".into()),
        ["stats"] => Ok(LineCmd::Stats),
        ["quit"] => Ok(LineCmd::Quit),
        [only] => Err(format!(
            "expected `stats`, `quit`, or `id=<n> <op> ...`, got {only:?}"
        )),
        [id_tok, op_tok, rest @ ..] => {
            let (key, value) = parse_kv(id_tok)?;
            if key != "id" {
                return Err(format!("first token must be id=<n>, got {id_tok:?}"));
            }
            let id = parse_u64("id", value)?;
            let mut radius = None;
            let mut radii = None;
            let mut ms = None;
            let mut deadline_ms = None;
            let mut coords = None;
            let mut ext = None;
            for token in rest {
                let (key, value) = parse_kv(token)?;
                match key {
                    "r" => radius = Some(parse_f64("r", value)?),
                    "radii" => {
                        let parsed: Result<Vec<f64>, String> = value
                            .split(',')
                            .map(|part| parse_f64("radii", part))
                            .collect();
                        radii = Some(parsed?);
                    }
                    "ms" => ms = Some(parse_u64("ms", value)?),
                    "deadline_ms" => deadline_ms = Some(parse_u64("deadline_ms", value)?),
                    "coords" => {
                        let parsed: Result<Vec<f64>, String> = value
                            .split(',')
                            .map(|part| parse_f64("coords", part))
                            .collect();
                        coords = Some(parsed?);
                    }
                    "ext" => ext = Some(parse_u64("ext", value)?),
                    other => return Err(format!("unknown parameter {other:?}")),
                }
            }
            let op = match *op_tok {
                "zoom" => Op::Zoom {
                    radius: radius.ok_or("zoom needs r=<radius>")?,
                },
                "sweep" => Op::Sweep {
                    radii: radii.ok_or("sweep needs radii=<r1,r2,...>")?,
                },
                "sleep" => Op::Sleep {
                    ms: ms.ok_or("sleep needs ms=<millis>")?,
                },
                "panic" => Op::Panic,
                "insert" => Op::Insert {
                    coords: coords.ok_or("insert needs coords=<c1,c2,...>")?,
                },
                "delete" => Op::Delete {
                    external: ext.ok_or("delete needs ext=<id>")? as disc_metric::ObjId,
                },
                other => return Err(format!("unknown op {other:?}")),
            };
            let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
            Ok(LineCmd::Request(Request { id, op, deadline }))
        }
    }
}

/// Runs the full serve loop over a line stream: banner, submit loop,
/// drain, final stats. This is `disc serve` minus the arg parsing —
/// tests drive it with in-memory readers and writers.
pub fn run_lines(
    state: Arc<ServeState>,
    config: ServeConfig,
    input: impl BufRead,
    sink: Arc<dyn Sink>,
) -> Result<CounterSnapshot, CliError> {
    sink.info(&format!(
        "{{\"op\":\"ready\",\"snapshot\":\"{}\",\"metric\":\"{:?}\",\"n\":{},\"r_max\":{},\"workers\":{},\"queue\":{},\"cache\":{}}}",
        escape(&state.name),
        state.metric,
        state.n(),
        state.r_max,
        config.workers.max(1),
        config.queue.max(1),
        config.cache,
    ));
    let server = Server::start(state, config, Arc::clone(&sink));
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Ok(LineCmd::Request(req)) => server.submit(req),
            Ok(LineCmd::Stats) => sink.info(&render_stats(&server.counters())),
            Ok(LineCmd::Quit) => break,
            Err(msg) => sink.info(&format!(
                "{{\"op\":\"parse\",\"status\":\"error\",\"error\":\"{}\"}}",
                escape(&msg)
            )),
        }
    }
    server.drain(Duration::from_secs(3600));
    let snap = server.shutdown();
    sink.info(&render_stats(&snap));
    Ok(snap)
}
