//! Implementations of the four `disc` verbs and the top-level dispatch.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use disc_core::{build_sharded_with, ShardedBuildConfig};
use disc_metric::CancelToken;

use crate::args::{self, BuildArgs, Command, DoctorArgs, ServeArgs, ZoomArgs};
use crate::error::CliError;
use crate::serve::{run_lines, JsonSink, ServeConfig};
use crate::state::ServeState;
use crate::worker::{solve_sweep, solve_zoom, validate_radii};

/// Parses and runs one invocation; the caller maps the error to an
/// exit code.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    match args::parse(argv)? {
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
        Command::Build(build) => run_build(&build),
        Command::Zoom(zoom) => run_zoom(&zoom),
        Command::Serve(serve) => run_serve(&serve),
        Command::Doctor(doctor) => run_doctor(&doctor),
    }
}

/// `disc build`: generate points, materialise the stratified graph at
/// `--radius` through the sharded production pipeline
/// ([`disc_core::build_sharded_with`]: spatial partition, per-shard
/// M-tree self-joins, boundary cross-joins, multi-source CSR merge —
/// not the O(n²) reference build), write the snapshot.
///
/// The pipeline renumbers objects into the shard plan's canonical
/// split order before any join — a spatially local order, so edge
/// endpoints land in near-contiguous CSR rows — and the snapshot
/// persists the internal↔external bijection (format v2); every served
/// solution and wire hash stays in external ids.
///
/// The snapshot is **byte-identical at every `--shards` value** and at
/// every worker count (`SELF_JOIN_THREADS` forces the worker count
/// when the `parallel` feature is compiled in; CI pins both with
/// sha256 matrices).
fn run_build(build: &BuildArgs) -> Result<(), CliError> {
    if !(build.radius.is_finite() && build.radius > 0.0) {
        return Err(CliError::Usage(format!(
            "--radius must be finite and positive, got {}",
            build.radius
        )));
    }
    if build.n == 0 {
        return Err(CliError::Usage("--n must be at least 1".into()));
    }
    let data = if build.uniform {
        disc_datasets::synthetic::uniform(build.n, build.dim, build.seed)
    } else {
        disc_datasets::synthetic::clustered(build.n, build.dim, build.clusters, build.seed)
    };
    let threads = std::env::var("SELF_JOIN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let config = ShardedBuildConfig {
        threads,
        ..ShardedBuildConfig::default()
    };
    let built = build_sharded_with(&data, build.radius, build.shards, config, None)?;
    let bytes = disc_store::encode(&built.data, &built.graph)?;
    std::fs::write(&build.out, &bytes)?;
    let s = &built.stats;
    println!(
        "{{\"op\":\"build\",\"status\":\"ok\",\"path\":{:?},\"n\":{},\"dim\":{},\"edges\":{},\"r_max\":{},\"bytes\":{},\
         \"shards\":{},\"boundary_pairs\":{},\"distance_computations\":{},\"boundary_join_dc\":{}}}",
        build.out.display().to_string(),
        built.data.len(),
        built.data.dim(),
        built.graph.edge_count(),
        build.radius,
        bytes.len(),
        s.shards,
        s.boundary_pairs_joined,
        s.distance_computations(),
        s.boundary_join_dc,
    );
    Ok(())
}

/// `disc zoom`: open, solve the radius (or descending chain), print
/// one JSON line per radius. The hashes printed here are byte-for-byte
/// the hashes `disc serve` reports for the same snapshot and radii —
/// both call the same graph-resident runners.
///
/// The radius chain is validated up front — non-descending or
/// duplicate radii, and radii outside `(0, r_max]`, are a typed usage
/// error (exit code 2) before any solve starts.
fn run_zoom(zoom: &ZoomArgs) -> Result<(), CliError> {
    let state = ServeState::open(&zoom.snapshot)?;
    validate_radii(&zoom.radii, state.r_max)?;
    let token = zoom
        .deadline_ms
        .map(|ms| CancelToken::with_deadline(Duration::from_millis(ms)));
    let steps = if zoom.radii.len() == 1 {
        vec![solve_zoom(&state, zoom.radii[0], token.as_ref())?]
    } else {
        solve_sweep(&state, &zoom.radii, token.as_ref())?
    };
    for step in steps {
        println!(
            "{{\"op\":\"zoom\",\"status\":\"ok\",\"radius\":{},\"size\":{},\"hash\":\"{:#018x}\"}}",
            step.radius,
            step.solution.len(),
            step.hash,
        );
    }
    Ok(())
}

/// `disc serve`: the worker pool over stdin/stdout.
fn run_serve(serve: &ServeArgs) -> Result<(), CliError> {
    let state = ServeState::open(&serve.snapshot)?;
    // Request panics are caught, counted, and answered; the default
    // hook's full backtrace would just scare the operator. One line.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("disc: worker contained a request panic: {info}");
    }));
    let config = ServeConfig {
        workers: serve.workers,
        queue: serve.queue,
        cache: serve.cache,
    };
    let sink = Arc::new(JsonSink::new(Arc::new(Mutex::new(std::io::stdout()))));
    let stdin = std::io::stdin();
    run_lines(state, config, stdin.lock(), sink)?;
    Ok(())
}

/// `disc doctor`: full triage to stdout; exit 0 only if the snapshot
/// would be accepted for serving.
fn run_doctor(doctor: &DoctorArgs) -> Result<(), CliError> {
    let bytes = disc_store::read_snapshot(&doctor.snapshot)?;
    let report = disc_store::inspect(bytes.as_bytes());
    print!(
        "{}",
        crate::doctor::render(&doctor.snapshot.display().to_string(), &report)
    );
    report.verdict.map_err(CliError::from)
}
