//! Implementations of the four `disc` verbs and the top-level dispatch.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use disc_graph::StratifiedDiskGraph;
use disc_metric::CancelToken;
use disc_mtree::{MTree, MTreeConfig, SelfJoinConfig};

use crate::args::{self, BuildArgs, Command, DoctorArgs, ServeArgs, ZoomArgs};
use crate::error::CliError;
use crate::serve::{run_lines, JsonSink, ServeConfig};
use crate::state::ServeState;
use crate::worker::{solve_sweep, solve_zoom, validate_radii};

/// Parses and runs one invocation; the caller maps the error to an
/// exit code.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    match args::parse(argv)? {
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
        Command::Build(build) => run_build(&build),
        Command::Zoom(zoom) => run_zoom(&zoom),
        Command::Serve(serve) => run_serve(&serve),
        Command::Doctor(doctor) => run_doctor(&doctor),
    }
}

/// `disc build`: generate points, materialise the stratified graph at
/// `--radius` through the production pipeline (one M-tree self-join +
/// CSR assembly, not the O(n²) reference build), write the snapshot.
///
/// The build renumbers objects by M-tree leaf order before the
/// self-join, so edge endpoints land in near-contiguous CSR rows; the
/// snapshot persists the internal↔external bijection (format v2) and
/// every served solution and wire hash stays in external ids.
///
/// `SELF_JOIN_THREADS` forces the self-join worker / assembly shard
/// count when the `parallel` feature is compiled in; the snapshot is
/// byte-identical for every count (CI pins this with a sha256 matrix).
fn run_build(build: &BuildArgs) -> Result<(), CliError> {
    if !(build.radius.is_finite() && build.radius > 0.0) {
        return Err(CliError::Usage(format!(
            "--radius must be finite and positive, got {}",
            build.radius
        )));
    }
    if build.n == 0 {
        return Err(CliError::Usage("--n must be at least 1".into()));
    }
    let data = if build.uniform {
        disc_datasets::synthetic::uniform(build.n, build.dim, build.seed)
    } else {
        disc_datasets::synthetic::clustered(build.n, build.dim, build.clusters, build.seed)
    };
    let threads = std::env::var("SELF_JOIN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let tree = MTree::build(&data, MTreeConfig::default());
    // Renumber by leaf order: the relabeled tree's leaf order is the
    // identity, so the self-join emits endpoints in near-row order and
    // CSR fill walks warm cache lines. The permutation rides in the
    // snapshot; ids re-externalise at every API boundary.
    let order = tree.objects_in_leaf_order_uncounted();
    let data = data.renumbered(&order);
    let tree = tree.relabeled(&data, &order);
    let graph = StratifiedDiskGraph::from_mtree_checked(
        &tree,
        build.radius,
        SelfJoinConfig::with_threads(threads),
        None,
    )?;
    let bytes = disc_store::encode(&data, &graph)?;
    std::fs::write(&build.out, &bytes)?;
    println!(
        "{{\"op\":\"build\",\"status\":\"ok\",\"path\":{:?},\"n\":{},\"dim\":{},\"edges\":{},\"r_max\":{},\"bytes\":{}}}",
        build.out.display().to_string(),
        data.len(),
        data.dim(),
        graph.edge_count(),
        build.radius,
        bytes.len(),
    );
    Ok(())
}

/// `disc zoom`: open, solve the radius (or descending chain), print
/// one JSON line per radius. The hashes printed here are byte-for-byte
/// the hashes `disc serve` reports for the same snapshot and radii —
/// both call the same graph-resident runners.
///
/// The radius chain is validated up front — non-descending or
/// duplicate radii, and radii outside `(0, r_max]`, are a typed usage
/// error (exit code 2) before any solve starts.
fn run_zoom(zoom: &ZoomArgs) -> Result<(), CliError> {
    let state = ServeState::open(&zoom.snapshot)?;
    validate_radii(&zoom.radii, state.r_max)?;
    let token = zoom
        .deadline_ms
        .map(|ms| CancelToken::with_deadline(Duration::from_millis(ms)));
    let steps = if zoom.radii.len() == 1 {
        vec![solve_zoom(&state, zoom.radii[0], token.as_ref())?]
    } else {
        solve_sweep(&state, &zoom.radii, token.as_ref())?
    };
    for step in steps {
        println!(
            "{{\"op\":\"zoom\",\"status\":\"ok\",\"radius\":{},\"size\":{},\"hash\":\"{:#018x}\"}}",
            step.radius,
            step.solution.len(),
            step.hash,
        );
    }
    Ok(())
}

/// `disc serve`: the worker pool over stdin/stdout.
fn run_serve(serve: &ServeArgs) -> Result<(), CliError> {
    let state = ServeState::open(&serve.snapshot)?;
    // Request panics are caught, counted, and answered; the default
    // hook's full backtrace would just scare the operator. One line.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("disc: worker contained a request panic: {info}");
    }));
    let config = ServeConfig {
        workers: serve.workers,
        queue: serve.queue,
        cache: serve.cache,
    };
    let sink = Arc::new(JsonSink::new(Arc::new(Mutex::new(std::io::stdout()))));
    let stdin = std::io::stdin();
    run_lines(state, config, stdin.lock(), sink)?;
    Ok(())
}

/// `disc doctor`: full triage to stdout; exit 0 only if the snapshot
/// would be accepted for serving.
fn run_doctor(doctor: &DoctorArgs) -> Result<(), CliError> {
    let bytes = disc_store::read_snapshot(&doctor.snapshot)?;
    let report = disc_store::inspect(bytes.as_bytes());
    print!(
        "{}",
        crate::doctor::render(&doctor.snapshot.display().to_string(), &report)
    );
    report.verdict.map_err(CliError::from)
}
