//! Operator tooling for DisC diversity snapshots: the `disc` binary and
//! the hardened serving core behind it.
//!
//! The compute crates answer "which objects form a covering,
//! independent subset at radius r"; this crate answers "how do I run
//! that for real" — build a snapshot, query it, keep a process serving
//! it under deadlines, saturation, and corrupted files, and triage a
//! snapshot that will not load.
//!
//! # OPERATIONS
//!
//! ## Verbs
//!
//! | verb          | what it does                                                   |
//! |---------------|----------------------------------------------------------------|
//! | `disc build`  | generate a synthetic dataset, materialise the stratified disk graph at `--radius`, write one snapshot file |
//! | `disc zoom`   | open a snapshot, solve one radius (`--radius`) or a descending chain (`--radii`), print one JSON line per radius |
//! | `disc serve`  | open a snapshot once, then serve zoom/sweep requests and `insert`/`delete` mutations from stdin on a fixed worker pool, JSON replies on stdout |
//! | `disc doctor` | non-fail-fast triage of a snapshot file: per-section checksum report, truncation point, version/endianness diagnosis, and the exact accept/reject verdict serving would reach |
//!
//! ## Exit codes (stable; scripts may depend on them)
//!
//! | code | meaning                                  | typical cause                         |
//! |------|------------------------------------------|---------------------------------------|
//! | 0    | success                                  |                                       |
//! | 2    | usage error                              | unknown verb, bad flag, bad value     |
//! | 3    | snapshot rejected ([`disc_store::StoreError`]) | bit rot, truncation, version skew |
//! | 4    | I/O failure                              | missing file, permissions             |
//! | 5    | graph error ([`disc_graph::GraphError`]) | radius outside `(0, r_max]`           |
//! | 6    | dataset error                            | invalid generated/decoded points      |
//! | 7    | self-join error                          | invalid build radius                  |
//! | 8    | deadline cancelled                       | `--deadline-ms` expired mid-solve     |
//! | 9    | overloaded                               | admission queue full, nothing cached  |
//!
//! ## Deadline semantics
//!
//! A request's `deadline_ms` is a wall-clock budget measured from
//! submission. Time spent queued counts: a request whose deadline
//! expires while waiting is answered `cancelled` without touching the
//! graph. A running request carries a [`disc_metric::CancelToken`];
//! the selection runners poll it once per selection round, so expiry
//! mid-scan returns a clean `cancelled` reply — no partial solution is
//! ever serialised, cached, or counted as completed.
//!
//! ## Admission and shedding
//!
//! The pool has `--workers` threads behind a bounded queue of
//! `--queue` slots and **never blocks the reader**. When the queue is
//! full, a zoom at a radius the pool has already answered is served
//! from a small per-radius LRU cache with `"degraded":true` (correct
//! answer, stale latency); anything else is shed immediately with
//! `"status":"shed"` (exit code 9's family on the wire). The
//! `stats` protocol line reports exact counters satisfying
//! `submitted == admitted + degraded + shed` and
//! `admitted == completed + cancelled + panicked + failed`.
//!
//! A panicking request (including the deliberate `panic` diagnostic
//! op) is caught in the worker, answered `"status":"panicked"`,
//! counted, and the worker keeps serving — one poisoned request
//! cannot take down the pool.
//!
//! ## Serve protocol
//!
//! One request per line on stdin; one JSON object per line on stdout
//! (a `ready` banner first, a final `stats` object at shutdown):
//!
//! ```text
//! id=1 zoom r=0.05 deadline_ms=250
//! id=2 sweep radii=0.2,0.1,0.05
//! id=3 sleep ms=40
//! id=4 panic
//! id=5 insert coords=0.31,0.62
//! id=6 delete ext=17
//! stats
//! quit
//! ```
//!
//! Replies carry the solution **hash** (FNV-1a 64 over the selected
//! ids, little-endian), not the id list; `disc zoom` prints the same
//! hash for the same snapshot and radius because both paths call the
//! same graph-resident runners — served answers are byte-identical to
//! in-process ones by construction.
//!
//! ## Streaming mutations
//!
//! `insert coords=<c1,...>` adds one point to the live catalog (next
//! never-reused external id, exactly n distance computations to splice
//! its edges); `delete ext=<id>` tombstones an external id forever.
//! Both reply `{"status":"ok","external":…,"neighbors":…,"n":…,
//! "invalidated":…}` where `invalidated` counts the per-radius cache
//! entries dropped — only the radii whose cached cover the mutation
//! broke are invalidated (an insert covered by a cached solution, or a
//! delete of a non-selected object, keeps the entry). Surviving
//! entries stay valid DisC covers of the mutated catalog under the
//! same bounded-drift contract as [`disc_core::RepairableSolution`];
//! an unknown/tombstoned `ext` is a usage error reply. A mutated
//! catalog persists as a **version-3** snapshot (`next_external` + the
//! sorted tombstone list + explicit external ids appended to the v2
//! layout); dense catalogs keep writing byte-identical v2 files, and
//! both versions load for serving.
//!
//! ## Doctor output
//!
//! `disc doctor --snapshot f.snap` prints a fixed-shape report: a
//! `snapshot:`/`magic:`/`version:`/`endian:`/`length:` header block,
//! one `checks:` line per checksummed region (named `header`,
//! `section table`, `meta`, `coords`, `offsets`, `neighbors`,
//! `dists`, `name`) with `ok`, `MISMATCH (stored …, computed …)`, or
//! `MISSING`, and a final `verdict: clean` or
//! `verdict: REJECTED: <reason>` line that always matches what
//! `disc serve` would do with the file, because the verdict *is*
//! [`disc_store::load`]'s.

#![warn(missing_docs)]

pub mod admission;
pub mod args;
pub mod cache;
pub mod doctor;
pub mod error;
pub mod serve;
pub mod state;
pub mod verbs;
pub mod worker;

pub use error::CliError;
pub use serve::{CounterSnapshot, ServeConfig, Server};
pub use state::ServeState;
pub use verbs::run;
