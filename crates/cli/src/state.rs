//! Validate-once snapshot opening into the immutable serving state.
//!
//! A serving process opens its snapshot exactly once, through the
//! fail-closed [`disc_store::load`] path: every checksum is verified
//! before any worker sees a byte, so a corrupted file is a typed
//! startup rejection (exit code 3, naming the owning section), never a
//! crash mid-request. What survives validation is materialised into an
//! owned [`ServeState`] — coordinates dropped, graph retained — and
//! handed to the worker pool behind an `Arc`, so request handling does
//! no validation, no locking, and no I/O.

use std::path::Path;
use std::sync::Arc;

use disc_graph::StratifiedDiskGraph;
use disc_metric::Metric;
use disc_store::{decode, read_snapshot};

use crate::error::CliError;

/// Immutable state shared by every worker: the materialised stratified
/// disk graph plus the snapshot identity fields worth echoing back.
pub struct ServeState {
    /// Dataset name stamped in the snapshot.
    pub name: String,
    /// Distance metric the graph was built under.
    pub metric: Metric,
    /// Number of objects.
    pub n: usize,
    /// Radius the graph was materialised at; every serveable radius is
    /// `0 < r ≤ r_max`.
    pub r_max: f64,
    /// The radius-stratified disk graph all zooming runs against.
    pub graph: StratifiedDiskGraph,
}

impl ServeState {
    /// Opens and fully validates the snapshot at `path`.
    ///
    /// I/O failures map to exit code 4; any validation failure — from a
    /// flipped bit to a version skew — is a [`CliError::Store`] (exit
    /// code 3) whose message names the first broken layer.
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<Self>, CliError> {
        let bytes = read_snapshot(&path)?;
        let (dataset, graph) = decode(bytes.as_bytes())?;
        Ok(Arc::new(Self {
            name: dataset.name().to_string(),
            metric: dataset.metric(),
            n: dataset.len(),
            r_max: graph.radius(),
            graph,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::{Dataset, Point};

    fn write_small_snapshot(dir: &Path) -> std::path::PathBuf {
        let data = Dataset::new(
            "state-test",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),
                Point::new2(0.3, 0.0),
                Point::new2(0.0, 0.4),
            ],
        );
        let graph = StratifiedDiskGraph::build(&data, 1.0);
        let path = dir.join("state-test.snap");
        match disc_store::write_snapshot(&path, &data, &graph) {
            Ok(_) => path,
            Err(e) => unreachable!("snapshot write must succeed in a temp dir: {e}"),
        }
    }

    #[test]
    fn open_materialises_identity_and_graph() {
        let dir = std::env::temp_dir().join("disc-cli-state-open");
        match std::fs::create_dir_all(&dir) {
            Ok(()) => {}
            Err(e) => unreachable!("temp dir: {e}"),
        }
        let path = write_small_snapshot(&dir);
        let state = match ServeState::open(&path) {
            Ok(s) => s,
            Err(e) => unreachable!("clean snapshot must open: {e}"),
        };
        assert_eq!(state.name, "state-test");
        assert_eq!(state.metric, Metric::Euclidean);
        assert_eq!(state.n, 3);
        assert_eq!(state.r_max, 1.0);
        assert_eq!(state.graph.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error_not_a_store_error() {
        let err = match ServeState::open("/nonexistent/disc-cli-no-such.snap") {
            Err(e) => e,
            Ok(_) => unreachable!("missing file cannot open"),
        };
        assert!(matches!(err, CliError::Io(_)));
        assert_eq!(err.exit_code(), crate::error::EXIT_IO);
    }
}
