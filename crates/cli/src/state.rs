//! Validate-once snapshot opening into the shared serving state.
//!
//! A serving process opens its snapshot exactly once, through the
//! fail-closed [`disc_store::load`] path: every checksum is verified
//! before any worker sees a byte, so a corrupted file is a typed
//! startup rejection (exit code 3, naming the owning section), never a
//! crash mid-request. What survives validation is materialised into a
//! [`disc_graph::StreamingCatalog`] — dataset and stratified graph in
//! lock-step — behind a reader–writer lock: zoom and sweep requests
//! share read access, while the streaming `insert`/`delete` verbs take
//! the write side. The identity fields worth echoing back (`name`,
//! `metric`, `r_max`) never change under mutation and stay lock-free.
//!
//! Lock poisoning is recovered (`into_inner`), matching the pool's
//! availability-first stance: request panics are already contained by
//! the worker's `catch_unwind`, and catalog mutations validate their
//! inputs before splicing, so a poisoned guard means a contained panic,
//! not a torn catalog.

use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use disc_core::RepairableSolution;
use disc_graph::StreamingCatalog;
use disc_metric::Metric;
use disc_store::{decode_stream, read_snapshot};

use crate::error::CliError;

/// State shared by every worker: the live streaming catalog plus the
/// snapshot identity fields worth echoing back.
pub struct ServeState {
    /// Dataset name stamped in the snapshot.
    pub name: String,
    /// Distance metric the graph was built under.
    pub metric: Metric,
    /// Radius the graph was materialised at; every serveable radius is
    /// `0 < r ≤ r_max`, and inserts splice edges up to `r_max`.
    pub r_max: f64,
    /// The mutable dataset + stratified-graph pair.
    catalog: RwLock<StreamingCatalog>,
    /// The maintained `r_max` cover the streaming verbs repair in
    /// lock-step with the catalog — `None` until the first mutation
    /// bootstraps it. Lock order: catalog write guard first, then this
    /// (mutations are the only path that takes both).
    tracker: Mutex<Option<RepairableSolution>>,
}

impl ServeState {
    /// Opens and fully validates the snapshot at `path` (dense v2 or
    /// streaming v3).
    ///
    /// I/O failures map to exit code 4; any validation failure — from a
    /// flipped bit to a version skew — is a [`CliError::Store`] (exit
    /// code 3) whose message names the first broken layer.
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<Self>, CliError> {
        let bytes = read_snapshot(&path)?;
        Ok(Self::from_catalog(decode_stream(bytes.as_bytes())?))
    }

    /// Wraps an already-validated catalog (tests and benches build
    /// their state in memory).
    pub fn from_catalog(catalog: StreamingCatalog) -> Arc<Self> {
        Arc::new(Self {
            name: catalog.data().name().to_string(),
            metric: catalog.data().metric(),
            r_max: catalog.graph().radius(),
            catalog: RwLock::new(catalog),
            tracker: Mutex::new(None),
        })
    }

    /// Shared (read) access to the catalog — what zoom and sweep
    /// solvers hold while they run.
    pub fn catalog(&self) -> RwLockReadGuard<'_, StreamingCatalog> {
        self.catalog.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Exclusive (write) access to the catalog — what the `insert` and
    /// `delete` verbs hold while they mutate and invalidate.
    pub fn catalog_mut(&self) -> RwLockWriteGuard<'_, StreamingCatalog> {
        self.catalog.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Live object count right now (changes under mutation).
    pub fn n(&self) -> usize {
        self.catalog().len()
    }

    /// The maintained `r_max` cover (`None` before the first
    /// mutation). Take the catalog **write** guard first when mutating
    /// both — see the field's lock-order note.
    pub fn tracker(&self) -> MutexGuard<'_, Option<RepairableSolution>> {
        self.tracker.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_graph::StratifiedDiskGraph;
    use disc_metric::{Dataset, Point};

    fn write_small_snapshot(dir: &Path) -> std::path::PathBuf {
        let data = Dataset::new(
            "state-test",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),
                Point::new2(0.3, 0.0),
                Point::new2(0.0, 0.4),
            ],
        );
        let graph = StratifiedDiskGraph::build(&data, 1.0);
        let path = dir.join("state-test.snap");
        match disc_store::write_snapshot(&path, &data, &graph) {
            Ok(_) => path,
            Err(e) => unreachable!("snapshot write must succeed in a temp dir: {e}"),
        }
    }

    #[test]
    fn open_materialises_identity_and_graph() {
        let dir = std::env::temp_dir().join("disc-cli-state-open");
        match std::fs::create_dir_all(&dir) {
            Ok(()) => {}
            Err(e) => unreachable!("temp dir: {e}"),
        }
        let path = write_small_snapshot(&dir);
        let state = match ServeState::open(&path) {
            Ok(s) => s,
            Err(e) => unreachable!("clean snapshot must open: {e}"),
        };
        assert_eq!(state.name, "state-test");
        assert_eq!(state.metric, Metric::Euclidean);
        assert_eq!(state.n(), 3);
        assert_eq!(state.r_max, 1.0);
        assert_eq!(state.catalog().graph().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error_not_a_store_error() {
        let err = match ServeState::open("/nonexistent/disc-cli-no-such.snap") {
            Err(e) => e,
            Ok(_) => unreachable!("missing file cannot open"),
        };
        assert!(matches!(err, CliError::Io(_)));
        assert_eq!(err.exit_code(), crate::error::EXIT_IO);
    }

    #[test]
    fn mutation_through_the_write_guard_is_visible_to_readers() {
        let data = Dataset::new(
            "state-mutate",
            Metric::Euclidean,
            vec![Point::new2(0.0, 0.0), Point::new2(0.3, 0.0)],
        );
        let graph = StratifiedDiskGraph::build(&data, 1.0);
        let catalog = match StreamingCatalog::try_new(data, graph) {
            Ok(c) => c,
            Err(e) => unreachable!("fresh pair is consistent: {e}"),
        };
        let state = ServeState::from_catalog(catalog);
        assert_eq!(state.n(), 2);
        let receipt = match state.catalog_mut().insert(&[0.1, 0.1]) {
            Ok(r) => r,
            Err(e) => unreachable!("in-range insert succeeds: {e}"),
        };
        assert_eq!(receipt.external, 2);
        assert_eq!(state.n(), 3);
        assert_eq!(state.catalog().graph().len(), 3);
        // Identity fields are immutable under mutation.
        assert_eq!(state.r_max, 1.0);
    }
}
