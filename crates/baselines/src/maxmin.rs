//! Greedy MaxMin diversification.
//!
//! MaxMin selects a size-`k` subset maximising
//! `f_Min = min_{p_i ≠ p_j ∈ S} dist(p_i, p_j)` (the p-dispersion
//! objective). The classic greedy heuristic (Gonzalez / Ravi et al.,
//! which the paper's Section 4 uses) seeds the selection with the
//! farthest pair and then repeatedly adds the object whose distance to
//! the current selection is largest. It is a 2-approximation of the
//! optimum.

// Object ids double as array indices and query arguments here, so
// indexed loops are the clearer idiom.
#![allow(clippy::needless_range_loop)]

use disc_metric::{Dataset, ObjId};

/// Selects `k` objects with the greedy MaxMin heuristic. Deterministic:
/// ties resolve towards smaller ids.
///
/// # Panics
///
/// Panics if `k` exceeds the dataset size or is zero.
pub fn maxmin_select(data: &Dataset, k: usize) -> Vec<ObjId> {
    let n = data.len();
    assert!(k >= 1 && k <= n, "k must be within 1..={n}");
    if k == 1 {
        return vec![0];
    }

    // Seed: the farthest pair (smallest ids on ties).
    let (mut a, mut b) = (0, 1);
    let mut best = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = data.dist(i, j);
            if d > best {
                best = d;
                (a, b) = (i, j);
            }
        }
    }
    let mut selected = vec![a, b];
    // min_dist[p] = distance from p to the closest selected object.
    let mut min_dist: Vec<f64> = (0..n)
        .map(|p| data.dist(p, a).min(data.dist(p, b)))
        .collect();

    while selected.len() < k {
        let next = (0..n)
            .filter(|p| !selected.contains(p))
            .max_by(|&x, &y| {
                min_dist[x]
                    .partial_cmp(&min_dist[y])
                    .expect("finite distances")
                    .then(y.cmp(&x)) // ties to the smaller id
            })
            .expect("k <= n leaves unselected objects");
        selected.push(next);
        for p in 0..n {
            let d = data.dist(p, next);
            if d < min_dist[p] {
                min_dist[p] = d;
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::fmin;
    use disc_datasets::synthetic::uniform;
    use disc_metric::{Metric, Point};
    use proptest::prelude::*;

    fn square() -> Dataset {
        Dataset::new(
            "square",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),
                Point::new2(1.0, 0.0),
                Point::new2(0.0, 1.0),
                Point::new2(1.0, 1.0),
                Point::new2(0.5, 0.5),
            ],
        )
    }

    #[test]
    fn picks_opposite_corners_first() {
        let d = square();
        let s = maxmin_select(&d, 2);
        // The farthest pairs are the two diagonals; ties resolve to the
        // first found: (0, 3).
        assert_eq!(s, vec![0, 3]);
    }

    #[test]
    fn four_corners_beat_the_center() {
        let d = square();
        let s = maxmin_select(&d, 4);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "center must be excluded: {s:?}");
    }

    #[test]
    fn k_equals_n_selects_everything() {
        let d = square();
        let mut s = maxmin_select(&d, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn k_one() {
        let d = square();
        assert_eq!(maxmin_select(&d, 1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "k must be within")]
    fn rejects_oversized_k() {
        let d = square();
        let _ = maxmin_select(&d, 6);
    }

    #[test]
    fn greedy_is_2_approximation_on_small_instances() {
        // Exhaustively find the optimal fMin for small n, k and check the
        // greedy 2-approximation bound.
        let data = uniform(12, 2, 7);
        for k in 2..=4usize {
            let greedy = fmin(&data, &maxmin_select(&data, k));
            let mut best = 0.0f64;
            // Enumerate all k-subsets.
            let n = data.len();
            let mut idx: Vec<usize> = (0..k).collect();
            loop {
                let cand: Vec<usize> = idx.clone();
                best = best.max(fmin(&data, &cand));
                // next combination
                let mut i = k;
                loop {
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                    if idx[i] != i + n - k {
                        idx[i] += 1;
                        for j in (i + 1)..k {
                            idx[j] = idx[j - 1] + 1;
                        }
                        break;
                    }
                    if i == 0 {
                        idx.clear();
                        break;
                    }
                }
                if idx.is_empty() {
                    break;
                }
            }
            assert!(
                greedy * 2.0 >= best - 1e-9,
                "k={k}: greedy {greedy} vs optimal {best}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// fMin is non-increasing in k, and the selection is always k
        /// distinct objects.
        #[test]
        fn fmin_monotone_in_k(seed in 0u64..1_000) {
            let data = uniform(40, 2, seed);
            let mut last = f64::INFINITY;
            for k in 2..=8usize {
                let s = maxmin_select(&data, k);
                prop_assert_eq!(s.len(), k);
                let mut dedup = s.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), k, "duplicates selected");
                let f = fmin(&data, &s);
                prop_assert!(f <= last + 1e-9);
                last = f;
            }
        }
    }
}
