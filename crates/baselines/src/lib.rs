//! Comparison diversification models (paper Section 4, Figure 6).
//!
//! The paper contrasts DisC diversity with the two dominant
//! diversification objectives and one representative-selection method:
//!
//! * [`maxmin`] — greedy MaxMin: maximise the minimum pairwise distance
//!   `f_Min` of a size-k subset;
//! * [`maxsum`] — greedy MaxSum: maximise the sum of pairwise distances
//!   `f_Sum`;
//! * [`kmedoids()`] — k-medoids clustering, whose medoids act as
//!   representatives minimising the mean distance to the closest selected
//!   object;
//! * [`quality`] — the metrics used to compare all methods: `f_Min`,
//!   `f_Sum`, coverage fraction at radius `r`, and mean representation
//!   error, plus the empirical Lemma 7 check (`λ* ≤ 3λ`).
//!
//! All selectors are deterministic (greedy ties towards smaller ids;
//! k-medoids uses a seeded initialisation), matching the reproducibility
//! discipline of the rest of the workspace.

pub mod kmedoids;
pub mod maxmin;
pub mod maxsum;
pub mod quality;

pub use kmedoids::{kmedoids, KMedoidsResult};
pub use maxmin::maxmin_select;
pub use maxsum::maxsum_select;
pub use quality::{coverage_fraction, fmin, fsum, mean_representation_error};
