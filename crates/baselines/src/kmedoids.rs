//! k-medoids clustering (Voronoi / Lloyd-style iteration).
//!
//! The paper's Section 4 uses k-medoids as a representative-selection
//! baseline: the medoids minimise
//! `(1/|P|) Σ_p dist(p, c(p))` where `c(p)` is the closest selected
//! object. Figure 6(d) shows the characteristic failure mode DisC avoids:
//! medoids sit in the dense centres and ignore outliers.
//!
//! Initialisation is a seeded farthest-first traversal from a random
//! start (deterministic for a given seed); the swap phase is a Voronoi
//! iteration (assign, then re-centre each cluster on its cost-minimising
//! member) which converges in a handful of rounds on the workloads used
//! here.

// Object ids double as array indices and query arguments here, so
// indexed loops are the clearer idiom.
#![allow(clippy::needless_range_loop)]

use disc_metric::{Dataset, ObjId};
use rand::{rngs::StdRng, RngExt as _, SeedableRng};

/// Result of a k-medoids run.
#[derive(Clone, Debug)]
pub struct KMedoidsResult {
    /// The selected medoids (cluster representatives), sorted by id.
    pub medoids: Vec<ObjId>,
    /// Final objective: mean distance to the closest medoid.
    pub objective: f64,
    /// Voronoi iterations until convergence (or the iteration cap).
    pub iterations: usize,
}

/// Runs k-medoids with `k` clusters and a deterministic seed.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the dataset size.
pub fn kmedoids(data: &Dataset, k: usize, seed: u64) -> KMedoidsResult {
    let n = data.len();
    assert!(k >= 1 && k <= n, "k must be within 1..={n}");
    let mut rng = StdRng::seed_from_u64(seed);

    // Farthest-first initialisation.
    let mut medoids: Vec<ObjId> = Vec::with_capacity(k);
    medoids.push(rng.random_range(0..n));
    let mut min_dist: Vec<f64> = (0..n).map(|p| data.dist(p, medoids[0])).collect();
    while medoids.len() < k {
        let next = (0..n)
            .max_by(|&x, &y| {
                min_dist[x]
                    .partial_cmp(&min_dist[y])
                    .expect("finite distances")
                    .then(y.cmp(&x))
            })
            .expect("non-empty dataset");
        medoids.push(next);
        for p in 0..n {
            let d = data.dist(p, next);
            if d < min_dist[p] {
                min_dist[p] = d;
            }
        }
    }

    // Voronoi iteration.
    let max_iters = 50;
    let mut iterations = 0;
    let mut assignment = vec![0usize; n];
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assign each object to its closest medoid.
        for p in 0..n {
            assignment[p] = (0..k)
                .min_by(|&a, &b| {
                    data.dist(p, medoids[a])
                        .partial_cmp(&data.dist(p, medoids[b]))
                        .expect("finite distances")
                        .then(medoids[a].cmp(&medoids[b]))
                })
                .expect("k >= 1");
        }
        // Re-centre each cluster on its cost-minimising member.
        let mut changed = false;
        for c in 0..k {
            let members: Vec<ObjId> = (0..n).filter(|&p| assignment[p] == c).collect();
            if members.is_empty() {
                continue;
            }
            let best = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ca: f64 = members.iter().map(|&m| data.dist(a, m)).sum();
                    let cb: f64 = members.iter().map(|&m| data.dist(b, m)).sum();
                    ca.partial_cmp(&cb)
                        .expect("finite distances")
                        .then(a.cmp(&b))
                })
                .expect("members is non-empty");
            if best != medoids[c] {
                medoids[c] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    medoids.sort_unstable();
    medoids.dedup();
    let objective = crate::quality::mean_representation_error(data, &medoids);
    KMedoidsResult {
        medoids,
        objective,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_datasets::synthetic::{clustered, uniform};
    use disc_metric::{Metric, Point};

    #[test]
    fn finds_obvious_cluster_centres() {
        // Two tight clusters; k = 2 must place one medoid in each.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Point::new2(0.1 + 0.001 * i as f64, 0.1));
            pts.push(Point::new2(0.9 + 0.001 * i as f64, 0.9));
        }
        let data = Dataset::new("two", Metric::Euclidean, pts);
        let res = kmedoids(&data, 2, 3);
        assert_eq!(res.medoids.len(), 2);
        let sides: Vec<bool> = res
            .medoids
            .iter()
            .map(|&m| data.point(m).coord(0) < 0.5)
            .collect();
        assert_ne!(
            sides[0], sides[1],
            "one medoid per cluster: {:?}",
            res.medoids
        );
        assert!(res.objective < 0.05);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = clustered(200, 2, 4, 20);
        let a = kmedoids(&data, 5, 7);
        let b = kmedoids(&data, 5, 7);
        assert_eq!(a.medoids, b.medoids);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn objective_improves_with_more_medoids() {
        let data = uniform(150, 2, 21);
        let few = kmedoids(&data, 3, 1).objective;
        let many = kmedoids(&data, 12, 1).objective;
        assert!(many < few, "more medoids must fit better: {many} vs {few}");
    }

    #[test]
    fn k_equals_n_reaches_zero_objective() {
        let data = uniform(20, 2, 22);
        let res = kmedoids(&data, 20, 0);
        assert!(res.objective < 1e-12);
    }

    #[test]
    fn converges_quickly() {
        let data = clustered(300, 2, 5, 23);
        let res = kmedoids(&data, 8, 5);
        assert!(res.iterations < 50, "should converge before the cap");
    }

    #[test]
    #[should_panic(expected = "k must be within")]
    fn rejects_zero_k() {
        let data = uniform(10, 2, 24);
        let _ = kmedoids(&data, 0, 0);
    }
}
