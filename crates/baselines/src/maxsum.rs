//! Greedy MaxSum diversification.
//!
//! MaxSum selects a size-`k` subset maximising
//! `f_Sum = Σ_{p_i ≠ p_j ∈ S} dist(p_i, p_j)`. The greedy heuristic of
//! Gollapudi & Sharma (used by the paper's Section 4 comparison)
//! repeatedly adds the *pair* of remaining objects with the maximum
//! distance, `⌈k/2⌉` times; for odd `k` the last slot is filled with the
//! remaining object farthest from the current selection. MaxSum
//! characteristically concentrates on the outskirts of the dataset —
//! exactly the behaviour Figure 6(b) of the paper illustrates.

// Object ids double as array indices and query arguments here, so
// indexed loops are the clearer idiom.
#![allow(clippy::needless_range_loop)]

use disc_metric::{Dataset, ObjId};

/// Selects `k` objects with the greedy MaxSum heuristic. Deterministic:
/// ties resolve towards smaller ids.
///
/// # Panics
///
/// Panics if `k` exceeds the dataset size or is zero.
pub fn maxsum_select(data: &Dataset, k: usize) -> Vec<ObjId> {
    let n = data.len();
    assert!(k >= 1 && k <= n, "k must be within 1..={n}");
    let mut selected: Vec<ObjId> = Vec::with_capacity(k);
    let mut available = vec![true; n];

    while selected.len() + 1 < k {
        let mut best = f64::NEG_INFINITY;
        let mut pair = (usize::MAX, usize::MAX);
        for i in 0..n {
            if !available[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !available[j] {
                    continue;
                }
                let d = data.dist(i, j);
                if d > best {
                    best = d;
                    pair = (i, j);
                }
            }
        }
        selected.push(pair.0);
        selected.push(pair.1);
        available[pair.0] = false;
        available[pair.1] = false;
    }

    if selected.len() < k {
        // Odd k: add the available object farthest from the selection
        // (sum of distances), ties to the smaller id.
        let next = (0..n)
            .filter(|&p| available[p])
            .max_by(|&x, &y| {
                let sx: f64 = selected.iter().map(|&s| data.dist(x, s)).sum();
                let sy: f64 = selected.iter().map(|&s| data.dist(y, s)).sum();
                sx.partial_cmp(&sy)
                    .expect("finite distances")
                    .then(y.cmp(&x))
            })
            .expect("k <= n leaves available objects");
        selected.push(next);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::fsum;
    use disc_datasets::synthetic::clustered;
    use disc_metric::{Metric, Point};

    fn line() -> Dataset {
        Dataset::new(
            "line",
            Metric::Euclidean,
            (0..6).map(|i| Point::new2(i as f64, 0.0)).collect(),
        )
    }

    #[test]
    fn picks_extreme_pair_first() {
        let d = line();
        let s = maxsum_select(&d, 2);
        assert_eq!(s, vec![0, 5]);
    }

    #[test]
    fn second_pair_is_next_extreme() {
        let d = line();
        let s = maxsum_select(&d, 4);
        assert_eq!(s, vec![0, 5, 1, 4]);
    }

    #[test]
    fn odd_k_fills_with_farthest_remaining() {
        let d = line();
        let s = maxsum_select(&d, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[..2], [0, 5]);
        // Either end-adjacent object maximises the distance sum; ties go
        // to the smaller id among the maximisers.
        assert!(s[2] == 1 || s[2] == 4);
    }

    #[test]
    fn k_equals_one() {
        let d = line();
        assert_eq!(maxsum_select(&d, 1).len(), 1);
    }

    #[test]
    fn concentrates_on_outskirts_of_clusters() {
        // On clustered data MaxSum should leave central objects
        // unselected: its fSum beats a "central" selection.
        let data = clustered(120, 2, 3, 11);
        let s = maxsum_select(&data, 6);
        let central: Vec<usize> = (0..6).collect();
        assert!(fsum(&data, &s) >= fsum(&data, &central));
        assert_eq!(s.len(), 6);
    }

    #[test]
    #[should_panic(expected = "k must be within")]
    fn rejects_zero_k() {
        let d = line();
        let _ = maxsum_select(&d, 0);
    }
}
