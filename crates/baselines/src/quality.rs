//! Quality metrics used to compare the diversification models
//! (paper Section 4 and Lemma 7).

use disc_metric::{neighbors, Dataset, ObjId};

/// `f_Min`: the minimum pairwise distance of the selected subset. Returns
/// infinity for subsets with fewer than two objects.
pub fn fmin(data: &Dataset, subset: &[ObjId]) -> f64 {
    let mut best = f64::INFINITY;
    for (i, &a) in subset.iter().enumerate() {
        for &b in &subset[i + 1..] {
            best = best.min(data.dist(a, b));
        }
    }
    best
}

/// `f_Sum`: the sum of pairwise distances of the selected subset.
pub fn fsum(data: &Dataset, subset: &[ObjId]) -> f64 {
    let mut sum = 0.0;
    for (i, &a) in subset.iter().enumerate() {
        for &b in &subset[i + 1..] {
            sum += data.dist(a, b);
        }
    }
    sum
}

/// Fraction of the dataset within distance `r` of some selected object —
/// DisC guarantees 1.0 by construction; the baselines generally do not.
pub fn coverage_fraction(data: &Dataset, subset: &[ObjId], r: f64) -> f64 {
    if subset.is_empty() {
        return 0.0;
    }
    let covered = neighbors::dist_to_nearest(data, subset)
        .into_iter()
        .filter(|&d| d <= r)
        .count();
    covered as f64 / data.len() as f64
}

/// Mean distance to the closest selected object — the k-medoids objective
/// `(1/|P|) Σ dist(p, c(p))`, a representation-error measure.
pub fn mean_representation_error(data: &Dataset, subset: &[ObjId]) -> f64 {
    if subset.is_empty() {
        return f64::INFINITY;
    }
    neighbors::dist_to_nearest(data, subset).iter().sum::<f64>() / data.len() as f64
}

/// Empirical check of Lemma 7: for an r-DisC diverse subset `S` with
/// `λ = f_Min(S)` and an optimal-MaxMin-approximating subset `S*` of the
/// same size with `λ* = f_Min(S*)`, the paper proves `λ* ≤ 3λ`. Since the
/// greedy MaxMin is a 2-approximation (`λ_greedy ≥ λ*/2`, i.e.
/// `λ* ≤ 2·λ_greedy`), observing `λ_greedy ≤ 3λ · 2` would be implied;
/// the stronger practical check `λ_greedy ≤ 3λ` is what this function
/// reports alongside the raw values.
pub struct Lemma7Check {
    /// `f_Min` of the DisC solution (`λ`).
    pub lambda_disc: f64,
    /// `f_Min` of the greedy MaxMin solution of the same size.
    pub lambda_maxmin: f64,
    /// `λ_maxmin / λ_disc`.
    pub ratio: f64,
    /// Whether the observed ratio is within the Lemma 7 bound of 3.
    pub within_bound: bool,
}

/// Runs the Lemma 7 comparison for a computed DisC solution.
pub fn lemma7_check(data: &Dataset, disc_solution: &[ObjId]) -> Lemma7Check {
    let lambda_disc = fmin(data, disc_solution);
    let maxmin = crate::maxmin::maxmin_select(data, disc_solution.len().max(1));
    let lambda_maxmin = fmin(data, &maxmin);
    let ratio = if lambda_disc > 0.0 {
        lambda_maxmin / lambda_disc
    } else {
        f64::INFINITY
    };
    Lemma7Check {
        lambda_disc,
        lambda_maxmin,
        ratio,
        within_bound: ratio <= 3.0 + 1e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_metric::{Metric, Point};

    fn line() -> Dataset {
        Dataset::new(
            "line",
            Metric::Euclidean,
            (0..5).map(|i| Point::new2(i as f64, 0.0)).collect(),
        )
    }

    #[test]
    fn fmin_of_selection() {
        let d = line();
        assert_eq!(fmin(&d, &[0, 2, 4]), 2.0);
        assert_eq!(fmin(&d, &[0, 1, 4]), 1.0);
        assert_eq!(fmin(&d, &[3]), f64::INFINITY);
    }

    #[test]
    fn fsum_of_selection() {
        let d = line();
        // dist(0,2)+dist(0,4)+dist(2,4) = 2+4+2.
        assert_eq!(fsum(&d, &[0, 2, 4]), 8.0);
        assert_eq!(fsum(&d, &[1]), 0.0);
    }

    #[test]
    fn coverage_fraction_bounds() {
        let d = line();
        assert_eq!(coverage_fraction(&d, &[2], 2.0), 1.0);
        assert_eq!(coverage_fraction(&d, &[0], 1.0), 0.4);
        assert_eq!(coverage_fraction(&d, &[], 1.0), 0.0);
    }

    #[test]
    fn representation_error() {
        let d = line();
        // Distances to {2}: 2,1,0,1,2 -> mean 1.2.
        assert!((mean_representation_error(&d, &[2]) - 1.2).abs() < 1e-12);
        assert_eq!(mean_representation_error(&d, &[]), f64::INFINITY);
    }

    #[test]
    fn lemma7_on_a_line() {
        let d = line();
        // A valid 1-DisC subset: {1, 3} (covers 0..4, pairwise distance 2).
        let check = lemma7_check(&d, &[1, 3]);
        assert_eq!(check.lambda_disc, 2.0);
        // Best possible fMin for k=2 is 4 ({0,4}); greedy finds it.
        assert_eq!(check.lambda_maxmin, 4.0);
        assert!((check.ratio - 2.0).abs() < 1e-12);
        assert!(check.within_bound);
    }
}
