//! Cancellation semantics of the `*_checked` selection runners.
//!
//! Two properties matter to the serving layer:
//!
//! 1. **Transparency** — with no token (or a token that never fires) a
//!    checked runner is byte-identical to its plain counterpart, so the
//!    deadline machinery cannot perturb solutions.
//! 2. **Clean abandonment** — a fired token surfaces as `Err(Cancelled)`
//!    from deep inside the selection scan with no partial solution
//!    escaping, and a deterministic `with_check_budget` token trips at a
//!    reproducible point regardless of machine speed.

use std::time::Duration;

use disc_core::{
    fast_c_graph, fast_c_graph_checked, greedy_c_graph, greedy_c_graph_checked, greedy_disc,
    greedy_disc_graph, greedy_disc_graph_checked, greedy_zoom_in, greedy_zoom_in_checked,
    greedy_zoom_in_graph, greedy_zoom_in_graph_checked, greedy_zoom_out, greedy_zoom_out_checked,
    multi_radius_basic_disc, multi_radius_basic_disc_checked, multi_radius_graph,
    multi_radius_graph_checked, multi_radius_greedy_disc, multi_radius_greedy_disc_checked,
    zoom_in, zoom_in_checked, zoom_in_graph, zoom_in_graph_checked, zoom_out_graph,
    zoom_out_graph_checked, GreedyVariant, ZoomOutVariant,
};
use disc_datasets::synthetic::clustered;
use disc_graph::{StratifiedDiskGraph, UnitDiskGraph};
use disc_metric::cancel::{CancelToken, Cancelled};
use disc_mtree::{MTree, MTreeConfig};

const R: f64 = 0.08;
const R_SMALL: f64 = 0.04;

fn live_token() -> CancelToken {
    CancelToken::with_deadline(Duration::from_secs(3600))
}

fn expired_token() -> CancelToken {
    CancelToken::with_deadline(Duration::ZERO)
}

#[test]
fn live_token_is_transparent_for_every_checked_runner() {
    let data = clustered(400, 2, 5, 170);
    let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
    let udg = UnitDiskGraph::from_mtree(&tree, R);
    let strat = StratifiedDiskGraph::from_mtree(&tree, R);
    let prev = greedy_disc(&tree, R, GreedyVariant::Grey, true);
    let prev_small = greedy_disc(&tree, R_SMALL, GreedyVariant::Grey, true);
    let radii = vec![R; data.len()];
    let t = live_token();

    assert_eq!(
        greedy_disc_graph_checked(&udg, Some(&t)),
        Ok(greedy_disc_graph(&udg))
    );
    assert_eq!(
        greedy_c_graph_checked(&udg, Some(&t)),
        Ok(greedy_c_graph(&udg))
    );
    assert_eq!(fast_c_graph_checked(&udg, Some(&t)), Ok(fast_c_graph(&udg)));
    assert_eq!(
        zoom_in_graph_checked(&tree, &strat, &prev, R_SMALL, Some(&t)),
        Ok(zoom_in_graph(&tree, &strat, &prev, R_SMALL))
    );
    assert_eq!(
        greedy_zoom_in_graph_checked(&strat, &prev, R_SMALL, Some(&t)),
        Ok(greedy_zoom_in_graph(&strat, &prev, R_SMALL))
    );
    for v in [
        ZoomOutVariant::Plain,
        ZoomOutVariant::GreedyA,
        ZoomOutVariant::GreedyB,
        ZoomOutVariant::GreedyC,
    ] {
        assert_eq!(
            zoom_out_graph_checked(&tree, &strat, &prev_small, R, v, Some(&t)),
            Ok(zoom_out_graph(&tree, &strat, &prev_small, R, v)),
            "{v:?}"
        );
        assert_eq!(
            greedy_zoom_out_checked(&tree, &prev_small, R, v, Some(&t)),
            Ok(greedy_zoom_out(&tree, &prev_small, R, v)),
            "{v:?}"
        );
    }
    for greedy in [false, true] {
        assert_eq!(
            multi_radius_graph_checked(&tree, &strat, &radii, greedy, Some(&t)),
            Ok(multi_radius_graph(&tree, &strat, &radii, greedy)),
            "greedy={greedy}"
        );
    }
    assert_eq!(
        zoom_in_checked(&tree, &prev, R_SMALL, Some(&t)),
        Ok(zoom_in(&tree, &prev, R_SMALL))
    );
    assert_eq!(
        greedy_zoom_in_checked(&tree, &prev, R_SMALL, Some(&t)),
        Ok(greedy_zoom_in(&tree, &prev, R_SMALL))
    );
    assert_eq!(
        multi_radius_basic_disc_checked(&tree, &radii, true, Some(&t)),
        Ok(multi_radius_basic_disc(&tree, &radii, true))
    );
    assert_eq!(
        multi_radius_greedy_disc_checked(&tree, &radii, true, Some(&t)),
        Ok(multi_radius_greedy_disc(&tree, &radii, true))
    );
}

#[test]
fn expired_deadline_cancels_every_checked_runner() {
    let data = clustered(300, 2, 4, 171);
    let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
    let udg = UnitDiskGraph::from_mtree(&tree, R);
    let strat = StratifiedDiskGraph::from_mtree(&tree, R);
    let prev = greedy_disc(&tree, R, GreedyVariant::Grey, true);
    let prev_small = greedy_disc(&tree, R_SMALL, GreedyVariant::Grey, true);
    let radii = vec![R; data.len()];
    let t = expired_token();

    assert_eq!(greedy_disc_graph_checked(&udg, Some(&t)), Err(Cancelled));
    assert_eq!(greedy_c_graph_checked(&udg, Some(&t)), Err(Cancelled));
    assert_eq!(fast_c_graph_checked(&udg, Some(&t)), Err(Cancelled));
    assert_eq!(
        zoom_in_graph_checked(&tree, &strat, &prev, R_SMALL, Some(&t)),
        Err(Cancelled)
    );
    assert_eq!(
        greedy_zoom_in_graph_checked(&strat, &prev, R_SMALL, Some(&t)),
        Err(Cancelled)
    );
    assert_eq!(
        zoom_out_graph_checked(
            &tree,
            &strat,
            &prev_small,
            R,
            ZoomOutVariant::GreedyB,
            Some(&t)
        ),
        Err(Cancelled)
    );
    assert_eq!(
        multi_radius_graph_checked(&tree, &strat, &radii, true, Some(&t)),
        Err(Cancelled)
    );
    assert_eq!(
        zoom_in_checked(&tree, &prev, R_SMALL, Some(&t)),
        Err(Cancelled)
    );
    assert_eq!(
        greedy_zoom_in_checked(&tree, &prev, R_SMALL, Some(&t)),
        Err(Cancelled)
    );
    assert_eq!(
        greedy_zoom_out_checked(&tree, &prev_small, R, ZoomOutVariant::GreedyC, Some(&t)),
        Err(Cancelled)
    );
    assert_eq!(
        multi_radius_basic_disc_checked(&tree, &radii, true, Some(&t)),
        Err(Cancelled)
    );
    assert_eq!(
        multi_radius_greedy_disc_checked(&tree, &radii, true, Some(&t)),
        Err(Cancelled)
    );
}

/// A budgeted token trips mid-scan at a deterministic checkpoint: the
/// runner has done real work (the budget outlives the first few
/// selection rounds) yet still surfaces a clean `Err(Cancelled)`.
#[test]
fn budget_token_cancels_mid_scan_deterministically() {
    let data = clustered(400, 2, 5, 172);
    let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
    let udg = UnitDiskGraph::from_mtree(&tree, R);
    let full = greedy_disc_graph(&udg);
    let rounds = full.solution.len() as u64;
    assert!(rounds > 4, "workload must take several selection rounds");

    // Trip halfway through the selection loop.
    let t = CancelToken::with_check_budget(rounds / 2);
    assert_eq!(greedy_disc_graph_checked(&udg, Some(&t)), Err(Cancelled));

    // A budget beyond the total checkpoint count never fires.
    let t = CancelToken::with_check_budget(rounds + 1);
    assert_eq!(greedy_disc_graph_checked(&udg, Some(&t)), Ok(full));
}

/// Explicit cancellation from another thread is observed mid-scan.
#[test]
fn explicit_cancel_is_observed() {
    let data = clustered(300, 2, 4, 173);
    let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
    let udg = UnitDiskGraph::from_mtree(&tree, R);
    let t = CancelToken::new();
    t.cancel();
    assert_eq!(greedy_disc_graph_checked(&udg, Some(&t)), Err(Cancelled));
}
