//! The sorted candidate structure `L'` of the paper's greedy heuristics.
//!
//! A lazy max-heap: entries are `(key, object)` pairs ordered by key
//! descending, ties towards the smallest object id (so all algorithms are
//! deterministic and match the reference implementations in `disc-graph`).
//! Keys in the heap may go stale when counts are decremented; the caller
//! supplies the authoritative key at pop time and stale entries are
//! re-inserted with their current key. This is correct as long as keys
//! only ever *decrease*, which holds for all DisC heuristics (coverage
//! counts shrink monotonically).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use disc_metric::ObjId;

/// Lazy max-heap over `(key, object)` with smallest-id tie-breaking.
#[derive(Clone, Debug, Default)]
pub struct LazyMaxHeap {
    heap: BinaryHeap<(u32, Reverse<ObjId>)>,
}

impl LazyMaxHeap {
    /// An empty heap with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
        }
    }

    /// Inserts (or re-inserts after a key change) an object. Old entries
    /// for the same object may remain; they are discarded lazily.
    pub fn push(&mut self, object: ObjId, key: u32) {
        self.heap.push((key, Reverse(object)));
    }

    /// Pops the candidate with the largest current key (ties to the
    /// smallest id). `current_key` returns the authoritative key for a
    /// still-valid candidate and `None` for objects that are no longer
    /// candidates.
    ///
    /// Returns `None` when no valid candidate remains.
    pub fn pop_valid(
        &mut self,
        mut current_key: impl FnMut(ObjId) -> Option<u32>,
    ) -> Option<ObjId> {
        while let Some((key, Reverse(object))) = self.heap.pop() {
            match current_key(object) {
                Some(cur) if cur == key => return Some(object),
                Some(cur) => {
                    debug_assert!(
                        cur < key,
                        "keys must only decrease (object {object}: {key} -> {cur})"
                    );
                    self.heap.push((cur, Reverse(object)));
                }
                None => {} // no longer a candidate; drop the entry
            }
        }
        None
    }

    /// Number of entries (including stale duplicates).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_largest_key_first() {
        let mut h = LazyMaxHeap::with_capacity(4);
        h.push(0, 3);
        h.push(1, 7);
        h.push(2, 5);
        let keys = [3u32, 7, 5];
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(1));
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(2));
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(0));
        assert_eq!(h.pop_valid(|o| Some(keys[o])), None);
    }

    #[test]
    fn ties_break_to_smallest_id() {
        let mut h = LazyMaxHeap::default();
        h.push(9, 4);
        h.push(3, 4);
        h.push(7, 4);
        let order: Vec<ObjId> = std::iter::from_fn(|| h.pop_valid(|_| Some(4))).collect();
        assert_eq!(order, vec![3, 7, 9]);
    }

    #[test]
    fn stale_entries_reinserted_with_current_key() {
        let mut h = LazyMaxHeap::default();
        h.push(0, 10);
        h.push(1, 8);
        // Object 0's key dropped to 5 since insertion.
        let keys = [5u32, 8];
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(1));
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(0));
    }

    #[test]
    fn invalid_candidates_are_dropped() {
        let mut h = LazyMaxHeap::default();
        h.push(0, 2);
        h.push(1, 1);
        // Object 0 is no longer a candidate (e.g. it was greyed).
        assert_eq!(h.pop_valid(|o| (o == 1).then_some(1)), Some(1));
        assert_eq!(h.pop_valid(|o| (o == 1).then_some(1)), None);
        assert!(h.is_empty());
    }

    #[test]
    fn duplicate_entries_resolve_to_one_pop() {
        let mut h = LazyMaxHeap::default();
        h.push(0, 5);
        h.push(0, 3); // re-push after decrement
        let mut alive = true;
        let first = h.pop_valid(|_| alive.then_some(3));
        assert_eq!(first, Some(0));
        alive = false;
        assert_eq!(h.pop_valid(|_| alive.then_some(3)), None);
    }

    #[test]
    fn len_tracks_entries() {
        let mut h = LazyMaxHeap::with_capacity(2);
        assert!(h.is_empty());
        h.push(4, 1);
        h.push(4, 0);
        assert_eq!(h.len(), 2);
    }
}
