//! The sorted candidate structure `L'` of the paper's greedy heuristics.
//!
//! A lazy max-heap: entries are `(key, rank, object)` triples ordered by
//! key descending, ties towards the smallest *rank* (so all algorithms
//! are deterministic and match the reference implementations in
//! `disc-graph`). The rank defaults to the object id itself; runners on
//! a renumbered graph pass the object's *external* id instead, which
//! keeps pop order — and therefore every solution — independent of the
//! internal numbering. Keys in the heap may go stale when counts are
//! decremented; the caller supplies the authoritative key at pop time
//! and stale entries are re-inserted with their current key. This is
//! correct as long as keys only ever *decrease*, which holds for all
//! DisC heuristics (coverage counts shrink monotonically).
//!
//! ## Stale-entry cap
//!
//! Every `push` after a key change leaves the object's previous entry in
//! the heap. The heap tracks the key of each object's *latest* push
//! (`latest`) and the number of objects with a live entry (`live`);
//! entries whose key no longer matches `latest` are discarded on pop
//! without consulting the caller. When total entries exceed **2× the
//! live objects** (plus a small floor to avoid thrashing tiny heaps),
//! the heap rebuilds itself from the heap's own surviving entries — one
//! per live object — so memory stays `O(live)` instead of
//! `O(total pushes)` even for the Lazy variants' long runs of
//! decrement-and-repush.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use disc_metric::ObjId;

/// Entry floor below which no rebuild triggers (rebuilding a tiny heap
/// costs more than the duplicates it reclaims).
const REBUILD_FLOOR: usize = 64;

/// Lazy max-heap over `(key, rank, object)` with smallest-rank
/// tie-breaking (rank = object id unless pushed via [`push_ranked`]).
///
/// [`push_ranked`]: LazyMaxHeap::push_ranked
#[derive(Clone, Debug, Default)]
pub struct LazyMaxHeap {
    heap: BinaryHeap<(u32, Reverse<ObjId>, ObjId)>,
    /// Key of each object's most recent push, `None` once the object has
    /// been popped successfully or reported gone by the caller. Grown on
    /// demand.
    latest: Vec<Option<u32>>,
    /// Number of `Some` slots in `latest`.
    live: usize,
}

impl LazyMaxHeap {
    /// An empty heap with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
            latest: vec![None; n],
            live: 0,
        }
    }

    /// Inserts (or re-inserts after a key change) an object, breaking
    /// key ties towards the smallest object id.
    pub fn push(&mut self, object: ObjId, key: u32) {
        self.push_ranked(object, object, key);
    }

    /// Inserts (or re-inserts after a key change) an object with an
    /// explicit tie-break rank. Every push of one object must use the
    /// same rank, and ranks must be distinct across objects (a
    /// bijection — e.g. the external id on a renumbered graph). Old
    /// entries for the same object may remain; they are discarded
    /// lazily, and a rebuild reclaims them once they outnumber live
    /// entries 2:1.
    pub fn push_ranked(&mut self, object: ObjId, rank: ObjId, key: u32) {
        if object >= self.latest.len() {
            self.latest.resize(object + 1, None);
        }
        if self.latest[object].is_none() {
            self.live += 1;
        }
        self.latest[object] = Some(key);
        self.heap.push((key, Reverse(rank), object));
        if self.heap.len() > REBUILD_FLOOR && self.heap.len() > 2 * self.live {
            self.rebuild();
        }
    }

    /// Drops every superseded entry, keeping exactly one entry (the
    /// latest key) per live object. Works over the heap's own entries —
    /// O(entries + live), independent of how many objects ever existed —
    /// temporarily clearing `latest` as a seen-mark so equal-key
    /// duplicates of one object collapse too.
    fn rebuild(&mut self) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut kept: Vec<(u32, Reverse<ObjId>, ObjId)> = Vec::with_capacity(self.live);
        for (key, rank, object) in entries {
            if self.latest[object] == Some(key) {
                kept.push((key, rank, object));
                self.latest[object] = None;
            }
        }
        debug_assert_eq!(kept.len(), self.live);
        for &(key, _, object) in &kept {
            self.latest[object] = Some(key);
        }
        self.heap = BinaryHeap::from(kept);
    }

    /// Pops the candidate with the largest current key (ties to the
    /// smallest rank). `current_key` returns the authoritative key for a
    /// still-valid candidate and `None` for objects that are no longer
    /// candidates.
    ///
    /// Returns `None` when no valid candidate remains.
    pub fn pop_valid(
        &mut self,
        mut current_key: impl FnMut(ObjId) -> Option<u32>,
    ) -> Option<ObjId> {
        while let Some((key, rank, object)) = self.heap.pop() {
            if self.latest[object] != Some(key) {
                // Superseded by a later push, or the object was already
                // retired: a fresher entry (if any) is still queued.
                continue;
            }
            match current_key(object) {
                Some(cur) if cur == key => {
                    // The entry leaves the heap with the pop.
                    self.latest[object] = None;
                    self.live -= 1;
                    return Some(object);
                }
                Some(cur) => {
                    debug_assert!(
                        cur < key,
                        "keys must only decrease (object {object}: {key} -> {cur})"
                    );
                    self.latest[object] = Some(cur);
                    self.heap.push((cur, rank, object));
                }
                None => {
                    self.latest[object] = None;
                    self.live -= 1;
                }
            }
        }
        None
    }

    /// Number of entries (including stale duplicates pending cleanup).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of objects with a live (non-superseded) entry.
    pub fn live_len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_largest_key_first() {
        let mut h = LazyMaxHeap::with_capacity(4);
        h.push(0, 3);
        h.push(1, 7);
        h.push(2, 5);
        let keys = [3u32, 7, 5];
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(1));
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(2));
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(0));
        assert_eq!(h.pop_valid(|o| Some(keys[o])), None);
    }

    #[test]
    fn ties_break_to_smallest_id() {
        let mut h = LazyMaxHeap::default();
        h.push(9, 4);
        h.push(3, 4);
        h.push(7, 4);
        let order: Vec<ObjId> = std::iter::from_fn(|| h.pop_valid(|_| Some(4))).collect();
        assert_eq!(order, vec![3, 7, 9]);
    }

    #[test]
    fn ties_break_to_smallest_rank_not_id() {
        // Ranks invert the id order: the pop sequence must follow the
        // ranks, exactly as an external-id tie-break on a renumbered
        // graph would.
        let mut h = LazyMaxHeap::default();
        h.push_ranked(0, 20, 4);
        h.push_ranked(1, 10, 4);
        h.push_ranked(2, 30, 4);
        let order: Vec<ObjId> = std::iter::from_fn(|| h.pop_valid(|_| Some(4))).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn ranked_stale_entries_keep_their_rank() {
        let mut h = LazyMaxHeap::default();
        h.push_ranked(0, 5, 10);
        h.push_ranked(1, 2, 8);
        // Object 0's key dropped to 8 since insertion: both tie at 8 and
        // object 1 wins because its rank (2) beats object 0's rank (5),
        // even though a plain id tie-break would favour object 0.
        let keys = [8u32, 8];
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(1));
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(0));
    }

    #[test]
    fn stale_entries_reinserted_with_current_key() {
        let mut h = LazyMaxHeap::default();
        h.push(0, 10);
        h.push(1, 8);
        // Object 0's key dropped to 5 since insertion.
        let keys = [5u32, 8];
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(1));
        assert_eq!(h.pop_valid(|o| Some(keys[o])), Some(0));
    }

    #[test]
    fn invalid_candidates_are_dropped() {
        let mut h = LazyMaxHeap::default();
        h.push(0, 2);
        h.push(1, 1);
        // Object 0 is no longer a candidate (e.g. it was greyed).
        assert_eq!(h.pop_valid(|o| (o == 1).then_some(1)), Some(1));
        assert_eq!(h.pop_valid(|o| (o == 1).then_some(1)), None);
        assert!(h.is_empty());
    }

    #[test]
    fn duplicate_entries_resolve_to_one_pop() {
        let mut h = LazyMaxHeap::default();
        h.push(0, 5);
        h.push(0, 3); // re-push after decrement
        let mut alive = true;
        let first = h.pop_valid(|_| alive.then_some(3));
        assert_eq!(first, Some(0));
        alive = false;
        assert_eq!(h.pop_valid(|_| alive.then_some(3)), None);
    }

    #[test]
    fn len_tracks_entries() {
        let mut h = LazyMaxHeap::with_capacity(2);
        assert!(h.is_empty());
        h.push(4, 1);
        h.push(4, 0);
        assert_eq!(h.len(), 2);
        assert_eq!(h.live_len(), 1);
    }

    #[test]
    fn rebuild_caps_stale_entries() {
        // Two live objects, thousands of decrement-and-repush rounds:
        // without the rebuild the heap would hold every push.
        let mut h = LazyMaxHeap::with_capacity(2);
        let rounds = 10_000u32;
        for k in (0..rounds).rev() {
            h.push(0, k);
            h.push(1, k);
        }
        assert!(
            h.len() <= 2 * REBUILD_FLOOR + 2,
            "stale entries unbounded: {}",
            h.len()
        );
        assert_eq!(h.live_len(), 2);
        // Popping still yields both objects at their final keys, ties to
        // the smallest id.
        assert_eq!(h.pop_valid(|_| Some(0)), Some(0));
        assert_eq!(h.pop_valid(|_| Some(0)), Some(1));
        assert_eq!(h.pop_valid(|_| Some(0)), None);
    }

    #[test]
    fn rebuild_preserves_pop_order_across_many_objects() {
        // Interleave pushes so rebuilds trigger mid-stream, then verify
        // the pop sequence equals the sorted (key desc, id asc) order.
        let n = 200usize;
        let mut keys: Vec<u32> = (0..n).map(|i| ((i * 37) % 91) as u32 + 1).collect();
        let mut h = LazyMaxHeap::with_capacity(n);
        for (i, &k) in keys.iter().enumerate() {
            // Push a decreasing ladder per object to pile up staleness.
            for extra in (0..4).rev() {
                h.push(i, k + extra);
            }
        }
        // Final authoritative key is `keys[i]`; the ladder pushed
        // k+3..k, so the latest push already matches.
        let mut want: Vec<(u32, usize)> = keys.iter().copied().zip(0..n).collect();
        want.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut got = Vec::new();
        while let Some(o) = h.pop_valid(|o| Some(keys[o])) {
            got.push((keys[o], o));
            keys[o] = 0; // retired objects keep returning their key; mark
        }
        assert_eq!(got.len(), n);
        assert_eq!(got, want);
    }

    #[test]
    fn rebuild_preserves_ranked_pop_order() {
        // Same as above but with ranks decoupled from ids (reversed), so
        // a rebuild that dropped ranks would scramble tie groups.
        let n = 200usize;
        let keys: Vec<u32> = (0..n).map(|i| ((i * 13) % 7) as u32 + 1).collect();
        let rank = |i: usize| n - 1 - i;
        let mut h = LazyMaxHeap::with_capacity(n);
        for (i, &k) in keys.iter().enumerate() {
            for extra in (0..4).rev() {
                h.push_ranked(i, rank(i), k + extra);
            }
        }
        let mut want: Vec<(u32, usize)> = keys.iter().copied().zip(0..n).collect();
        want.sort_by(|a, b| b.0.cmp(&a.0).then(rank(a.1).cmp(&rank(b.1))));
        let mut keys = keys;
        let mut got = Vec::new();
        while let Some(o) = h.pop_valid(|o| Some(keys[o])) {
            got.push((keys[o], o));
            keys[o] = 0;
        }
        assert_eq!(got, want);
    }
}
