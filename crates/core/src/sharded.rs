//! The sharded r-disk graph build: spatial partitions, per-shard
//! M-trees, intra-shard self-joins plus boundary-pair cross-joins, and
//! one multi-source CSR merge — byte-identical to the unsharded build
//! at every shard count.
//!
//! ## Pipeline
//!
//! 1. **Partition** — [`disc_mtree::ShardPlan`] recursively median-splits
//!    the dataset with the M-tree's pivot-promotion rule, producing a
//!    canonical permutation (a pure function of the dataset, never of
//!    the shard count) and `s` contiguous shard ranges with covering
//!    balls.
//! 2. **Renumber** — the dataset is renumbered into the canonical
//!    order, so shard `i`'s objects are the contiguous ids
//!    `ranges[i]`; the permutation rides into the graph and snapshot
//!    exactly as the previous leaf-order renumbering did.
//! 3. **Per-shard tree + intra-join** — each non-empty shard builds
//!    [`disc_mtree::MTree::build_range`] over the shared dataset and
//!    self-joins it at `r_max`. Each task is self-contained (a shard
//!    range in, an edge list out): the designed seam for running a
//!    shard in a separate process later.
//! 4. **Boundary joins** — only shard pairs whose covering balls pass
//!    the triangle-inequality filter run a cross-tree dual traversal
//!    ([`disc_mtree::cross_tree_join_dist_checked`]); edges are already
//!    in global ids.
//! 5. **Merge + assembly** — all edge lists feed the multi-source CSR
//!    assembly ([`StratifiedDiskGraph::from_dist_edge_slices_checked`])
//!    without concatenation; offsets are degree counts and rows sort by
//!    the total `(distance, id)` order, so the bytes equal the
//!    unsharded assembly's.
//!
//! With the `parallel` feature and `threads > 1`, stages 3 and 4 run
//! their *tasks* concurrently (an atomic work cursor over serial
//! tasks); a single-shard build instead gives its one intra-join the
//! configured thread count. Either way every task's traversal is
//! deterministic, so the edge sets, the assembled bytes and the
//! [`ShardedBuildStats`] counters are identical at every worker count.
//!
//! ## Why bytes match at every shard count
//!
//! * The permutation comes from the plan's full-depth recursion, which
//!   the shard count never influences — shard boundaries are read off
//!   the same recursion tree.
//! * The union of intra-shard and boundary edge sets is exactly the
//!   edge set of `G_{P,r}`: intra joins cover same-shard pairs, the
//!   ball filter provably keeps every cross-shard pair within `r`
//!   (conservative under rounding), and the cross-join emits exactly
//!   the `d ≤ r` pairs of each kept shard pair.
//! * CSR assembly is a pure function of the edge *set* (degree-count
//!   offsets + total-order row sort), indifferent to which task
//!   produced an edge.

use std::time::Instant;

use disc_graph::{GraphError, StratifiedDiskGraph};
use disc_metric::{CancelToken, Dataset};
use disc_mtree::shard::DEFAULT_STOP;
use disc_mtree::{
    cross_tree_join_dist_checked, DistEdge, MTree, MTreeConfig, SelfJoinConfig, ShardPlan,
};

/// Tuning knobs for [`build_sharded_with`].
#[derive(Clone, Copy, Debug)]
pub struct ShardedBuildConfig {
    /// Worker threads for the task phases and the assembly row sort
    /// (`0` = one per available core). With one shard this instead
    /// becomes the intra-join's [`SelfJoinConfig`] thread count.
    pub threads: usize,
    /// Partition recursion stop size ([`DEFAULT_STOP`]); tests shrink it
    /// to force deep recursion on small datasets.
    pub stop: usize,
    /// Per-shard M-tree construction parameters.
    pub tree: MTreeConfig,
}

impl Default for ShardedBuildConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            stop: DEFAULT_STOP,
            tree: MTreeConfig::default(),
        }
    }
}

/// Per-phase timings and exact work accounting of one sharded build.
///
/// Millisecond fields are wall-clock per phase, except `tree_ms`,
/// `intra_join_ms` and `boundary_join_ms`, which **sum the per-task
/// durations** — under the parallel executor the phases interleave, so
/// per-task sums are the comparable (and shard-count-decomposable)
/// quantity. Counter fields are deterministic: identical at every
/// worker-thread count for a fixed dataset and shard count.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardedBuildStats {
    /// Planned shard count (including empty shards).
    pub shards: usize,
    /// Non-empty shard pairs examined by the ball filter.
    pub boundary_pairs_considered: usize,
    /// Pairs that passed the filter and ran a cross-join.
    pub boundary_pairs_joined: usize,
    /// Undirected edges in the assembled graph.
    pub edges: usize,
    /// Spatial partitioning: recursion, covering balls, pair filter.
    pub partition_ms: f64,
    /// Dataset renumbering into the canonical order.
    pub renumber_ms: f64,
    /// Per-shard M-tree construction (sum over shards).
    pub tree_ms: f64,
    /// Intra-shard self-joins (sum over shards).
    pub intra_join_ms: f64,
    /// Boundary cross-joins (sum over joined pairs).
    pub boundary_join_ms: f64,
    /// Multi-source merge: degree count + fill over the edge slices.
    pub merge_ms: f64,
    /// CSR row-sort phase of the assembly.
    pub assembly_ms: f64,
    /// Distances evaluated by the partitioner (recursion keys,
    /// promotions, ball radii, pair filter).
    pub partition_dc: u64,
    /// Distances evaluated building the per-shard trees.
    pub tree_dc: u64,
    /// Distances evaluated by the intra-shard self-joins.
    pub intra_join_dc: u64,
    /// Distances evaluated by the boundary cross-joins.
    pub boundary_join_dc: u64,
    /// Node accesses across tree builds, intra-joins and cross-joins.
    pub node_accesses: u64,
}

impl ShardedBuildStats {
    /// Total distance computations across every phase — the exact
    /// counterpart of the unsharded pipeline's tree counter, with the
    /// partitioning and boundary joins included.
    pub fn distance_computations(&self) -> u64 {
        self.partition_dc + self.tree_dc + self.intra_join_dc + self.boundary_join_dc
    }

    /// Boundary-join share of the join distance computations
    /// (`boundary / (intra + boundary)`), the overhead the scale bench
    /// bounds. Zero when no join work ran.
    pub fn boundary_dc_share(&self) -> f64 {
        let join = self.intra_join_dc + self.boundary_join_dc;
        if join == 0 {
            0.0
        } else {
            self.boundary_join_dc as f64 / join as f64
        }
    }
}

/// A completed sharded build: the canonically renumbered dataset (its
/// [`disc_metric::IdPermutation`] maps back to the input's external
/// ids), the stratified graph over it, and the per-phase stats.
#[derive(Debug)]
pub struct ShardedBuild {
    /// The input dataset renumbered into the plan's canonical order.
    pub data: Dataset,
    /// `G_{P, r_max}` over the renumbered dataset, permutation attached.
    pub graph: StratifiedDiskGraph,
    /// Phase timings and exact work accounting.
    pub stats: ShardedBuildStats,
}

/// Builds the stratified r-disk graph through the sharded pipeline with
/// default configuration. See the [module docs](self); byte-identical
/// output at every `shards ≥ 1`.
pub fn build_sharded(
    data: &Dataset,
    r_max: f64,
    shards: usize,
) -> Result<ShardedBuild, GraphError> {
    build_sharded_with(data, r_max, shards, ShardedBuildConfig::default(), None)
}

/// [`build_sharded`] with explicit configuration and cooperative
/// cancellation. On [`GraphError::Cancelled`] no partial build escapes.
pub fn build_sharded_with(
    data: &Dataset,
    r_max: f64,
    shards: usize,
    config: ShardedBuildConfig,
    cancel: Option<&CancelToken>,
) -> Result<ShardedBuild, GraphError> {
    if r_max.is_nan() || r_max < 0.0 {
        return Err(GraphError::InvalidRadius(r_max));
    }
    let mut stats = ShardedBuildStats::default();

    let t = Instant::now();
    let plan = ShardPlan::with_stop(data, shards, config.stop);
    let (pairs, pair_dc) = plan.boundary_pairs(data, r_max);
    stats.partition_ms = t.elapsed().as_secs_f64() * 1e3;
    stats.shards = plan.shards();
    stats.partition_dc = plan.distance_computations() + pair_dc;
    let nonempty = plan.ranges().iter().filter(|r| !r.is_empty()).count();
    stats.boundary_pairs_considered = nonempty * nonempty.saturating_sub(1) / 2;
    stats.boundary_pairs_joined = pairs.len();

    let t = Instant::now();
    let data = data.renumbered(plan.order());
    stats.renumber_ms = t.elapsed().as_secs_f64() * 1e3;

    let workers = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        config.threads
    };

    // Phase A: per-shard tree + intra-join, one task per non-empty
    // shard. With a single shard the whole dataset is one task and the
    // intra-join itself gets the worker budget instead.
    struct ShardOut<'a> {
        shard: usize,
        tree: MTree<'a>,
        edges: Vec<DistEdge>,
        tree_ms: f64,
        join_ms: f64,
        tree_dc: u64,
        join_dc: u64,
    }
    let tasks: Vec<(usize, std::ops::Range<usize>)> = plan
        .ranges()
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(s, r)| (s, r.clone()))
        .collect();
    let join_threads = if tasks.len() <= 1 { workers } else { 1 };
    let shard_results: Vec<Result<ShardOut<'_>, GraphError>> = {
        let data = &data;
        run_tasks(tasks.len(), workers, move |t| {
            let (shard, range) = (tasks[t].0, tasks[t].1.clone());
            let t0 = Instant::now();
            let tree = MTree::build_range(data, config.tree, range);
            let tree_ms = t0.elapsed().as_secs_f64() * 1e3;
            let tree_dc = tree.distance_computations();
            let t1 = Instant::now();
            let edges = tree.range_self_join_dist_checked(
                r_max,
                SelfJoinConfig::with_threads(join_threads),
                cancel,
            )?;
            Ok(ShardOut {
                shard,
                join_ms: t1.elapsed().as_secs_f64() * 1e3,
                join_dc: tree.distance_computations() - tree_dc,
                tree,
                edges,
                tree_ms,
                tree_dc,
            })
        })
    };
    let mut trees: Vec<Option<MTree<'_>>> = (0..plan.shards()).map(|_| None).collect();
    let mut intra_edges: Vec<Vec<DistEdge>> = Vec::with_capacity(shard_results.len());
    for result in shard_results {
        let out = result?;
        stats.tree_ms += out.tree_ms;
        stats.intra_join_ms += out.join_ms;
        stats.tree_dc += out.tree_dc;
        stats.intra_join_dc += out.join_dc;
        trees[out.shard] = Some(out.tree);
        intra_edges.push(out.edges);
    }

    // Phase B: one cross-join task per surviving boundary pair; the
    // lower shard is the left tree, so its counters absorb the charge.
    let boundary_results: Vec<Result<(Vec<DistEdge>, f64), GraphError>> = {
        let trees = &trees;
        let pairs = &pairs;
        run_tasks(pairs.len(), workers, move |t| {
            let (i, j) = pairs[t];
            let (Some(left), Some(right)) = (&trees[i], &trees[j]) else {
                unreachable!("boundary pairs never reference empty shards")
            };
            let t0 = Instant::now();
            let edges = cross_tree_join_dist_checked(left, right, r_max, cancel)?;
            Ok((edges, t0.elapsed().as_secs_f64() * 1e3))
        })
    };
    let mut boundary_edges: Vec<Vec<DistEdge>> = Vec::with_capacity(boundary_results.len());
    for result in boundary_results {
        let (edges, ms) = result?;
        stats.boundary_join_ms += ms;
        boundary_edges.push(edges);
    }
    // The cross-joins charged the shard trees in bulk; whatever the
    // trees now hold beyond build + intra-join is the boundary charge.
    let tree_totals: u64 = trees
        .iter()
        .flatten()
        .map(|t| t.distance_computations())
        .sum();
    stats.boundary_join_dc = tree_totals - stats.tree_dc - stats.intra_join_dc;
    stats.node_accesses = trees.iter().flatten().map(|t| t.node_accesses()).sum();
    drop(trees);

    let slices: Vec<&[DistEdge]> = intra_edges
        .iter()
        .map(Vec::as_slice)
        .chain(boundary_edges.iter().map(Vec::as_slice))
        .collect();
    let (graph, breakdown) = StratifiedDiskGraph::from_dist_edge_slices_checked(
        data.len(),
        r_max,
        &slices,
        workers,
        cancel,
    )?;
    let graph = graph.with_permutation(data.permutation().cloned());
    stats.merge_ms = breakdown.merge_ms;
    stats.assembly_ms = breakdown.sort_ms;
    stats.edges = graph.edge_count();

    Ok(ShardedBuild { data, graph, stats })
}

/// Runs `count` independent tasks and returns their results in task
/// order. Serial without the `parallel` feature or when one worker (or
/// one task) makes threading pointless; otherwise an atomic cursor
/// hands task indices to `workers` scoped threads — each task runs
/// serially inside, so results and any counters the tasks charge are
/// identical to the serial schedule.
fn run_tasks<T, F>(count: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    if workers > 1 && count > 1 {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(count) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let out = f(i);
                    *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
                });
            }
        });
        return slots
            .into_iter()
            .map(|slot| {
                match slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
                    Some(out) => out,
                    // A panicking task would have propagated through the
                    // scope already.
                    None => unreachable!("every task index below count was claimed"),
                }
            })
            .collect();
    }
    let _ = workers;
    (0..count).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_returns_results_in_task_order() {
        let got = run_tasks(7, 3, |i| i * i);
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36]);
        assert_eq!(run_tasks(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn sharded_build_rejects_invalid_radius() {
        let data = disc_datasets::synthetic::uniform(32, 2, 7);
        assert!(matches!(
            build_sharded(&data, f64::NAN, 2),
            Err(GraphError::InvalidRadius(_))
        ));
    }

    #[test]
    fn sharded_build_matches_unsharded_reference() {
        let data = disc_datasets::synthetic::clustered(600, 2, 5, 21);
        let r = 0.08;
        let config = ShardedBuildConfig {
            stop: 32,
            ..ShardedBuildConfig::default()
        };
        let reference = build_sharded_with(&data, r, 1, config, None).expect("build");
        // The reference graph equals a direct O(n²) build over the same
        // renumbered dataset.
        let direct = StratifiedDiskGraph::build(&reference.data, r);
        assert_eq!(reference.graph.offsets(), direct.offsets());
        assert_eq!(reference.graph.neighbors_flat(), direct.neighbors_flat());
        for s in [2, 3, 8] {
            let sharded = build_sharded_with(&data, r, s, config, None).expect("build");
            assert_eq!(sharded.graph, reference.graph, "shards={s}");
            assert_eq!(
                sharded.data.flat_coords(),
                reference.data.flat_coords(),
                "shards={s}"
            );
            assert_eq!(sharded.stats.shards, s);
            assert!(sharded.stats.distance_computations() > 0);
        }
    }

    #[test]
    fn cancellation_propagates_from_the_join_phase() {
        let data = disc_datasets::synthetic::uniform(512, 2, 9);
        let token = CancelToken::new();
        token.cancel();
        let result = build_sharded_with(
            &data,
            0.1,
            4,
            ShardedBuildConfig {
                stop: 32,
                ..ShardedBuildConfig::default()
            },
            Some(&token),
        );
        assert!(matches!(result, Err(GraphError::Cancelled)));
    }
}
