//! Uniform dispatch over every heuristic, used by the experiment harness
//! and the benches.

use disc_mtree::MTree;

use crate::basic::{basic_disc, BasicOrder};
use crate::cover::{fast_c, greedy_c};
use crate::greedy::{greedy_disc, GreedyVariant};
use crate::result::DiscResult;

/// Every DisC/r-C heuristic of the paper, runnable through one entry
/// point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Heuristic {
    /// Basic-DisC over the leaf chain.
    Basic {
        /// Apply the Pruning Rule.
        pruned: bool,
    },
    /// Greedy-DisC (Algorithm 1) with an update strategy.
    Greedy {
        /// Count-update strategy.
        variant: GreedyVariant,
        /// Apply the Pruning Rule.
        pruned: bool,
    },
    /// Greedy-C (coverage only).
    GreedyC,
    /// Fast-C (coverage only, bottom-up stop-at-grey queries).
    FastC,
}

impl Heuristic {
    /// Paper-style display name (matches the legends of Figures 7–8).
    pub fn name(&self) -> String {
        match self {
            Heuristic::Basic { pruned } => {
                format!("B-DisC{}", if *pruned { " (Pruned)" } else { "" })
            }
            Heuristic::Greedy { variant, pruned } => {
                format!(
                    "{}{}",
                    variant.name(),
                    if *pruned { " (Pruned)" } else { "" }
                )
            }
            Heuristic::GreedyC => "G-C".into(),
            Heuristic::FastC => "Fast-C".into(),
        }
    }

    /// Runs the heuristic on the indexed dataset.
    pub fn run(&self, tree: &MTree<'_>, r: f64) -> DiscResult {
        match self {
            Heuristic::Basic { pruned } => basic_disc(tree, r, BasicOrder::LeafOrder, *pruned),
            Heuristic::Greedy { variant, pruned } => greedy_disc(tree, r, *variant, *pruned),
            Heuristic::GreedyC => greedy_c(tree, r),
            Heuristic::FastC => fast_c(tree, r),
        }
    }

    /// The heuristics of Table 3 (solution sizes), in row order:
    /// B-DisC, G-DisC, L-Gr-G-DisC, L-Wh-G-DisC, G-C.
    pub fn table3_rows() -> Vec<(String, Heuristic)> {
        vec![
            ("B-DisC".into(), Heuristic::Basic { pruned: true }),
            (
                "G-DisC".into(),
                Heuristic::Greedy {
                    variant: GreedyVariant::Grey,
                    pruned: true,
                },
            ),
            (
                "L-Gr-G-DisC".into(),
                Heuristic::Greedy {
                    variant: GreedyVariant::LazyGrey,
                    pruned: true,
                },
            ),
            (
                "L-Wh-G-DisC".into(),
                Heuristic::Greedy {
                    variant: GreedyVariant::LazyWhite,
                    pruned: true,
                },
            ),
            ("G-C".into(), Heuristic::GreedyC),
        ]
    }

    /// The heuristics of Figure 7 (node accesses, pruning on/off).
    pub fn figure7_series() -> Vec<(String, Heuristic)> {
        vec![
            ("B-DisC".into(), Heuristic::Basic { pruned: false }),
            ("B-DisC (Pruned)".into(), Heuristic::Basic { pruned: true }),
            (
                "Gr-G-DisC".into(),
                Heuristic::Greedy {
                    variant: GreedyVariant::Grey,
                    pruned: false,
                },
            ),
            (
                "Gr-G-DisC (Pruned)".into(),
                Heuristic::Greedy {
                    variant: GreedyVariant::Grey,
                    pruned: true,
                },
            ),
            ("G-C".into(), Heuristic::GreedyC),
        ]
    }

    /// The heuristics of Figure 8 (pruned greedy variants vs pruned
    /// basic).
    pub fn figure8_series() -> Vec<(String, Heuristic)> {
        vec![
            ("B-DisC (Pruned)".into(), Heuristic::Basic { pruned: true }),
            (
                "Gr-G-DisC (Pruned)".into(),
                Heuristic::Greedy {
                    variant: GreedyVariant::Grey,
                    pruned: true,
                },
            ),
            (
                "Wh-G-DisC (Pruned)".into(),
                Heuristic::Greedy {
                    variant: GreedyVariant::White,
                    pruned: true,
                },
            ),
            (
                "L-Gr-G-DisC (Pruned)".into(),
                Heuristic::Greedy {
                    variant: GreedyVariant::LazyGrey,
                    pruned: true,
                },
            ),
            (
                "L-Wh-G-DisC (Pruned)".into(),
                Heuristic::Greedy {
                    variant: GreedyVariant::LazyWhite,
                    pruned: true,
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_coverage, verify_disc};
    use disc_datasets::synthetic::uniform;
    use disc_mtree::MTreeConfig;

    #[test]
    fn every_heuristic_runs_and_validates() {
        let data = uniform(150, 2, 110);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        let r = 0.15;
        let all = [
            Heuristic::Basic { pruned: false },
            Heuristic::Basic { pruned: true },
            Heuristic::Greedy {
                variant: GreedyVariant::Grey,
                pruned: true,
            },
            Heuristic::GreedyC,
            Heuristic::FastC,
        ];
        for h in all {
            let res = h.run(&tree, r);
            assert_eq!(res.heuristic, h.name());
            match h {
                Heuristic::GreedyC | Heuristic::FastC => {
                    assert!(verify_coverage(&data, &res.solution, r).is_empty(), "{h:?}");
                }
                _ => assert!(verify_disc(&data, &res.solution, r).is_valid(), "{h:?}"),
            }
        }
    }

    #[test]
    fn table_and_figure_sets_have_paper_rows() {
        assert_eq!(Heuristic::table3_rows().len(), 5);
        assert_eq!(Heuristic::figure7_series().len(), 5);
        assert_eq!(Heuristic::figure8_series().len(), 5);
        let names: Vec<String> = Heuristic::table3_rows()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(
            names,
            ["B-DisC", "G-DisC", "L-Gr-G-DisC", "L-Wh-G-DisC", "G-C"]
        );
    }
}
