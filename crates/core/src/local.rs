//! Local zooming (paper Sections 3 and 5.2, Figures 1(d) and 2): adapt
//! the radius only inside the neighbourhood of one selected object.
//!
//! "For local zooming in an object p_i, the only difference is that
//! instead of all objects in P, the algorithm receives as input only the
//! objects in N_r(p_i)." We therefore:
//!
//! 1. retrieve `N_r(p_i)` with a range query on the main tree,
//! 2. restrict the dataset to that neighbourhood, index it with a small
//!    M-tree, and map the previous solution into it,
//! 3. run the regular (greedy) zoom-in or zoom-out on the restriction,
//! 4. map the adapted selection back and splice it into the global
//!    solution.
//!
//! Objects outside the neighbourhood keep their previous representatives,
//! so near the boundary the spliced solution is best-effort (the paper
//! makes no global-validity claim for local zooming either — the user
//! explicitly asked for a different granularity *inside* the region).

use disc_metric::ObjId;
use disc_mtree::{MTree, MTreeConfig};

use crate::result::DiscResult;
use crate::zoom_in::greedy_zoom_in;
use crate::zoom_out::{greedy_zoom_out, ZoomOutVariant};

/// Outcome of a local zoom around one object.
#[derive(Clone, Debug)]
pub struct LocalZoomResult {
    /// The adapted global solution: previous selection with the
    /// neighbourhood of the centre re-diversified at the new radius.
    pub solution: Vec<ObjId>,
    /// Objects newly added inside the neighbourhood.
    pub added: Vec<ObjId>,
    /// Previously selected objects removed from the neighbourhood.
    pub removed: Vec<ObjId>,
    /// Node accesses on the main tree plus the temporary local tree
    /// (including its construction).
    pub node_accesses: u64,
}

/// Locally zooms the neighbourhood of `center` (which must be part of
/// `prev`'s solution) to radius `r_new`; `r_new < prev.radius` zooms in,
/// `r_new > prev.radius` zooms out.
pub fn local_zoom(
    tree: &MTree<'_>,
    prev: &DiscResult,
    center: ObjId,
    r_new: f64,
) -> LocalZoomResult {
    assert!(
        prev.contains(center),
        "local zooming centres on a selected object"
    );
    assert!(
        r_new != prev.radius,
        "local zooming needs a different radius"
    );
    let data = tree.data();
    let start = tree.node_accesses();

    // 1. The input of the local operation: N_r(center) including the
    //    centre itself.
    let mut ids: Vec<ObjId> = tree
        .range_query_obj(center, prev.radius)
        .into_iter()
        .map(|h| h.object)
        .collect();
    ids.sort_unstable();
    let main_accesses = tree.node_accesses() - start;

    // 2. Restrict and index. `ids` doubles as the local-to-original
    //    mapping: local id `i` is original id `ids[i]`.
    let sub = data.restrict(&ids);
    let map = &ids;
    let sub_tree = MTree::build(&sub, MTreeConfig::default());
    // Previous solution inside the neighbourhood, in local ids.
    let local_prev: Vec<usize> = map
        .iter()
        .enumerate()
        .filter(|(_, orig)| prev.contains(**orig))
        .map(|(local, _)| local)
        .collect();
    let local_prev_result = DiscResult {
        radius: prev.radius,
        heuristic: prev.heuristic.clone(),
        solution: local_prev.clone(),
        node_accesses: 0,
    };

    // 3. Adapt locally (the local tree's accesses include its
    //    construction: the whole point of local zooming is that the
    //    neighbourhood is small, so building a throwaway index is cheap).
    let adapted = if r_new < prev.radius {
        greedy_zoom_in(&sub_tree, &local_prev_result, r_new)
    } else {
        greedy_zoom_out(
            &sub_tree,
            &local_prev_result,
            r_new,
            ZoomOutVariant::GreedyA,
        )
    };
    let local_accesses = sub_tree.node_accesses();

    // 4. Map back and splice.
    let new_local: Vec<ObjId> = adapted.result.solution.iter().map(|&l| map[l]).collect();
    let removed: Vec<ObjId> = local_prev
        .iter()
        .map(|&l| map[l])
        .filter(|o| !new_local.contains(o))
        .collect();
    let added: Vec<ObjId> = new_local
        .iter()
        .copied()
        .filter(|o| !prev.contains(*o))
        .collect();
    let mut solution: Vec<ObjId> = prev
        .solution
        .iter()
        .copied()
        .filter(|o| !removed.contains(o))
        .collect();
    solution.extend(&added);

    LocalZoomResult {
        solution,
        added,
        removed,
        node_accesses: main_accesses + local_accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_disc, GreedyVariant};
    use crate::verify::verify_disc;
    use disc_datasets::synthetic::clustered;
    use disc_mtree::MTreeConfig;

    fn setup() -> (disc_metric::Dataset, f64) {
        (clustered(500, 2, 5, 100), 0.08)
    }

    #[test]
    fn local_zoom_in_adds_objects_near_center() {
        let (data, r) = setup();
        let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
        let prev = greedy_disc(&tree, r, GreedyVariant::Grey, true);
        let center = prev.solution[0];
        let res = local_zoom(&tree, &prev, center, r / 2.0);
        assert!(res.solution.contains(&center));
        // Added objects all lie inside the old neighbourhood.
        for &a in &res.added {
            assert!(data.dist(a, center) <= r + 1e-9);
        }
        // Zooming in only adds (the old selection is still independent at
        // the smaller radius).
        assert!(res.removed.is_empty());
        assert!(res.solution.len() >= prev.size());
    }

    #[test]
    fn local_zoom_out_removes_objects_near_center() {
        let (data, r) = setup();
        let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
        let prev = greedy_disc(&tree, r, GreedyVariant::Grey, true);
        let center = prev.solution[0];
        let res = local_zoom(&tree, &prev, center, r * 2.5);
        // Everything removed was previously selected and in range.
        for &x in &res.removed {
            assert!(prev.contains(x));
            assert!(data.dist(x, center) <= r + 1e-9);
        }
        // The rest of the solution is untouched.
        for &s in &prev.solution {
            if data.dist(s, center) > r {
                assert!(res.solution.contains(&s));
            }
        }
    }

    #[test]
    fn local_solution_valid_within_neighbourhood() {
        let (data, r) = setup();
        let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
        let prev = greedy_disc(&tree, r, GreedyVariant::Grey, true);
        let center = prev.solution[1];
        let r_new = r / 2.0;
        let res = local_zoom(&tree, &prev, center, r_new);
        // Restricted to the neighbourhood, the adapted selection is a
        // valid r'-DisC subset.
        let ids: Vec<usize> = data.ids().filter(|&o| data.dist(o, center) <= r).collect();
        let sub = data.restrict(&ids);
        let local_solution: Vec<usize> = ids
            .iter()
            .enumerate()
            .filter(|(_, orig)| res.solution.contains(orig))
            .map(|(l, _)| l)
            .collect();
        assert!(verify_disc(&sub, &local_solution, r_new).is_valid());
    }

    #[test]
    #[should_panic(expected = "selected object")]
    fn rejects_non_solution_center() {
        let (data, r) = setup();
        let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
        let prev = greedy_disc(&tree, r, GreedyVariant::Grey, true);
        let outsider = data.ids().find(|o| !prev.contains(*o)).unwrap();
        let _ = local_zoom(&tree, &prev, outsider, r / 2.0);
    }

    #[test]
    fn accesses_accounted() {
        let (data, r) = setup();
        let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
        let prev = greedy_disc(&tree, r, GreedyVariant::Grey, true);
        let res = local_zoom(&tree, &prev, prev.solution[0], r / 2.0);
        assert!(res.node_accesses > 0);
    }
}
