//! Greedy-C and Fast-C (paper Sections 2.3 and 5.1): r-C diverse subsets
//! that satisfy coverage only.
//!
//! Greedy-C widens the candidate pool of Algorithm 1 to white *and* grey
//! objects, so the selection can pick an already-covered object when it
//! covers more uncovered ones (Observation 3: a covering set may be
//! smaller when it need not be independent). The selection key is
//! `|N^W_r(p)| + [p is white]` — the number of objects a selection newly
//! covers, counting the candidate itself while it is uncovered; the
//! self-term is what guarantees termination when isolated white objects
//! remain (a grey candidate covering nothing could otherwise be picked
//! forever). For Greedy-DisC the self-term is uniform over the (all-white)
//! candidates, so this matches Algorithm 1 exactly.
//!
//! The Pruning Rule cannot be used by Greedy-C: grey objects stay
//! candidates, so their counts must keep being refreshed, and they live
//! inside grey subtrees.
//!
//! Fast-C exploits the grey marks anyway: all of its range queries run
//! *bottom-up* and stop climbing at the first grey ancestor, which makes
//! the per-grey-object update queries nearly free once grey has spread —
//! at the price of stale candidate counts. To keep solutions "similar
//! sized" to Greedy-C's (the paper's observation), a popped candidate is
//! first *revalidated* with one such truncated query and re-queued if its
//! key dropped (lazy greedy selection). Climbs from white candidates are
//! never truncated — a white object's ancestors all contain it and can't
//! be grey — so whites are never missed and the result always covers;
//! truncated counts merely divert selections towards white objects, which
//! reproduces the paper's remark that Fast-C solutions contain a larger
//! share of independent objects.

use disc_metric::ObjId;
use disc_mtree::{Color, ColorState, MTree};

use crate::heap::LazyMaxHeap;
use crate::par;
use crate::result::DiscResult;

/// Computes an r-C diverse subset (coverage only) with Greedy-C.
pub fn greedy_c(tree: &MTree<'_>, r: f64) -> DiscResult {
    run_cover(tree, r, false)
}

/// Computes an r-C diverse subset with Fast-C (bottom-up, stop-at-grey
/// range queries and lazy candidate revalidation).
pub fn fast_c(tree: &MTree<'_>, r: f64) -> DiscResult {
    run_cover(tree, r, true)
}

fn run_cover(tree: &MTree<'_>, r: f64, fast: bool) -> DiscResult {
    assert!(r >= 0.0, "radius must be non-negative");
    let start = tree.node_accesses();
    let n = tree.len();
    let mut colors = ColorState::new(tree);

    // counts[p] = |N_r(p) ∩ white| for every object, initialised by one
    // range query per object (exact: nothing is grey yet). The queries
    // are independent, so the pass fans out when `parallel` is enabled.
    let mut counts = par::seed_counts(n, |id, scratch: &mut Vec<ObjId>| {
        query_into(tree, id, r, fast, &colors, scratch);
        (scratch.len() - 1) as u32
    });
    let mut heap = LazyMaxHeap::with_capacity(n);
    for (id, &c) in counts.iter().enumerate() {
        heap.push(id, c + 1); // all white: self-term applies
    }

    let key_of = |id: ObjId, colors: &ColorState, counts: &[u32]| -> Option<u32> {
        match colors.color(id) {
            Color::Black => None,
            Color::White => Some(counts[id] + 1),
            _ => Some(counts[id]),
        }
    };

    let mut solution: Vec<ObjId> = Vec::new();
    // Scratch buffers reused across the whole run: `sel_scratch` holds
    // the selection query's hits (including the Fast-C revalidation
    // query, whose hit list doubles as the selection hit list — the
    // pop-time query and the post-pick query are the same query, so it
    // is never reissued), `upd_scratch` the per-grey refresh queries.
    let mut sel_scratch: Vec<ObjId> = Vec::new();
    let mut upd_scratch: Vec<ObjId> = Vec::new();
    while colors.any_white() {
        // Select a candidate. Greedy-C keeps counts exact, so the heap's
        // answer is authoritative and one post-pop query suffices; Fast-C
        // revalidates the popped candidate with a fresh (truncated) query
        // and re-queues it if its key dropped.
        let picked = if fast {
            let mut selected = None;
            while let Some(cand) = heap.pop_valid(|id| key_of(id, &colors, &counts)) {
                query_into(tree, cand, r, true, &colors, &mut sel_scratch);
                let fresh = sel_scratch
                    .iter()
                    .filter(|&&o| o != cand && colors.is_white(o))
                    .count() as u32;
                if fresh == counts[cand] {
                    // `sel_scratch` already holds Q(cand, r): reuse it as
                    // the selection hit list below.
                    selected = Some(cand);
                    break;
                }
                debug_assert!(fresh < counts[cand], "truncated counts only shrink");
                counts[cand] = fresh;
                let bonus = u32::from(colors.is_white(cand));
                heap.push(cand, fresh + bonus);
            }
            match selected {
                Some(s) => s,
                None => unreachable!("white objects remain, so candidates exist"),
            }
        } else {
            let cand = match heap.pop_valid(|id| key_of(id, &colors, &counts)) {
                Some(c) => c,
                None => unreachable!("white objects remain, so candidates exist"),
            };
            query_into(tree, cand, r, false, &colors, &mut sel_scratch);
            cand
        };
        let picked_hits = &sel_scratch;

        let was_white = colors.is_white(picked);
        colors.set_color(tree, picked, Color::Black);

        // Decrement for `picked` leaving white: every non-black neighbour
        // keeps a candidate count.
        if was_white {
            for &o in picked_hits.iter() {
                if o != picked && colors.color(o) != Color::Black {
                    counts[o] = counts[o].saturating_sub(1);
                    heap.push(o, counts[o] + u32::from(colors.is_white(o)));
                }
            }
        }

        let newly_grey: Vec<ObjId> = picked_hits
            .iter()
            .copied()
            .filter(|&o| o != picked && colors.is_white(o))
            .collect();
        for &pj in &newly_grey {
            colors.set_color(tree, pj, Color::Grey);
            // The candidate lost its self-term.
            heap.push(pj, counts[pj]);
        }
        if !fast {
            // Greedy-C: exact refresh — one query per newly grey object,
            // decrementing everything that lost a white neighbour.
            for &pj in &newly_grey {
                query_into(tree, pj, r, false, &colors, &mut upd_scratch);
                for &o in upd_scratch.iter() {
                    if o != pj && colors.color(o) != Color::Black {
                        counts[o] = counts[o].saturating_sub(1);
                        heap.push(o, counts[o] + u32::from(colors.is_white(o)));
                    }
                }
            }
        } else if !newly_grey.is_empty() {
            // Fast-C queries only "when an object is colored black"
            // (paper), so the per-grey refresh is replaced by a free local
            // repair over the selection query's own hit list: candidates
            // within r of the pick lose their newly-grey neighbours here;
            // candidates in the (r, 2r] annulus stay stale until the
            // pop-time revalidation catches them.
            let data = tree.data();
            for &x in picked_hits.iter() {
                if x == picked || colors.color(x) == Color::Black {
                    continue;
                }
                let delta = newly_grey
                    .iter()
                    .filter(|&&pj| pj != x && data.dist(x, pj) <= r)
                    .count() as u32;
                if delta > 0 {
                    counts[x] = counts[x].saturating_sub(delta);
                    heap.push(x, counts[x] + u32::from(colors.is_white(x)));
                }
            }
        }
        solution.push(picked);
    }

    DiscResult {
        radius: r,
        heuristic: if fast { "Fast-C".into() } else { "G-C".into() },
        solution,
        node_accesses: tree.node_accesses() - start,
    }
}

fn query_into(
    tree: &MTree<'_>,
    center: ObjId,
    r: f64,
    fast: bool,
    colors: &ColorState,
    hits: &mut Vec<ObjId>,
) {
    if fast {
        tree.range_query_objs_bottom_up_into(center, r, Some(colors), true, hits);
    } else {
        tree.range_query_objs_into(center, r, hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_coverage, verify_disc};
    use disc_datasets::synthetic::{clustered, uniform};
    use disc_graph::{reference::greedy_c_ref, sets::is_independent, UnitDiskGraph};
    use disc_mtree::MTreeConfig;
    use proptest::prelude::*;

    #[test]
    fn greedy_c_covers_everything() {
        let data = clustered(300, 2, 5, 70);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        let res = greedy_c(&tree, 0.08);
        assert!(verify_coverage(&data, &res.solution, 0.08).is_empty());
    }

    #[test]
    fn greedy_c_matches_graph_reference() {
        let data = uniform(180, 2, 71);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(7));
        let r = 0.12;
        let res = greedy_c(&tree, r);
        let g = UnitDiskGraph::build(&data, r);
        assert_eq!(res.solution, greedy_c_ref(&g));
    }

    #[test]
    fn greedy_c_may_break_independence_but_not_coverage() {
        // The Figure 4 double-star: Greedy-C covers with 2 dependent
        // objects where DisC needs 3 independent ones.
        use disc_metric::{Dataset, Metric, Point};
        let data = Dataset::new(
            "fig4",
            Metric::Euclidean,
            vec![
                Point::new2(0.2, 0.0),
                Point::new2(1.0, 0.0),
                Point::new2(1.2, 0.9),
                Point::new2(2.8, 0.3),
                Point::new2(2.0, 0.0),
                Point::new2(2.2, -0.9),
            ],
        );
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        let r = 1.0;
        let c = greedy_c(&tree, r);
        let d = crate::greedy::greedy_disc(&tree, r, crate::GreedyVariant::Grey, true);
        assert!(verify_coverage(&data, &c.solution, r).is_empty());
        assert!(verify_disc(&data, &d.solution, r).is_valid());
        assert!(
            c.size() < d.size(),
            "C {:?} vs DisC {:?}",
            c.solution,
            d.solution
        );
        let g = UnitDiskGraph::build(&data, r);
        assert!(
            !is_independent(&g, &c.solution),
            "C result is dependent here"
        );
    }

    #[test]
    fn fast_c_is_cheaper_at_larger_radii_and_similar_sized() {
        let data = clustered(800, 2, 6, 72);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(15));
        let r = 0.08;
        let slow = greedy_c(&tree, r);
        let fast = fast_c(&tree, r);
        assert!(verify_coverage(&data, &fast.solution, r).is_empty());
        assert!(
            fast.node_accesses < slow.node_accesses,
            "fast {} !< slow {}",
            fast.node_accesses,
            slow.node_accesses
        );
        // "Similar sized solutions" (paper): allow a modest growth factor.
        assert!(
            fast.size() <= slow.size() * 3 / 2 + 2,
            "fast {} vs slow {}",
            fast.size(),
            slow.size()
        );
    }

    #[test]
    fn isolated_objects_terminate() {
        use disc_metric::{Dataset, Metric, Point};
        let data = Dataset::new(
            "iso",
            Metric::Euclidean,
            vec![
                Point::new2(0.0, 0.0),
                Point::new2(5.0, 0.0),
                Point::new2(0.0, 5.0),
                Point::new2(5.0, 5.0),
            ],
        );
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        let res = greedy_c(&tree, 0.5);
        assert_eq!(res.size(), 4);
        let res = fast_c(&tree, 0.5);
        assert_eq!(res.size(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Greedy-C and Fast-C always cover; Greedy-C matches the graph
        /// reference exactly; Fast-C stays within a constant factor.
        #[test]
        fn cover_heuristics_valid(seed in 0u64..2_000, r in 0.02..0.4f64) {
            let data = uniform(90, 2, seed);
            let tree = MTree::build(&data, MTreeConfig::with_capacity(6));
            let res = greedy_c(&tree, r);
            prop_assert!(verify_coverage(&data, &res.solution, r).is_empty());
            let g = UnitDiskGraph::build(&data, r);
            prop_assert_eq!(&res.solution, &greedy_c_ref(&g));
            let fast = fast_c(&tree, r);
            prop_assert!(verify_coverage(&data, &fast.solution, r).is_empty());
            prop_assert!(fast.size() <= res.size() * 3 + 3);
        }
    }
}
