//! Weighted DisC diversity — the first future-work extension of the
//! paper's Section 8: *"a 'weighted' variation of the DisC set, where
//! each object has an associated weight based on its relevance. Now the
//! goal is to select a DisC subset having the maximum sum of weights."*
//!
//! Finding the maximum-weight independent dominating set is NP-hard (it
//! generalises the unweighted problem), so this module provides the
//! natural greedy heuristic: repeatedly select the *heaviest* white
//! object (ties to the smallest id), colour it black and its
//! neighbourhood grey. The result is a maximal independent set — hence a
//! valid r-DisC diverse subset (Lemma 1) — whose members are locally
//! weight-optimal: every selected object is at least as heavy as every
//! object it covers at selection time.
//!
//! Weights never change during the run, so no lazy invalidation is
//! needed; a plain max-heap drives the selection.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use disc_metric::ObjId;
use disc_mtree::{Color, ColorState, MTree};

use crate::result::DiscResult;

/// Computes an r-DisC diverse subset that greedily maximises the weight
/// of the selected objects.
///
/// # Panics
///
/// Panics if `weights` does not have one finite value per object.
pub fn weighted_disc(tree: &MTree<'_>, r: f64, weights: &[f64], pruned: bool) -> DiscResult {
    assert!(r >= 0.0, "radius must be non-negative");
    assert_eq!(weights.len(), tree.len(), "one weight per object");
    assert!(
        weights.iter().all(|w| w.is_finite()),
        "weights must be finite"
    );
    let start = tree.node_accesses();
    let mut colors = ColorState::new(tree);
    // Total order on (weight desc, id asc); f64 wrapped as ordered bits
    // (finite values only, checked above).
    let mut heap: BinaryHeap<(OrderedWeight, Reverse<ObjId>)> = (0..tree.len())
        .map(|id| (OrderedWeight(weights[id]), Reverse(id)))
        .collect();

    let mut solution = Vec::new();
    while colors.any_white() {
        let Some((_, Reverse(picked))) = heap.pop() else {
            unreachable!("heap outlives the white set")
        };
        if !colors.is_white(picked) {
            continue;
        }
        colors.set_color(tree, picked, Color::Black);
        let hits = if pruned {
            tree.range_query_obj_pruned(picked, r, &colors)
        } else {
            tree.range_query_obj(picked, r)
        };
        for h in hits {
            if colors.is_white(h.object) {
                colors.set_color(tree, h.object, Color::Grey);
            }
        }
        solution.push(picked);
    }

    DiscResult {
        radius: r,
        heuristic: format!("W-DisC{}", if pruned { " (Pruned)" } else { "" }),
        solution,
        node_accesses: tree.node_accesses() - start,
    }
}

/// Total weight of a selection.
pub fn solution_weight(solution: &[ObjId], weights: &[f64]) -> f64 {
    solution.iter().map(|&o| weights[o]).sum()
}

/// Finite f64 with a total order (weight comparison key).
#[derive(Clone, Copy, PartialEq)]
struct OrderedWeight(f64);

impl Eq for OrderedWeight {}

impl PartialOrd for OrderedWeight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedWeight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match self.0.partial_cmp(&other.0) {
            Some(o) => o,
            // Weights are validated finite at construction.
            None => unreachable!("finite weights are comparable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{basic_disc, BasicOrder};
    use crate::verify::verify_disc;
    use disc_datasets::synthetic::{clustered, uniform};
    use disc_mtree::MTreeConfig;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    #[test]
    fn produces_valid_disc_subset() {
        let data = clustered(300, 2, 5, 120);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        let mut rng = StdRng::seed_from_u64(1);
        let weights: Vec<f64> = (0..300).map(|_| rng.random_range(0.0..1.0)).collect();
        for pruned in [false, true] {
            let res = weighted_disc(&tree, 0.08, &weights, pruned);
            assert!(verify_disc(&data, &res.solution, 0.08).is_valid());
        }
    }

    #[test]
    fn prefers_the_heavy_object_of_an_adjacent_pair() {
        use disc_metric::{Dataset, Metric, Point};
        let data = Dataset::new(
            "pair",
            Metric::Euclidean,
            vec![Point::new2(0.0, 0.0), Point::new2(0.05, 0.0)],
        );
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        // Object 1 is heavier; only one of the two can be selected.
        let res = weighted_disc(&tree, 0.1, &[0.2, 0.9], true);
        assert_eq!(res.solution, vec![1]);
        // Flip the weights: object 0 wins.
        let res = weighted_disc(&tree, 0.1, &[0.9, 0.2], true);
        assert_eq!(res.solution, vec![0]);
    }

    #[test]
    fn equal_weights_reduce_to_id_order_basic_disc() {
        let data = uniform(200, 2, 121);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        let weights = vec![1.0; 200];
        let weighted = weighted_disc(&tree, 0.1, &weights, true);
        let basic = basic_disc(&tree, 0.1, BasicOrder::IdOrder, true);
        assert_eq!(weighted.solution, basic.solution);
    }

    #[test]
    fn weight_beats_unweighted_selection_weight() {
        // On random weights, weight-greedy should accumulate at least as
        // much weight as the id-ordered basic heuristic.
        let data = clustered(400, 2, 5, 122);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(10));
        let mut rng = StdRng::seed_from_u64(2);
        let weights: Vec<f64> = (0..400).map(|_| rng.random_range(0.0..1.0)).collect();
        let r = 0.08;
        let weighted = weighted_disc(&tree, r, &weights, true);
        let basic = basic_disc(&tree, r, BasicOrder::IdOrder, true);
        assert!(
            solution_weight(&weighted.solution, &weights) * (1.0 + 1e-12)
                >= solution_weight(&basic.solution, &weights),
            "weight-greedy lost to an arbitrary order"
        );
    }

    #[test]
    fn every_covered_object_is_no_heavier_than_its_selector_at_selection() {
        // Local optimality: the heaviest object of any neighbourhood is
        // selected before anything it covers.
        let data = uniform(150, 2, 123);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
        let mut rng = StdRng::seed_from_u64(3);
        let weights: Vec<f64> = (0..150).map(|_| rng.random_range(0.0..1.0)).collect();
        let r = 0.15;
        let res = weighted_disc(&tree, r, &weights, true);
        // The globally heaviest object is always selected.
        let heaviest = (0..150)
            .max_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap())
            .unwrap();
        assert!(res.solution.contains(&heaviest));
    }

    #[test]
    #[should_panic(expected = "one weight per object")]
    fn rejects_mismatched_weights() {
        let data = uniform(10, 2, 124);
        let tree = MTree::build(&data, MTreeConfig::with_capacity(4));
        let _ = weighted_disc(&tree, 0.1, &[1.0; 5], true);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        /// Always a valid DisC subset, regardless of weights.
        #[test]
        fn always_valid(seed in 0u64..2_000, r in 0.05..0.4f64) {
            let data = uniform(100, 2, seed);
            let tree = MTree::build(&data, MTreeConfig::with_capacity(8));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
            let weights: Vec<f64> = (0..100).map(|_| rng.random_range(0.0..10.0)).collect();
            let res = weighted_disc(&tree, r, &weights, true);
            prop_assert!(verify_disc(&data, &res.solution, r).is_valid());
        }
    }
}
